//! Guards the hermetic build: no crate in the workspace may depend on a
//! registry package. Every dependency must be a path / workspace member,
//! so `cargo build --offline` always works on a fresh checkout.

use std::path::{Path, PathBuf};

/// Collects `Cargo.toml` for the workspace root and every crate under
/// `crates/`.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .find(|p| p.join("Cargo.lock").exists() || p.join("crates").is_dir())
        .expect("workspace root above crate dir")
        .to_path_buf();
    let mut manifests = vec![root.join("Cargo.toml")];
    for entry in std::fs::read_dir(root.join("crates")).expect("crates dir") {
        let path = entry.expect("dir entry").path().join("Cargo.toml");
        if path.is_file() {
            manifests.push(path);
        }
    }
    manifests
}

/// True for dependency entries that resolve inside the workspace:
/// `{ path = ... }`, `{ workspace = true }`, or keys of the dotted form
/// `foo.path` / `foo.workspace`.
fn is_hermetic(entry: &str) -> bool {
    entry.contains("path") || entry.contains("workspace = true")
}

#[test]
fn all_dependencies_are_path_or_workspace() {
    let mut violations = Vec::new();
    for manifest in workspace_manifests() {
        let text = std::fs::read_to_string(&manifest).expect("manifest readable");
        let mut in_deps = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                // [dependencies], [dev-dependencies], [build-dependencies],
                // [workspace.dependencies], and target-specific variants.
                in_deps = line.trim_matches(['[', ']']).ends_with("dependencies");
                continue;
            }
            if !in_deps {
                continue;
            }
            if let Some((name, value)) = line.split_once('=') {
                if !is_hermetic(value) && !is_hermetic(name) {
                    violations.push(format!(
                        "{}:{}: `{}` is not a path/workspace dependency",
                        manifest.display(),
                        lineno + 1,
                        line
                    ));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "registry dependencies would break the offline build:\n{}",
        violations.join("\n")
    );
}

#[test]
fn lockfile_is_committed_and_registry_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .find(|p| p.join("Cargo.lock").exists())
        .expect("Cargo.lock committed at the workspace root");
    let lock = std::fs::read_to_string(root.join("Cargo.lock")).expect("lockfile readable");
    assert!(
        !lock.contains("source = "),
        "Cargo.lock references an external source; the build is no longer hermetic"
    );
}
