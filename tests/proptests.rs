//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_compression::{bdi, fpc};
use dylect_core::GroupMap;
use dylect_memctl::freespace::{FreeSpace, Span};
use dylect_memctl::recency::RecencyList;
use dylect_sim_core::rng::{Rng, Zipf};
use dylect_sim_core::{DramPageId, PageId, PAGE_BYTES};

proptest! {
    /// FPC round-trips arbitrary word-aligned byte strings.
    #[test]
    fn fpc_roundtrip(words in proptest::collection::vec(any::<u32>(), 1..128)) {
        let data: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let bits = fpc::compress(&data);
        prop_assert_eq!(fpc::decompress(&bits, words.len()), data);
    }

    /// BDI round-trips arbitrary 64 B blocks and never inflates.
    #[test]
    fn bdi_roundtrip(block in proptest::collection::vec(any::<u8>(), 64..=64)) {
        let c = bdi::compress(&block);
        prop_assert_eq!(&bdi::decompress(&c)[..], &block[..]);
        prop_assert!(c.encoding.compressed_bytes() <= 64);
    }

    /// FreeSpace conserves bytes across arbitrary alloc/free interleavings
    /// and re-coalesces completely.
    #[test]
    fn freespace_conservation(ops in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..300)) {
        let pages = 8u64;
        let mut fs = FreeSpace::new();
        for i in 0..pages {
            fs.add_page(DramPageId::new(i));
        }
        let total = fs.free_bytes();
        let mut live: Vec<Span> = Vec::new();
        for (x, do_alloc) in ops {
            if do_alloc || live.is_empty() {
                let len = (x as u32 % 4096) + 1;
                if let Some(s) = fs.alloc_span(len) {
                    live.push(s);
                }
            } else {
                let idx = x as usize % live.len();
                fs.free_span(live.swap_remove(idx));
            }
            let live_bytes: u64 = live.iter().map(|s| s.len as u64).sum();
            prop_assert_eq!(fs.free_bytes() + live_bytes, total);
        }
        for s in live.drain(..) {
            fs.free_span(s);
        }
        prop_assert_eq!(fs.free_page_count() as u64, pages);
    }

    /// Allocated spans never overlap.
    #[test]
    fn freespace_no_overlap(lens in proptest::collection::vec(1u32..4096, 1..64)) {
        let mut fs = FreeSpace::new();
        for i in 0..16 {
            fs.add_page(DramPageId::new(i));
        }
        let mut allocated: Vec<Span> = Vec::new();
        for len in lens {
            if let Some(s) = fs.alloc_span(len) {
                for other in &allocated {
                    if other.dram_page == s.dram_page {
                        let disjoint = s.offset + s.len <= other.offset
                            || other.offset + other.len <= s.offset;
                        prop_assert!(disjoint, "{:?} overlaps {:?}", s, other);
                    }
                }
                allocated.push(s);
            }
        }
    }

    /// The recency list behaves exactly like a reference LRU sequence.
    #[test]
    fn recency_matches_model(touches in proptest::collection::vec(0u64..32, 1..200)) {
        let mut list = RecencyList::new(32);
        let mut model: Vec<u64> = Vec::new();
        for t in touches {
            list.touch(PageId::new(t));
            model.retain(|&x| x != t);
            model.push(t);
            prop_assert_eq!(list.len(), model.len());
            prop_assert_eq!(list.tail().map(|p| p.index()), model.first().copied());
            prop_assert_eq!(list.head().map(|p| p.index()), model.last().copied());
        }
    }

    /// LRU cache agrees with a reference model on hit/miss (single set,
    /// fully associative).
    #[test]
    fn cache_matches_lru_model(keys in proptest::collection::vec(0u64..64, 1..300)) {
        let mut cache: SetAssocCache = SetAssocCache::new(CacheConfig::lru(8 * 64, 8, 64));
        let mut model: Vec<u64> = Vec::new();
        for key in keys {
            let hit = cache.access(key);
            let model_hit = model.contains(&key);
            prop_assert_eq!(hit, model_hit, "key {}", key);
            if hit {
                model.retain(|&x| x != key);
                model.push(key);
            } else {
                cache.fill(key, false, ());
                if model.len() == 8 {
                    model.remove(0);
                }
                model.push(key);
            }
        }
    }

    /// The group hash maps every OS page to a valid, aligned group, and
    /// slot_of inverts dram_page.
    #[test]
    fn groupmap_inverts(data_pages in 3u64..10_000, page in 0u64..1_000_000) {
        let g = GroupMap::new(data_pages, 3);
        let p = PageId::new(page);
        let base = g.hash(p);
        prop_assert_eq!(base.index() % 3, 0);
        prop_assert!(base.index() + 2 < (data_pages / 3) * 3);
        for s in 0..3u8 {
            prop_assert_eq!(g.slot_of(p, g.dram_page(p, s)), Some(s));
        }
    }

    /// Zipf samples stay in range for arbitrary domains and skews.
    #[test]
    fn zipf_in_range(n in 1u64..100_000, theta in 0.0f64..1.5, seed in any::<u64>()) {
        let z = Zipf::new(n, theta);
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Compressed sizes are stable, quantized, and bounded.
    #[test]
    fn profile_sizes_valid(ratio in 1.0f64..8.0, seed in any::<u64>(), page in any::<u64>()) {
        let p = dylect_compression::CompressibilityProfile::with_mean_ratio("p", ratio);
        let s = p.compressed_bytes(seed, PageId::new(page));
        prop_assert!(s as u64 <= PAGE_BYTES);
        prop_assert!(s >= 256);
        prop_assert_eq!(s % 256, 0);
        prop_assert_eq!(s, p.compressed_bytes(seed, PageId::new(page)));
    }

    /// Workload streams stay inside their footprint for arbitrary seeds.
    #[test]
    fn workload_addresses_in_bounds(seed in any::<u64>()) {
        use dylect_workloads::{SyntheticWorkload, WorkloadParams};
        let mut w = SyntheticWorkload::new(WorkloadParams::demo(), seed);
        let fp = w.params().footprint_pages;
        for _ in 0..200 {
            prop_assert!(w.next_op().vaddr.page().index() < fp);
        }
    }
}
