//! Property-based tests on the core data structures and invariants.
//!
//! These run on the self-contained harness in `dylect_sim_core::check`
//! (the workspace builds offline, so no `proptest`). Each property draws
//! its inputs from a deterministic seeded generator; a failure prints the
//! seed to replay it with `DYLECT_CHECK_SEED=<seed> cargo test`.

use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_compression::{bdi, fpc};
use dylect_core::GroupMap;
use dylect_memctl::freespace::{FreeSpace, Span};
use dylect_memctl::recency::RecencyList;
use dylect_sim_core::check::{forall, DEFAULT_CASES};
use dylect_sim_core::rng::{Rng, Zipf};
use dylect_sim_core::{prop_ensure, prop_ensure_eq, DramPageId, PageId, PAGE_BYTES};

/// FPC round-trips arbitrary word-aligned byte strings.
#[test]
fn fpc_roundtrip() {
    forall("fpc_roundtrip", DEFAULT_CASES, |g| {
        let words = g.vec(1, 127, |g| g.u64() as u32);
        let data: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let bits = fpc::compress(&data);
        prop_ensure_eq!(fpc::decompress(&bits, words.len()), data);
        Ok(())
    });
}

/// BDI round-trips arbitrary 64 B blocks and never inflates.
#[test]
fn bdi_roundtrip() {
    forall("bdi_roundtrip", DEFAULT_CASES, |g| {
        let block = g.vec(64, 64, |g| g.u64() as u8);
        let c = bdi::compress(&block);
        prop_ensure_eq!(&bdi::decompress(&c)[..], &block[..]);
        prop_ensure!(c.encoding.compressed_bytes() <= 64, "inflated block");
        Ok(())
    });
}

/// FreeSpace conserves bytes across arbitrary alloc/free interleavings
/// and re-coalesces completely.
#[test]
fn freespace_conservation() {
    forall("freespace_conservation", DEFAULT_CASES, |g| {
        let ops = g.vec(1, 299, |g| (g.u64() as u16, g.bool()));
        let pages = 8u64;
        let mut fs = FreeSpace::new();
        for i in 0..pages {
            fs.add_page(DramPageId::new(i));
        }
        let total = fs.free_bytes();
        let mut live: Vec<Span> = Vec::new();
        for (x, do_alloc) in ops {
            if do_alloc || live.is_empty() {
                let len = (x as u32 % 4096) + 1;
                if let Some(s) = fs.alloc_span(len) {
                    live.push(s);
                }
            } else {
                let idx = x as usize % live.len();
                fs.free_span(live.swap_remove(idx));
            }
            let live_bytes: u64 = live.iter().map(|s| s.len as u64).sum();
            prop_ensure_eq!(fs.free_bytes() + live_bytes, total);
        }
        for s in live.drain(..) {
            fs.free_span(s);
        }
        prop_ensure_eq!(fs.free_page_count() as u64, pages);
        Ok(())
    });
}

/// Allocated spans never overlap.
#[test]
fn freespace_no_overlap() {
    forall("freespace_no_overlap", DEFAULT_CASES, |g| {
        let lens = g.vec(1, 63, |g| g.range(1, 4095) as u32);
        let mut fs = FreeSpace::new();
        for i in 0..16 {
            fs.add_page(DramPageId::new(i));
        }
        let mut allocated: Vec<Span> = Vec::new();
        for len in lens {
            if let Some(s) = fs.alloc_span(len) {
                for other in &allocated {
                    if other.dram_page == s.dram_page {
                        let disjoint = s.offset + s.len <= other.offset
                            || other.offset + other.len <= s.offset;
                        prop_ensure!(disjoint, "{:?} overlaps {:?}", s, other);
                    }
                }
                allocated.push(s);
            }
        }
        Ok(())
    });
}

/// The recency list behaves exactly like a reference LRU sequence.
#[test]
fn recency_matches_model() {
    forall("recency_matches_model", DEFAULT_CASES, |g| {
        let touches = g.vec(1, 199, |g| g.u64_below(32));
        let mut list = RecencyList::new(32);
        let mut model: Vec<u64> = Vec::new();
        for t in touches {
            list.touch(PageId::new(t));
            model.retain(|&x| x != t);
            model.push(t);
            prop_ensure_eq!(list.len(), model.len());
            prop_ensure_eq!(list.tail().map(|p| p.index()), model.first().copied());
            prop_ensure_eq!(list.head().map(|p| p.index()), model.last().copied());
        }
        Ok(())
    });
}

/// LRU cache agrees with a reference model on hit/miss (single set,
/// fully associative).
#[test]
fn cache_matches_lru_model() {
    forall("cache_matches_lru_model", DEFAULT_CASES, |g| {
        let keys = g.vec(1, 299, |g| g.u64_below(64));
        let mut cache: SetAssocCache = SetAssocCache::new(CacheConfig::lru(8 * 64, 8, 64));
        let mut model: Vec<u64> = Vec::new();
        for key in keys {
            let hit = cache.access(key);
            let model_hit = model.contains(&key);
            prop_ensure_eq!(hit, model_hit);
            if hit {
                model.retain(|&x| x != key);
                model.push(key);
            } else {
                cache.fill(key, false, ());
                if model.len() == 8 {
                    model.remove(0);
                }
                model.push(key);
            }
        }
        Ok(())
    });
}

/// The group hash maps every OS page to a valid, aligned group, and
/// slot_of inverts dram_page.
#[test]
fn groupmap_inverts() {
    forall("groupmap_inverts", DEFAULT_CASES, |g| {
        let data_pages = g.range(3, 9_999);
        let page = g.u64_below(1_000_000);
        let gm = GroupMap::new(data_pages, 3);
        let p = PageId::new(page);
        let base = gm.hash(p);
        prop_ensure_eq!(base.index() % 3, 0);
        prop_ensure!(
            base.index() + 2 < (data_pages / 3) * 3,
            "group base {} beyond {} data pages",
            base.index(),
            data_pages
        );
        for s in 0..3u8 {
            prop_ensure_eq!(gm.slot_of(p, gm.dram_page(p, s)), Some(s));
        }
        Ok(())
    });
}

/// Zipf samples stay in range for arbitrary domains and skews.
#[test]
fn zipf_in_range() {
    forall("zipf_in_range", DEFAULT_CASES, |g| {
        let n = g.range(1, 99_999);
        let theta = g.f64_in(0.0, 1.5);
        let seed = g.u64();
        let z = Zipf::new(n, theta);
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_ensure!(z.sample(&mut rng) < n, "sample out of range");
        }
        Ok(())
    });
}

/// Compressed sizes are stable, quantized, and bounded.
#[test]
fn profile_sizes_valid() {
    forall("profile_sizes_valid", DEFAULT_CASES, |g| {
        let ratio = g.f64_in(1.0, 8.0);
        let seed = g.u64();
        let page = g.u64();
        let p = dylect_compression::CompressibilityProfile::with_mean_ratio("p", ratio);
        let s = p.compressed_bytes(seed, PageId::new(page));
        prop_ensure!(s as u64 <= PAGE_BYTES, "size {s} above PAGE_BYTES");
        prop_ensure!(s >= 256, "size {s} below floor");
        prop_ensure_eq!(s % 256, 0);
        prop_ensure_eq!(s, p.compressed_bytes(seed, PageId::new(page)));
        Ok(())
    });
}

/// Workload streams stay inside their footprint for arbitrary seeds.
#[test]
fn workload_addresses_in_bounds() {
    forall("workload_addresses_in_bounds", DEFAULT_CASES, |g| {
        use dylect_workloads::{SyntheticWorkload, WorkloadParams};
        let seed = g.u64();
        let mut w = SyntheticWorkload::new(WorkloadParams::demo(), seed);
        let fp = w.params().footprint_pages;
        for _ in 0..200 {
            prop_ensure!(
                w.next_op().vaddr.page().index() < fp,
                "address escaped footprint"
            );
        }
        Ok(())
    });
}

/// Random memory-operation streams survive a trace write/read cycle
/// bit-exactly — every field, including `work` and both flag bits.
#[test]
fn trace_roundtrip() {
    forall("trace_roundtrip", DEFAULT_CASES, |g| {
        use dylect_sim_core::trace::MemOp;
        use dylect_sim_core::VirtAddr;
        use dylect_workloads::trace_io::{read_trace, write_trace};
        let ops = g.vec(0, 199, |g| MemOp {
            vaddr: VirtAddr::new(g.u64()),
            work: g.u64() as u16,
            write: g.bool(),
            dep_on_prev: g.bool(),
        });
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).expect("vec write cannot fail");
        prop_ensure_eq!(buf.len(), 16 + ops.len() * 11);
        let back = read_trace(&buf[..]).expect("own output must parse");
        prop_ensure_eq!(back, ops);
        // Truncating anywhere strictly inside the stream must error (the
        // header's count no longer matches the payload), never panic.
        let cut = (g.u64() as usize) % buf.len();
        prop_ensure!(read_trace(&buf[..cut]).is_err(), "truncated trace parsed");
        Ok(())
    });
}

/// The shadow 3C classification exactly partitions the misses of a *real*
/// set-associative cache: compulsory + capacity + conflict == misses, per
/// CTE-block kind and in total, for arbitrary key streams, arbitrary
/// interleavings of pre-gathered and unified lookups, policy-gated fills
/// (`fill_on_miss: false` paths), and recency-only touches.
#[test]
fn shadow_classes_partition_real_cache_misses() {
    use dylect_memctl::CteCacheGeometry;
    use dylect_sim_core::probe::{CteBlockKind, CteOp, CteRecord};
    use dylect_telemetry::McShadow;
    forall(
        "shadow_classes_partition_real_cache_misses",
        DEFAULT_CASES,
        |g| {
            // Small geometry so capacity and conflict misses actually occur.
            let ways = 1 << g.range(0, 3) as u32; // 1, 2, 4, or 8 ways
            let geometry = CteCacheGeometry {
                capacity_bytes: 16 * 64,
                ways,
                block_bytes: 64,
                group_size: 0,
                num_groups: 0,
            };
            let mut cache: SetAssocCache =
                SetAssocCache::new(CacheConfig::lru(geometry.capacity_bytes, ways, 64));
            let mut shadow = McShadow::new(geometry);
            let mut real_hits = [0u64; 2];
            let mut real_misses = [0u64; 2];
            let events = g.vec(1, 499, |g| (g.u64_below(96), g.u64_below(16)));
            for (key, action) in events {
                let kind = if key % 2 == 0 {
                    CteBlockKind::Pregathered
                } else {
                    CteBlockKind::Unified
                };
                let op = if action == 0 {
                    CteOp::Touch
                } else {
                    // The real cache is the source of truth for hit/miss; the
                    // shadow only observes. Every fourth lookup models a
                    // policy-gated path that skips the fill after a miss.
                    let hit = cache.access(key);
                    let fill_on_miss = action % 4 != 1;
                    if hit {
                        real_hits[kind.index()] += 1;
                    } else {
                        real_misses[kind.index()] += 1;
                        if fill_on_miss {
                            cache.fill(key, false, ());
                        }
                    }
                    CteOp::Lookup { hit, fill_on_miss }
                };
                shadow.record(&CteRecord { kind, op, key });
            }
            for kind in CteBlockKind::ALL {
                let c = shadow.classes(kind);
                prop_ensure_eq!(c.real_hits, real_hits[kind.index()]);
                prop_ensure_eq!(c.real_misses, real_misses[kind.index()]);
                prop_ensure!(
                    c.compulsory + c.capacity + c.conflict == c.real_misses,
                    "{}: 3C classes must partition the real misses",
                    kind.name()
                );
            }
            let t = shadow.classes_total();
            prop_ensure_eq!(t.real_misses, real_misses.iter().sum::<u64>());
            prop_ensure_eq!(t.compulsory + t.capacity + t.conflict, t.real_misses);
            Ok(())
        },
    );
}

/// Cycle accounting is conservative by construction: for any component
/// split that fits inside the end-to-end latency, `AccessRecord::new`
/// fills `Other` with exactly the unattributed residual, so the components
/// always sum to the total.
#[test]
fn access_record_conserves_cycles() {
    use dylect_sim_core::probe::{
        AccessComponent, AccessRecord, AccessScope, MemLevel, RequestClass, TranslationPath,
    };
    use dylect_sim_core::Time;
    forall("access_record_conserves_cycles", DEFAULT_CASES, |g| {
        let total = Time::from_ps(g.u64() % 1_000_000_000);
        // Carve random named-component shares out of the total; whatever
        // is left should land in `Other`.
        let mut remaining = total;
        let mut explicit = Time::ZERO;
        let mut parts = Vec::new();
        for &c in &[
            AccessComponent::CacheLookup,
            AccessComponent::CteFetch,
            AccessComponent::Decompression,
            AccessComponent::DramQueue,
            AccessComponent::DramService,
        ] {
            if g.bool() {
                let t = Time::from_ps(g.u64() % (remaining.as_ps() + 1));
                remaining = remaining.saturating_sub(t);
                explicit += t;
                parts.push((c, t));
            }
        }
        let rec = AccessRecord::new(
            AccessScope::Mem,
            RequestClass::Demand,
            MemLevel::Ml1,
            TranslationPath::LongCteHit,
            Time::ZERO,
            total,
            &parts,
        );
        prop_ensure_eq!(rec.attributed(), rec.total);
        prop_ensure_eq!(
            rec.components[AccessComponent::Other.index()],
            total.saturating_sub(explicit)
        );
        Ok(())
    });
}

/// Snapshotting at the warmup/measurement window boundary and restoring
/// onto a fresh system resumes the run *exactly*: across random schemes,
/// compression settings, MC counts, seeds, and window sizes — with
/// telemetry, shadow probing, and span sampling all enabled — the resumed
/// report and the re-serialized telemetry state are byte-identical to the
/// straight-through run's.
#[test]
fn snapshot_at_window_boundary_resumes_exactly() {
    use dylect_sim::{SchemeKind, System, SystemConfig};
    use dylect_sim_core::snap::SnapWriter;
    use dylect_workloads::{BenchmarkSpec, CompressionSetting};

    forall("snapshot_resume", 6, |g| {
        let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
        let scheme = match g.u64_below(4) {
            0 => SchemeKind::NoCompression,
            1 => SchemeKind::tmcc(),
            2 => SchemeKind::NaiveDynamic,
            _ => SchemeKind::dylect(),
        };
        let setting = if g.bool() {
            CompressionSetting::High
        } else {
            CompressionSetting::Low
        };
        let label = scheme.label();
        let mut cfg = SystemConfig::quick(&spec, scheme, setting);
        cfg.memory_controllers = g.range(1, 3) as usize;
        cfg.seed = g.u64();
        let warmup = g.range(500, 4_000);
        let measure = g.range(1_000, 6_000);
        let build = || {
            let mut sys = System::new(cfg.clone(), &spec);
            sys.enable_telemetry(dylect_telemetry::TelemetryConfig {
                epoch_ops: 1_000,
                shadow: true,
                span_sample: 16,
                ..dylect_telemetry::TelemetryConfig::default()
            });
            sys
        };
        let telemetry_bytes = |sys: &mut System| {
            let t = sys.take_telemetry().expect("enabled");
            let mut w = SnapWriter::new();
            t.write_snapshot(&mut w);
            w.into_bytes()
        };
        let mut straight = build();
        let straight_report = straight.run(warmup, measure);
        let snap = build().warm_up_and_snapshot(warmup);
        let mut resumed = build();
        let resumed_report = resumed
            .resume_measurement(&snap, measure)
            .map_err(|e| format!("restore failed ({label}): {e}"))?;
        prop_ensure!(
            straight_report.to_cache_text() == resumed_report.to_cache_text(),
            "resumed run diverged (scheme {}, {} MCs, seed {:#x}, {warmup}+{measure} ops)",
            label,
            cfg.memory_controllers,
            cfg.seed
        );
        prop_ensure!(
            telemetry_bytes(&mut straight) == telemetry_bytes(&mut resumed),
            "telemetry state diverged after restore (scheme {label})"
        );
        Ok(())
    });
}

/// Damaged snapshots are rejected, never UB and never a panic: every
/// truncation and every header corruption is an error, and flipping an
/// arbitrary payload byte either restores cleanly or errors — it must not
/// panic the restore path.
#[test]
fn snapshot_rejects_damage_without_panicking() {
    use dylect_sim::{SchemeKind, System, SystemConfig};
    use dylect_workloads::{BenchmarkSpec, CompressionSetting};

    forall("snapshot_rejection", 6, |g| {
        let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
        let mut cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
        cfg.seed = g.u64();
        let snap = System::new(cfg.clone(), &spec).warm_up_and_snapshot(1_000);
        // Truncation at an arbitrary point.
        let cut = (g.u64() as usize) % snap.len();
        prop_ensure!(
            System::new(cfg.clone(), &spec)
                .restore(&snap[..cut])
                .is_err(),
            "truncation at {cut} of {} accepted",
            snap.len()
        );
        // Header corruption (magic, version, or config fingerprint).
        let mut bad = snap.clone();
        let hdr = (g.u64() as usize) % 13;
        bad[hdr] ^= 1 + (g.u64() as u8 & 0x7f);
        prop_ensure!(
            System::new(cfg.clone(), &spec).restore(&bad).is_err(),
            "corrupt header byte {hdr} accepted"
        );
        // An arbitrary payload flip must not panic (it may legitimately
        // restore if it only changed a free counter value).
        let mut flipped = snap.clone();
        let at = 13 + (g.u64() as usize) % (snap.len() - 13);
        flipped[at] ^= 1 + (g.u64() as u8 & 0x7f);
        let _ = System::new(cfg.clone(), &spec).restore(&flipped);
        // The pristine snapshot still restores.
        System::new(cfg.clone(), &spec)
            .restore(&snap)
            .map_err(|e| format!("pristine snapshot rejected: {e}"))?;
        Ok(())
    });
}

/// The batched single-core retirement path and the per-op path (the one
/// telemetry forces) retire identical streams: across random schemes,
/// compression settings, MC counts, window sizes, and seeds — with shadow
/// probing and span sampling enabled on the per-op side — the two runs
/// produce byte-identical reports.
#[test]
fn batched_and_per_op_retirement_streams_agree() {
    use dylect_sim::{SchemeKind, System, SystemConfig};
    use dylect_workloads::{BenchmarkSpec, CompressionSetting};

    forall("batched_vs_per_op", 6, |g| {
        let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
        let scheme = match g.u64_below(4) {
            0 => SchemeKind::NoCompression,
            1 => SchemeKind::tmcc(),
            2 => SchemeKind::NaiveDynamic,
            _ => SchemeKind::dylect(),
        };
        let setting = if g.bool() {
            CompressionSetting::High
        } else {
            CompressionSetting::Low
        };
        let label = scheme.label();
        let mut cfg = SystemConfig::quick(&spec, scheme, setting);
        cfg.memory_controllers = g.range(1, 3) as usize;
        cfg.seed = g.u64();
        let warmup = g.range(0, 4_000);
        let measure = g.range(1_000, 6_000);
        let run = |telemetry: bool| {
            let mut sys = System::new(cfg.clone(), &spec);
            if telemetry {
                sys.enable_telemetry(dylect_telemetry::TelemetryConfig {
                    epoch_ops: 1_000,
                    shadow: true,
                    span_sample: 16,
                    ..dylect_telemetry::TelemetryConfig::default()
                });
            }
            sys.run(warmup, measure)
        };
        let batched = run(false); // single core + no telemetry = batched path
        let per_op = run(true); // telemetry forces the per-op path
        if batched.to_cache_text() != per_op.to_cache_text() {
            return Err(format!(
                "batched and per-op paths diverged (scheme {}, {} MCs, \
                 seed {:#x}, {warmup}+{measure} ops)",
                label, cfg.memory_controllers, cfg.seed
            ));
        }
        Ok(())
    });
}
