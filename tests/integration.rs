//! End-to-end integration tests across the whole workspace: cores + TLBs +
//! caches + scheme + DRAM, driven by the synthetic benchmarks.

use dylect_sim::{SchemeKind, System, SystemConfig};
use dylect_sim_core::Time;
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn quick(bench: &str, scheme: SchemeKind, setting: CompressionSetting) -> System {
    let spec = BenchmarkSpec::by_name(bench).expect("benchmark in suite");
    let cfg = SystemConfig::quick(&spec, scheme, setting);
    System::new(cfg, &spec)
}

/// Like `quick`, but at a scale small enough that the DRAM floor (8 MiB)
/// does not erase the compression pressure.
fn pressured(bench: &str, scheme: SchemeKind, setting: CompressionSetting) -> System {
    let spec = BenchmarkSpec::by_name(bench).expect("benchmark in suite");
    let mut cfg = SystemConfig::quick(&spec, scheme.clone(), setting);
    cfg.scale = 16;
    cfg.dram_bytes = match scheme {
        SchemeKind::NoCompression => spec.dram_bytes_no_compression(16),
        _ => spec.dram_bytes(setting, 16),
    };
    System::new(cfg, &spec)
}

#[test]
fn every_scheme_runs_every_small_benchmark() {
    for bench in ["omnetpp", "canneal"] {
        for scheme in [
            SchemeKind::NoCompression,
            SchemeKind::tmcc(),
            SchemeKind::dylect(),
            SchemeKind::NaiveDynamic,
        ] {
            let mut sys = quick(bench, scheme.clone(), CompressionSetting::High);
            let r = sys.run(20_000, 20_000);
            assert!(r.instructions > 0, "{bench}/{scheme:?}");
            assert!(r.elapsed > Time::ZERO, "{bench}/{scheme:?}");
        }
    }
}

#[test]
fn full_runs_are_bit_deterministic() {
    let run = || {
        let mut sys = quick("canneal", SchemeKind::dylect(), CompressionSetting::High);
        sys.run(50_000, 50_000)
    };
    let a = run();
    let b = run();
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.dram.total_blocks(), b.dram.total_blocks());
    assert_eq!(a.mc.cte_lookups(), b.mc.cte_lookups());
    assert_eq!(a.occupancy, b.occupancy);
}

#[test]
fn page_census_is_conserved() {
    // Whatever churn happens, every OS page is always in exactly one level.
    let spec = BenchmarkSpec::by_name("omnetpp").unwrap();
    let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    let footprint = spec.footprint_pages(cfg.scale);
    let mut sys = System::new(cfg, &spec);
    for _ in 0..5 {
        sys.execute(20_000);
        let o = sys.shared().scheme().occupancy();
        assert!(o.ml0_pages + o.ml1_pages + o.ml2_pages >= footprint);
    }
}

#[test]
fn compression_pressure_keeps_pages_compressed() {
    let mut sys = pressured("omnetpp", SchemeKind::tmcc(), CompressionSetting::High);
    let r = sys.run(50_000, 50_000);
    assert!(
        r.occupancy.ml2_pages > r.occupancy.ml1_pages,
        "high compression should keep most pages in ML2: {:?}",
        r.occupancy
    );
}

#[test]
fn low_pressure_decompresses_more_than_high() {
    let low = pressured("canneal", SchemeKind::dylect(), CompressionSetting::Low)
        .run(80_000, 20_000)
        .occupancy;
    let high = pressured("canneal", SchemeKind::dylect(), CompressionSetting::High)
        .run(80_000, 20_000)
        .occupancy;
    assert!(
        low.ml0_pages + low.ml1_pages > high.ml0_pages + high.ml1_pages,
        "low {low:?} vs high {high:?}"
    );
}

#[test]
fn cte_traffic_exists_only_for_compressed_schemes() {
    use dylect_dram::RequestClass;
    let nc = quick(
        "omnetpp",
        SchemeKind::NoCompression,
        CompressionSetting::High,
    )
    .run(20_000, 20_000);
    assert_eq!(nc.dram.class_blocks(RequestClass::CteFetch), 0);
    let tm = quick("omnetpp", SchemeKind::tmcc(), CompressionSetting::High).run(20_000, 20_000);
    assert!(tm.dram.class_blocks(RequestClass::CteFetch) > 0);
}

#[test]
fn energy_accumulates_with_time() {
    let r = quick("omnetpp", SchemeKind::tmcc(), CompressionSetting::High).run(20_000, 40_000);
    assert!(r.energy.total() > 0.0);
    assert!(r.energy.background > 0.0);
    assert!(r.energy_per_instruction_nj() > 0.0);
}

#[test]
fn tlb_misses_are_rare_under_huge_pages() {
    let r = quick(
        "canneal",
        SchemeKind::NoCompression,
        CompressionSetting::Low,
    )
    .run(100_000, 100_000);
    assert!(
        r.tlb_miss_rate < 0.05,
        "huge pages should nearly eliminate TLB misses: {}",
        r.tlb_miss_rate
    );
}

#[test]
fn report_ratios_are_consistent() {
    let r = quick("omnetpp", SchemeKind::dylect(), CompressionSetting::High).run(30_000, 30_000);
    let hit = r.mc.cte_hit_rate();
    assert!((0.0..=1.0).contains(&hit));
    let split = r.mc.pregathered_hit_rate() + r.mc.unified_hit_rate();
    assert!((split - hit).abs() < 1e-9, "split {split} != hit {hit}");
    assert!(r.bus_utilization() <= 1.0 + 1e-9);
}
