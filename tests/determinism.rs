//! Determinism guarantees of the simulator and the experiment runner.
//!
//! The parallel runner is only allowed to exist because every simulation
//! is a pure function of its `RunKey`: these tests pin (1) run-to-run
//! determinism of `System::run`, (2) byte-equality of parallel vs
//! sequential matrix execution, and (3) exact report round-tripping
//! through the on-disk cache format.

use dylect_bench::{Mode, RunKey, Runner};
use dylect_sim::{RunReport, SchemeKind, System, SystemConfig};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

/// A tiny mode so the whole file runs in seconds.
fn tiny_mode() -> Mode {
    Mode {
        scale: 512,
        cores: 1,
        warmup_ops: 20_000,
        measure_ops: 5_000,
    }
}

/// A 2x2 matrix (scheme x setting) on one benchmark.
fn tiny_matrix() -> Vec<RunKey> {
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mut keys = Vec::new();
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        for scheme in [SchemeKind::tmcc(), SchemeKind::dylect()] {
            keys.push(RunKey::new(spec.clone(), scheme, setting, tiny_mode()));
        }
    }
    keys
}

#[test]
fn identical_runs_produce_identical_reports() {
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    let run = || {
        let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
        System::new(cfg, &spec).run(mode.warmup_ops, mode.measure_ops)
    };
    assert_eq!(run(), run(), "System::run must be deterministic");
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    // Telemetry is observation-only: a run with sampling, event probes,
    // per-access latency attribution, and span sampling all enabled must
    // produce the byte-identical RunReport of a run without any of them.
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    let run = |telemetry: bool| {
        let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
        let mut sys = System::new(cfg, &spec);
        if telemetry {
            sys.enable_telemetry(dylect_telemetry::TelemetryConfig {
                epoch_ops: 1_000, // sample aggressively to maximize exposure
                span_sample: 16,  // sample spans aggressively too
                ..dylect_telemetry::TelemetryConfig::default()
            });
        }
        sys.run(mode.warmup_ops, mode.measure_ops)
    };
    let plain = run(false);
    let observed = run(true);
    assert_eq!(
        plain.to_cache_text(),
        observed.to_cache_text(),
        "telemetry changed the simulated run"
    );
}

#[test]
fn shadow_probing_does_not_perturb_the_simulation() {
    // Shadow CTE caches, miss classification, and page provenance are all
    // counterfactual bookkeeping: turning them on must leave the simulated
    // run byte-identical.
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    let run = |shadow: bool| {
        let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
        let mut sys = System::new(cfg, &spec);
        if shadow {
            sys.enable_telemetry(dylect_telemetry::TelemetryConfig {
                shadow: true,
                span_sample: 16,
                ..dylect_telemetry::TelemetryConfig::default()
            });
        }
        sys.run(mode.warmup_ops, mode.measure_ops)
    };
    assert_eq!(
        run(false).to_cache_text(),
        run(true).to_cache_text(),
        "shadow probing changed the simulated run"
    );
}

#[test]
fn shadow_exports_are_deterministic() {
    // Two identical runs with shadows + provenance enabled must write
    // byte-identical telemetry exports — the property `tools/verify.sh`
    // smoke-checks end-to-end via `dylect-stats diff`.
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    let export = |tag: &str| {
        let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
        let mut sys = System::new(cfg, &spec);
        sys.enable_telemetry(dylect_telemetry::TelemetryConfig {
            shadow: true,
            span_sample: 16,
            ..dylect_telemetry::TelemetryConfig::default()
        });
        sys.run(mode.warmup_ops, mode.measure_ops);
        let telemetry = sys.take_telemetry().expect("enabled above");
        let dir =
            std::env::temp_dir().join(format!("dylect-shadow-det-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = telemetry
            .export_to(&dir.join("omnetpp-dylect"))
            .expect("export writes");
        assert!(
            paths.iter().any(|p| p
                .file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(".shadow.jsonl"))),
            "shadow export missing from {paths:?}"
        );
        let contents: Vec<(String, String)> = paths
            .iter()
            .map(|p| {
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read_to_string(p).expect("export readable"),
                )
            })
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        contents
    };
    let a = export("a");
    let b = export("b");
    assert_eq!(a.len(), b.len());
    for ((name_a, body_a), (name_b, body_b)) in a.iter().zip(&b) {
        assert_eq!(name_a, name_b);
        assert_eq!(body_a, body_b, "{name_a} differs between identical runs");
    }
}

#[test]
fn worker_count_never_changes_reports() {
    // Intra-run sharding is an execution detail: with multiple memory
    // controllers, `System::set_jobs` only decides which thread applies
    // each MC's (FIFO) writeback queue at a batch boundary. Reports must
    // be byte-identical for every worker count.
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    let run = |jobs: usize| {
        let mut cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
        cfg.memory_controllers = 4;
        let mut sys = System::new(cfg, &spec);
        sys.set_jobs(jobs);
        sys.run(mode.warmup_ops, mode.measure_ops)
    };
    let sequential = run(1);
    for jobs in [2, 4, 9] {
        assert_eq!(
            sequential.to_cache_text(),
            run(jobs).to_cache_text(),
            "{jobs} drain workers changed the simulated run"
        );
    }
}

#[test]
fn worker_count_never_changes_exported_bytes() {
    // Same invariant end-to-end through the telemetry exporter: worker
    // count must leave every exported artifact (.jsonl, .shadow.jsonl)
    // byte-identical. (With probes installed the drain is sequential by
    // construction; this pins the user-facing promise regardless.)
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    let export = |jobs: usize| {
        let mut cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
        cfg.memory_controllers = 2;
        let mut sys = System::new(cfg, &spec);
        sys.set_jobs(jobs);
        sys.enable_telemetry(dylect_telemetry::TelemetryConfig {
            shadow: true,
            span_sample: 16,
            ..dylect_telemetry::TelemetryConfig::default()
        });
        sys.run(mode.warmup_ops, mode.measure_ops);
        let telemetry = sys.take_telemetry().expect("enabled above");
        let dir =
            std::env::temp_dir().join(format!("dylect-jobs-det-{}-{jobs}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = telemetry
            .export_to(&dir.join("omnetpp-dylect"))
            .expect("export writes");
        let contents: Vec<(String, String)> = paths
            .iter()
            .map(|p| {
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read_to_string(p).expect("export readable"),
                )
            })
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        contents
    };
    let sequential = export(1);
    for jobs in [2, 8] {
        let parallel = export(jobs);
        assert_eq!(sequential.len(), parallel.len());
        for ((name_a, body_a), (name_b, body_b)) in sequential.iter().zip(&parallel) {
            assert_eq!(name_a, name_b);
            assert_eq!(body_a, body_b, "{name_a} differs with {jobs} workers");
        }
    }
}

#[test]
fn snapshot_restore_pins_reports_and_exports_for_every_scheme() {
    // The checkpoint/restore contract: warming up, snapshotting, and
    // resuming the measurement on a *fresh* system must be byte-identical
    // to the straight-through run — in the report cache text AND in every
    // exported telemetry artifact (.jsonl, .shadow.jsonl) — for all three
    // compressing schemes and for every drain worker count.
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    let telemetry_cfg = dylect_telemetry::TelemetryConfig {
        shadow: true,
        span_sample: 16,
        ..dylect_telemetry::TelemetryConfig::default()
    };
    let export = |mut sys: System, tag: &str| -> Vec<(String, String)> {
        let telemetry = sys.take_telemetry().expect("enabled");
        let dir =
            std::env::temp_dir().join(format!("dylect-snap-det-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = telemetry
            .export_to(&dir.join("omnetpp"))
            .expect("export writes");
        let contents = paths
            .iter()
            .map(|p| {
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read_to_string(p).expect("export readable"),
                )
            })
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        contents
    };
    for scheme in [
        SchemeKind::tmcc(),
        SchemeKind::dylect(),
        SchemeKind::NaiveDynamic,
    ] {
        for jobs in [1usize, 3] {
            let label = format!("{}/jobs={jobs}", scheme.label());
            let build = || {
                let mut cfg = SystemConfig::quick(&spec, scheme.clone(), CompressionSetting::High);
                cfg.memory_controllers = 2;
                let mut sys = System::new(cfg, &spec);
                sys.set_jobs(jobs);
                sys.enable_telemetry(telemetry_cfg);
                sys
            };
            let mut straight = build();
            let r_straight = straight.run(mode.warmup_ops, mode.measure_ops);
            let snap = build().warm_up_and_snapshot(mode.warmup_ops);
            let mut resumed = build();
            let r_resumed = resumed
                .resume_measurement(&snap, mode.measure_ops)
                .expect("same-config restore succeeds");
            assert_eq!(
                r_straight.to_cache_text(),
                r_resumed.to_cache_text(),
                "{label}: resumed report differs from straight-through"
            );
            let e_straight = export(straight, &format!("s-{jobs}-{}", scheme.label()));
            let e_resumed = export(resumed, &format!("r-{jobs}-{}", scheme.label()));
            assert_eq!(
                e_straight.len(),
                e_resumed.len(),
                "{label}: export sets differ"
            );
            for ((name_a, body_a), (name_b, body_b)) in e_straight.iter().zip(&e_resumed) {
                assert_eq!(name_a, name_b, "{label}");
                assert_eq!(body_a, body_b, "{label}: {name_a} differs after restore");
            }
        }
    }
}

#[test]
fn host_profiling_never_leaks_into_reports_or_exports() {
    // The dual-clock invariant: the host self-profiler reads wall clocks
    // and writes only its own global registry, so running with profiling
    // armed must be byte-identical to running with it off — in the report
    // cache text AND in every exported telemetry artifact (.jsonl,
    // .shadow.jsonl) — for all three compressing schemes and for every
    // drain worker count. Profiling is toggled programmatically (not via
    // DYLECT_PROF) so the test owns no environment state.
    use dylect_sim_core::prof;
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    let telemetry_cfg = dylect_telemetry::TelemetryConfig {
        shadow: true,
        span_sample: 16,
        ..dylect_telemetry::TelemetryConfig::default()
    };
    let export = |mut sys: System, tag: &str| -> Vec<(String, String)> {
        let telemetry = sys.take_telemetry().expect("enabled");
        let dir =
            std::env::temp_dir().join(format!("dylect-prof-det-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = telemetry
            .export_to(&dir.join("omnetpp"))
            .expect("export writes");
        let contents = paths
            .iter()
            .map(|p| {
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read_to_string(p).expect("export readable"),
                )
            })
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        contents
    };
    for scheme in [
        SchemeKind::tmcc(),
        SchemeKind::dylect(),
        SchemeKind::NaiveDynamic,
    ] {
        for jobs in [1usize, 3] {
            let label = format!("{}/jobs={jobs}", scheme.label());
            let run_with = |prof_on: bool, tag: &str| {
                let mut cfg = SystemConfig::quick(&spec, scheme.clone(), CompressionSetting::High);
                cfg.memory_controllers = 2;
                let mut sys = System::new(cfg, &spec);
                sys.set_jobs(jobs);
                sys.enable_telemetry(telemetry_cfg);
                prof::set_enabled(prof_on);
                if prof_on {
                    prof::reset();
                }
                let report = sys.run(mode.warmup_ops, mode.measure_ops);
                prof::set_enabled(false);
                (report.to_cache_text(), export(sys, tag))
            };
            let (r_off, e_off) = run_with(false, &format!("off-{jobs}-{}", scheme.label()));
            let (r_on, e_on) = run_with(true, &format!("on-{jobs}-{}", scheme.label()));
            assert_eq!(
                r_off, r_on,
                "{label}: profiling changed the report cache text"
            );
            assert_eq!(e_off.len(), e_on.len(), "{label}: export sets differ");
            for ((name_a, body_a), (name_b, body_b)) in e_off.iter().zip(&e_on) {
                assert_eq!(name_a, name_b, "{label}");
                assert_eq!(
                    body_a, body_b,
                    "{label}: {name_a} differs with profiling armed"
                );
            }
        }
    }
}

#[test]
fn zero_op_snapshot_round_trips_and_resumes_exactly() {
    // Degenerate checkpoint: snapshot after *zero* warmup ops. The wire
    // format must still round-trip through SnapReader (cold caches, empty
    // FIFOs, zeroed stats), and resuming the measurement from it must be
    // byte-identical to a straight run with no warmup.
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    let build = || {
        let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
        System::new(cfg, &spec)
    };
    let snap = build().warm_up_and_snapshot(0);
    assert!(!snap.is_empty(), "zero-op snapshot still carries state");
    let r_resumed = build()
        .resume_measurement(&snap, mode.measure_ops)
        .expect("zero-op snapshot restores");
    let r_straight = build().run(0, mode.measure_ops);
    assert_eq!(
        r_straight.to_cache_text(),
        r_resumed.to_cache_text(),
        "zero-op resume differs from a straight no-warmup run"
    );
}

#[test]
fn state_digests_never_leak_into_reports_or_exports() {
    // Digest capture hashes every state component through its `Snapshot`
    // traversal at window boundaries — reads only, so running with
    // digests armed must be byte-identical to running with them off, in
    // the report cache text AND in every exported telemetry artifact
    // (.jsonl, .shadow.jsonl), for all three compressing schemes and for
    // every drain worker count. The window is shrunk per system so the
    // tiny runs actually cross boundaries (the capture path runs, not
    // just the tick), and capture is toggled programmatically (not via
    // DYLECT_DIGEST) so the test owns no environment state.
    use dylect_sim_core::digest;
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    let telemetry_cfg = dylect_telemetry::TelemetryConfig {
        shadow: true,
        span_sample: 16,
        ..dylect_telemetry::TelemetryConfig::default()
    };
    let export = |mut sys: System, tag: &str| -> Vec<(String, String)> {
        let telemetry = sys.take_telemetry().expect("enabled");
        let dir =
            std::env::temp_dir().join(format!("dylect-digest-det-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = telemetry
            .export_to(&dir.join("omnetpp"))
            .expect("export writes");
        let contents = paths
            .iter()
            .map(|p| {
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read_to_string(p).expect("export readable"),
                )
            })
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        contents
    };
    for scheme in [
        SchemeKind::tmcc(),
        SchemeKind::dylect(),
        SchemeKind::NaiveDynamic,
    ] {
        for jobs in [1usize, 3] {
            let label = format!("{}/jobs={jobs}", scheme.label());
            let run_with = |digest_on: bool, tag: &str| {
                let mut cfg = SystemConfig::quick(&spec, scheme.clone(), CompressionSetting::High);
                cfg.memory_controllers = 2;
                let mut sys = System::new(cfg, &spec);
                sys.set_digest_window(4096);
                sys.set_jobs(jobs);
                sys.enable_telemetry(telemetry_cfg);
                digest::set_enabled(digest_on);
                let report = sys.run(mode.warmup_ops, mode.measure_ops);
                digest::set_enabled(false);
                let digests = sys.take_digests();
                if digest_on {
                    assert!(
                        !digests.is_empty(),
                        "{label}: no windows captured — the pin would be vacuous"
                    );
                } else {
                    assert!(digests.is_empty(), "{label}: captured while disabled");
                }
                (report.to_cache_text(), export(sys, tag))
            };
            let (r_off, e_off) = run_with(false, &format!("off-{jobs}-{}", scheme.label()));
            let (r_on, e_on) = run_with(true, &format!("on-{jobs}-{}", scheme.label()));
            assert_eq!(
                r_off, r_on,
                "{label}: digests changed the report cache text"
            );
            assert_eq!(e_off.len(), e_on.len(), "{label}: export sets differ");
            for ((name_a, body_a), (name_b, body_b)) in e_off.iter().zip(&e_on) {
                assert_eq!(name_a, name_b, "{label}");
                assert_eq!(
                    body_a, body_b,
                    "{label}: {name_a} differs with digests armed"
                );
            }
        }
    }
}

#[test]
fn attribution_conserves_cycles_for_every_scheme() {
    // Aggregate conservation: for each scheme and each scope, the summed
    // per-component cycle totals must equal the summed end-to-end latency
    // across all histograms (every record's components sum to its total,
    // so the aggregates must match exactly). Also pins that spans were
    // actually sampled and attribution saw traffic.
    use dylect_sim_core::probe::{AccessComponent, AccessScope};
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    for scheme in [
        SchemeKind::NoCompression,
        SchemeKind::tmcc(),
        SchemeKind::NaiveDynamic,
        SchemeKind::dylect(),
    ] {
        let label = scheme.label();
        let cfg = SystemConfig::quick(&spec, scheme, CompressionSetting::High);
        let mut sys = System::new(cfg, &spec);
        sys.enable_telemetry(dylect_telemetry::TelemetryConfig {
            span_sample: 16,
            ..dylect_telemetry::TelemetryConfig::default()
        });
        sys.run(mode.warmup_ops, mode.measure_ops);
        let telemetry = sys.take_telemetry().expect("enabled above");
        let a = telemetry.attribution();
        assert!(!a.is_empty(), "{label}: no accesses attributed");
        for scope in AccessScope::ALL {
            let components_ps: u64 = AccessComponent::ALL
                .iter()
                .map(|&c| a.component_total(scope, c).as_ps())
                .sum();
            let hists_ps: u64 = a
                .histograms()
                .iter()
                .filter(|((s, ..), _)| *s == scope)
                .map(|(_, h)| h.sum().as_ps())
                .sum();
            assert_eq!(
                components_ps,
                hists_ps,
                "{label}/{}: component totals diverge from histogram totals",
                scope.name()
            );
        }
        assert!(
            !a.spans().is_empty(),
            "{label}: span sampling produced nothing"
        );
    }
}

#[test]
fn parallel_matrix_matches_sequential() {
    // No cache dir: both runners simulate everything from scratch.
    let parallel = Runner::with(4, None, false).run_matrix(tiny_matrix());
    let sequential = Runner::with(1, None, false).run_matrix(tiny_matrix());
    assert_eq!(parallel.len(), sequential.len());
    for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
        assert_eq!(p, s, "run {i} differs between parallel and sequential");
    }
}

#[test]
fn cache_text_round_trip_is_exact() {
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    let report = RunKey::new(spec, SchemeKind::dylect(), CompressionSetting::High, mode).execute();
    let decoded =
        RunReport::from_cache_text(&report.to_cache_text()).expect("cache text parses back");
    assert_eq!(decoded, report, "cache round trip must be bit-exact");
}

#[test]
fn cached_rerun_reuses_reports_byte_for_byte() {
    let dir = std::env::temp_dir().join(format!("dylect-cache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = Runner::with(2, Some(dir.clone()), true).run_matrix(tiny_matrix());
    let entries = std::fs::read_dir(&dir).expect("cache dir created").count();
    assert_eq!(entries, cold.len(), "one cache file per distinct run");

    let warm = Runner::with(2, Some(dir.clone()), true).run_matrix(tiny_matrix());
    assert_eq!(cold, warm, "cache hits must reproduce the cold run exactly");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scenario_runs_are_deterministic_across_jobs_and_resume() {
    // The datacenter scenario subsystem inherits every determinism
    // guarantee: a multi-tenant run — with and without 2D nested walks,
    // with phase-churn and memory-pressure events firing mid-window —
    // must be byte-identical for every drain worker count AND under
    // snapshot→restore resume (events re-fire at the same boundaries),
    // including every exported telemetry artifact.
    use dylect_scenario::ScenarioSpec;
    let mode = tiny_mode();
    let telemetry_cfg = dylect_telemetry::TelemetryConfig {
        shadow: true,
        span_sample: 16,
        ..dylect_telemetry::TelemetryConfig::default()
    };
    let export = |mut sys: System, tag: &str| -> Vec<(String, String)> {
        let telemetry = sys.take_telemetry().expect("enabled");
        let dir =
            std::env::temp_dir().join(format!("dylect-scen-det-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = telemetry
            .export_to(&dir.join("scenario"))
            .expect("export writes");
        let contents = paths
            .iter()
            .map(|p| {
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read_to_string(p).expect("export readable"),
                )
            })
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        contents
    };
    for nested in [false, true] {
        let raw = format!(
            "tenants=omnetpp,canneal;nested={};phase@1024=theta:0.2,hot:0.8;pressure@2048=128",
            nested as u8
        );
        let scenario = ScenarioSpec::parse(&raw).expect("valid spec");
        let build = |jobs: usize| {
            let first = BenchmarkSpec::by_name("omnetpp").expect("in suite");
            let base = SystemConfig::quick(&first, SchemeKind::dylect(), CompressionSetting::High);
            let mut cfg = scenario.configure(base, CompressionSetting::High);
            cfg.memory_controllers = 2;
            let mut sys = scenario.build_system(cfg);
            sys.set_jobs(jobs);
            sys.enable_telemetry(telemetry_cfg);
            sys
        };
        let label = format!("nested={nested}");

        let mut s1 = build(1);
        let o1 = scenario.run(&mut s1, mode.warmup_ops, mode.measure_ops);
        let mut s3 = build(3);
        let o3 = scenario.run(&mut s3, mode.warmup_ops, mode.measure_ops);
        assert_eq!(o1, o3, "{label}: worker count changed the scenario run");
        assert_eq!(
            o1.report.to_cache_text(),
            o3.report.to_cache_text(),
            "{label}: cache text differs across worker counts"
        );

        let snap = build(1).warm_up_and_snapshot(mode.warmup_ops);
        let mut sr = build(3);
        let or = scenario
            .resume(&mut sr, &snap, mode.measure_ops)
            .expect("scenario snapshot restores");
        assert_eq!(o1, or, "{label}: resumed scenario differs from straight");

        let e1 = export(s1, &format!("s-{nested}"));
        let e3 = export(s3, &format!("j-{nested}"));
        let er = export(sr, &format!("r-{nested}"));
        assert_eq!(e1.len(), e3.len(), "{label}: export sets differ");
        assert_eq!(e1.len(), er.len(), "{label}: export sets differ");
        for (a, b) in e1.iter().zip(&e3) {
            assert_eq!(a.0, b.0, "{label}");
            assert_eq!(a.1, b.1, "{label}: {} differs with 3 workers", a.0);
        }
        for (a, b) in e1.iter().zip(&er) {
            assert_eq!(a.0, b.0, "{label}");
            assert_eq!(a.1, b.1, "{label}: {} differs after restore", a.0);
        }
    }
}

#[test]
fn solo_scenario_run_matches_the_plain_single_process_run() {
    // With one tenant, no events, and nested off, the scenario path must
    // construct and run exactly the machine `System::new` builds — same
    // seeds, layout, scheme — so turning the subsystem "off" provably
    // changes nothing.
    use dylect_scenario::ScenarioSpec;
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let mode = tiny_mode();
    let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    let plain = System::new(cfg.clone(), &spec).run(mode.warmup_ops, mode.measure_ops);
    let scenario = ScenarioSpec::solo("omnetpp").expect("in suite");
    let outcome = scenario.run(
        &mut scenario.build_system(cfg),
        mode.warmup_ops,
        mode.measure_ops,
    );
    assert_eq!(
        plain.to_cache_text(),
        outcome.report.to_cache_text(),
        "solo scenario must reproduce the plain run byte-identically"
    );
}
