//! Cross-scheme ordering properties: relationships the paper's argument
//! depends on, checked end-to-end on small configurations.

use dylect_sim::{RunReport, SchemeKind, System, SystemConfig};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn run(bench: &str, scheme: SchemeKind, setting: CompressionSetting) -> RunReport {
    let spec = BenchmarkSpec::by_name(bench).expect("benchmark in suite");
    // Scale 16 keeps enough footprint (vs the 8 MiB DRAM floor) that
    // compression pressure and CTE-cache pressure are both real.
    let mut cfg = SystemConfig::quick(&spec, scheme.clone(), setting);
    cfg.scale = 16;
    cfg.dram_bytes = match scheme {
        SchemeKind::NoCompression => spec.dram_bytes_no_compression(16),
        _ => spec.dram_bytes(setting, 16),
    };
    let mut sys = System::new(cfg, &spec);
    sys.run(500_000, 150_000)
}

#[test]
fn no_compression_is_fastest() {
    let base = run(
        "canneal",
        SchemeKind::NoCompression,
        CompressionSetting::High,
    );
    for scheme in [SchemeKind::tmcc(), SchemeKind::dylect()] {
        let r = run("canneal", scheme.clone(), CompressionSetting::High);
        assert!(
            r.speedup_over(&base) < 1.02,
            "{scheme:?} should not beat the bigger uncompressed system"
        );
    }
}

#[test]
fn always_hit_bounds_dylect() {
    let dylect = run("canneal", SchemeKind::dylect(), CompressionSetting::High);
    let upper = run(
        "canneal",
        SchemeKind::DylectAlwaysHit { group_size: 3 },
        CompressionSetting::High,
    );
    assert!(
        upper.mc.cte_hit_rate() >= dylect.mc.cte_hit_rate() - 1e-9,
        "upper bound must not have a lower hit rate"
    );
    assert!(
        dylect.speedup_over(&upper) < 1.05,
        "dylect cannot meaningfully beat its own upper bound"
    );
}

#[test]
fn dylect_hit_rate_beats_tmcc() {
    // Needs a CTE table comfortably larger than the 128 KB CTE cache for
    // the hit-rate gap to be visible: scale 8 gives canneal a ~280 KB table.
    let run8 = |scheme: SchemeKind| {
        let spec = BenchmarkSpec::by_name("canneal").unwrap();
        let mut cfg = SystemConfig::quick(&spec, scheme.clone(), CompressionSetting::High);
        cfg.scale = 8;
        cfg.dram_bytes = spec.dram_bytes(CompressionSetting::High, 8);
        System::new(cfg, &spec).run(800_000, 200_000)
    };
    let tmcc = run8(SchemeKind::tmcc());
    let dylect = run8(SchemeKind::dylect());
    assert!(
        dylect.mc.cte_hit_rate() > tmcc.mc.cte_hit_rate(),
        "dylect {:.3} vs tmcc {:.3}",
        dylect.mc.cte_hit_rate(),
        tmcc.mc.cte_hit_rate()
    );
    assert!(dylect.mc.pregathered_hit_rate() > 0.0);
}

#[test]
fn low_compression_is_not_slower_than_high() {
    let low = run("canneal", SchemeKind::tmcc(), CompressionSetting::Low);
    let high = run("canneal", SchemeKind::tmcc(), CompressionSetting::High);
    assert!(
        low.speedup_over(&high) > 0.95,
        "more DRAM should not hurt: low {:.3e} vs high {:.3e}",
        low.ips(),
        high.ips()
    );
}

#[test]
fn bigger_cte_cache_does_not_hurt_tmcc() {
    let small = run(
        "canneal",
        SchemeKind::Tmcc {
            granule_pages: 1,
            cte_cache_bytes: 32 * 1024,
        },
        CompressionSetting::High,
    );
    let big = run(
        "canneal",
        SchemeKind::Tmcc {
            granule_pages: 1,
            cte_cache_bytes: 512 * 1024,
        },
        CompressionSetting::High,
    );
    assert!(
        big.mc.cte_hit_rate() >= small.mc.cte_hit_rate() - 0.02,
        "bigger cache lost hits: {:.3} -> {:.3}",
        small.mc.cte_hit_rate(),
        big.mc.cte_hit_rate()
    );
}

#[test]
fn coarse_granularity_trades_reach_for_bandwidth() {
    let fine = run("omnetpp", SchemeKind::tmcc(), CompressionSetting::High);
    let coarse = run(
        "omnetpp",
        SchemeKind::Tmcc {
            granule_pages: 16,
            cte_cache_bytes: 128 * 1024,
        },
        CompressionSetting::High,
    );
    // Coarse granules move strictly more migration bytes per expansion.
    let mig = |r: &RunReport| {
        r.dram.class_blocks(dylect_dram::RequestClass::Migration) as f64
            / r.mc.expansions.get().max(1) as f64
    };
    assert!(
        mig(&coarse) > mig(&fine),
        "coarse {:.0} vs fine {:.0} migration blocks/expansion",
        mig(&coarse),
        mig(&fine)
    );
}
