//! The `dylect-serve` persistent results service.
//!
//! A std-only HTTP/1.1 server over the runner's on-disk artifacts: the
//! report cache (`results/cache/*.report`) and the telemetry exports
//! (`results/*.jsonl`, including `*.shadow.jsonl`). No external crate, no
//! async runtime — a [`std::net::TcpListener`], a small fixed worker pool,
//! and bounded request parsing.
//!
//! Routes (all `GET`):
//!
//! - `/healthz` — liveness; `200 ok`.
//! - `/figures` — one artifact name per line, sorted: every `*.report`
//!   under `cache/` plus every `*.jsonl` in the results root.
//! - `/figure/<name>` — the artifact's bytes, verbatim.
//! - `/diff?a=<name>&b=<name>` — compares two artifacts with the
//!   `dylect-stats` tolerance machinery. The CLI's exit conventions map
//!   onto statuses: identical within tolerance → `200`, a shared metric
//!   drifted → `409 Conflict`, only missing metrics/rows →
//!   `422 Unprocessable Content`.
//! - `/runs` — live sweep progress: one line per runner job, from the
//!   progress markers the runner drops under `<root>/progress/`.
//! - `/metrics` — Prometheus text exposition: request counters, this
//!   process's host self-profiler phase series, run-progress gauges, and
//!   per-tenant slowdown gauges from `fig_tenants` exports
//!   (`*.tenants.jsonl`).
//!
//! Artifact names are confined to `[A-Za-z0-9._-]` and may not begin with
//! a dot, so a request can never escape the results directory.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dylect_sim_core::prof;
use dylect_telemetry::diff::{diff, load, outcome, Tolerance};
use dylect_telemetry::export::parse_flat_object;

/// Hard bound on the bytes read from one request (header included);
/// anything longer is rejected with `431` before parsing.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Workers accepting connections concurrently. Requests are tiny and
/// file-backed, so a handful of blocking threads is plenty.
pub const WORKERS: usize = 4;

/// Address the server binds when `DYLECT_SERVE_ADDR` is unset. Port 0
/// asks the OS for an ephemeral port; the bound address is printed on
/// startup either way.
pub const DEFAULT_ADDR: &str = "127.0.0.1:8377";

/// Parses a `DYLECT_SERVE_ADDR` value: unset is `Ok(None)` (the caller
/// binds [`DEFAULT_ADDR`]), a socket address like `127.0.0.1:0` is
/// `Ok(Some(addr))`, and anything else is a usage error — a typo must
/// fail loudly, not silently serve on the wrong interface.
pub fn parse_serve_addr(raw: Option<&str>) -> Result<Option<SocketAddr>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    raw.trim().parse().map(Some).map_err(|_| {
        format!(
            "DYLECT_SERVE_ADDR must be a socket address like 127.0.0.1:8377 \
             (port 0 for ephemeral), got `{raw}`"
        )
    })
}

/// Whether `name` is a safe artifact name: non-empty, at most 128 bytes,
/// only `[A-Za-z0-9._-]`, and not starting with a dot (no hidden files,
/// and `.`/`..` cannot appear; `/` is outside the set, so neither can a
/// path separator).
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// One HTTP response: status, reason, and a text body.
#[derive(Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always `text/plain; charset=utf-8`).
    pub body: String,
}

impl Response {
    fn new(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            422 => "Unprocessable Content",
            431 => "Request Header Fields Too Large",
            _ => "Internal Server Error",
        }
    }

    /// Serializes the response onto the wire.
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.status,
            self.reason(),
            self.body.len(),
            self.body
        )
    }
}

/// Status codes the service emits, each with its own request counter; any
/// other status lands in the final catch-all slot.
const COUNTED_CODES: [u16; 7] = [200, 400, 404, 405, 409, 422, 431];
static REQUEST_COUNTS: [AtomicU64; 8] = [const { AtomicU64::new(0) }; 8];

/// Bumps the request counter for `status` (called once per connection).
pub fn count_request(status: u16) {
    let slot = COUNTED_CODES
        .iter()
        .position(|&c| c == status)
        .unwrap_or(COUNTED_CODES.len());
    REQUEST_COUNTS[slot].fetch_add(1, Ordering::Relaxed);
}

/// One run-progress marker parsed back from `<root>/progress/*.run.json`.
struct RunProgress {
    run: String,
    state: String,
    /// Worker id, when the marker carries one. `None` renders as `?` —
    /// defaulting to 0 would silently merge unattributed runs into worker
    /// 0's row.
    wid: Option<f64>,
    secs: Option<f64>,
}

/// Reads every progress marker the runner has dropped, sorted by run
/// label. Unparseable files are skipped: progress is best-effort
/// observability, never an error source.
fn read_progress(root: &Path) -> Vec<RunProgress> {
    let mut runs = Vec::new();
    let Ok(entries) = std::fs::read_dir(root.join("progress")) else {
        return runs;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Some(map) = parse_flat_object(text.trim()) else {
            continue;
        };
        let get_str = |key: &str| {
            map.get(key)
                .and_then(|v| v.as_str().map(str::to_owned))
                .unwrap_or_else(|| "?".to_owned())
        };
        runs.push(RunProgress {
            run: get_str("run"),
            state: get_str("state"),
            wid: map.get("wid").and_then(|v| v.as_f64()),
            secs: map.get("secs").and_then(|v| v.as_f64()),
        });
    }
    runs.sort_by(|a, b| a.run.cmp(&b.run));
    runs
}

/// A Prometheus label value: quotes, backslashes, and newlines escaped.
fn prom_label(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Renders the `/metrics` Prometheus text body: request counters, the
/// host self-profiler's phase/worker series for *this* process (every
/// phase always present, so scrapes are schema-stable even before any
/// profiled work ran), and run-progress gauges from the runner's markers.
fn metrics_body(root: &Path) -> String {
    let mut out = String::new();
    out.push_str("# HELP dylect_serve_requests_total Requests served, by status code.\n");
    out.push_str("# TYPE dylect_serve_requests_total counter\n");
    for (slot, &code) in COUNTED_CODES.iter().enumerate() {
        let _ = writeln!(
            out,
            "dylect_serve_requests_total{{code=\"{code}\"}} {}",
            REQUEST_COUNTS[slot].load(Ordering::Relaxed)
        );
    }
    let _ = writeln!(
        out,
        "dylect_serve_requests_total{{code=\"other\"}} {}",
        REQUEST_COUNTS[COUNTED_CODES.len()].load(Ordering::Relaxed)
    );

    let prof = prof::report();
    out.push_str(
        "# HELP dylect_prof_phase_ns_total Host self-profiler: estimated wall-clock \
         nanoseconds by phase (sampled phases scaled by the sample period).\n",
    );
    out.push_str("# TYPE dylect_prof_phase_ns_total counter\n");
    for p in &prof.phases {
        let _ = writeln!(
            out,
            "dylect_prof_phase_ns_total{{phase=\"{}\"}} {}",
            p.phase.name(),
            p.est_ns
        );
    }
    out.push_str(
        "# HELP dylect_prof_phase_calls_total Host self-profiler: estimated calls by phase.\n",
    );
    out.push_str("# TYPE dylect_prof_phase_calls_total counter\n");
    for p in &prof.phases {
        let _ = writeln!(
            out,
            "dylect_prof_phase_calls_total{{phase=\"{}\"}} {}",
            p.phase.name(),
            p.est_calls
        );
    }
    out.push_str(
        "# HELP dylect_prof_worker_busy_ns_total Host self-profiler: per-worker busy time.\n",
    );
    out.push_str("# TYPE dylect_prof_worker_busy_ns_total counter\n");
    for w in &prof.workers {
        let _ = writeln!(
            out,
            "dylect_prof_worker_busy_ns_total{{pool=\"{}\",wid=\"{}\"}} {}",
            w.kind.name(),
            w.wid,
            w.busy_ns
        );
    }

    let runs = read_progress(root);
    out.push_str("# HELP dylect_run_state Runner live progress: 1 per run, labeled by state.\n");
    out.push_str("# TYPE dylect_run_state gauge\n");
    for r in &runs {
        let _ = writeln!(
            out,
            "dylect_run_state{{run=\"{}\",state=\"{}\"}} 1",
            prom_label(&r.run),
            prom_label(&r.state)
        );
    }
    out.push_str(
        "# HELP dylect_run_seconds Runner live progress: wall-clock seconds of finished runs.\n",
    );
    out.push_str("# TYPE dylect_run_seconds gauge\n");
    for r in &runs {
        if let Some(secs) = r.secs {
            let _ = writeln!(
                out,
                "dylect_run_seconds{{run=\"{}\"}} {secs}",
                prom_label(&r.run)
            );
        }
    }
    for state in ["running", "done", "failed"] {
        let n = runs.iter().filter(|r| r.state == state).count();
        let _ = writeln!(out, "dylect_runs_total{{state=\"{state}\"}} {n}");
    }

    out.push_str(
        "# HELP dylect_digest_windows State-digest windows recorded per digest artifact.\n",
    );
    out.push_str("# TYPE dylect_digest_windows gauge\n");
    for name in list_artifacts(root) {
        if !name.ends_with(".digest.jsonl") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(artifact_path(root, &name)) else {
            continue;
        };
        let windows = text
            .lines()
            .filter(|l| l.contains("\"digest\": \"window\""))
            .count();
        let _ = writeln!(
            out,
            "dylect_digest_windows{{artifact=\"{}\"}} {windows}",
            prom_label(&name)
        );
    }

    out.push_str(
        "# HELP dylect_tenant_slowdown Per-tenant slowdown versus the solo baseline \
         (solo IPS / co-run IPS), from fig_tenants exports.\n",
    );
    out.push_str("# TYPE dylect_tenant_slowdown gauge\n");
    for name in list_artifacts(root) {
        if !name.ends_with(".tenants.jsonl") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(artifact_path(root, &name)) else {
            continue;
        };
        for line in text.lines() {
            // Per-tenant rows carry both keys; finding rows carry neither.
            let Some(map) = parse_flat_object(line.trim()) else {
                continue;
            };
            let tenant = map
                .get("tenant")
                .and_then(|v| v.as_str().map(str::to_owned));
            let slowdown = map.get("slowdown").and_then(|v| v.as_f64());
            if let (Some(tenant), Some(slowdown)) = (tenant, slowdown) {
                let _ = writeln!(
                    out,
                    "dylect_tenant_slowdown{{artifact=\"{}\",tenant=\"{}\"}} {slowdown}",
                    prom_label(&name),
                    prom_label(&tenant)
                );
            }
        }
    }
    out
}

/// Resolves an artifact name to its on-disk path: `*.report` files and
/// the runner's `*.digest.jsonl` streams live in the report cache,
/// everything else in the results root.
fn artifact_path(root: &Path, name: &str) -> PathBuf {
    if name.ends_with(".report") || name.ends_with(".digest.jsonl") {
        root.join("cache").join(name)
    } else {
        root.join(name)
    }
}

/// Every artifact the service knows about, sorted: report-cache entries
/// first-class alongside telemetry exports.
pub fn list_artifacts(root: &Path) -> Vec<String> {
    let mut names = Vec::new();
    let mut scan = |dir: &Path, want: &dyn Fn(&str) -> bool| {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            if let Some(name) = entry.file_name().to_str() {
                if valid_name(name) && want(name) {
                    names.push(name.to_owned());
                }
            }
        }
    };
    scan(&root.join("cache"), &|n| {
        n.ends_with(".report") || n.ends_with(".digest.jsonl")
    });
    scan(root, &|n| n.ends_with(".jsonl"));
    names.sort();
    names
}

/// Splits a request target into path and query-parameter pairs.
fn split_target(target: &str) -> (&str, Vec<(&str, &str)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .collect();
    (path, params)
}

/// Routes one request target (e.g. `/figure/fig3-....report`) against the
/// results directory `root`. Pure with respect to the connection: all I/O
/// is file reads, so the router is unit-testable without sockets.
pub fn route(root: &Path, method: &str, target: &str) -> Response {
    if method != "GET" {
        return Response::new(405, "only GET is supported\n");
    }
    let (path, params) = split_target(target);
    match path {
        "/healthz" => Response::new(200, "ok\n"),
        "/metrics" => Response::new(200, metrics_body(root)),
        "/runs" => {
            let runs = read_progress(root);
            if runs.is_empty() {
                return Response::new(200, "(no runs yet)\n");
            }
            let mut body = format!("{:<44} {:<8} {:>4} {:>9}\n", "run", "state", "wid", "secs");
            for r in &runs {
                let secs = match r.secs {
                    Some(s) => format!("{s:.1}"),
                    None => "-".to_owned(),
                };
                let wid = match r.wid {
                    Some(w) => format!("{w}"),
                    None => "?".to_owned(),
                };
                let _ = writeln!(body, "{:<44} {:<8} {:>4} {:>9}", r.run, r.state, wid, secs);
            }
            Response::new(200, body)
        }
        "/figures" => {
            let mut body: String = list_artifacts(root).into_iter().map(|n| n + "\n").collect();
            if body.is_empty() {
                body.push_str("(no artifacts yet)\n");
            }
            Response::new(200, body)
        }
        "/diff" => {
            let get = |key| params.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
            let (Some(a), Some(b)) = (get("a"), get("b")) else {
                return Response::new(400, "usage: /diff?a=<artifact>&b=<artifact>\n");
            };
            if !valid_name(a) || !valid_name(b) {
                return Response::new(400, "invalid artifact name\n");
            }
            let load_one = |name: &str| {
                load(&artifact_path(root, name).display().to_string())
                    .map_err(|e| Response::new(404, format!("{e}\n")))
            };
            let pa = match load_one(a) {
                Ok(p) => p,
                Err(r) => return r,
            };
            let pb = match load_one(b) {
                Ok(p) => p,
                Err(r) => return r,
            };
            let diffs = diff(&pa, &pb, &Tolerance::default());
            let status = match outcome(&diffs) {
                0 => {
                    return Response::new(200, format!("{a} and {b}: identical within tolerance\n"))
                }
                3 => 422,
                _ => 409,
            };
            let mut body = format!("{a} vs {b}: {} difference(s)\n", diffs.len());
            for d in &diffs {
                body.push_str(&d.msg);
                body.push('\n');
            }
            Response::new(status, body)
        }
        _ => {
            if let Some(name) = path.strip_prefix("/figure/") {
                if !valid_name(name) {
                    return Response::new(400, "invalid artifact name\n");
                }
                return match std::fs::read_to_string(artifact_path(root, name)) {
                    Ok(text) => Response::new(200, text),
                    Err(_) => Response::new(404, format!("no artifact named {name}\n")),
                };
            }
            if let Some(name) = path.strip_prefix("/digest/") {
                if !valid_name(name) {
                    return Response::new(400, "invalid artifact name\n");
                }
                // `/digest/<cache-stem>` and `/digest/<full-name>` both
                // resolve to the runner's `<stem>.digest.jsonl` stream.
                let full = if name.ends_with(".digest.jsonl") {
                    name.to_owned()
                } else {
                    format!("{name}.digest.jsonl")
                };
                return match std::fs::read_to_string(artifact_path(root, &full)) {
                    Ok(text) => Response::new(200, text),
                    Err(_) => Response::new(
                        404,
                        format!("no digest stream named {full} (run with DYLECT_DIGEST=1)\n"),
                    ),
                };
            }
            Response::new(
                404,
                "routes: /healthz /figures /figure/<name> /digest/<name> \
                 /diff?a=..&b=.. /runs /metrics\n",
            )
        }
    }
}

/// Reads one bounded request head off `stream` and returns
/// `(method, target)`, or a ready-to-send error response.
fn read_request(stream: &mut TcpStream) -> Result<(String, String), Response> {
    let mut buf = vec![0u8; MAX_REQUEST_BYTES + 1];
    let mut filled = 0;
    loop {
        let n = stream
            .read(&mut buf[filled..])
            .map_err(|e| Response::new(400, format!("read error: {e}\n")))?;
        if n == 0 {
            break;
        }
        filled += n;
        if filled > MAX_REQUEST_BYTES {
            return Err(Response::new(431, "request exceeds 8 KB\n"));
        }
        if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = std::str::from_utf8(&buf[..filled])
        .map_err(|_| Response::new(400, "request is not UTF-8\n"))?;
    let mut first = head.lines().next().unwrap_or("").split_whitespace();
    match (first.next(), first.next()) {
        (Some(method), Some(target)) => Ok((method.to_owned(), target.to_owned())),
        _ => Err(Response::new(400, "malformed request line\n")),
    }
}

fn handle_connection(root: &Path, mut stream: TcpStream) {
    // Host-profiling timer only; responses are identical with it on or off.
    let _p = prof::scope(prof::HostPhase::ServeRequest);
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .ok();
    let response = match read_request(&mut stream) {
        Ok((method, target)) => route(root, &method, &target),
        Err(response) => response,
    };
    count_request(response.status);
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
    // Closing with unread request bytes pending (an oversized request cut
    // off at the bound) would RST the connection and destroy the response
    // in flight; signal end-of-response and drain what the client sent.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Serves `root` on `listener` forever across [`WORKERS`] accept threads
/// (each holding a `try_clone` of the listener). Only returns if every
/// worker's accept loop dies, which means the listener itself is gone.
pub fn serve(listener: TcpListener, root: PathBuf) {
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let listener = listener.try_clone().expect("clone listener handle");
            let root = root.clone();
            scope.spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    handle_connection(&root, stream);
                }
            });
        }
    });
}

/// A minimal HTTP/1.1 GET client (the `dylect-serve get` subcommand and
/// the verify smoke use it, keeping the check hermetic — no curl needed).
/// Returns `(status, body)`.
pub fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("cannot send request: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("cannot read response: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line from {addr}"))?;
    Ok((status, body.to_owned()))
}

/// Splits a `host:port/path` or `http://host:port/path` URL for
/// [`http_get`].
pub fn split_url(url: &str) -> Result<(&str, &str), String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (addr, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    if addr.is_empty() {
        return Err(format!("no host in url `{url}`"));
    }
    Ok((addr, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dylect-serve-{tag}-{}", std::process::id()));
        fs::create_dir_all(dir.join("cache")).unwrap();
        dir
    }

    fn report(ips: &str) -> String {
        format!(
            "{{\n  \"format\": \"1\",\n  \"benchmark\": \"omnetpp\",\n  \"ips\": \"{ips}\",\n}}\n"
        )
    }

    #[test]
    fn serve_addr_parsing_accepts_addrs_and_rejects_garbage() {
        assert_eq!(parse_serve_addr(None), Ok(None));
        let some = parse_serve_addr(Some("127.0.0.1:0")).unwrap().unwrap();
        assert_eq!(some.port(), 0);
        assert!(parse_serve_addr(Some(" [::1]:8080 ")).unwrap().is_some());
        assert!(parse_serve_addr(Some("localhost:80")).is_err(), "no DNS");
        assert!(parse_serve_addr(Some("8080")).is_err());
        assert!(parse_serve_addr(Some("")).is_err());
        assert!(parse_serve_addr(Some("127.0.0.1:notaport")).is_err());
    }

    #[test]
    fn names_are_confined_to_the_results_directory() {
        assert!(valid_name("fig3-abc123.report"));
        assert!(valid_name("omnetpp.shadow.jsonl"));
        assert!(!valid_name(""));
        assert!(!valid_name(".."));
        assert!(!valid_name(".hidden"));
        assert!(!valid_name("a/b.report"));
        assert!(!valid_name("a\\b"));
        assert!(!valid_name("name with spaces"));
        assert!(!valid_name(&"x".repeat(129)));
    }

    #[test]
    fn health_figures_and_figure_routes() {
        let root = temp_root("routes");
        fs::write(root.join("cache/a.report"), report("1.0")).unwrap();
        fs::write(root.join("run.jsonl"), "{\"series\": \"ips\", \"n\": 1}\n").unwrap();
        fs::write(root.join("cache/skip.tmp"), "x").unwrap();

        assert_eq!(route(&root, "GET", "/healthz").body, "ok\n");
        let figs = route(&root, "GET", "/figures");
        assert_eq!(figs.status, 200);
        assert_eq!(figs.body, "a.report\nrun.jsonl\n", "sorted, filtered");
        let fig = route(&root, "GET", "/figure/a.report");
        assert_eq!(fig.status, 200);
        assert_eq!(fig.body, report("1.0"), "artifact served verbatim");
        assert_eq!(route(&root, "GET", "/figure/missing.report").status, 404);
        assert_eq!(route(&root, "GET", "/figure/..").status, 400);
        assert_eq!(route(&root, "GET", "/nope").status, 404);
        assert_eq!(route(&root, "POST", "/healthz").status, 405);
        fs::remove_dir_all(&root).ok();
    }

    /// Unsupported methods are a 405 on every route — not a 404 — and the
    /// 405 body says what is supported.
    #[test]
    fn non_get_methods_are_405_everywhere() {
        let root = temp_root("methods");
        for method in ["POST", "PUT", "DELETE", "HEAD", "PATCH", "OPTIONS"] {
            for target in ["/healthz", "/figures", "/metrics", "/runs", "/nope"] {
                let resp = route(&root, method, target);
                assert_eq!(resp.status, 405, "{method} {target}");
                assert!(
                    resp.body.contains("GET"),
                    "{method} {target}: {}",
                    resp.body
                );
            }
        }
        fs::remove_dir_all(&root).ok();
    }

    /// Every response carries `Connection: close`: the server serves one
    /// request per connection and must say so, or HTTP/1.1 clients will
    /// wait for keep-alive traffic that never comes.
    #[test]
    fn every_response_announces_connection_close() {
        for resp in [
            Response::new(200, "ok\n"),
            Response::new(404, "nope\n"),
            Response::new(405, "only GET is supported\n"),
            Response::new(431, "request exceeds 8 KB\n"),
        ] {
            let mut wire = Vec::new();
            resp.write_to(&mut wire).unwrap();
            let text = String::from_utf8(wire).unwrap();
            let head = text.split("\r\n\r\n").next().unwrap();
            assert!(
                head.contains("\r\nConnection: close"),
                "{}: {head}",
                resp.status
            );
            assert!(head.starts_with(&format!("HTTP/1.1 {} ", resp.status)));
            assert!(head.contains(&format!("Content-Length: {}", resp.body.len())));
        }
    }

    #[test]
    fn runs_route_renders_progress_markers() {
        let root = temp_root("runs");
        assert_eq!(route(&root, "GET", "/runs").body, "(no runs yet)\n");
        fs::create_dir_all(root.join("progress")).unwrap();
        fs::write(
            root.join("progress/omnetpp_dylect_high.run.json"),
            "{\"run\":\"omnetpp/dylect/high\",\"state\":\"done\",\"wid\":1,\"secs\":12.345}\n",
        )
        .unwrap();
        fs::write(
            root.join("progress/omnetpp_tmcc_high.run.json"),
            "{\"run\":\"omnetpp/tmcc/high\",\"state\":\"running\",\"wid\":0}\n",
        )
        .unwrap();
        fs::write(root.join("progress/garbage.json"), "not json").unwrap();
        let resp = route(&root, "GET", "/runs");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("omnetpp/dylect/high"), "{}", resp.body);
        assert!(resp.body.contains("done"), "{}", resp.body);
        assert!(resp.body.contains("12.3"), "{}", resp.body);
        assert!(resp.body.contains("running"), "{}", resp.body);
        fs::remove_dir_all(&root).ok();
    }

    /// A marker without a `wid` renders as `?`, not as worker 0 — silently
    /// merging unattributed runs into worker 0's row misreports who ran
    /// what.
    #[test]
    fn runs_route_renders_a_missing_wid_as_unknown_not_worker_zero() {
        let root = temp_root("widless");
        fs::create_dir_all(root.join("progress")).unwrap();
        fs::write(
            root.join("progress/nowid.run.json"),
            "{\"run\":\"canneal/tmcc/low\",\"state\":\"done\",\"secs\":3.0}\n",
        )
        .unwrap();
        fs::write(
            root.join("progress/w0.run.json"),
            "{\"run\":\"canneal/dylect/low\",\"state\":\"done\",\"wid\":0,\"secs\":3.0}\n",
        )
        .unwrap();
        let resp = route(&root, "GET", "/runs");
        assert_eq!(resp.status, 200);
        let widless = resp
            .body
            .lines()
            .find(|l| l.contains("canneal/tmcc/low"))
            .expect("row rendered");
        assert!(
            widless.contains('?'),
            "unattributed wid renders ?: {widless}"
        );
        let attributed = resp
            .body
            .lines()
            .find(|l| l.contains("canneal/dylect/low"))
            .expect("row rendered");
        assert!(
            attributed.contains('0'),
            "real worker 0 still shows: {attributed}"
        );
        fs::remove_dir_all(&root).ok();
    }

    /// The `failed` terminal state is first-class in both `/runs` text and
    /// the `/metrics` per-state totals.
    #[test]
    fn failed_runs_surface_in_runs_and_metrics() {
        let root = temp_root("failed");
        fs::create_dir_all(root.join("progress")).unwrap();
        fs::write(
            root.join("progress/f.run.json"),
            "{\"run\":\"omnetpp/dylect/high\",\"state\":\"failed\",\"wid\":1,\"secs\":0.5}\n",
        )
        .unwrap();
        let runs = route(&root, "GET", "/runs");
        assert!(runs.body.contains("failed"), "{}", runs.body);
        let metrics = route(&root, "GET", "/metrics");
        assert!(
            metrics
                .body
                .contains("dylect_runs_total{state=\"failed\"} 1"),
            "{}",
            metrics.body
        );
        assert!(
            metrics
                .body
                .contains("dylect_run_state{run=\"omnetpp/dylect/high\",state=\"failed\"} 1"),
            "{}",
            metrics.body
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn digest_routes_serve_streams_and_count_windows() {
        let root = temp_root("digest");
        let stream = "{\"digest\": \"window\", \"window\": 1, \"ops_retired\": 4096, \
                      \"core0\": \"00000000000000aa\", \"cache\": \"00000000000000bb\"}\n\
                      {\"digest\": \"window\", \"window\": 2, \"ops_retired\": 8192, \
                      \"core0\": \"00000000000000aa\", \"cache\": \"00000000000000bb\"}\n";
        fs::write(root.join("cache/omnetpp-abc.digest.jsonl"), stream).unwrap();

        // Both addressing forms resolve to the cache-dir stream.
        let by_stem = route(&root, "GET", "/digest/omnetpp-abc");
        assert_eq!(by_stem.status, 200);
        assert_eq!(by_stem.body, stream);
        let by_name = route(&root, "GET", "/digest/omnetpp-abc.digest.jsonl");
        assert_eq!(by_name.status, 200, "{}", by_name.body);
        assert_eq!(route(&root, "GET", "/digest/ghost").status, 404);
        assert_eq!(route(&root, "GET", "/digest/..").status, 400);

        // Digest streams are listed and fetchable as ordinary artifacts.
        let figs = route(&root, "GET", "/figures");
        assert!(
            figs.body.contains("omnetpp-abc.digest.jsonl"),
            "{}",
            figs.body
        );
        assert_eq!(
            route(&root, "GET", "/figure/omnetpp-abc.digest.jsonl").status,
            200
        );

        // And /metrics gauges the per-artifact window count.
        let metrics = route(&root, "GET", "/metrics");
        assert!(
            metrics
                .body
                .contains("dylect_digest_windows{artifact=\"omnetpp-abc.digest.jsonl\"} 2"),
            "{}",
            metrics.body
        );
        fs::remove_dir_all(&root).ok();
    }

    /// `fig_tenants` per-tenant exports surface as a
    /// `dylect_tenant_slowdown` gauge per (artifact, tenant); finding rows
    /// and garbage lines in the same file are skipped, and the family
    /// header is present even with no tenant artifacts (schema-stable).
    #[test]
    fn tenant_exports_surface_as_slowdown_gauges() {
        let root = temp_root("tenants");
        let metrics = route(&root, "GET", "/metrics");
        assert!(
            metrics.body.contains("# TYPE dylect_tenant_slowdown gauge"),
            "{}",
            metrics.body
        );
        assert!(!metrics.body.contains("dylect_tenant_slowdown{"));

        fs::write(
            root.join("fig_tenants.dylect-g3.tenants.jsonl"),
            "{\"artifact\":\"fig_tenants\",\"scheme\":\"dylect-g3\",\"tenant\":\"omnetpp\",\
             \"asid\":0,\"solo_ips\":4.9e9,\"co_ips\":4.7e9,\"slowdown\":1.042,\
             \"tlb_miss_rate\":0.01,\"solo_tlb_miss_rate\":0.009}\n\
             {\"artifact\":\"fig_tenants\",\"scheme\":\"dylect-g3\",\"tenant\":\"mcf\",\
             \"asid\":1,\"solo_ips\":2.0e9,\"co_ips\":1.6e9,\"slowdown\":1.25,\
             \"tlb_miss_rate\":0.05,\"solo_tlb_miss_rate\":0.04}\n\
             {\"artifact\":\"fig_tenants\",\"scheme\":\"dylect-g3\",\
             \"finding\":\"cte_contention\",\"solo_cte_hit_rate\":0.96,\
             \"co_cte_hit_rate\":0.94,\"delta\":-0.02}\n\
             not json at all\n",
        )
        .unwrap();
        let metrics = route(&root, "GET", "/metrics");
        assert!(
            metrics.body.contains(
                "dylect_tenant_slowdown{artifact=\"fig_tenants.dylect-g3.tenants.jsonl\",\
                 tenant=\"omnetpp\"} 1.042"
            ),
            "{}",
            metrics.body
        );
        assert!(
            metrics.body.contains(
                "dylect_tenant_slowdown{artifact=\"fig_tenants.dylect-g3.tenants.jsonl\",\
                 tenant=\"mcf\"} 1.25"
            ),
            "{}",
            metrics.body
        );
        assert_eq!(
            metrics.body.matches("dylect_tenant_slowdown{").count(),
            2,
            "finding and garbage rows emit no gauge: {}",
            metrics.body
        );

        // The export is also a first-class artifact: listed and fetchable.
        assert!(route(&root, "GET", "/figures")
            .body
            .contains("fig_tenants.dylect-g3.tenants.jsonl"));
        assert_eq!(
            route(&root, "GET", "/figure/fig_tenants.dylect-g3.tenants.jsonl").status,
            200
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn metrics_route_emits_wellformed_prometheus_text() {
        let root = temp_root("metrics");
        fs::create_dir_all(root.join("progress")).unwrap();
        fs::write(
            root.join("progress/r.run.json"),
            "{\"run\":\"omnetpp/dylect/high\",\"state\":\"running\",\"wid\":0}\n",
        )
        .unwrap();
        let resp = route(&root, "GET", "/metrics");
        assert_eq!(resp.status, 200);
        let body = &resp.body;
        // Schema-stable: every declared series family is present even with
        // no profiled work, and every phase appears by name.
        assert!(body.contains("# TYPE dylect_serve_requests_total counter"));
        assert!(body.contains("dylect_serve_requests_total{code=\"200\"}"));
        assert!(body.contains("# TYPE dylect_prof_phase_ns_total counter"));
        for phase in dylect_sim_core::prof::HostPhase::ALL {
            assert!(
                body.contains(&format!(
                    "dylect_prof_phase_ns_total{{phase=\"{}\"}}",
                    phase.name()
                )),
                "missing phase {}",
                phase.name()
            );
        }
        assert!(body.contains("dylect_run_state{run=\"omnetpp/dylect/high\",state=\"running\"} 1"));
        assert!(body.contains("dylect_runs_total{state=\"running\"} 1"));
        // Well-formed exposition: every non-comment line is `name{...} value`
        // with a parseable numeric value.
        for line in body
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (_, value) = line.rsplit_once(' ').expect(line);
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn diff_route_maps_outcomes_to_statuses() {
        let root = temp_root("diff");
        fs::write(root.join("cache/a.report"), report("1.0")).unwrap();
        fs::write(root.join("cache/same.report"), report("1.0")).unwrap();
        fs::write(root.join("cache/drift.report"), report("2.0")).unwrap();
        fs::write(
            root.join("cache/missing.report"),
            "{\n  \"format\": \"1\",\n  \"benchmark\": \"omnetpp\",\n}\n",
        )
        .unwrap();

        assert_eq!(
            route(&root, "GET", "/diff?a=a.report&b=same.report").status,
            200
        );
        let drift = route(&root, "GET", "/diff?a=a.report&b=drift.report");
        assert_eq!(drift.status, 409, "metric drift is a conflict");
        assert!(
            drift.body.contains("ips"),
            "body names the metric: {}",
            drift.body
        );
        assert_eq!(
            route(&root, "GET", "/diff?a=a.report&b=missing.report").status,
            422,
            "missing-only differences are unprocessable, not conflicting"
        );
        assert_eq!(route(&root, "GET", "/diff?a=a.report").status, 400);
        assert_eq!(route(&root, "GET", "/diff?a=a.report&b=../x").status, 400);
        assert_eq!(
            route(&root, "GET", "/diff?a=a.report&b=ghost.report").status,
            404
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn url_splitting() {
        assert_eq!(
            split_url("http://127.0.0.1:80/x").unwrap(),
            ("127.0.0.1:80", "/x")
        );
        assert_eq!(split_url("127.0.0.1:80").unwrap(), ("127.0.0.1:80", "/"));
        assert!(split_url("http:///x").is_err());
    }

    #[test]
    fn end_to_end_over_a_real_socket() {
        let root = temp_root("e2e");
        fs::write(root.join("cache/a.report"), report("1.0")).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server_root = root.clone();
        // The accept loops never exit on their own; detach them.
        std::thread::spawn(move || serve(listener, server_root));

        let (status, body) = http_get(&addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, body) = http_get(&addr, "/figure/a.report").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, report("1.0"));
        let (status, _) = http_get(&addr, "/figure/nothere.report").unwrap();
        assert_eq!(status, 404);
        // An oversized request is bounded, not buffered.
        let (status, _) = http_get(&addr, &format!("/{}", "x".repeat(MAX_REQUEST_BYTES))).unwrap();
        assert_eq!(status, 431);
        fs::remove_dir_all(&root).ok();
    }

    /// Raw-socket oversized request: more than 8 KB with *no* header
    /// terminator at all. The server must still answer `431` with
    /// `Connection: close` rather than buffering forever or slamming the
    /// connection shut without a response.
    #[test]
    fn oversized_request_without_terminator_gets_431_over_a_raw_socket() {
        let root = temp_root("raw431");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server_root = root.clone();
        std::thread::spawn(move || serve(listener, server_root));

        let mut stream = TcpStream::connect(addr).unwrap();
        // 3x the bound, never a "\r\n\r\n" in sight.
        let flood = vec![b'a'; MAX_REQUEST_BYTES * 3];
        stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        stream.write_all(&flood).unwrap();
        let mut raw = String::new();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 431 "), "{raw}");
        assert!(raw.contains("\r\nConnection: close"), "{raw}");
        assert!(raw.contains("request exceeds 8 KB"), "{raw}");
        fs::remove_dir_all(&root).ok();
    }
}
