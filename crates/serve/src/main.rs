//! `dylect-serve` — serve the results directory over HTTP, or fetch from
//! a running instance.
//!
//! ```text
//! dylect-serve [results-dir]          # serve (default dir: results)
//! dylect-serve get <url>              # GET and print the body
//! ```
//!
//! The bind address comes from `DYLECT_SERVE_ADDR` (default
//! 127.0.0.1:8377; port 0 for an OS-assigned ephemeral port). The bound
//! address is printed as `listening on <addr>` once the socket is live,
//! so scripts can bind port 0 and scrape the real port.
//!
//! `get` exits 0 on HTTP 200 and 4 on any other status (the body is
//! printed either way), so smoke tests need no external HTTP client.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use dylect_serve::{http_get, parse_serve_addr, serve, split_url, DEFAULT_ADDR};

const USAGE: &str = "usage: dylect-serve [results-dir] | dylect-serve get <url>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("get") => {
            let Some(url) = args.get(1) else {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            };
            let fetched = split_url(url).and_then(|(addr, path)| http_get(addr, path));
            match fetched {
                Ok((status, body)) => {
                    print!("{body}");
                    if status == 200 {
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("dylect-serve get: HTTP {status}");
                        ExitCode::from(4)
                    }
                }
                Err(e) => {
                    eprintln!("dylect-serve get: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some(flag) if flag.starts_with('-') => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        dir => {
            // DYLECT_PROF makes the serve_request phase timer live, so
            // /metrics can report where this process's wall-clock goes.
            if let Err(msg) = dylect_sim_core::prof::init_from_env() {
                eprintln!("usage: {msg}");
                return ExitCode::from(2);
            }
            let root = PathBuf::from(dir.unwrap_or("results"));
            let raw = std::env::var("DYLECT_SERVE_ADDR").ok();
            let addr = match parse_serve_addr(raw.as_deref()) {
                Ok(Some(addr)) => addr.to_string(),
                Ok(None) => DEFAULT_ADDR.to_owned(),
                Err(msg) => {
                    eprintln!("usage: {msg}");
                    return ExitCode::from(2);
                }
            };
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("dylect-serve: cannot bind {addr}: {e}");
                    return ExitCode::from(2);
                }
            };
            let bound = listener.local_addr().expect("bound socket has an address");
            println!("listening on {bound}");
            eprintln!("serving {} on http://{bound}", root.display());
            serve(listener, root);
            ExitCode::FAILURE
        }
    }
}
