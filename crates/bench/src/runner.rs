//! Parallel, cached execution of the paper-reproduction run matrix.
//!
//! Every figure/table binary used to call [`run_one`] in nested loops,
//! re-simulating the shared benchmark × scheme × compression matrix from
//! scratch, strictly sequentially. This module replaces that with:
//!
//! - **[`RunKey`]**: a declarative description of one simulation (benchmark,
//!   scheme, compression setting, effort [`Mode`], plus the page-size and
//!   DRAM-rank overrides Figures 3 and 24 need). Binaries build a list of
//!   keys and get the reports back in the same order.
//! - **A worker pool**: independent keys run concurrently on
//!   `std::thread::scope` threads — one per available core by default,
//!   overridable with `DYLECT_JOBS=n`. The simulator is deterministic and
//!   each run is fully isolated, so parallel results are identical to a
//!   sequential run (asserted by `tests/determinism.rs`).
//! - **An on-disk report cache** under `results/cache/` (override with
//!   `DYLECT_CACHE_DIR`): one JSON-ish file per run key, named and versioned
//!   by a fingerprint of the *entire* resolved [`SystemConfig`] plus
//!   warmup/measure windows. Rerunning any figure binary after `allfigs`
//!   reuses the shared matrix instead of re-simulating it. Pass `--no-cache`
//!   (or `DYLECT_NO_CACHE=1`) to ignore existing entries, or delete the
//!   directory.
//!
//! [`run_one`]: crate::run_one

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use dylect_cpu::PageSizeMode;
use dylect_sim::{RunReport, SchemeKind, System, SystemConfig};
use dylect_sim_core::digest::{self, DigestRecord};
use dylect_sim_core::{blackbox, prof};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

use crate::{config_for, warmup_for, Mode};

/// Short label for a compression setting, used in run labels, cache file
/// names, and table rows.
pub fn setting_label(s: CompressionSetting) -> &'static str {
    match s {
        CompressionSetting::Low => "low",
        CompressionSetting::High => "high",
    }
}

/// One cell of the reproduction matrix: everything needed to build the
/// paper's system for a single deterministic simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct RunKey {
    /// The benchmark to run.
    pub spec: BenchmarkSpec,
    /// The memory-controller scheme.
    pub scheme: SchemeKind,
    /// Compression pressure.
    pub setting: CompressionSetting,
    /// Effort level (scale, cores, warmup/measure windows).
    pub mode: Mode,
    /// Page-size override (Figure 3 compares 4 KB against 2 MB pages).
    pub pages: Option<PageSizeMode>,
    /// DRAM-rank override (Figure 24's 16-rank no-compression baseline).
    pub dram_ranks: Option<u32>,
    /// Multiplier on DRAM capacity, applied after [`config_for`] (Figure
    /// 24's baseline doubles capacity along with ranks).
    pub dram_bytes_factor: u64,
    /// Memory-controller count override (the §IV-D multi-MC ablation).
    pub memory_controllers: Option<usize>,
    /// 2D nested page walks (the virtualization scenario axis).
    pub nested: bool,
}

impl RunKey {
    /// A standard matrix cell with no overrides.
    pub fn new(
        spec: BenchmarkSpec,
        scheme: SchemeKind,
        setting: CompressionSetting,
        mode: Mode,
    ) -> RunKey {
        RunKey {
            spec,
            scheme,
            setting,
            mode,
            pages: None,
            dram_ranks: None,
            dram_bytes_factor: 1,
            memory_controllers: None,
            nested: false,
        }
    }

    /// Overrides the OS page size.
    pub fn with_pages(mut self, pages: PageSizeMode) -> RunKey {
        self.pages = Some(pages);
        self
    }

    /// Overrides DRAM ranks and scales DRAM capacity by `bytes_factor`.
    pub fn with_ranks(mut self, ranks: u32, bytes_factor: u64) -> RunKey {
        self.dram_ranks = Some(ranks);
        self.dram_bytes_factor = bytes_factor;
        self
    }

    /// Overrides the number of independent memory controllers.
    pub fn with_mcs(mut self, mcs: usize) -> RunKey {
        self.memory_controllers = Some(mcs);
        self
    }

    /// Turns on 2D nested page walks (guest → host → machine-physical).
    pub fn with_nested(mut self) -> RunKey {
        self.nested = true;
        self
    }

    /// Human-readable run label for progress lines and cache file names.
    pub fn label(&self) -> String {
        let mut l = format!(
            "{}/{}/{}",
            self.spec.name,
            self.scheme.label(),
            setting_label(self.setting)
        );
        match self.pages {
            Some(PageSizeMode::Standard4K) => l.push_str("/4k"),
            Some(PageSizeMode::Huge2M) => l.push_str("/2m"),
            None => {}
        }
        if let Some(r) = self.dram_ranks {
            l.push_str(&format!("/{r}rk"));
        }
        if let Some(m) = self.memory_controllers {
            l.push_str(&format!("/{m}mc"));
        }
        if self.nested {
            l.push_str("/nested");
        }
        l
    }

    /// The fully resolved system configuration for this key.
    pub fn config(&self) -> SystemConfig {
        let mut cfg = config_for(&self.spec, self.scheme.clone(), self.setting, self.mode);
        if let Some(p) = self.pages {
            cfg.core.page_mode = p;
        }
        if let Some(r) = self.dram_ranks {
            cfg.dram_ranks = r;
        }
        if let Some(m) = self.memory_controllers {
            cfg.memory_controllers = m;
        }
        cfg.core.nested_walk |= self.nested;
        cfg.dram_bytes *= self.dram_bytes_factor;
        cfg
    }

    /// Fingerprint of everything that determines this run's report. Two
    /// keys that resolve to the same simulation (e.g. `nocomp/low` in the
    /// shared matrix and Figure 3's explicit 2 MB-page run) collapse to the
    /// same fingerprint, so they share one cache entry and one execution.
    fn fingerprint(&self) -> u64 {
        let cfg = self.config();
        let input = format!(
            "report-v{};cfg{:?};spec{:?};warm{};measure{};{}",
            RunReport::CACHE_FORMAT_VERSION,
            cfg,
            self.spec,
            warmup_for(&self.spec, self.mode),
            self.mode.measure_ops,
            telemetry_env_fingerprint(),
        );
        dylect_sim_core::kv::fingerprint64(&input)
    }

    /// Fingerprint of the run's *warmup prefix*: everything that determines
    /// the simulation state at the end of warmup, and nothing else. Unlike
    /// [`RunKey::fingerprint`], this excludes the measurement window and the
    /// telemetry env (the runner never warms up with telemetry on), so
    /// every sweep bin sharing a configuration prefix — different
    /// `measure_ops`, different downstream telemetry — keys the same
    /// checkpoint.
    fn checkpoint_fingerprint(&self) -> u64 {
        let cfg = self.config();
        let input = format!(
            "checkpoint-snapv{};cfg{:?};spec{:?};warm{}",
            dylect_sim_core::snap::SNAP_VERSION,
            cfg,
            self.spec,
            warmup_for(&self.spec, self.mode),
        );
        dylect_sim_core::kv::fingerprint64(&input)
    }

    /// Executes the simulation (no report-cache involvement). With
    /// `DYLECT_CHECKPOINT_DIR` set, the warmup prefix warm-starts from (or
    /// populates) a shared on-disk snapshot keyed by
    /// [`RunKey::checkpoint_fingerprint`].
    pub fn execute(&self) -> RunReport {
        self.execute_digests().0
    }

    /// [`RunKey::execute`] plus the per-window state digests the run
    /// captured (empty unless `DYLECT_DIGEST=1`). With checkpoint
    /// warm-starting, digest windows count ops from the resume point, not
    /// from cold start — the stream is still deterministic per
    /// configuration, just relative.
    pub fn execute_digests(&self) -> (RunReport, Vec<DigestRecord>) {
        let cfg = self.config();
        let warmup = warmup_for(&self.spec, self.mode);
        let mut sys = System::new(cfg, &self.spec);
        if let Ok(Some(at)) = digest::perturb_from_env() {
            sys.arm_perturb(Some(at));
        }
        // DYLECT_JOBS also shards within the run: multi-MC configurations
        // drain independent controllers on worker threads. Reports are
        // byte-identical for every worker count.
        if let Some(jobs) = jobs_from_env() {
            sys.set_jobs(jobs);
        }
        let Some(dir) = checkpoint_dir_from_env() else {
            let report = sys.run(warmup, self.mode.measure_ops);
            return (report, sys.take_digests());
        };
        let label = self.label();
        let stem = format!(
            "{}-{:016x}",
            sanitize(&label),
            self.checkpoint_fingerprint()
        );
        let ckpt = dir.join(format!("{stem}.ckpt"));
        let read = {
            let _p = prof::scope(prof::HostPhase::CheckpointRead);
            fs::read(&ckpt)
        };
        if let Ok(bytes) = read {
            let t0 = Instant::now();
            match sys.resume_measurement(&bytes, self.mode.measure_ops) {
                Ok(report) => {
                    blackbox::record(
                        blackbox::EventKind::CheckpointRestore,
                        bytes.len() as u64,
                        self.checkpoint_fingerprint(),
                    );
                    let restore_s = t0.elapsed().as_secs_f64();
                    let saved = match checkpoint_warmup_secs(&dir, &stem) {
                        Some(w) => format!(", saving ~{:.1}s of warmup", (w - restore_s).max(0.0)),
                        None => String::new(),
                    };
                    eprintln!(
                        "[runner] {label}: warm-started from checkpoint in {restore_s:.1}s{saved}"
                    );
                    return (report, sys.take_digests());
                }
                // A stale or damaged checkpoint degrades to a cold run; the
                // failed restore left `sys` unspecified, so rebuild it.
                Err(e) => {
                    eprintln!(
                        "[runner] warning: ignoring checkpoint {}: {e}",
                        ckpt.display()
                    );
                    sys = System::new(self.config(), &self.spec);
                    if let Ok(Some(at)) = digest::perturb_from_env() {
                        sys.arm_perturb(Some(at));
                    }
                    if let Some(jobs) = jobs_from_env() {
                        sys.set_jobs(jobs);
                    }
                }
            }
        }
        let t0 = Instant::now();
        let snap = sys.warm_up_and_snapshot(warmup);
        let warm_secs = t0.elapsed().as_secs_f64();
        {
            let _p = prof::scope(prof::HostPhase::CheckpointWrite);
            match write_bytes_atomically(&ckpt, &snap) {
                Ok(()) => {
                    blackbox::record(
                        blackbox::EventKind::CheckpointSave,
                        snap.len() as u64,
                        self.checkpoint_fingerprint(),
                    );
                    let _ = write_atomically(
                        &dir.join(format!("{stem}.meta")),
                        &format!("warmup_secs={warm_secs:.3}\n"),
                    );
                    eprintln!(
                        "[runner] {label}: checkpoint saved ({} KB; {warm_secs:.1}s of warmup now reusable)",
                        snap.len() / 1024,
                    );
                }
                // A read-only checkout degrades to uncheckpointed, not failure.
                Err(e) => eprintln!("[runner] warning: could not write {}: {e}", ckpt.display()),
            }
        }
        sys.start_measurement();
        sys.execute(self.mode.measure_ops);
        let report = sys.finish();
        (report, sys.take_digests())
    }

    fn into_job(self) -> Job {
        let label = self.label();
        let cache_name = format!("{}-{:016x}", sanitize(&label), self.fingerprint());
        let digest_stem = cache_name.clone();
        Job {
            label,
            cache_name: Some(cache_name),
            work: Box::new(move || {
                let (report, digests) = self.execute_digests();
                write_digest_artifact(&digest_stem, &digests);
                report
            }),
        }
    }
}

/// Writes a run's digest stream next to its report-cache entry as
/// `<cache-stem>.digest.jsonl` (one flat-JSON record per window), where
/// `dylect-serve` and `dylect-stats bisect` pick it up. No-op when digest
/// capture was off; failures degrade to a warning, never to a failed run.
fn write_digest_artifact(stem: &str, digests: &[DigestRecord]) {
    if digests.is_empty() {
        return;
    }
    let dir = std::env::var("DYLECT_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results/cache"));
    let mut body = String::new();
    for d in digests {
        body.push_str(&d.to_jsonl_line());
        body.push('\n');
    }
    let path = dir.join(format!("{stem}.digest.jsonl"));
    if let Err(e) = write_atomically(&path, &body) {
        eprintln!("[runner] warning: could not write {}: {e}", path.display());
    }
}

/// One schedulable unit of work: a label, an optional cache identity, and
/// the closure that produces the report.
///
/// Binaries whose variants cannot be expressed as a [`RunKey`] (the
/// promotion-policy and cache-policy ablations assemble schemes by hand)
/// submit custom jobs and still get pooling + caching.
pub struct Job {
    /// Progress/observability label.
    pub label: String,
    /// Cache file stem (including a config fingerprint); `None` disables
    /// caching for this job.
    pub cache_name: Option<String>,
    /// Produces the report. Runs at most once, on a worker thread.
    pub work: Box<dyn FnOnce() -> RunReport + Send>,
}

/// A worker's finished run: slot index, cache name, and the report.
type FinishedRun = (usize, Option<String>, RunReport);

impl Job {
    /// A custom job cached under `label` + a fingerprint of
    /// `fingerprint_input`, which must capture *every* knob that affects
    /// the result (typically `format!("{:?}", custom_config)`).
    pub fn custom(
        label: impl Into<String>,
        fingerprint_input: &str,
        work: impl FnOnce() -> RunReport + Send + 'static,
    ) -> Job {
        let label = label.into();
        let fp = dylect_sim_core::kv::fingerprint64(&format!(
            "report-v{};{label};{fingerprint_input};{}",
            RunReport::CACHE_FORMAT_VERSION,
            telemetry_env_fingerprint(),
        ));
        Job {
            cache_name: Some(format!("{}-{fp:016x}", sanitize(&label))),
            label,
            work: Box::new(work),
        }
    }
}

/// Raw values of the telemetry-affecting environment variables, folded
/// into every cache fingerprint. Telemetry is observation-only — the
/// *report* would be identical either way — but binaries that enable it
/// also export artifacts a cache hit would silently skip, so an entry
/// produced under one telemetry configuration must never satisfy a run
/// under another.
fn telemetry_env_fingerprint() -> String {
    let get = |key: &str| std::env::var(key).unwrap_or_default();
    // `DYLECT_CHECKPOINT_DIR` rides along for the same reason: a cache hit
    // skips execution, which would silently skip populating the warmup
    // checkpoint a warm-start sweep expects to find afterwards.
    // `DYLECT_PROF` is folded in for symmetry even though profiling cannot
    // change a report: a run executed with profiling on also produces host
    // `.prof.jsonl` artifacts that a cache hit would silently skip.
    // `DYLECT_DIGEST` likewise: the report is identical with digests on
    // (asserted by tests/determinism.rs), but a digest-enabled run also
    // exports a `.digest.jsonl` stream a cache hit would skip. And a
    // `DYLECT_DIGEST_PERTURB` run is *deliberately corrupted* — its report
    // must never be served to, or taken from, an unperturbed matrix.
    // `DYLECT_SCENARIO` changes the simulation outright (tenant mix,
    // nested walks, events), so a scenario entry must never collide with
    // a plain one.
    format!(
        "span_sample={};shadow={};checkpoint_dir={};prof={};digest={};digest_perturb={};scenario={}",
        get("DYLECT_SPAN_SAMPLE"),
        get("DYLECT_SHADOW"),
        get("DYLECT_CHECKPOINT_DIR"),
        get("DYLECT_PROF"),
        get("DYLECT_DIGEST"),
        get("DYLECT_DIGEST_PERTURB"),
        get("DYLECT_SCENARIO"),
    )
}

fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '.' | '_' | '-' => c,
            _ => '_',
        })
        .collect()
}

/// Parses a `DYLECT_JOBS` value: unset is `Ok(None)` (caller picks a
/// default), a positive integer is `Ok(Some(n))`, and anything else —
/// garbage text or `0` — is a usage error. A typo in the variable must
/// fail loudly, not silently serialize a long experiment matrix.
pub fn parse_jobs(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "DYLECT_JOBS must be a positive worker count, got `{raw}` \
             (unset it to use every core)"
        )),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "DYLECT_JOBS must be a positive integer, got `{raw}`"
        )),
    }
}

/// [`parse_jobs`] against the live environment; a malformed value prints a
/// usage message and exits with status 2.
pub fn jobs_from_env() -> Option<usize> {
    let raw = std::env::var("DYLECT_JOBS").ok();
    match parse_jobs(raw.as_deref()) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("usage: {msg}");
            std::process::exit(2);
        }
    }
}

/// Parses a `DYLECT_CHECKPOINT_DIR` value: unset is `Ok(None)` (warmup
/// checkpointing off), a non-empty path enables it. An empty or blank
/// value is a usage error — it would silently checkpoint into the current
/// directory's root, so a mis-exported variable must fail loudly.
pub fn parse_checkpoint_dir(raw: Option<&str>) -> Result<Option<PathBuf>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    if raw.trim().is_empty() {
        return Err(
            "DYLECT_CHECKPOINT_DIR must be a directory path, got an empty value \
             (unset it to disable warmup checkpoints)"
                .to_owned(),
        );
    }
    Ok(Some(PathBuf::from(raw)))
}

/// [`parse_checkpoint_dir`] against the live environment; a malformed
/// value prints a usage message and exits with status 2.
pub fn checkpoint_dir_from_env() -> Option<PathBuf> {
    let raw = std::env::var("DYLECT_CHECKPOINT_DIR").ok();
    match parse_checkpoint_dir(raw.as_deref()) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("usage: {msg}");
            std::process::exit(2);
        }
    }
}

/// Reads the `warmup_secs=` sidecar written next to a checkpoint, so a
/// warm-start can log the measured wall-clock saving.
fn checkpoint_warmup_secs(dir: &Path, stem: &str) -> Option<f64> {
    let text = fs::read_to_string(dir.join(format!("{stem}.meta"))).ok()?;
    text.strip_prefix("warmup_secs=")?.trim().parse().ok()
}

/// Parses a `DYLECT_PROGRESS_DIR` value: unset is `Ok(None)` (the caller
/// picks its default), a non-empty path overrides where live-progress
/// marker files land. A blank value is a usage error, same contract as
/// `DYLECT_CHECKPOINT_DIR`.
pub fn parse_progress_dir(raw: Option<&str>) -> Result<Option<PathBuf>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    if raw.trim().is_empty() {
        return Err(
            "DYLECT_PROGRESS_DIR must be a directory path, got an empty value \
             (unset it to use results/progress)"
                .to_owned(),
        );
    }
    Ok(Some(PathBuf::from(raw)))
}

/// [`parse_progress_dir`] against the live environment; a malformed value
/// prints a usage message and exits with status 2.
pub fn progress_dir_from_env() -> Option<PathBuf> {
    let raw = std::env::var("DYLECT_PROGRESS_DIR").ok();
    match parse_progress_dir(raw.as_deref()) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("usage: {msg}");
            std::process::exit(2);
        }
    }
}

/// Lifecycle of one run as reflected in its progress marker. `Failed` is
/// terminal too: a marker stuck at `running` after the process exits means
/// the runner itself died (killed, OOM), not that the job's work panicked.
#[derive(Clone, Copy, Debug)]
enum ProgressState {
    Running,
    Done(f64),
    Failed(f64),
}

/// Writes one run's live-progress marker (a single flat JSON object) under
/// the progress directory, where `dylect-serve` picks it up for `/runs`
/// and `/metrics`. Failures degrade to no progress reporting, never to a
/// failed run.
fn write_progress(dir: &Option<PathBuf>, label: &str, wid: usize, state: ProgressState) {
    let Some(dir) = dir else { return };
    let escaped: String = label
        .chars()
        .map(|c| match c {
            '"' | '\\' => '_',
            c if (c as u32) < 0x20 => '_',
            c => c,
        })
        .collect();
    let body = match state {
        ProgressState::Running => {
            format!("{{\"run\":\"{escaped}\",\"state\":\"running\",\"wid\":{wid}}}\n")
        }
        ProgressState::Done(s) => {
            format!("{{\"run\":\"{escaped}\",\"state\":\"done\",\"wid\":{wid},\"secs\":{s:.3}}}\n")
        }
        ProgressState::Failed(s) => {
            format!(
                "{{\"run\":\"{escaped}\",\"state\":\"failed\",\"wid\":{wid},\"secs\":{s:.3}}}\n"
            )
        }
    };
    let path = dir.join(format!("{}.run.json", sanitize(label)));
    let _ = write_atomically(&path, &body);
}

/// Drop guard around a job's work closure: if the closure panics (unwinds
/// past the guard), the run's marker flips to its terminal `failed` state
/// instead of rotting as `running` forever.
struct FailMarker<'a> {
    dir: &'a Option<PathBuf>,
    label: &'a str,
    wid: usize,
    t0: Instant,
    armed: bool,
}

impl Drop for FailMarker<'_> {
    fn drop(&mut self) {
        if self.armed {
            let secs = self.t0.elapsed().as_secs_f64();
            write_progress(self.dir, self.label, self.wid, ProgressState::Failed(secs));
        }
    }
}

/// The parallel, cached experiment runner.
pub struct Runner {
    jobs: usize,
    cache_dir: Option<PathBuf>,
    read_cache: bool,
    progress_dir: Option<PathBuf>,
}

impl Runner {
    /// Configures the runner from the environment:
    ///
    /// - `DYLECT_JOBS=n` — worker count (default: available parallelism);
    /// - `DYLECT_CACHE_DIR=path` — cache location (default `results/cache`);
    /// - `--no-cache` / `DYLECT_NO_CACHE=1` — ignore existing cache entries
    ///   (fresh results are still written, refreshing the cache);
    /// - `DYLECT_PROF=1` — host self-profiling (see `dylect_sim_core::prof`);
    /// - `DYLECT_PROGRESS_DIR=path` — live-progress markers for
    ///   `dylect-serve` (default `results/progress`).
    pub fn from_env() -> Runner {
        if let Err(msg) = prof::init_from_env() {
            eprintln!("usage: {msg}");
            std::process::exit(2);
        }
        if let Err(msg) = digest::init_from_env() {
            eprintln!("usage: {msg}");
            std::process::exit(2);
        }
        // Any crash from here on leaves a flight-recorder dump behind.
        blackbox::install_panic_hook();
        let jobs = jobs_from_env()
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let no_cache = std::env::args().any(|a| a == "--no-cache")
            || std::env::var("DYLECT_NO_CACHE").is_ok_and(|v| v != "0");
        let cache_dir = std::env::var("DYLECT_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results/cache"));
        let progress_dir =
            progress_dir_from_env().unwrap_or_else(|| PathBuf::from("results/progress"));
        Runner {
            jobs,
            cache_dir: Some(cache_dir),
            read_cache: !no_cache,
            progress_dir: Some(progress_dir),
        }
    }

    /// A fully explicit runner (used by the determinism tests): `jobs`
    /// workers, optional cache directory, optionally reading existing
    /// entries.
    pub fn with(jobs: usize, cache_dir: Option<PathBuf>, read_cache: bool) -> Runner {
        Runner {
            jobs: jobs.max(1),
            cache_dir,
            read_cache,
            // Explicit runners (tests) never litter progress markers.
            progress_dir: None,
        }
    }

    /// Runs the matrix, returning reports in key order.
    pub fn run_matrix(&self, keys: Vec<RunKey>) -> Vec<RunReport> {
        self.run_jobs(keys.into_iter().map(RunKey::into_job).collect())
    }

    /// Runs arbitrary jobs, returning reports in submission order.
    pub fn run_jobs(&self, jobs: Vec<Job>) -> Vec<RunReport> {
        let started = Instant::now();
        let total = jobs.len();
        let mut slots: Vec<Option<RunReport>> = (0..total).map(|_| None).collect();

        // Pass 1: serve cache hits and collapse duplicate fingerprints, so
        // the pool only ever simulates distinct, unseen configurations.
        let mut misses: Vec<(usize, Job)> = Vec::new();
        let mut dup_of: Vec<(usize, usize)> = Vec::new();
        let mut seen: Vec<(String, usize)> = Vec::new();
        let mut cached = 0usize;
        for (i, job) in jobs.into_iter().enumerate() {
            if let Some(name) = &job.cache_name {
                if let Some(&(_, rep)) = seen.iter().find(|(n, _)| n == name) {
                    dup_of.push((i, rep));
                    continue;
                }
                if self.read_cache {
                    if let Some(report) = self.cache_read(name) {
                        eprintln!("[runner] {}: cached", job.label);
                        cached += 1;
                        slots[i] = Some(report);
                        continue;
                    }
                }
                seen.push((name.clone(), i));
            }
            misses.push((i, job));
        }

        // Pass 2: simulate the misses on the worker pool.
        let n_misses = misses.len();
        if n_misses > 0 {
            let workers = self.jobs.min(n_misses);
            let queue: Vec<Mutex<Option<(usize, Job)>>> =
                misses.into_iter().map(|m| Mutex::new(Some(m))).collect();
            let next = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            let results: Vec<Mutex<Option<FinishedRun>>> =
                (0..n_misses).map(|_| Mutex::new(None)).collect();
            let (queue_ref, next_ref, done_ref, results_ref, started_ref) =
                (&queue, &next, &done, &results, &started);
            let progress_ref = &self.progress_dir;
            std::thread::scope(|scope| {
                for wid in 0..workers {
                    scope.spawn(move || loop {
                        let q = next_ref.fetch_add(1, Ordering::Relaxed);
                        if q >= n_misses {
                            break;
                        }
                        let (slot, job) =
                            queue_ref[q].lock().unwrap().take().expect("job taken once");
                        eprintln!("[runner] w{wid:02} start {}", job.label);
                        write_progress(progress_ref, &job.label, wid, ProgressState::Running);
                        blackbox::set_label(&job.label);
                        blackbox::record(
                            blackbox::EventKind::RunStart,
                            dylect_sim_core::kv::fingerprint64(&job.label),
                            wid as u64,
                        );
                        let t0 = Instant::now();
                        let mut fail = FailMarker {
                            dir: progress_ref,
                            label: &job.label,
                            wid,
                            t0,
                            armed: true,
                        };
                        let report = (job.work)();
                        fail.armed = false;
                        let job_secs = t0.elapsed().as_secs_f64();
                        blackbox::record(
                            blackbox::EventKind::RunEnd,
                            dylect_sim_core::kv::fingerprint64(&job.label),
                            wid as u64,
                        );
                        if prof::enabled() {
                            let busy = t0.elapsed().as_nanos() as u64;
                            prof::worker_busy(prof::WorkerKind::Runner, wid, busy, 1);
                        }
                        write_progress(
                            progress_ref,
                            &job.label,
                            wid,
                            ProgressState::Done(job_secs),
                        );
                        let finished = done_ref.fetch_add(1, Ordering::Relaxed) + 1;
                        let wall = started_ref.elapsed().as_secs_f64();
                        eprintln!(
                            "[runner] w{wid:02} done  {}: {job_secs:.1}s ({finished}/{n_misses} sims, {:.2} sims/s)",
                            job.label,
                            finished as f64 / wall.max(1e-9),
                        );
                        *results_ref[q].lock().unwrap() = Some((slot, job.cache_name, report));
                    });
                }
            });
            for cell in results {
                let (slot, cache_name, report) =
                    cell.into_inner().unwrap().expect("worker filled result");
                if let Some(name) = &cache_name {
                    self.cache_write(name, &report);
                }
                slots[slot] = Some(report);
            }
        }

        // Pass 3: fill duplicate keys from their representative's report.
        for (dup, rep) in dup_of {
            slots[dup] = Some(slots[rep].clone().expect("representative ran"));
        }

        if total > 1 {
            eprintln!(
                "[runner] {total} runs ({cached} cached, {} deduped, {n_misses} simulated) in {:.1}s on {} worker(s)",
                total - cached - n_misses,
                started.elapsed().as_secs_f64(),
                self.jobs.min(n_misses.max(1)),
            );
        }
        slots.into_iter().map(|s| s.expect("slot filled")).collect()
    }

    fn cache_path(&self, name: &str) -> Option<PathBuf> {
        Some(self.cache_dir.as_ref()?.join(format!("{name}.report")))
    }

    fn cache_read(&self, name: &str) -> Option<RunReport> {
        let _p = prof::scope(prof::HostPhase::CacheRead);
        let text = fs::read_to_string(self.cache_path(name)?).ok()?;
        RunReport::from_cache_text(&text)
    }

    fn cache_write(&self, name: &str, report: &RunReport) {
        let Some(path) = self.cache_path(name) else {
            return;
        };
        let _p = prof::scope(prof::HostPhase::CacheWrite);
        if let Err(e) = write_atomically(&path, &report.to_cache_text()) {
            // A read-only checkout degrades to uncached, not to failure.
            eprintln!("[runner] warning: could not write {}: {e}", path.display());
        }
    }
}

fn write_atomically(path: &Path, text: &str) -> std::io::Result<()> {
    write_bytes_atomically(path, text.as_bytes())
}

fn write_bytes_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().expect("cache path has a parent");
    fs::create_dir_all(dir)?;
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Runs the matrix with the environment-configured runner (the common
/// entry point for the figure binaries).
pub fn run_matrix(keys: Vec<RunKey>) -> Vec<RunReport> {
    Runner::from_env().run_matrix(keys)
}

/// Runs custom jobs with the environment-configured runner.
pub fn run_jobs(jobs: Vec<Job>) -> Vec<RunReport> {
    Runner::from_env().run_jobs(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    /// Regression test: a cached report produced under one telemetry
    /// configuration must not satisfy a run under another, so the
    /// telemetry env vars must perturb the cache fingerprint. (This test
    /// owns `DYLECT_SPAN_SAMPLE`/`DYLECT_SHADOW` mutation in this binary;
    /// keep it the only one touching them to avoid cross-test races.)
    #[test]
    fn jobs_parsing_accepts_counts_and_rejects_garbage() {
        assert_eq!(parse_jobs(None), Ok(None));
        assert_eq!(parse_jobs(Some("1")), Ok(Some(1)));
        assert_eq!(parse_jobs(Some(" 8 ")), Ok(Some(8)));
        assert!(parse_jobs(Some("0")).is_err(), "0 workers cannot run");
        assert!(parse_jobs(Some("four")).is_err());
        assert!(parse_jobs(Some("")).is_err());
        assert!(parse_jobs(Some("-2")).is_err());
        assert!(parse_jobs(Some("2.5")).is_err());
    }

    #[test]
    fn checkpoint_dir_parsing_accepts_paths_and_rejects_blank() {
        assert_eq!(parse_checkpoint_dir(None), Ok(None));
        assert_eq!(
            parse_checkpoint_dir(Some("results/ckpt")),
            Ok(Some(PathBuf::from("results/ckpt")))
        );
        assert!(parse_checkpoint_dir(Some("")).is_err(), "blank is a typo");
        assert!(parse_checkpoint_dir(Some("   ")).is_err());
    }

    #[test]
    fn progress_dir_parsing_accepts_paths_and_rejects_blank() {
        assert_eq!(parse_progress_dir(None), Ok(None));
        assert_eq!(
            parse_progress_dir(Some("results/progress")),
            Ok(Some(PathBuf::from("results/progress")))
        );
        assert!(parse_progress_dir(Some("")).is_err(), "blank is a typo");
        assert!(parse_progress_dir(Some("  ")).is_err());
    }

    /// Progress markers are flat JSON a `parse_flat_object` consumer
    /// (dylect-serve) can read back, for both lifecycle states.
    #[test]
    fn progress_markers_round_trip_through_flat_json() {
        let dir = std::env::temp_dir().join(format!("dylect-progress-test-{}", std::process::id()));
        let dir_opt = Some(dir.clone());
        write_progress(&dir_opt, "omnetpp/dylect/high", 2, ProgressState::Running);
        let path = dir.join(format!("{}.run.json", sanitize("omnetpp/dylect/high")));
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"state\":\"running\""), "{text}");
        assert!(text.contains("\"wid\":2"), "{text}");
        write_progress(&dir_opt, "omnetpp/dylect/high", 2, ProgressState::Done(1.5));
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"state\":\"done\""), "{text}");
        assert!(text.contains("\"secs\":1.500"), "{text}");
        write_progress(
            &dir_opt,
            "omnetpp/dylect/high",
            2,
            ProgressState::Failed(0.25),
        );
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"state\":\"failed\""), "{text}");
        fs::remove_dir_all(&dir).ok();
    }

    /// A job whose work panics must flip its marker to the terminal
    /// `failed` state — not leave it rotting at `running`, which the serve
    /// UI would report as live forever.
    #[test]
    fn a_panicking_job_leaves_a_failed_marker_not_a_stale_running_one() {
        let dir = std::env::temp_dir().join(format!("dylect-failmark-test-{}", std::process::id()));
        let runner = Runner {
            jobs: 1,
            cache_dir: None,
            read_cache: false,
            progress_dir: Some(dir.clone()),
        };
        let jobs = vec![Job {
            label: "boom".to_owned(),
            cache_name: None,
            work: Box::new(|| panic!("injected job failure")),
        }];
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner.run_jobs(jobs)));
        assert!(outcome.is_err(), "the panic propagates to the caller");
        let text = fs::read_to_string(dir.join("boom.run.json")).unwrap();
        assert!(text.contains("\"state\":\"failed\""), "{text}");
        assert!(text.contains("\"run\":\"boom\""), "{text}");
        assert!(
            text.contains("\"secs\":"),
            "terminal markers carry a duration: {text}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    /// Regression test: a cached report produced without profiling must not
    /// satisfy a `DYLECT_PROF=1` run (which also emits host `.prof.jsonl`
    /// artifacts a hit would skip), so the prof env var perturbs the cache
    /// fingerprint. (This test owns `DYLECT_PROF` mutation in this binary.)
    #[test]
    fn fingerprint_tracks_prof_env_var() {
        let key = RunKey::new(
            BenchmarkSpec::by_name("omnetpp").expect("in suite"),
            SchemeKind::dylect(),
            CompressionSetting::High,
            Mode::quick(),
        );
        std::env::remove_var("DYLECT_PROF");
        let base = key.fingerprint();
        let base_ckpt = key.checkpoint_fingerprint();
        let base_custom = Job::custom("p", "x", || unreachable!("job never runs")).cache_name;

        std::env::set_var("DYLECT_PROF", "1");
        assert_ne!(key.fingerprint(), base, "profiling changes the key");
        assert_eq!(
            key.checkpoint_fingerprint(),
            base_ckpt,
            "checkpoints stay shared across profiling settings"
        );
        assert_ne!(
            Job::custom("p", "x", || unreachable!("job never runs")).cache_name,
            base_custom,
            "custom jobs fingerprint DYLECT_PROF too"
        );

        std::env::remove_var("DYLECT_PROF");
        assert_eq!(key.fingerprint(), base, "restoring the env restores it");
    }

    /// Regression test: a cached report produced without checkpointing must
    /// not satisfy a warm-start sweep (which expects execution to populate
    /// the checkpoint), so `DYLECT_CHECKPOINT_DIR` perturbs the cache
    /// fingerprint — but never the *checkpoint* fingerprint, which must
    /// stay shared across measure windows and telemetry settings. (This
    /// test owns `DYLECT_CHECKPOINT_DIR` mutation in this binary.)
    #[test]
    fn fingerprint_tracks_checkpoint_env_but_checkpoint_key_does_not() {
        let key = RunKey::new(
            BenchmarkSpec::by_name("omnetpp").expect("in suite"),
            SchemeKind::dylect(),
            CompressionSetting::High,
            Mode::quick(),
        );
        std::env::remove_var("DYLECT_CHECKPOINT_DIR");
        let base = key.fingerprint();
        let base_ckpt = key.checkpoint_fingerprint();

        std::env::set_var("DYLECT_CHECKPOINT_DIR", "results/ckpt");
        assert_ne!(key.fingerprint(), base, "checkpointing changes the key");
        assert_eq!(
            key.checkpoint_fingerprint(),
            base_ckpt,
            "the checkpoint's own identity is env-independent"
        );
        std::env::remove_var("DYLECT_CHECKPOINT_DIR");
        assert_eq!(key.fingerprint(), base, "restoring the env restores it");

        // Sweep bins differing only in the measurement window share one
        // warmup checkpoint; a different warmup prefix must not.
        let mut longer = key.clone();
        longer.mode.measure_ops *= 2;
        assert_eq!(longer.checkpoint_fingerprint(), base_ckpt);
        assert_ne!(longer.fingerprint(), key.fingerprint());
        let other_scheme = RunKey::new(
            key.spec.clone(),
            SchemeKind::tmcc(),
            CompressionSetting::High,
            Mode::quick(),
        );
        assert_ne!(other_scheme.checkpoint_fingerprint(), base_ckpt);
    }

    /// A checkpoint round trip through `execute`: the first run populates
    /// the shared checkpoint, the second warm-starts from it, and both
    /// reports are byte-identical to an uncheckpointed run.
    #[test]
    fn execute_warm_starts_from_a_shared_checkpoint() {
        let key = RunKey::new(
            BenchmarkSpec::by_name("omnetpp").expect("in suite"),
            SchemeKind::dylect(),
            CompressionSetting::High,
            Mode::quick(),
        );
        let cold = key.execute();
        let dir = std::env::temp_dir().join(format!("dylect-ckpt-test-{}", std::process::id()));
        let stem = format!(
            "{}-{:016x}",
            sanitize(&key.label()),
            key.checkpoint_fingerprint()
        );
        // Drive the checkpoint path directly (no env mutation: other tests
        // in this binary read the environment concurrently).
        let warmup = warmup_for(&key.spec, key.mode);
        let mut donor = System::new(key.config(), &key.spec);
        let snap = donor.warm_up_and_snapshot(warmup);
        write_bytes_atomically(&dir.join(format!("{stem}.ckpt")), &snap).unwrap();
        donor.start_measurement();
        donor.execute(key.mode.measure_ops);
        assert_eq!(donor.finish().to_cache_text(), cold.to_cache_text());

        let mut warm = System::new(key.config(), &key.spec);
        let bytes = fs::read(dir.join(format!("{stem}.ckpt"))).unwrap();
        let resumed = warm
            .resume_measurement(&bytes, key.mode.measure_ops)
            .expect("checkpoint restores");
        assert_eq!(resumed.to_cache_text(), cold.to_cache_text());
        fs::remove_dir_all(&dir).ok();
    }

    /// Regression test: a digest-enabled run exports a `.digest.jsonl`
    /// stream a cache hit would skip, and a perturbed run's report is
    /// deliberately corrupted — both env vars must perturb the cache
    /// fingerprint. (This test owns `DYLECT_DIGEST`/`DYLECT_DIGEST_PERTURB`
    /// mutation in this binary.)
    #[test]
    fn fingerprint_tracks_digest_env_vars() {
        let key = RunKey::new(
            BenchmarkSpec::by_name("omnetpp").expect("in suite"),
            SchemeKind::dylect(),
            CompressionSetting::High,
            Mode::quick(),
        );
        std::env::remove_var("DYLECT_DIGEST");
        std::env::remove_var("DYLECT_DIGEST_PERTURB");
        let base = key.fingerprint();
        let base_ckpt = key.checkpoint_fingerprint();

        std::env::set_var("DYLECT_DIGEST", "1");
        let with_digest = key.fingerprint();
        assert_ne!(with_digest, base, "digest capture changes the key");
        std::env::set_var("DYLECT_DIGEST_PERTURB", "6400");
        assert_ne!(
            key.fingerprint(),
            with_digest,
            "perturbation changes it again"
        );
        assert_eq!(
            key.checkpoint_fingerprint(),
            base_ckpt,
            "warmup checkpoints stay shared across digest settings"
        );

        std::env::remove_var("DYLECT_DIGEST");
        std::env::remove_var("DYLECT_DIGEST_PERTURB");
        assert_eq!(key.fingerprint(), base, "restoring the env restores it");
    }

    /// Regression test: a scenario run simulates a different machine
    /// (tenant mix, nested walks, events), so `DYLECT_SCENARIO` must
    /// perturb the cache fingerprint; and the nested-walk key override
    /// must never share an entry with the flat run. (This test owns
    /// `DYLECT_SCENARIO` mutation in this binary.)
    #[test]
    fn fingerprint_tracks_scenario_env_and_nested_override() {
        let key = RunKey::new(
            BenchmarkSpec::by_name("omnetpp").expect("in suite"),
            SchemeKind::dylect(),
            CompressionSetting::High,
            Mode::quick(),
        );
        std::env::remove_var("DYLECT_SCENARIO");
        let base = key.fingerprint();

        std::env::set_var("DYLECT_SCENARIO", "tenants=omnetpp,mcf");
        assert_ne!(key.fingerprint(), base, "a scenario changes the key");
        std::env::remove_var("DYLECT_SCENARIO");
        assert_eq!(key.fingerprint(), base, "restoring the env restores it");

        let nested = key.clone().with_nested();
        assert_ne!(nested.fingerprint(), base, "2D walks change the key");
        assert!(nested.label().ends_with("/nested"));
        assert!(nested.config().core.nested_walk);
    }

    #[test]
    fn fingerprint_tracks_telemetry_env_vars() {
        let key = RunKey::new(
            BenchmarkSpec::by_name("omnetpp").expect("in suite"),
            SchemeKind::dylect(),
            CompressionSetting::High,
            Mode::quick(),
        );
        std::env::remove_var("DYLECT_SPAN_SAMPLE");
        std::env::remove_var("DYLECT_SHADOW");
        let base = key.fingerprint();
        let base_custom = Job::custom("t", "x", || unreachable!("job never runs")).cache_name;

        std::env::set_var("DYLECT_SPAN_SAMPLE", "64");
        assert_ne!(key.fingerprint(), base, "span sampling changes the key");
        std::env::set_var("DYLECT_SHADOW", "1");
        let both = key.fingerprint();
        assert_ne!(both, base);
        assert_ne!(
            Job::custom("t", "x", || unreachable!("job never runs")).cache_name,
            base_custom,
            "custom jobs fingerprint the env too"
        );

        std::env::remove_var("DYLECT_SPAN_SAMPLE");
        std::env::remove_var("DYLECT_SHADOW");
        assert_eq!(key.fingerprint(), base, "restoring the env restores it");
        assert_eq!(
            Job::custom("t", "x", || unreachable!("job never runs")).cache_name,
            base_custom
        );
    }
}
