//! Shared experiment harness for the paper-reproduction binaries.
//!
//! Every `src/bin/*` binary regenerates one table or figure of the DyLeCT
//! paper. They share this harness: it builds the paper's system (Table 3)
//! for a benchmark × scheme × compression-setting combination, runs
//! warmup + measurement, and returns the [`RunReport`].
//!
//! Runs are declared as a list of [`RunKey`]s and executed by the
//! [`runner`] module: independent simulations run in parallel (one worker
//! per core, `DYLECT_JOBS=n` to override) and finished reports are cached
//! under `results/cache/` so binaries sharing matrix cells — `allfigs`
//! computes almost every cell the per-figure binaries need — never
//! re-simulate them. See [`runner`] for the cache/invalidation story.
//!
//! Two effort levels exist (the simulator is deterministic, so results are
//! exactly reproducible at either, parallel or not):
//!
//! - **full** (default): 1/4-scale footprints, 4 cores, 6 M warmup +
//!   1 M measured operations — minutes per figure;
//! - **quick** (`--quick` or `DYLECT_QUICK=1`): 1/32-scale, 2 cores,
//!   shorter windows — seconds per figure, noisier numbers.

pub mod runner;

use dylect_cpu::PageSizeMode;
use dylect_sim::{RunReport, SchemeKind, SystemConfig};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

pub use runner::{run_jobs, run_matrix, setting_label, Job, RunKey, Runner};

/// Effort level of a reproduction run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Mode {
    /// Footprint scale denominator (capped per benchmark so enough
    /// compression pressure remains — see `BenchmarkSpec::effective_scale`).
    pub scale: u64,
    /// Cores.
    pub cores: usize,
    /// Warmup operations.
    pub warmup_ops: u64,
    /// Measured operations.
    pub measure_ops: u64,
}

impl Mode {
    /// The full reproduction mode.
    pub fn full() -> Mode {
        Mode {
            scale: 4,
            cores: 4,
            warmup_ops: 6_000_000,
            measure_ops: 600_000,
        }
    }

    /// The quick smoke mode.
    pub fn quick() -> Mode {
        Mode {
            scale: 32,
            cores: 2,
            warmup_ops: 800_000,
            measure_ops: 200_000,
        }
    }

    /// Reads the mode from the CLI (`--quick`) or `DYLECT_QUICK=1`.
    pub fn from_env() -> Mode {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("DYLECT_QUICK").is_ok_and(|v| v != "0");
        if quick {
            Mode::quick()
        } else {
            Mode::full()
        }
    }
}

/// Builds the paper's system configuration for one run.
pub fn config_for(
    spec: &BenchmarkSpec,
    scheme: SchemeKind,
    setting: CompressionSetting,
    mode: Mode,
) -> SystemConfig {
    let scale = effective_scale(spec, mode);
    let mut cfg = SystemConfig::paper(spec, scheme.clone(), setting);
    cfg.scale = scale;
    cfg.cores = mode.cores;
    cfg.dram_bytes = match scheme {
        SchemeKind::NoCompression => spec.dram_bytes_no_compression(scale),
        _ => spec.dram_bytes(setting, scale),
    };
    cfg
}

/// The per-benchmark scale this mode actually runs at.
pub fn effective_scale(spec: &BenchmarkSpec, mode: Mode) -> u64 {
    // Full mode demands real CTE pressure (>=24k uncompressed-capacity
    // pages); quick mode settles for less.
    let min_capacity = if mode.scale <= 4 { 24_000 } else { 3_000 };
    spec.effective_scale(mode.scale, min_capacity)
}

/// Warmup operations for a benchmark: at least the mode's base, and enough
/// for the adaptive machinery (ML0 promotion, CTE/L3 contents) to converge
/// on large footprints.
pub fn warmup_for(spec: &BenchmarkSpec, mode: Mode) -> u64 {
    mode.warmup_ops
        .max(spec.footprint_pages(effective_scale(spec, mode)) * 12)
}

/// Runs one benchmark × scheme × setting and returns the report.
///
/// This executes directly, with no pool or cache — for single ad-hoc runs
/// and tests. Binaries should declare [`RunKey`]s and use [`run_matrix`].
pub fn run_one(
    spec: &BenchmarkSpec,
    scheme: SchemeKind,
    setting: CompressionSetting,
    mode: Mode,
) -> RunReport {
    RunKey::new(spec.clone(), scheme, setting, mode).execute()
}

/// Like [`run_one`] but with an explicit page-size mode (Figure 3 compares
/// 4 KB against 2 MB pages).
pub fn run_one_with_pages(
    spec: &BenchmarkSpec,
    scheme: SchemeKind,
    setting: CompressionSetting,
    mode: Mode,
    pages: PageSizeMode,
) -> RunReport {
    RunKey::new(spec.clone(), scheme, setting, mode)
        .with_pages(pages)
        .execute()
}

/// Geometric mean of a non-empty sequence (0 if empty).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Prints a TSV table with a title line (the harness output format; rows
/// paste directly into plotting scripts).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
    println!();
}

/// The benchmark names in the paper's presentation order. With `--all` on
/// the command line this is the full twelve-benchmark suite; otherwise the
/// reduced representative subset, keeping single-figure runs affordable
/// (the simulator is single-threaded).
pub fn suite() -> Vec<BenchmarkSpec> {
    if std::env::args().any(|a| a == "--all") {
        BenchmarkSpec::suite()
    } else {
        reduced_suite()
    }
}

/// Always the full twelve-benchmark suite.
pub fn full_suite() -> Vec<BenchmarkSpec> {
    BenchmarkSpec::suite()
}

/// A reduced subset for expensive sweeps (one representative per suite).
pub fn reduced_suite() -> Vec<BenchmarkSpec> {
    ["bfs", "mcf", "omnetpp", "canneal"]
        .iter()
        .map(|n| BenchmarkSpec::by_name(n).expect("known benchmark"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_math() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn quick_mode_is_cheaper() {
        let q = Mode::quick();
        let f = Mode::full();
        assert!(q.scale > f.scale);
        assert!(q.warmup_ops < f.warmup_ops);
    }

    #[test]
    fn config_for_sizes_dram_by_scheme() {
        let spec = BenchmarkSpec::by_name("omnetpp").unwrap();
        let m = Mode::quick();
        let nc = config_for(
            &spec,
            SchemeKind::NoCompression,
            CompressionSetting::High,
            m,
        );
        let tm = config_for(&spec, SchemeKind::tmcc(), CompressionSetting::High, m);
        assert!(nc.dram_bytes > tm.dram_bytes);
    }

    #[test]
    fn reduced_suite_members() {
        assert_eq!(reduced_suite().len(), 4);
    }
}
