//! Figure 25: fraction of uncompressed pages in ML0 as the DRAM page group
//! size varies (1, 3, 7, 15 pages — i.e. 1- to 4-bit short CTEs), at high
//! compression.
//!
//! Paper: the fraction grows with group size but saturates — group size 3
//! (2-bit CTEs) reaches ~66% and 7 adds little, so 2 bits is the sweet
//! spot (3-bit CTEs would halve the pre-gathered block's reach for no ML0
//! gain).

use dylect_bench::{print_table, reduced_suite, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let groups = [1u64, 3, 7, 15];
    let specs = if std::env::args().any(|a| a == "--all") {
        suite()
    } else {
        reduced_suite()
    };
    let mut keys = Vec::new();
    for spec in &specs {
        for &g in &groups {
            keys.push(RunKey::new(
                spec.clone(),
                SchemeKind::Dylect {
                    group_size: g,
                    cte_cache_bytes: 128 * 1024,
                },
                CompressionSetting::High,
                mode,
            ));
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut means = vec![0.0f64; groups.len()];
    for (spec, row_reports) in specs.iter().zip(reports.chunks_exact(groups.len())) {
        let mut row = vec![spec.name.to_owned()];
        for (i, (&g, r)) in groups.iter().zip(row_reports).enumerate() {
            let frac = r.occupancy.ml0_fraction_of_uncompressed();
            means[i] += frac;
            row.push(format!("{frac:.4}"));
            eprintln!("[fig25] {} G={g}: ML0 fraction {frac:.3}", spec.name);
        }
        rows.push(row);
    }
    let n = specs.len() as f64;
    rows.push(
        std::iter::once("MEAN".to_owned())
            .chain(means.iter().map(|m| format!("{:.4}", m / n)))
            .collect(),
    );
    print_table(
        "Figure 25: ML0 fraction of uncompressed pages vs group size, high compression (paper: ~0.66 at G=3, similar at G=7)",
        &["benchmark", "g1", "g3", "g7", "g15"],
        &rows,
    );
}
