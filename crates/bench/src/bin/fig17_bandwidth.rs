//! Figure 17: memory bandwidth utilization of the evaluated benchmarks on
//! a conventional system without compression.
//!
//! Paper: utilizations vary widely across the suite (roughly 10–80% of the
//! DDR4-3200 channel), establishing that the workloads are memory-intensive
//! but not uniformly bandwidth-bound.

use dylect_bench::{print_table, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let specs = suite();
    let keys = specs
        .iter()
        .map(|spec| {
            RunKey::new(
                spec.clone(),
                SchemeKind::NoCompression,
                CompressionSetting::Low,
                mode,
            )
        })
        .collect();
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    for (spec, r) in specs.iter().zip(&reports) {
        let util = r.bus_utilization();
        let gbps = util * 25.6;
        rows.push(vec![
            spec.name.to_owned(),
            format!("{util:.4}"),
            format!("{gbps:.2}"),
            format!("{:.1}", r.traffic_per_kilo_instruction()),
        ]);
        eprintln!(
            "[fig17] {}: {:.1}% ({gbps:.1} GB/s)",
            spec.name,
            util * 100.0
        );
    }
    print_table(
        "Figure 17: DRAM bandwidth utilization, no compression (paper: ~10-80% across the suite)",
        &[
            "benchmark",
            "bus_utilization",
            "gb_per_s",
            "blocks_per_kiloinstruction",
        ],
        &rows,
    );
}
