//! Figure 24: DRAM energy per instruction of DyLeCT (8 ranks) normalized
//! to a 2x-bigger conventional system without compression (16 ranks).
//!
//! Paper: ~60% on average — halving the DRAM chips halves the dominant
//! idle (refresh + background) energy.

use dylect_bench::{config_for, geomean, print_table, suite, Mode};
use dylect_sim::{SchemeKind, System};
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let setting = CompressionSetting::High;
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for spec in suite() {
        // The bigger no-compression system uses twice the ranks (paper §VI).
        let mut base_cfg = config_for(&spec, SchemeKind::NoCompression, setting, mode);
        base_cfg.dram_ranks = 16;
        base_cfg.dram_bytes *= 2;
        let base = System::new(base_cfg, &spec).run(mode.warmup_ops, mode.measure_ops);
        let dylect = dylect_bench::run_one(&spec, SchemeKind::dylect(), setting, mode);
        let ratio = dylect.energy_per_instruction_nj() / base.energy_per_instruction_nj();
        ratios.push(ratio);
        rows.push(vec![
            spec.name.to_owned(),
            format!("{:.3}", base.energy_per_instruction_nj()),
            format!("{:.3}", dylect.energy_per_instruction_nj()),
            format!("{ratio:.4}"),
            format!("{:.3}", dylect.energy.idle_fraction()),
        ]);
        eprintln!("[fig24] {}: {ratio:.3} of no-compression", spec.name);
    }
    rows.push(vec![
        "GEOMEAN".to_owned(),
        String::new(),
        String::new(),
        format!("{:.4}", geomean(&ratios)),
        String::new(),
    ]);
    print_table(
        "Figure 24: DRAM energy per instruction, DyLeCT(8 ranks)/NoComp(16 ranks) (paper: ~0.60)",
        &[
            "benchmark",
            "nocomp_nj_per_inst",
            "dylect_nj_per_inst",
            "ratio",
            "dylect_idle_fraction",
        ],
        &rows,
    );
}
