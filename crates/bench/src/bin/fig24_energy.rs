//! Figure 24: DRAM energy per instruction of DyLeCT (8 ranks) normalized
//! to a 2x-bigger conventional system without compression (16 ranks).
//!
//! Paper: ~60% on average — halving the DRAM chips halves the dominant
//! idle (refresh + background) energy.

use dylect_bench::{geomean, print_table, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let setting = CompressionSetting::High;
    let specs = suite();
    let mut keys = Vec::new();
    for spec in &specs {
        // The bigger no-compression system uses twice the ranks (paper §VI).
        keys.push(
            RunKey::new(spec.clone(), SchemeKind::NoCompression, setting, mode).with_ranks(16, 2),
        );
        keys.push(RunKey::new(
            spec.clone(),
            SchemeKind::dylect(),
            setting,
            mode,
        ));
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (spec, pair) in specs.iter().zip(reports.chunks_exact(2)) {
        let [base, dylect] = pair else {
            unreachable!("chunks of 2");
        };
        let ratio = dylect.energy_per_instruction_nj() / base.energy_per_instruction_nj();
        ratios.push(ratio);
        rows.push(vec![
            spec.name.to_owned(),
            format!("{:.3}", base.energy_per_instruction_nj()),
            format!("{:.3}", dylect.energy_per_instruction_nj()),
            format!("{ratio:.4}"),
            format!("{:.3}", dylect.energy.idle_fraction()),
        ]);
        eprintln!("[fig24] {}: {ratio:.3} of no-compression", spec.name);
    }
    rows.push(vec![
        "GEOMEAN".to_owned(),
        String::new(),
        String::new(),
        format!("{:.4}", geomean(&ratios)),
        String::new(),
    ]);
    print_table(
        "Figure 24: DRAM energy per instruction, DyLeCT(8 ranks)/NoComp(16 ranks) (paper: ~0.60)",
        &[
            "benchmark",
            "nocomp_nj_per_inst",
            "dylect_nj_per_inst",
            "ratio",
            "dylect_idle_fraction",
        ],
        &rows,
    );
}
