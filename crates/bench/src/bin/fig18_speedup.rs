//! Figure 18: DyLeCT performance normalized to TMCC at low and high
//! compression, plus the always-hit upper bound.
//!
//! Paper: +11% at low compression, +9.5% at high (10.25% overall);
//! DyLeCT tracks the upper bound closely; canneal benefits most at low
//! compression (+17%) and drops to +10% at high.

use dylect_bench::{geomean, print_table, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let specs = suite();
    let mut keys = Vec::new();
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        for spec in &specs {
            for scheme in [
                SchemeKind::tmcc(),
                SchemeKind::dylect(),
                SchemeKind::DylectAlwaysHit { group_size: 3 },
            ] {
                keys.push(RunKey::new(spec.clone(), scheme, setting, mode));
            }
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut chunks = reports.chunks_exact(3);
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        let mut per_setting = Vec::new();
        for spec in &specs {
            let [tmcc, dylect, upper] = chunks.next().expect("report per key") else {
                unreachable!("chunks of 3");
            };
            let s = dylect.speedup_over(tmcc);
            let u = upper.speedup_over(tmcc);
            per_setting.push(s);
            speedups.push(s);
            rows.push(vec![
                format!("{setting:?}"),
                spec.name.to_owned(),
                format!("{s:.4}"),
                format!("{u:.4}"),
            ]);
            eprintln!(
                "[fig18] {setting:?} {}: dylect {s:.3}x, upper {u:.3}x",
                spec.name
            );
        }
        rows.push(vec![
            format!("{setting:?}"),
            "GEOMEAN".to_owned(),
            format!("{:.4}", geomean(&per_setting)),
            String::new(),
        ]);
    }
    print_table(
        "Figure 18: DyLeCT speedup over TMCC (paper: 1.11 low, 1.095 high, 1.1025 avg)",
        &[
            "setting",
            "benchmark",
            "dylect_over_tmcc",
            "upper_bound_over_tmcc",
        ],
        &rows,
    );
    println!("# overall geomean speedup: {:.4}", geomean(&speedups));
}
