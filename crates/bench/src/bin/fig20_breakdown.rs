//! Figure 20: DRAM breakdown into ML0 / ML1 / ML2 under DyLeCT at low and
//! high compression.
//!
//! Paper: at low compression ML0 "scales up gracefully" to most of DRAM;
//! at high compression more pages sit compressed in ML2 and ML0 shrinks.

use dylect_bench::{print_table, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let specs = suite();
    let mut keys = Vec::new();
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        for spec in &specs {
            keys.push(RunKey::new(
                spec.clone(),
                SchemeKind::dylect(),
                setting,
                mode,
            ));
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut iter = reports.iter();
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        for spec in &specs {
            let r = iter.next().expect("report per key");
            let o = r.occupancy;
            let total = (o.ml0_pages + o.ml1_pages + o.ml2_pages) as f64;
            rows.push(vec![
                format!("{setting:?}"),
                spec.name.to_owned(),
                format!("{:.4}", o.ml0_pages as f64 / total),
                format!("{:.4}", o.ml1_pages as f64 / total),
                format!("{:.4}", o.ml2_pages as f64 / total),
                format!("{:.4}", o.ml0_fraction_of_uncompressed()),
            ]);
            eprintln!(
                "[fig20] {setting:?} {}: ML0 {} ML1 {} ML2 {} (ml0/unc {:.2})",
                spec.name,
                o.ml0_pages,
                o.ml1_pages,
                o.ml2_pages,
                o.ml0_fraction_of_uncompressed()
            );
        }
    }
    print_table(
        "Figure 20: OS-page breakdown across memory levels under DyLeCT",
        &[
            "setting",
            "benchmark",
            "ml0_frac",
            "ml1_frac",
            "ml2_frac",
            "ml0_of_uncompressed",
        ],
        &rows,
    );
}
