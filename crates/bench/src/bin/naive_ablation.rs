//! §IV-A3 ablation: the naive dynamic-length design (direct ML2→ML0
//! expansion with double page movement + two split 64 KB CTE caches)
//! against TMCC and DyLeCT at high compression.
//!
//! Paper: the naive design's CTE hit rate is 76% — barely above TMCC's
//! 67% — and its double page movement makes it 5% *slower* than TMCC,
//! while DyLeCT's two fixes (gradual promotion + pre-gathered table in a
//! single cache) turn the same idea into a 9.5% win.

use dylect_bench::{geomean, print_table, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let setting = CompressionSetting::High;
    let specs = suite();
    let mut keys = Vec::new();
    for spec in &specs {
        for scheme in [
            SchemeKind::tmcc(),
            SchemeKind::NaiveDynamic,
            SchemeKind::dylect(),
        ] {
            keys.push(RunKey::new(spec.clone(), scheme, setting, mode));
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut naive_speedups = Vec::new();
    let mut dylect_speedups = Vec::new();
    let mut naive_hits = Vec::new();
    for (spec, trio) in specs.iter().zip(reports.chunks_exact(3)) {
        let [tmcc, naive, dylect] = trio else {
            unreachable!("chunks of 3");
        };
        let sn = naive.speedup_over(tmcc);
        let sd = dylect.speedup_over(tmcc);
        naive_speedups.push(sn);
        dylect_speedups.push(sd);
        naive_hits.push(naive.mc.cte_hit_rate());
        rows.push(vec![
            spec.name.to_owned(),
            format!("{:.4}", tmcc.mc.cte_hit_rate()),
            format!("{:.4}", naive.mc.cte_hit_rate()),
            format!("{:.4}", dylect.mc.cte_hit_rate()),
            format!("{sn:.4}"),
            format!("{sd:.4}"),
        ]);
        eprintln!(
            "[naive] {}: hit tmcc {:.2} naive {:.2} dylect {:.2}; perf naive {sn:.3}x dylect {sd:.3}x",
            spec.name,
            tmcc.mc.cte_hit_rate(),
            naive.mc.cte_hit_rate(),
            dylect.mc.cte_hit_rate()
        );
    }
    rows.push(vec![
        "GEOMEAN".to_owned(),
        String::new(),
        format!(
            "{:.4}",
            naive_hits.iter().sum::<f64>() / naive_hits.len() as f64
        ),
        String::new(),
        format!("{:.4}", geomean(&naive_speedups)),
        format!("{:.4}", geomean(&dylect_speedups)),
    ]);
    print_table(
        "Naive dynamic-length ablation, high compression (paper: naive hit 0.76, perf 0.95x TMCC; DyLeCT 1.095x)",
        &[
            "benchmark",
            "tmcc_hit",
            "naive_hit",
            "dylect_hit",
            "naive_over_tmcc",
            "dylect_over_tmcc",
        ],
        &rows,
    );
}
