//! Figure 23: CTE-fetch traffic and absolute total traffic for DyLeCT
//! normalized to TMCC (fixed simulated window, so a faster scheme does
//! more work and can move more bytes in total).
//!
//! Paper: CTE traffic shrinks despite the dual fetch per miss (misses are
//! much rarer); total traffic is ~4.5% higher purely because DyLeCT commits
//! more instructions in the window.

use dylect_bench::{geomean, print_table, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let setting = CompressionSetting::High;
    let specs = suite();
    let mut keys = Vec::new();
    for spec in &specs {
        for scheme in [SchemeKind::tmcc(), SchemeKind::dylect()] {
            keys.push(RunKey::new(spec.clone(), scheme, setting, mode));
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut cte_ratios = Vec::new();
    let mut total_ratios = Vec::new();
    for (spec, pair) in specs.iter().zip(reports.chunks_exact(2)) {
        let [tmcc, dylect] = pair else {
            unreachable!("chunks of 2");
        };
        // Normalize traffic *rates* (blocks per simulated second) so the
        // comparison matches the paper's fixed-window methodology.
        let rate = |r: &dylect_sim::RunReport, blocks: u64| blocks as f64 / r.elapsed.as_secs();
        let cte_ratio = rate(
            dylect,
            dylect
                .dram
                .class_blocks(dylect_dram::RequestClass::CteFetch),
        ) / rate(
            tmcc,
            tmcc.dram.class_blocks(dylect_dram::RequestClass::CteFetch),
        );
        let total_ratio =
            rate(dylect, dylect.dram.total_blocks()) / rate(tmcc, tmcc.dram.total_blocks());
        cte_ratios.push(cte_ratio);
        total_ratios.push(total_ratio);
        rows.push(vec![
            spec.name.to_owned(),
            format!("{cte_ratio:.4}"),
            format!("{total_ratio:.4}"),
        ]);
        eprintln!(
            "[fig23] {}: cte {cte_ratio:.3}, total {total_ratio:.3}",
            spec.name
        );
    }
    rows.push(vec![
        "GEOMEAN".to_owned(),
        format!("{:.4}", geomean(&cte_ratios)),
        format!("{:.4}", geomean(&total_ratios)),
    ]);
    print_table(
        "Figure 23: DyLeCT traffic normalized to TMCC (paper: CTE traffic < 1.0, total ~1.045)",
        &["benchmark", "cte_traffic_ratio", "total_traffic_ratio"],
        &rows,
    );
}
