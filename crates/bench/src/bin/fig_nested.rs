//! Virtualized (2D nested) translation: what nested page walks add to
//! the `tlb_walk` latency component, per scheme.
//!
//! Under virtualization every guest page-table step is itself translated
//! guest-physical → host-physical (the x86 2D walk); CTE translation
//! then sits underneath as the third layer. This binary runs each scheme
//! flat and nested with latency attribution enabled and reports the
//! added `tlb_walk` cycles — the nested-walk cost lands in the same
//! attribution component as native walks, and the conservation
//! invariant (components sum exactly to end-to-end latency) is checked
//! on every run.
//!
//! Defaults to 4 KB pages (`--pages 2m` for huge pages): guests
//! commonly cannot use huge pages, and 4 KB keeps real walk traffic in
//! the measurement window at every mode.
//!
//! Telemetry exports land under `--out DIR` (default `results/nested`)
//! as `<benchmark>-<scheme>-{flat,nested}.*.jsonl` + `.trace.json`.
//! These jobs bypass the report cache (`cache_name: None`): attribution
//! is not reconstructible from a cached report.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use dylect_bench::runner::{Job, Runner};
use dylect_bench::{print_table, warmup_for, Mode, RunKey};
use dylect_cpu::PageSizeMode;
use dylect_sim::{SchemeKind, System};
use dylect_sim_core::probe::{AccessComponent, AccessScope};
use dylect_telemetry::TelemetryConfig;
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

/// What one run contributes: walk counts and the core-scope cycle split.
struct Variant {
    walks: u64,
    tlb_walk_ps: u64,
    core_total_ps: u64,
}

fn main() {
    let mode = Mode::from_env();
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let bench = flag("--bench").unwrap_or_else(|| "omnetpp".to_owned());
    let out_dir = PathBuf::from(flag("--out").unwrap_or_else(|| "results/nested".to_owned()));
    let spec = BenchmarkSpec::by_name(&bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    });
    let pages = match flag("--pages").as_deref() {
        None | Some("4k") => PageSizeMode::Standard4K,
        Some("2m") => PageSizeMode::Huge2M,
        Some(other) => {
            eprintln!("--pages must be 4k or 2m, got {other}");
            std::process::exit(2);
        }
    };
    let setting = CompressionSetting::High;

    let variants: Arc<Mutex<BTreeMap<String, Variant>>> = Arc::default();
    let mut jobs = Vec::new();
    for scheme in [SchemeKind::tmcc(), SchemeKind::dylect()] {
        for nested in [false, true] {
            let mut key =
                RunKey::new(spec.clone(), scheme.clone(), setting, mode).with_pages(pages);
            if nested {
                key = key.with_nested();
            }
            let dim = if nested { "nested" } else { "flat" };
            let slot = format!("{}/{dim}", key.scheme.label());
            let stem = out_dir.join(format!("{}-{}-{dim}", spec.name, key.scheme.label()));
            let variants = variants.clone();
            jobs.push(Job {
                label: format!("{}/walkdim", key.label()),
                // Attribution is the figure's payload and is not part of
                // a cached RunReport.
                cache_name: None,
                work: Box::new(move || {
                    let warmup = warmup_for(&key.spec, key.mode);
                    let mut sys = System::new(key.config(), &key.spec);
                    sys.enable_telemetry(TelemetryConfig::default());
                    let report = sys.run(warmup, key.mode.measure_ops);
                    let telemetry = sys.take_telemetry().expect("enabled above");
                    {
                        let a = telemetry.attribution();
                        // Conservation must survive the 2D walk: every
                        // host-table read is inside the translated_at
                        // window, so TlbWalk absorbs it exactly.
                        for scope in AccessScope::ALL {
                            let components: u64 = AccessComponent::ALL
                                .iter()
                                .map(|&c| a.component_total(scope, c).as_ps())
                                .sum();
                            let hists: u64 = a
                                .histograms()
                                .iter()
                                .filter(|((s, ..), _)| *s == scope)
                                .map(|(_, h)| h.sum().as_ps())
                                .sum();
                            assert_eq!(
                                components, hists,
                                "{slot}: attribution conservation violated"
                            );
                        }
                        variants.lock().unwrap().insert(
                            slot.clone(),
                            Variant {
                                walks: report.walks,
                                tlb_walk_ps: a
                                    .component_total(AccessScope::Core, AccessComponent::TlbWalk)
                                    .as_ps(),
                                core_total_ps: AccessComponent::ALL
                                    .iter()
                                    .map(|&c| a.component_total(AccessScope::Core, c).as_ps())
                                    .sum(),
                            },
                        );
                    }
                    if let Err(e) = telemetry.export_to(&stem) {
                        eprintln!("[fig_nested] export failed: {e}");
                    }
                    report
                }),
            });
        }
    }
    Runner::from_env().run_jobs(jobs);

    let variants = variants.lock().unwrap();
    let mut rows = Vec::new();
    for scheme in [SchemeKind::tmcc(), SchemeKind::dylect()] {
        let label = scheme.label();
        let flat = &variants[&format!("{label}/flat")];
        let nested = &variants[&format!("{label}/nested")];
        let added = nested.tlb_walk_ps as i64 - flat.tlb_walk_ps as i64;
        eprintln!(
            "[fig_nested] {label}: tlb_walk {} -> {} ps over {} -> {} walks",
            flat.tlb_walk_ps, nested.tlb_walk_ps, flat.walks, nested.walks,
        );
        rows.push(vec![
            label,
            format!("{}", flat.walks),
            format!("{:.3}", flat.tlb_walk_ps as f64 / 1e6),
            format!("{:.3}", nested.tlb_walk_ps as f64 / 1e6),
            format!("{:.3}", added as f64 / 1e6),
            format!(
                "{:.1}",
                100.0 * flat.tlb_walk_ps as f64 / flat.core_total_ps as f64
            ),
            format!(
                "{:.1}",
                100.0 * nested.tlb_walk_ps as f64 / nested.core_total_ps as f64
            ),
        ]);
    }
    print_table(
        &format!(
            "Nested (2D) walk cost in the tlb_walk component ({bench}, {} pages, high compression)",
            match pages {
                PageSizeMode::Standard4K => "4K",
                PageSizeMode::Huge2M => "2M",
            }
        ),
        &[
            "scheme",
            "walks",
            "flat_us",
            "nested_us",
            "added_us",
            "flat_%core",
            "nested_%core",
        ],
        &rows,
    );
}
