//! Figure 22: total memory traffic per instruction for DyLeCT normalized
//! to TMCC.
//!
//! Paper: 93% on average — DyLeCT's CTE-traffic savings outweigh its
//! migration and dual-fetch costs per unit of work.

use dylect_bench::{geomean, print_table, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let setting = CompressionSetting::High;
    let specs = suite();
    let mut keys = Vec::new();
    for spec in &specs {
        for scheme in [SchemeKind::tmcc(), SchemeKind::dylect()] {
            keys.push(RunKey::new(spec.clone(), scheme, setting, mode));
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (spec, pair) in specs.iter().zip(reports.chunks_exact(2)) {
        let [tmcc, dylect] = pair else {
            unreachable!("chunks of 2");
        };
        let ratio = dylect.traffic_per_kilo_instruction() / tmcc.traffic_per_kilo_instruction();
        ratios.push(ratio);
        rows.push(vec![
            spec.name.to_owned(),
            format!("{:.2}", tmcc.traffic_per_kilo_instruction()),
            format!("{:.2}", dylect.traffic_per_kilo_instruction()),
            format!("{ratio:.4}"),
        ]);
        eprintln!("[fig22] {}: {ratio:.3}", spec.name);
    }
    rows.push(vec![
        "GEOMEAN".to_owned(),
        String::new(),
        String::new(),
        format!("{:.4}", geomean(&ratios)),
    ]);
    print_table(
        "Figure 22: traffic per instruction, DyLeCT / TMCC (paper: 0.93 avg)",
        &[
            "benchmark",
            "tmcc_blocks_per_ki",
            "dylect_blocks_per_ki",
            "ratio",
        ],
        &rows,
    );
}
