//! Figure 22: total memory traffic per instruction for DyLeCT normalized
//! to TMCC.
//!
//! Paper: 93% on average — DyLeCT's CTE-traffic savings outweigh its
//! migration and dual-fetch costs per unit of work.

use dylect_bench::{geomean, print_table, run_one, suite, Mode};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let setting = CompressionSetting::High;
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for spec in suite() {
        let tmcc = run_one(&spec, SchemeKind::tmcc(), setting, mode);
        let dylect = run_one(&spec, SchemeKind::dylect(), setting, mode);
        let ratio = dylect.traffic_per_kilo_instruction() / tmcc.traffic_per_kilo_instruction();
        ratios.push(ratio);
        rows.push(vec![
            spec.name.to_owned(),
            format!("{:.2}", tmcc.traffic_per_kilo_instruction()),
            format!("{:.2}", dylect.traffic_per_kilo_instruction()),
            format!("{ratio:.4}"),
        ]);
        eprintln!("[fig22] {}: {ratio:.3}", spec.name);
    }
    rows.push(vec![
        "GEOMEAN".to_owned(),
        String::new(),
        String::new(),
        format!("{:.4}", geomean(&ratios)),
    ]);
    print_table(
        "Figure 22: traffic per instruction, DyLeCT / TMCC (paper: 0.93 avg)",
        &[
            "benchmark",
            "tmcc_blocks_per_ki",
            "dylect_blocks_per_ki",
            "ratio",
        ],
        &rows,
    );
}
