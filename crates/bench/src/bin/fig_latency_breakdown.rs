//! Per-access latency attribution: where do the cycles of a memory access
//! go, and how do the latency distributions differ by translation outcome?
//!
//! The paper's headline claim is about *translation* latency: DyLeCT's
//! short CTEs make the common case as cheap as a huge-page system, while
//! TMCC pays a metadata fetch on every CTE-cache miss. The mean latencies
//! of Figure 21 hide both the tail and the composition. This binary runs
//! the shared benchmark configuration with latency attribution enabled and
//! prints, per scheme:
//!
//! - the top-down "where cycles go" table (cycle-conservative: component
//!   cycles sum exactly to end-to-end latency, see
//!   `dylect_telemetry::Attribution`);
//! - p50/p95/p99/p999 of end-to-end latency per (class, memory level,
//!   translation path) histogram.
//!
//! Span sampling rides along: set `DYLECT_SPAN_SAMPLE=N` to emit begin/end
//! trace spans for every N-th demand L3 miss; they land in the
//! `.trace.json` export (Perfetto / `chrome://tracing`).
//!
//! Exports land under `--out DIR` (default `results/latency`) as
//! `<benchmark>-<scheme>.{series,events,latency}.jsonl` + `.trace.json`,
//! consumed by `dylect-stats` (and diffed with zero tolerance by the
//! `tools/verify.sh` telemetry smoke step). Attribution output cannot be
//! reconstructed from a cached `RunReport`, so these jobs bypass the
//! report cache (`cache_name: None`) while still using the worker pool.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use dylect_bench::runner::{Job, Runner};
use dylect_bench::{print_table, warmup_for, Mode, RunKey};
use dylect_sim::{SchemeKind, System};
use dylect_sim_core::probe::AccessScope;
use dylect_telemetry::TelemetryConfig;
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

/// What one run hands back beside its report: the rendered cycles table
/// and one percentile row per latency histogram.
struct SchemeOutput {
    cycles_table: String,
    hist_rows: Vec<Vec<String>>,
    spans_retained: usize,
    export_paths: Vec<PathBuf>,
}

fn main() {
    let mode = Mode::from_env();
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let bench = flag("--bench").unwrap_or_else(|| "omnetpp".to_owned());
    let out_dir = PathBuf::from(flag("--out").unwrap_or_else(|| "results/latency".to_owned()));
    let spec = BenchmarkSpec::by_name(&bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    });
    let setting = CompressionSetting::High;
    let span_sample = TelemetryConfig::span_sample_from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let outputs: Arc<Mutex<BTreeMap<String, SchemeOutput>>> = Arc::default();
    let mut jobs = Vec::new();
    for scheme in [
        SchemeKind::tmcc(),
        SchemeKind::NaiveDynamic,
        SchemeKind::dylect(),
    ] {
        let key = RunKey::new(spec.clone(), scheme, setting, mode);
        let label = key.scheme.label();
        let stem = out_dir.join(format!("{}-{label}", spec.name));
        let outputs = outputs.clone();
        jobs.push(Job {
            label: format!("{}/{label}/latency", spec.name),
            // Attribution histograms are not part of RunReport, so a cache
            // hit would skip exactly the data this figure exists for.
            cache_name: None,
            work: Box::new(move || {
                let warmup = warmup_for(&key.spec, key.mode);
                let mut sys = System::new(key.config(), &key.spec);
                sys.enable_telemetry(TelemetryConfig {
                    span_sample,
                    ..TelemetryConfig::default()
                });
                let report = sys.run(warmup, key.mode.measure_ops);
                let telemetry = sys.take_telemetry().expect("enabled above");
                let attribution = telemetry.attribution();

                let mut hist_rows = Vec::new();
                for (&(scope, class, level, path), hist) in attribution.histograms() {
                    if scope != AccessScope::Mem {
                        continue;
                    }
                    hist_rows.push(vec![
                        label.clone(),
                        class.name().to_owned(),
                        level.name().to_owned(),
                        path.name().to_owned(),
                        hist.count().to_string(),
                        hist.mean().to_string(),
                        hist.percentile(0.50).to_string(),
                        hist.percentile(0.95).to_string(),
                        hist.percentile(0.99).to_string(),
                        hist.percentile(0.999).to_string(),
                    ]);
                }
                let mut out = SchemeOutput {
                    cycles_table: attribution.cycles_table(),
                    hist_rows,
                    spans_retained: attribution.spans().len(),
                    export_paths: Vec::new(),
                };
                drop(attribution);
                match telemetry.export_to(&stem) {
                    Ok(paths) => out.export_paths = paths,
                    Err(e) => eprintln!("[fig_latency_breakdown] export failed: {e}"),
                }
                outputs.lock().unwrap().insert(label.clone(), out);
                report
            }),
        });
    }
    Runner::from_env().run_jobs(jobs);

    let outputs = outputs.lock().unwrap();
    let mut rows = Vec::new();
    for (label, out) in outputs.iter() {
        println!("== {} / {label} ==", spec.name);
        print!("{}", out.cycles_table);
        if span_sample > 0 {
            println!(
                "spans: 1-in-{span_sample} demand misses sampled, {} retained",
                out.spans_retained
            );
        }
        for p in &out.export_paths {
            println!("wrote {}", p.display());
        }
        println!();
        rows.extend(out.hist_rows.iter().cloned());
    }
    print_table(
        &format!(
            "End-to-end latency percentiles by access outcome ({}, high compression, mem scope)",
            spec.name
        ),
        &[
            "scheme", "class", "level", "path", "count", "mean", "p50", "p95", "p99", "p999",
        ],
        &rows,
    );
}
