//! Table 1: contrasting the schemes — achieved compression ratio and
//! performance improvement of DyLeCT over TMCC, with only the memory
//! controller modified.
//!
//! Paper: TMCC and DyLeCT both reach a 3.4x (maximum) compression ratio;
//! DyLeCT gains +10.25% over TMCC under huge pages.

use dylect_bench::{geomean, print_table, run_matrix, suite, Mode, RunKey};
use dylect_sim::{RunReport, SchemeKind};
use dylect_sim_core::PAGE_BYTES;
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

/// Effective compression ratio: OS-visible bytes over DRAM data bytes in
/// use (pages + compressed spans, excluding free space).
fn effective_ratio(spec: &BenchmarkSpec, mode: Mode, r: &RunReport) -> f64 {
    let os_bytes = (spec.footprint_pages(mode.scale) * PAGE_BYTES) as f64;
    let o = &r.occupancy;
    let used = ((o.ml0_pages + o.ml1_pages) * PAGE_BYTES) as f64
        + (o.ml2_pages as f64) * (os_bytes / spec.footprint_pages(mode.scale) as f64)
            / spec.compression_ratio;
    os_bytes / used
}

fn main() {
    let mode = Mode::from_env();
    let specs = suite();
    let mut keys = Vec::new();
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        for spec in &specs {
            for scheme in [SchemeKind::tmcc(), SchemeKind::dylect()] {
                keys.push(RunKey::new(spec.clone(), scheme, setting, mode));
            }
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut chunks = reports.chunks_exact(2);
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        let mut speedups = Vec::new();
        let mut ratios_t = Vec::new();
        let mut ratios_d = Vec::new();
        for spec in &specs {
            let [tmcc, dylect] = chunks.next().expect("report per key") else {
                unreachable!("chunks of 2");
            };
            speedups.push(dylect.speedup_over(tmcc));
            ratios_t.push(effective_ratio(spec, mode, tmcc));
            ratios_d.push(effective_ratio(spec, mode, dylect));
            eprintln!("[table1] {setting:?} {} done", spec.name);
        }
        rows.push(vec![
            format!("{setting:?}"),
            format!("{:.2}", geomean(&ratios_t)),
            format!("{:.2}", geomean(&ratios_d)),
            format!("{:.4}", geomean(&speedups)),
        ]);
    }
    print_table(
        "Table 1: compression ratio and DyLeCT-vs-TMCC performance (paper: equal ratios, +10.25% perf; MC-only change)",
        &[
            "setting",
            "tmcc_effective_ratio",
            "dylect_effective_ratio",
            "dylect_speedup_over_tmcc",
        ],
        &rows,
    );
    println!("# hardware changes: TMCC modifies MC + L2$; DyLeCT modifies the MC only");
}
