//! Figure 5: TMCC CTE cache miss rate as the cache size is swept from
//! 64 KB to 512 KB, under 2 MB huge pages.
//!
//! Paper: octupling the cache from 64 KB to 512 KB only reduces the average
//! miss rate from 34% to 24% — capacity alone cannot buy reach.

use dylect_bench::{print_table, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let sizes = [64u64, 128, 256, 512];
    let specs = suite();
    let mut keys = Vec::new();
    for spec in &specs {
        for kb in sizes {
            keys.push(RunKey::new(
                spec.clone(),
                SchemeKind::Tmcc {
                    granule_pages: 1,
                    cte_cache_bytes: kb * 1024,
                },
                CompressionSetting::High,
                mode,
            ));
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut means = vec![0.0f64; sizes.len()];
    for (spec, row_reports) in specs.iter().zip(reports.chunks_exact(sizes.len())) {
        let mut row = vec![spec.name.to_owned()];
        for (i, (kb, r)) in sizes.iter().zip(row_reports).enumerate() {
            let miss = 1.0 - r.mc.cte_hit_rate();
            means[i] += miss;
            row.push(format!("{miss:.4}"));
            eprintln!("[fig05] {} @{kb}KB: miss {miss:.3}", spec.name);
        }
        rows.push(row);
    }
    let n = specs.len() as f64;
    rows.push(
        std::iter::once("MEAN".to_owned())
            .chain(means.iter().map(|m| format!("{:.4}", m / n)))
            .collect(),
    );
    print_table(
        "Figure 5: TMCC CTE cache miss rate vs size, high compression (paper mean: 0.34 @64K -> 0.24 @512K)",
        &["benchmark", "miss_64k", "miss_128k", "miss_256k", "miss_512k"],
        &rows,
    );
}
