//! Warmup dynamics: CTE cache hit rate and ML0 fraction vs retired
//! instructions, for TMCC and DyLeCT, from the telemetry time series.
//!
//! The paper's steady-state figures (18–20, 25) hide *how* DyLeCT gets
//! there: the promotion machinery has to discover the hot set before short
//! CTEs pay off. This binary runs the exact configuration
//! `fig19_hitrate` uses — same `RunKey`-derived config and warmup, so
//! the deterministic simulator produces the identical run — with telemetry
//! enabled, and prints the hit-rate and ML0-occupancy trajectories. The
//! final measurement-window hit rate it reports is therefore the same
//! number Figure 19 prints for that cell.
//!
//! Exports land under `results/telemetry/<benchmark>-<scheme>.*` for
//! `dylect-stats` and Perfetto.

use std::path::PathBuf;

use dylect_bench::{print_table, warmup_for, Mode, RunKey};
use dylect_sim::{SchemeKind, System};
use dylect_telemetry::TelemetryConfig;
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn main() {
    let mode = Mode::from_env();
    // One representative benchmark by default; --bench NAME overrides.
    let args: Vec<String> = std::env::args().collect();
    let bench = args
        .iter()
        .position(|a| a == "--bench")
        .and_then(|i| args.get(i + 1))
        .map_or("omnetpp", String::as_str);
    let spec = BenchmarkSpec::by_name(bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    });
    let setting = CompressionSetting::High;

    let mut rows = Vec::new();
    for scheme in [SchemeKind::tmcc(), SchemeKind::dylect()] {
        let key = RunKey::new(spec.clone(), scheme, setting, mode);
        let label = key.scheme.label();
        let warmup = warmup_for(&spec, mode);
        let mut sys = System::new(key.config(), &spec);
        sys.enable_telemetry(TelemetryConfig {
            // ~200 points across the whole run, streaming-downsampled.
            epoch_ops: ((warmup + mode.measure_ops) / 200).max(1_000),
            ..TelemetryConfig::default()
        });
        eprintln!("[fig_warmup] running {} / {label} ...", spec.name);
        let report = sys.run(warmup, mode.measure_ops);
        let telemetry = sys.take_telemetry().expect("enabled above");

        let hit = telemetry.sampler().get("cte_hit_rate").expect("series");
        let ml0 = telemetry.sampler().get("ml0_fraction").expect("series");
        for (h, m) in hit.bins().iter().zip(ml0.bins()) {
            rows.push(vec![
                label.clone(),
                h.x_end.to_string(),
                format!("{:.4}", h.mean()),
                format!("{:.4}", m.mean()),
            ]);
        }

        // The measurement-window aggregate — identical to fig19's number
        // for this cell (same deterministic run).
        eprintln!(
            "[fig_warmup] {} / {label}: final-window cte_hit_rate {:.4}, ml0_fraction {:.4}, \
             {} promotions journaled",
            spec.name,
            report.mc.cte_hit_rate(),
            report.occupancy.ml0_fraction_of_uncompressed(),
            telemetry
                .journal()
                .count(dylect_sim_core::probe::McEvent::Promotion),
        );

        let stem = PathBuf::from("results/telemetry").join(format!("{}-{label}", spec.name));
        match telemetry.export_to(&stem) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("[fig_warmup] wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("[fig_warmup] export failed: {e}"),
        }
    }

    print_table(
        &format!(
            "Warmup dynamics ({}, high compression): CTE hit rate and ML0 fraction vs instructions",
            spec.name
        ),
        &["scheme", "instructions", "cte_hit_rate", "ml0_fraction"],
        &rows,
    );
}
