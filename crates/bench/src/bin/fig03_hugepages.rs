//! Figure 3: speedup of 2 MB huge pages over 4 KB standard pages on a
//! system without memory compression.
//!
//! Paper (real Intel W-3175X system): 1.75x average speedup for these large
//! irregular workloads, driven by ~20x fewer TLB misses.

use dylect_bench::{geomean, print_table, run_matrix, suite, Mode, RunKey};
use dylect_cpu::PageSizeMode;
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let specs = suite();
    let mut keys = Vec::new();
    for spec in &specs {
        for pages in [PageSizeMode::Standard4K, PageSizeMode::Huge2M] {
            keys.push(
                RunKey::new(
                    spec.clone(),
                    SchemeKind::NoCompression,
                    CompressionSetting::Low,
                    mode,
                )
                .with_pages(pages),
            );
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut miss_ratios = Vec::new();
    for (spec, pair) in specs.iter().zip(reports.chunks_exact(2)) {
        let [small, huge] = pair else {
            unreachable!("chunks of 2");
        };
        let speedup = huge.speedup_over(small);
        let miss_ratio = if huge.tlb_miss_rate > 0.0 {
            small.tlb_miss_rate / huge.tlb_miss_rate
        } else {
            f64::INFINITY
        };
        speedups.push(speedup);
        if miss_ratio.is_finite() {
            miss_ratios.push(miss_ratio);
        }
        rows.push(vec![
            spec.name.to_owned(),
            format!("{speedup:.3}"),
            format!("{:.4}", small.tlb_miss_rate),
            format!("{:.4}", huge.tlb_miss_rate),
            format!("{miss_ratio:.1}"),
        ]);
        eprintln!(
            "[fig03] {}: 2M/4K speedup {speedup:.2}x, TLB miss {:.3} -> {:.4}",
            spec.name, small.tlb_miss_rate, huge.tlb_miss_rate
        );
    }
    print_table(
        "Figure 3: huge-page speedup over 4KB pages, no compression (paper: 1.75x avg, ~20x fewer TLB misses)",
        &[
            "benchmark",
            "speedup_2m_over_4k",
            "tlb_miss_4k",
            "tlb_miss_2m",
            "tlb_miss_reduction",
        ],
        &rows,
    );
    println!("# geomean speedup: {:.3}", geomean(&speedups));
    println!(
        "# geomean TLB miss reduction: {:.1}x",
        geomean(&miss_ratios)
    );
}
