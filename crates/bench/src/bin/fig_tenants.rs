//! Multi-tenant co-scheduling: per-tenant slowdown versus solo baselines,
//! and where the interference comes from.
//!
//! The paper evaluates one process per machine; datacenter deployments
//! co-schedule. This binary runs each tenant alone (cached through the
//! report cache) and then the co-scheduled machine — one ASID-tagged
//! core per tenant, footprints placed side by side in machine-physical
//! memory, all tenants interleaved across the same memory controllers —
//! and reports, per scheme:
//!
//! - each tenant's slowdown (solo IPS / co-run IPS; > 1 means the co-run
//!   hurt it) and the spread between the best- and worst-treated tenant
//!   (the fairness gap);
//! - interference findings: the shared CTE-cache hit-rate delta
//!   (co-tenants evict each other's translation entries) and the DRAM
//!   queue delta (mean demand L3-miss latency).
//!
//! The tenant mix comes from `--tenants a,b,...` (default
//! `omnetpp,mcf`), or — including nested walks and scheduled events —
//! from a full `DYLECT_SCENARIO` spec, which takes precedence. All
//! tenants run at one shared footprint scale (the most demanding
//! tenant's effective scale), so each solo baseline simulates exactly
//! the footprint its tenant has in the co-run.
//!
//! Per-tenant rows land in `--out DIR` (default `results`) as
//! `fig_tenants.<scheme>.tenants.jsonl`, consumed by `dylect-serve`
//! (`/metrics` exports them as `dylect_tenant_slowdown`). Co-run jobs
//! bypass the report cache (`cache_name: None`): the artifact is the
//! point, and a cache hit would skip writing it.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use dylect_bench::runner::{Job, Runner};
use dylect_bench::{print_table, Mode};
use dylect_scenario::{parse_scenario, ScenarioOutcome, ScenarioSpec};
use dylect_sim::{SchemeKind, System, SystemConfig};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn main() {
    let mode = Mode::from_env();
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_dir = PathBuf::from(flag("--out").unwrap_or_else(|| "results".to_owned()));
    let scenario = match parse_scenario(std::env::var("DYLECT_SCENARIO").ok().as_deref()) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("usage: {msg}");
            std::process::exit(2);
        }
    };
    let scenario = scenario.unwrap_or_else(|| {
        let tenants = flag("--tenants").unwrap_or_else(|| "omnetpp,mcf".to_owned());
        ScenarioSpec::parse(&format!("tenants={tenants}")).unwrap_or_else(|e| {
            eprintln!("usage: --tenants: {e}");
            std::process::exit(2);
        })
    });
    let tenants = scenario.resolve();
    let setting = CompressionSetting::High;
    // One shared machine scale: the most demanding tenant's effective
    // scale, so solo baselines simulate the same per-tenant footprints
    // as the co-run.
    let scale = tenants
        .iter()
        .map(|t| dylect_bench::effective_scale(t, mode))
        .min()
        .expect("at least one tenant");
    let warmup = |specs: &[BenchmarkSpec]| -> u64 {
        mode.warmup_ops
            .max(specs.iter().map(|t| t.footprint_pages(scale)).sum::<u64>() * 12)
    };
    let solo_cfg = |t: &BenchmarkSpec, scheme: SchemeKind| -> SystemConfig {
        let mut cfg = SystemConfig::paper(t, scheme.clone(), setting);
        cfg.scale = scale;
        cfg.cores = 1;
        // `paper()` sized DRAM at its own default scale; resize for the
        // shared machine scale.
        cfg.dram_bytes = match scheme {
            SchemeKind::NoCompression => t.dram_bytes_no_compression(scale),
            _ => t.dram_bytes(setting, scale),
        };
        cfg
    };

    let schemes = [SchemeKind::tmcc(), SchemeKind::dylect()];
    let outcomes: Arc<Mutex<BTreeMap<String, ScenarioOutcome>>> = Arc::default();
    let mut jobs = Vec::new();
    // Solo baselines first (cached), then one uncached co-run per scheme;
    // `solo_slots[scheme][tenant]` indexes the returned report list.
    let mut solo_slots: Vec<Vec<usize>> = Vec::new();
    for scheme in &schemes {
        let mut slots = Vec::new();
        for t in &tenants {
            let cfg = solo_cfg(t, scheme.clone());
            let warm = warmup(std::slice::from_ref(t));
            let label = format!("{}/{}/solo", t.name, scheme.label());
            let fp_input = format!("{cfg:?};warm{};measure{}", warm, mode.measure_ops);
            let t = t.clone();
            slots.push(jobs.len());
            jobs.push(Job::custom(label, &fp_input, move || {
                System::new(cfg, &t).run(warm, mode.measure_ops)
            }));
        }
        solo_slots.push(slots);

        let base = solo_cfg(&tenants[0], scheme.clone());
        let cfg = scenario.configure(base, setting);
        let warm = warmup(&tenants);
        let spec = scenario.clone();
        let outcomes = outcomes.clone();
        let scheme_label = scheme.label();
        jobs.push(Job {
            label: format!("{}/{}/coschedule", scenario.tenants.join("+"), scheme_label),
            // Per-tenant summaries are not part of RunReport; a cache hit
            // would skip exactly the data this figure exists for.
            cache_name: None,
            work: Box::new(move || {
                let mut sys = spec.build_system(cfg);
                let outcome = spec.run(&mut sys, warm, mode.measure_ops);
                let report = outcome.report.clone();
                outcomes.lock().unwrap().insert(scheme_label, outcome);
                report
            }),
        });
    }
    let reports = Runner::from_env().run_jobs(jobs);

    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    });
    let outcomes = outcomes.lock().unwrap();
    let mut rows = Vec::new();
    for (si, scheme) in schemes.iter().enumerate() {
        let label = scheme.label();
        let outcome = &outcomes[&label];
        let solo: Vec<&dylect_sim::RunReport> =
            solo_slots[si].iter().map(|&i| &reports[i]).collect();
        let solo_ips: Vec<f64> = solo.iter().map(|r| r.ips()).collect();
        let slowdowns = outcome.slowdowns(&solo_ips);

        let path = out_dir.join(format!("fig_tenants.{label}.tenants.jsonl"));
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }));
        for ((t, s), solo) in outcome.tenants.iter().zip(&slowdowns).zip(&solo) {
            writeln!(
                file,
                "{{\"artifact\":\"fig_tenants\",\"scheme\":\"{label}\",\"tenant\":\"{}\",\
                 \"asid\":{},\"solo_ips\":{:.3},\"co_ips\":{:.3},\"slowdown\":{:.6},\
                 \"tlb_miss_rate\":{:.6},\"solo_tlb_miss_rate\":{:.6}}}",
                t.tenant,
                t.asid,
                solo.ips(),
                t.ips(),
                s,
                t.tlb_miss_rate,
                solo.tlb_miss_rate,
            )
            .expect("write row");
            rows.push(vec![
                label.clone(),
                t.tenant.clone(),
                format!("{:.3e}", solo.ips()),
                format!("{:.3e}", t.ips()),
                format!("{s:.3}"),
            ]);
        }

        // Interference findings: the co-run shares one CTE cache and one
        // DRAM queue across tenants; compare against footprint-weighted
        // solo expectations.
        let co = &outcome.report;
        let weight: Vec<f64> = {
            let total: u64 = tenants.iter().map(|t| t.footprint_pages(scale)).sum();
            tenants
                .iter()
                .map(|t| t.footprint_pages(scale) as f64 / total as f64)
                .collect()
        };
        let solo_cte: f64 = solo
            .iter()
            .zip(&weight)
            .map(|(r, w)| r.mc.cte_hit_rate() * w)
            .sum();
        let solo_l3_ns: f64 = solo
            .iter()
            .zip(&weight)
            .map(|(r, w)| r.l3_miss_latency_ns * w)
            .sum();
        writeln!(
            file,
            "{{\"artifact\":\"fig_tenants\",\"scheme\":\"{label}\",\
             \"finding\":\"cte_contention\",\"solo_cte_hit_rate\":{:.6},\
             \"co_cte_hit_rate\":{:.6},\"delta\":{:.6}}}",
            solo_cte,
            co.mc.cte_hit_rate(),
            co.mc.cte_hit_rate() - solo_cte,
        )
        .expect("write finding");
        writeln!(
            file,
            "{{\"artifact\":\"fig_tenants\",\"scheme\":\"{label}\",\
             \"finding\":\"dram_queue\",\"solo_l3_miss_ns\":{:.3},\
             \"co_l3_miss_ns\":{:.3},\"delta_ns\":{:.3}}}",
            solo_l3_ns,
            co.l3_miss_latency_ns,
            co.l3_miss_latency_ns - solo_l3_ns,
        )
        .expect("write finding");
        drop(file);
        // Stderr with the other progress lines: stdout is the
        // deterministic table, byte-compared by the verify smoke, and
        // the path embeds the run-specific out dir.
        eprintln!("wrote {}", path.display());

        let spread = slowdowns.iter().cloned().fold(f64::MIN, f64::max)
            / slowdowns.iter().cloned().fold(f64::MAX, f64::min);
        eprintln!(
            "[fig_tenants] {label}: cte hit {:.3} -> {:.3}, l3-miss {:.1} -> {:.1} ns, \
             fairness spread {spread:.3}",
            solo_cte,
            co.mc.cte_hit_rate(),
            solo_l3_ns,
            co.l3_miss_latency_ns,
        );
    }

    print_table(
        &format!(
            "Per-tenant slowdown under co-scheduling ({}, high compression, scale 1/{scale})",
            scenario.tenants.join("+")
        ),
        &["scheme", "tenant", "solo_ips", "co_ips", "slowdown"],
        &rows,
    );
}
