//! Figure 19: CTE cache hit rates for TMCC and DyLeCT at low and high
//! compression, with DyLeCT's hits split between pre-gathered and unified
//! blocks.
//!
//! Paper: low — TMCC 70% vs DyLeCT 96%; high — TMCC 67% vs DyLeCT 91%
//! (77% from pre-gathered blocks + 14% from unified blocks).

use dylect_bench::{print_table, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let specs = suite();
    let mut keys = Vec::new();
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        for spec in &specs {
            for scheme in [SchemeKind::tmcc(), SchemeKind::dylect()] {
                keys.push(RunKey::new(spec.clone(), scheme, setting, mode));
            }
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut chunks = reports.chunks_exact(2);
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        let mut sums = [0.0f64; 4];
        let mut n = 0.0;
        for spec in &specs {
            let [tmcc, dylect] = chunks.next().expect("report per key") else {
                unreachable!("chunks of 2");
            };
            let t = tmcc.mc.cte_hit_rate();
            let d = dylect.mc.cte_hit_rate();
            let pg = dylect.mc.pregathered_hit_rate();
            let uni = dylect.mc.unified_hit_rate();
            sums[0] += t;
            sums[1] += d;
            sums[2] += pg;
            sums[3] += uni;
            n += 1.0;
            rows.push(vec![
                format!("{setting:?}"),
                spec.name.to_owned(),
                format!("{t:.4}"),
                format!("{d:.4}"),
                format!("{pg:.4}"),
                format!("{uni:.4}"),
            ]);
            eprintln!(
                "[fig19] {setting:?} {}: tmcc {t:.3}, dylect {d:.3} (pg {pg:.3} + uni {uni:.3})",
                spec.name
            );
        }
        rows.push(vec![
            format!("{setting:?}"),
            "MEAN".to_owned(),
            format!("{:.4}", sums[0] / n),
            format!("{:.4}", sums[1] / n),
            format!("{:.4}", sums[2] / n),
            format!("{:.4}", sums[3] / n),
        ]);
    }
    print_table(
        "Figure 19: CTE cache hit rate (paper: low 0.70 vs 0.96; high 0.67 vs 0.91 = 0.77 pg + 0.14 uni)",
        &[
            "setting",
            "benchmark",
            "tmcc_hit",
            "dylect_hit",
            "dylect_pregathered",
            "dylect_unified",
        ],
        &rows,
    );
}
