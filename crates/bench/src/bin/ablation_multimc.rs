//! Ablation: multiple memory controllers (paper §IV-D).
//!
//! Each MC runs its own DyLeCT module over its locally-attached DRAM with
//! no cross-MC coherence; pages interleave across MCs. The paper (citing
//! TMCC) reports that restricting interleaving to the channels within one
//! MC has minimal performance impact; here we sweep 1/2/4 MCs and report
//! performance and aggregated translation behavior.

use dylect_bench::{print_table, run_matrix, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn main() {
    let mode = Mode::from_env();
    let spec = BenchmarkSpec::by_name("canneal").expect("in suite");
    let setting = CompressionSetting::High;
    let mc_counts = [1usize, 2, 4];
    let keys = mc_counts
        .iter()
        .map(|&n_mc| RunKey::new(spec.clone(), SchemeKind::dylect(), setting, mode).with_mcs(n_mc))
        .collect();
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut base_ips = None;
    for (&n_mc, r) in mc_counts.iter().zip(&reports) {
        let rel = r.ips() / *base_ips.get_or_insert(r.ips());
        rows.push(vec![
            n_mc.to_string(),
            format!("{:.3e}", r.ips()),
            format!("{rel:.4}"),
            format!("{:.4}", r.mc.cte_hit_rate()),
            format!("{:.4}", r.occupancy.ml0_fraction_of_uncompressed()),
        ]);
        eprintln!("[multimc] {n_mc} MCs: ips {:.3e} ({rel:.3}x)", r.ips());
    }
    print_table(
        "Multi-MC ablation (canneal, high compression; paper: MC-local interleaving has minimal impact)",
        &["memory_controllers", "ips", "relative_perf", "cte_hit", "ml0_of_uncompressed"],
        &rows,
    );
}
