//! Figure 4: TMCC's performance normalized to a bigger memory system with
//! no compression, under 2 MB huge pages.
//!
//! Paper: 14% average slowdown at low compression, 18% at high.

use dylect_bench::{geomean, print_table, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let specs = suite();
    let mut keys = Vec::new();
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        for spec in &specs {
            for scheme in [SchemeKind::NoCompression, SchemeKind::tmcc()] {
                keys.push(RunKey::new(spec.clone(), scheme, setting, mode));
            }
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut chunks = reports.chunks_exact(2);
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        let mut normalized = Vec::new();
        for spec in &specs {
            let [base, tmcc] = chunks.next().expect("report per key") else {
                unreachable!("chunks of 2");
            };
            let perf = tmcc.speedup_over(base);
            normalized.push(perf);
            rows.push(vec![
                format!("{setting:?}"),
                spec.name.to_owned(),
                format!("{perf:.4}"),
            ]);
            eprintln!(
                "[fig04] {setting:?} {}: {perf:.3} of no-compression",
                spec.name
            );
        }
        rows.push(vec![
            format!("{setting:?}"),
            "GEOMEAN".to_owned(),
            format!("{:.4}", geomean(&normalized)),
        ]);
    }
    print_table(
        "Figure 4: TMCC normalized to no-compression (paper: 0.86 low, 0.82 high)",
        &["setting", "benchmark", "tmcc_normalized_perf"],
        &rows,
    );
}
