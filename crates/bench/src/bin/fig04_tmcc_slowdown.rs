//! Figure 4: TMCC's performance normalized to a bigger memory system with
//! no compression, under 2 MB huge pages.
//!
//! Paper: 14% average slowdown at low compression, 18% at high.

use dylect_bench::{geomean, print_table, run_one, suite, Mode};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let mut rows = Vec::new();
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        let mut normalized = Vec::new();
        for spec in suite() {
            let base = run_one(&spec, SchemeKind::NoCompression, setting, mode);
            let tmcc = run_one(&spec, SchemeKind::tmcc(), setting, mode);
            let perf = tmcc.speedup_over(&base);
            normalized.push(perf);
            rows.push(vec![
                format!("{setting:?}"),
                spec.name.to_owned(),
                format!("{perf:.4}"),
            ]);
            eprintln!("[fig04] {setting:?} {}: {perf:.3} of no-compression", spec.name);
        }
        rows.push(vec![
            format!("{setting:?}"),
            "GEOMEAN".to_owned(),
            format!("{:.4}", geomean(&normalized)),
        ]);
    }
    print_table(
        "Figure 4: TMCC normalized to no-compression (paper: 0.86 low, 0.82 high)",
        &["setting", "benchmark", "tmcc_normalized_perf"],
        &rows,
    );
}
