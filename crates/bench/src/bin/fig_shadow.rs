//! Counterfactual CTE-cache analysis: what would a bigger or ideal CTE
//! cache have bought each scheme, and why do the real caches miss?
//!
//! The paper's core argument is a counterfactual: short-CTE pre-gathering
//! multiplies per-block reach, so the *same* cache covers far more memory
//! — i.e. DyLeCT's misses should look compulsory-bound where TMCC's are
//! capacity-bound. This binary runs the shared benchmark configuration
//! with shadow probing enabled and prints, per scheme:
//!
//! - the 3C miss classification of the real CTE cache (compulsory /
//!   capacity / conflict — the classes provably sum to the real miss
//!   count, which is asserted on every run);
//! - the shadow hit-rate sweep: the real geometry vs fully-associative,
//!   2× size, 4× size, 2× associativity, and infinite shadows replaying
//!   the identical lookup stream under the scheme's own fill policy;
//! - the page-lifetime summary: ML0/ML1/ML2 dwell (in retired ops),
//!   ping-ponging pages, and the top round-tripping pages.
//!
//! Exports land under `--out DIR` (default `results/shadow`) as
//! `<benchmark>-<scheme>.shadow.jsonl` (plus the standard telemetry
//! exports), consumed by `dylect-stats` and diffed byte-for-byte by the
//! `tools/verify.sh` shadow smoke step. Shadow state cannot be
//! reconstructed from a cached `RunReport`, so these jobs bypass the
//! report cache (`cache_name: None`) while still using the worker pool.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use dylect_bench::runner::{Job, Runner};
use dylect_bench::{print_table, warmup_for, Mode, RunKey};
use dylect_sim::{SchemeKind, System};
use dylect_sim_core::probe::CteBlockKind;
use dylect_telemetry::TelemetryConfig;
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

/// What one run hands back beside its report.
struct SchemeOutput {
    class_rows: Vec<Vec<String>>,
    config_rows: Vec<Vec<String>>,
    life_rows: Vec<Vec<String>>,
    pingpong_line: String,
    top_rows: Vec<Vec<String>>,
    export_paths: Vec<PathBuf>,
}

fn main() {
    let mode = Mode::from_env();
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let bench = flag("--bench").unwrap_or_else(|| "omnetpp".to_owned());
    let out_dir = PathBuf::from(flag("--out").unwrap_or_else(|| "results/shadow".to_owned()));
    let spec = BenchmarkSpec::by_name(&bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    });
    let setting = CompressionSetting::High;
    let span_sample = TelemetryConfig::span_sample_from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let outputs: Arc<Mutex<BTreeMap<String, SchemeOutput>>> = Arc::default();
    let mut jobs = Vec::new();
    for scheme in [
        SchemeKind::tmcc(),
        SchemeKind::NaiveDynamic,
        SchemeKind::dylect(),
    ] {
        let key = RunKey::new(spec.clone(), scheme, setting, mode);
        let label = key.scheme.label();
        let stem = out_dir.join(format!("{}-{label}", spec.name));
        let outputs = outputs.clone();
        jobs.push(Job {
            label: format!("{}/{label}/shadow", spec.name),
            // Shadow/provenance state is not part of RunReport, so a cache
            // hit would skip exactly the data this figure exists for.
            cache_name: None,
            work: Box::new(move || {
                let warmup = warmup_for(&key.spec, key.mode);
                let mut sys = System::new(key.config(), &key.spec);
                sys.enable_telemetry(TelemetryConfig {
                    shadow: true,
                    span_sample,
                    ..TelemetryConfig::default()
                });
                let report = sys.run(warmup, key.mode.measure_ops);
                let telemetry = sys.take_telemetry().expect("enabled above");
                let shadow = telemetry.shadow();
                let prov = telemetry.provenance();

                let mut class_rows = Vec::new();
                let mut kinds: Vec<(&str, _)> = CteBlockKind::ALL
                    .iter()
                    .map(|&k| (k.name(), shadow.classes(k)))
                    .collect();
                kinds.push(("total", shadow.classes_total()));
                for (kind, c) in &kinds {
                    // The acceptance invariant: the three classes partition
                    // the real cache's misses exactly.
                    assert_eq!(
                        c.compulsory + c.capacity + c.conflict,
                        c.real_misses,
                        "{label}/{kind}: 3C classes must sum to real misses"
                    );
                    class_rows.push(vec![
                        label.clone(),
                        (*kind).to_owned(),
                        c.real_hits.to_string(),
                        c.real_misses.to_string(),
                        c.compulsory.to_string(),
                        c.capacity.to_string(),
                        c.conflict.to_string(),
                    ]);
                }
                let config_rows = shadow
                    .config_rows()
                    .iter()
                    .map(|r| {
                        let cap = if r.capacity_bytes == u64::MAX {
                            "inf".to_owned()
                        } else {
                            format!("{}", r.capacity_bytes / 1024)
                        };
                        let ways = if r.ways == 0 {
                            "full".to_owned()
                        } else {
                            r.ways.to_string()
                        };
                        vec![
                            label.clone(),
                            r.label.to_owned(),
                            cap,
                            ways,
                            r.tally.hits.to_string(),
                            r.tally.lookups.to_string(),
                            format!("{:.4}", r.tally.hit_rate()),
                        ]
                    })
                    .collect();
                let life_rows = prov
                    .level_rows()
                    .iter()
                    .map(|r| {
                        vec![
                            label.clone(),
                            r.level.name().to_owned(),
                            r.dwell_ops.to_string(),
                            r.resident_pages.to_string(),
                            r.entries.to_string(),
                        ]
                    })
                    .collect();
                let top_rows = prov
                    .top_pingpong(8)
                    .iter()
                    .map(|r| {
                        vec![
                            label.clone(),
                            r.mc.to_string(),
                            r.page.to_string(),
                            r.trips.to_string(),
                            r.pingpong_events.to_string(),
                            r.promotions.to_string(),
                            r.demotions.to_string(),
                        ]
                    })
                    .collect();
                let mut out = SchemeOutput {
                    class_rows,
                    config_rows,
                    life_rows,
                    pingpong_line: format!(
                        "{label}: {} pages tracked, {} ping-ponging",
                        prov.pages_tracked(),
                        prov.pingpong_pages()
                    ),
                    top_rows,
                    export_paths: Vec::new(),
                };
                drop(shadow);
                drop(prov);
                match telemetry.export_to(&stem) {
                    Ok(paths) => out.export_paths = paths,
                    Err(e) => eprintln!("[fig_shadow] export failed: {e}"),
                }
                outputs.lock().unwrap().insert(label.clone(), out);
                report
            }),
        });
    }
    Runner::from_env().run_jobs(jobs);

    let outputs = outputs.lock().unwrap();
    let mut class_rows = Vec::new();
    let mut config_rows = Vec::new();
    let mut life_rows = Vec::new();
    let mut top_rows = Vec::new();
    for (_, out) in outputs.iter() {
        class_rows.extend(out.class_rows.iter().cloned());
        config_rows.extend(out.config_rows.iter().cloned());
        life_rows.extend(out.life_rows.iter().cloned());
        top_rows.extend(out.top_rows.iter().cloned());
    }
    print_table(
        &format!(
            "Real CTE-cache miss classification ({}, high compression)",
            spec.name
        ),
        &[
            "scheme",
            "cte_kind",
            "hits",
            "misses",
            "compulsory",
            "capacity",
            "conflict",
        ],
        &class_rows,
    );
    print_table(
        &format!(
            "Shadow CTE-cache hit-rate sweep ({}, same stream + fill policy)",
            spec.name
        ),
        &[
            "scheme",
            "config",
            "capacity_kib",
            "ways",
            "hits",
            "lookups",
            "hit_rate",
        ],
        &config_rows,
    );
    print_table(
        &format!(
            "Page lifetime by managed level ({}, retired ops)",
            spec.name
        ),
        &["scheme", "level", "dwell_ops", "resident_pages", "entries"],
        &life_rows,
    );
    for (_, out) in outputs.iter() {
        println!("{}", out.pingpong_line);
    }
    if !top_rows.is_empty() {
        print_table(
            &format!("Top ping-pong pages ({}, by round trips)", spec.name),
            &[
                "scheme",
                "mc",
                "page",
                "trips",
                "pingpong_evts",
                "promotions",
                "demotions",
            ],
            &top_rows,
        );
    }
    for (_, out) in outputs.iter() {
        for p in &out.export_paths {
            println!("wrote {}", p.display());
        }
    }
}
