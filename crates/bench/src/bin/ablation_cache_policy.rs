//! Ablation: DyLeCT's CTE-cache insertion policy and the naive design's
//! short-CTE cache organization (paper Figure 9 + §IV-C2).
//!
//! Compares, at high compression:
//! - DyLeCT with the paper's selective policy (cache the unified block on a
//!   miss only for ML1/ML2 targets) vs. caching it always;
//! - the naive split-cache design with Option A (gathered 2 B lines, tag
//!   overhead) vs. Option B (64 B sector lines, slow warmup).

use dylect_bench::{config_for, print_table, run_jobs, warmup_for, Job, Mode};
use dylect_core::{Dylect, DylectConfig, NaiveDynamic, NaiveDynamicConfig, ShortCacheOption};
use dylect_cpu::PageTableLayout;
use dylect_dram::{Dram, DramConfig};
use dylect_memctl::MemoryScheme;
use dylect_sim::{SchemeKind, SharedMemory, System};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn run_with(
    spec: &BenchmarkSpec,
    mode: Mode,
    scheme_of: impl FnOnce(u64, &Dram) -> Box<dyn MemoryScheme>,
) -> dylect_sim::RunReport {
    let cfg = config_for(spec, SchemeKind::dylect(), CompressionSetting::High, mode);
    let dram = Dram::new(DramConfig::paper(cfg.dram_bytes, cfg.dram_ranks));
    let layout = PageTableLayout::new(spec.footprint_pages(cfg.scale));
    let scheme = scheme_of(layout.total_os_pages(), &dram);
    let shared = SharedMemory::new(cfg.l3_bytes, cfg.l3_ways, cfg.l3_latency, scheme, dram);
    let mut sys = System::from_parts(cfg, spec, shared);
    sys.run(warmup_for(spec, mode), mode.measure_ops)
}

fn main() {
    let mode = Mode::from_env();
    let spec = BenchmarkSpec::by_name("canneal").expect("in suite");
    let profile = spec.workload(1, 0).profile().clone();
    let base_fp = format!(
        "cfg{:?};spec{:?};warm{};measure{}",
        config_for(&spec, SchemeKind::dylect(), CompressionSetting::High, mode),
        spec,
        warmup_for(&spec, mode),
        mode.measure_ops,
    );
    let mut jobs = Vec::new();
    let mut labels = Vec::new();

    for (label, always) in [("paper (selective)", false), ("cache-unified-always", true)] {
        let p = profile.clone();
        let s = spec.clone();
        labels.push(format!("dylect/{label}"));
        jobs.push(Job::custom(
            format!("cache_policy/dylect/{label}"),
            &format!("{base_fp};always_cache_unified={always}"),
            move || {
                run_with(&s, mode, |os_pages, dram| {
                    Box::new(Dylect::new(
                        DylectConfig {
                            always_cache_unified: always,
                            ..DylectConfig::paper(os_pages)
                        },
                        dram,
                        p,
                        0x00D1_1EC7,
                    ))
                })
            },
        ));
    }

    for (label, opt) in [
        ("naive/option-A (gathered)", ShortCacheOption::GatheredA),
        ("naive/option-B (sector)", ShortCacheOption::SectorB),
    ] {
        let p = profile.clone();
        let s = spec.clone();
        labels.push(label.to_owned());
        jobs.push(Job::custom(
            format!("cache_policy/{label}"),
            &format!("{base_fp};short_cache={opt:?}"),
            move || {
                run_with(&s, mode, |os_pages, dram| {
                    Box::new(NaiveDynamic::new(
                        NaiveDynamicConfig {
                            short_cache: opt,
                            ..NaiveDynamicConfig::paper(os_pages)
                        },
                        dram,
                        p,
                        0x00D1_1EC7,
                    ))
                })
            },
        ));
    }

    let reports = run_jobs(jobs);
    let mut rows = Vec::new();
    for (label, r) in labels.iter().zip(&reports) {
        rows.push(vec![
            label.clone(),
            format!("{:.4}", r.mc.cte_hit_rate()),
            format!("{:.4}", r.mc.pregathered_hit_rate()),
            format!("{:.3e}", r.ips()),
        ]);
        eprintln!("[cache_policy] {label}: hit {:.3}", r.mc.cte_hit_rate());
    }

    print_table(
        "CTE-cache policy / organization ablation (canneal, high compression)",
        &["variant", "cte_hit", "short_or_pregathered_hit", "ips"],
        &rows,
    );
}
