//! Figure 6: TMCC at 4 KB / 16 KB / 64 KB / 128 KB compression
//! granularities, normalized to no compression.
//!
//! Paper: at low compression, coarser granules help (0.86 → 0.94) because
//! each CTE reaches further; at high compression they hurt badly
//! (0.82 → 0.54) because every expansion moves and decompresses the whole
//! granule.

use dylect_bench::{geomean, print_table, reduced_suite, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let granules = [1u64, 4, 16, 32]; // pages: 4K, 16K, 64K, 128K
    let specs = if std::env::args().any(|a| a == "--all") {
        suite()
    } else {
        reduced_suite()
    };
    let mut keys = Vec::new();
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        for spec in &specs {
            keys.push(RunKey::new(
                spec.clone(),
                SchemeKind::NoCompression,
                setting,
                mode,
            ));
            for g in granules {
                keys.push(RunKey::new(
                    spec.clone(),
                    SchemeKind::Tmcc {
                        granule_pages: g,
                        cte_cache_bytes: 128 * 1024,
                    },
                    setting,
                    mode,
                ));
            }
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut chunks = reports.chunks_exact(1 + granules.len());
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        let mut per_granule: Vec<Vec<f64>> = vec![Vec::new(); granules.len()];
        for spec in &specs {
            let group = chunks.next().expect("report per key");
            let base = &group[0];
            let mut row = vec![format!("{setting:?}"), spec.name.to_owned()];
            for (i, (g, r)) in granules.iter().zip(&group[1..]).enumerate() {
                let perf = r.speedup_over(base);
                per_granule[i].push(perf);
                row.push(format!("{perf:.4}"));
                eprintln!("[fig06] {setting:?} {} @{}KB: {perf:.3}", spec.name, g * 4);
            }
            rows.push(row);
        }
        rows.push(
            [format!("{setting:?}"), "GEOMEAN".to_owned()]
                .into_iter()
                .chain(per_granule.iter().map(|v| format!("{:.4}", geomean(v))))
                .collect(),
        );
    }
    print_table(
        "Figure 6: TMCC at coarse granularity, normalized to no compression \
         (paper low: 0.86/0.905/0.93/0.94; high: 0.82/0.77/0.66/0.54)",
        &["setting", "benchmark", "g4k", "g16k", "g64k", "g128k"],
        &rows,
    );
}
