//! Digest-stability matrix and first-divergence bisection demo.
//!
//! Default mode: runs the shared three-scheme matrix (2 memory
//! controllers) with state-digest capture forced on, once with 1 drain
//! worker and once with 3 (`System::set_jobs`), and renders whether every
//! per-window digest stream is byte-stable across worker counts — the
//! observability counterpart of the determinism suite. Streams land under
//! `--out DIR` (default `results/divergence`) as
//! `<benchmark>-<scheme>-j<n>.digest.jsonl`.
//!
//! `--bisect` instead demonstrates (and lets `tools/verify.sh` assert)
//! the full localization pipeline on a known fault: a base run and a run
//! with a single spurious L3-miss count injected at op
//! [`PERTURB_AT`] are compared window-by-window to find the first
//! diverging window and component, then re-executed with op-level digests
//! over that window to name the exact first diverging operation. On a
//! divergence the always-on flight recorder dumps its ring to
//! `results/blackbox/` for post-mortem context.
//!
//! Digest capture is process-global and the streams are the artifact, so
//! these jobs bypass the report cache like `fig_selfprofile`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use dylect_bench::runner::{Job, Runner};
use dylect_bench::{print_table, warmup_for, Mode, RunKey};
use dylect_sim::{SchemeKind, System};
use dylect_sim_core::blackbox;
use dylect_sim_core::digest::{self, first_difference, DigestRecord};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

/// Retired-op index where `--bisect` injects its one-bit fault. A
/// multiple of the 256-op drain batch, so the batched, per-op, and replay
/// paths all fire it at the same op count; sits inside window 2, so
/// window 1 pins the agreement prefix.
const PERTURB_AT: u64 = 6_400;

/// Digest window length for these demos: op-scale resolution matters
/// more than throughput here, so every system shrinks its window from
/// the coarse production default (`digest::DEFAULT_WINDOW_OPS`).
const FIG_WINDOW: u64 = 4_096;

/// Drain-worker counts the stability matrix compares.
const JOBS: [usize; 2] = [1, 3];

fn write_stream(path: &Path, records: &[DigestRecord]) {
    let mut body = String::new();
    for r in records {
        body.push_str(&r.to_jsonl_line());
        body.push('\n');
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(path, body) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("[fig_divergence] write failed {}: {e}", path.display()),
    }
}

/// First diverging record between two equal-length digest streams:
/// `(index, component)`.
fn first_divergence(a: &[DigestRecord], b: &[DigestRecord]) -> Option<(usize, String)> {
    a.iter()
        .zip(b)
        .enumerate()
        .find_map(|(i, (ra, rb))| first_difference(ra, rb).map(|c| (i, c)))
}

fn bisect(key: &RunKey, out_dir: &Path) -> u8 {
    // One agreement window, the perturbed window, and one window of
    // propagated divergence.
    let total = 3 * FIG_WINDOW;
    let run = |perturb: Option<u64>| {
        let mut sys = System::new(key.config(), &key.spec);
        sys.set_digest_window(FIG_WINDOW);
        sys.arm_perturb(perturb);
        sys.execute(total);
        sys.take_digests()
    };
    let base = run(None);
    let hurt = run(Some(PERTURB_AT));
    write_stream(&out_dir.join("bisect-base.digest.jsonl"), &base);
    write_stream(&out_dir.join("bisect-perturbed.digest.jsonl"), &hurt);

    let Some((wi, component)) = first_divergence(&base, &hurt) else {
        println!("streams are identical: the injected perturbation was not observed");
        return 1;
    };
    let window = hurt[wi].window;
    println!("first diverging window: {window} (component {component})");
    blackbox::record(blackbox::EventKind::DigestMismatch, window, 0);

    // Op-level refinement: re-execute both runs from cold up to the end
    // of the diverging window, capturing a digest after every op.
    let end = hurt[wi].ops_retired;
    let replay = |perturb: Option<u64>| {
        let mut sys = System::new(key.config(), &key.spec);
        sys.set_digest_window(FIG_WINDOW);
        sys.arm_perturb(perturb);
        sys.execute_op_digests(end, 0);
        sys.take_digests()
    };
    let base_ops = replay(None);
    let hurt_ops = replay(Some(PERTURB_AT));
    write_stream(&out_dir.join("bisect-base.opdigest.jsonl"), &base_ops);
    write_stream(&out_dir.join("bisect-perturbed.opdigest.jsonl"), &hurt_ops);

    let Some((oi, op_component)) = first_divergence(&base_ops, &hurt_ops) else {
        println!("op replay did not reproduce the window divergence");
        return 1;
    };
    let op = hurt_ops[oi].op.expect("op-level records carry op indices");
    println!("first diverging op: {op} (component {op_component})");
    // Re-record the verdict just before dumping: the op-level replay above
    // logged one ring event per captured op, which can flush the
    // window-time mismatch record out of the bounded ring.
    blackbox::record(blackbox::EventKind::DigestMismatch, window, op);
    match blackbox::dump("digest-mismatch") {
        Ok(p) => println!("flight recorder dumped to {}", p.display()),
        Err(e) => eprintln!("[fig_divergence] blackbox dump failed: {e}"),
    }

    // The demo localized the fault iff it names the injection exactly.
    if op == PERTURB_AT && op_component == "cache" {
        println!("bisect ok: localized the injected fault to op {PERTURB_AT}, component cache");
        0
    } else {
        println!(
            "bisect FAILED: expected op {PERTURB_AT} component cache, \
             got op {op} component {op_component}"
        );
        1
    }
}

fn main() {
    let mode = Mode::from_env();
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let bench = flag("--bench").unwrap_or_else(|| "omnetpp".to_owned());
    let out_dir = PathBuf::from(flag("--out").unwrap_or_else(|| "results/divergence".to_owned()));
    let spec = BenchmarkSpec::by_name(&bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    });
    let setting = CompressionSetting::High;

    // from_env() strict-parses DYLECT_DIGEST and installs the panic hook;
    // this binary then forces capture on — the digest streams *are* its
    // output.
    let runner = Runner::from_env();
    digest::set_enabled(true);
    blackbox::set_label(&format!("fig_divergence-{bench}"));

    if args.iter().any(|a| a == "--bisect") {
        let key = RunKey::new(spec, SchemeKind::dylect(), setting, mode);
        std::process::exit(bisect(&key, &out_dir) as i32);
    }

    // Stability matrix: per-window digests must be byte-identical across
    // drain-worker counts for every scheme.
    type StreamsByJob = BTreeMap<(String, usize), Vec<DigestRecord>>;
    let outputs: Arc<Mutex<StreamsByJob>> = Arc::default();
    let mut jobs = Vec::new();
    for scheme in [
        SchemeKind::tmcc(),
        SchemeKind::NaiveDynamic,
        SchemeKind::dylect(),
    ] {
        for n_jobs in JOBS {
            let key = RunKey::new(spec.clone(), scheme.clone(), setting, mode).with_mcs(2);
            let label = key.scheme.label();
            let outputs = outputs.clone();
            jobs.push(Job {
                label: format!("{}/{label}/digest-j{n_jobs}", spec.name),
                // A cache hit skips execution and would record no digests.
                cache_name: None,
                work: Box::new(move || {
                    let warmup = warmup_for(&key.spec, key.mode);
                    let mut sys = System::new(key.config(), &key.spec);
                    sys.set_digest_window(FIG_WINDOW);
                    sys.set_jobs(n_jobs);
                    let report = sys.run(warmup, key.mode.measure_ops);
                    outputs
                        .lock()
                        .unwrap()
                        .insert((label.clone(), n_jobs), sys.take_digests());
                    report
                }),
            });
        }
    }
    runner.run_jobs(jobs);

    let outputs = outputs.lock().unwrap();
    let mut rows = Vec::new();
    let mut unstable = 0usize;
    for scheme in ["tmcc", "naive", "dylect"] {
        // Scheme labels come from SchemeKind::label(); look them up loosely
        // so a label tweak fails visibly rather than silently skipping.
        let of_jobs = |n: usize| {
            outputs
                .iter()
                .find(|((l, j), _)| l.contains(scheme) && *j == n)
                .map(|(_, v)| v)
        };
        let (Some(a), Some(b)) = (of_jobs(JOBS[0]), of_jobs(JOBS[1])) else {
            eprintln!("[fig_divergence] missing output for scheme {scheme}");
            unstable += 1;
            continue;
        };
        for (n, stream) in [(JOBS[0], a), (JOBS[1], b)] {
            write_stream(
                &out_dir.join(format!("{}-{scheme}-j{n}.digest.jsonl", spec.name)),
                stream,
            );
        }
        let verdict = if a.len() != b.len() {
            unstable += 1;
            format!("UNSTABLE (window counts {} vs {})", a.len(), b.len())
        } else {
            match first_divergence(a, b) {
                None => "stable".to_owned(),
                Some((i, comp)) => {
                    unstable += 1;
                    blackbox::record(blackbox::EventKind::DigestMismatch, a[i].window, 0);
                    let _ = blackbox::dump("digest-mismatch");
                    format!("UNSTABLE at window {} ({comp})", a[i].window)
                }
            }
        };
        rows.push(vec![scheme.to_owned(), a.len().to_string(), verdict]);
    }
    print_table(
        &format!(
            "Digest stability across drain workers {{{},{}}} ({}, high compression, 2 MCs)",
            JOBS[0], JOBS[1], spec.name
        ),
        &["scheme", "windows", "j1 vs j3"],
        &rows,
    );
    if unstable == 0 {
        println!(
            "digest stability: {}/{} schemes stable",
            rows.len(),
            rows.len()
        );
    } else {
        println!("digest stability: {unstable} scheme(s) UNSTABLE");
        std::process::exit(1);
    }
}
