//! Figure 21: how much TMCC and DyLeCT increase L3 miss latency over a
//! system with no compression (nanoseconds).
//!
//! Paper: DyLeCT adds 2.9 ns (low) / 5.8 ns (high) on average; TMCC adds
//! 9.5 ns / 12.8 ns.

use dylect_bench::{print_table, run_matrix, suite, Mode, RunKey};
use dylect_sim::SchemeKind;
use dylect_workloads::CompressionSetting;

fn main() {
    let mode = Mode::from_env();
    let specs = suite();
    let mut keys = Vec::new();
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        for spec in &specs {
            for scheme in [SchemeKind::tmcc(), SchemeKind::dylect()] {
                keys.push(RunKey::new(spec.clone(), scheme, setting, mode));
            }
        }
    }
    let reports = run_matrix(keys);

    let mut rows = Vec::new();
    let mut chunks = reports.chunks_exact(2);
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        let mut sums = [0.0f64; 2];
        let mut n = 0.0;
        for spec in &specs {
            let [tmcc, dylect] = chunks.next().expect("report per key") else {
                unreachable!("chunks of 2");
            };
            sums[0] += tmcc.l3_miss_overhead_ns;
            sums[1] += dylect.l3_miss_overhead_ns;
            n += 1.0;
            rows.push(vec![
                format!("{setting:?}"),
                spec.name.to_owned(),
                format!("{:.2}", tmcc.l3_miss_overhead_ns),
                format!("{:.2}", dylect.l3_miss_overhead_ns),
            ]);
            eprintln!(
                "[fig21] {setting:?} {}: tmcc +{:.1}ns, dylect +{:.1}ns",
                spec.name, tmcc.l3_miss_overhead_ns, dylect.l3_miss_overhead_ns
            );
        }
        rows.push(vec![
            format!("{setting:?}"),
            "MEAN".to_owned(),
            format!("{:.2}", sums[0] / n),
            format!("{:.2}", sums[1] / n),
        ]);
    }
    print_table(
        "Figure 21: L3 miss latency adder in ns (paper: TMCC 9.5/12.8, DyLeCT 2.9/5.8)",
        &["setting", "benchmark", "tmcc_adder_ns", "dylect_adder_ns"],
        &rows,
    );
}
