//! Host-side self-profile of the simulator itself: where do the
//! wall-clock nanoseconds per simulated op go?
//!
//! This is the dual-clock figure. Every other figure reports *simulated*
//! time (picoseconds inside the modeled machine); this one runs the
//! shared three-scheme benchmark matrix with the host profiler
//! (`DYLECT_PROF=1`) armed and reports *host* time: wall-clock spent in
//! batch fill vs. step, the sampled per-event subsystems (memory access,
//! scheme directory, DRAM, TLB walks), writeback-drain worker busy time,
//! and runner/export IO. It answers ROADMAP item 1 — which host-side
//! phase owns the remaining ns/op after batching.
//!
//! Two artifact classes land under `--out DIR` (default
//! `results/selfprofile`):
//!
//! - the standard deterministic telemetry exports per scheme
//!   (`<benchmark>-<scheme>.{series.jsonl,events.jsonl,latency.jsonl,
//!   trace.json}`) — byte-identical whether profiling is on or off,
//!   which `tools/verify.sh` pins by running this binary twice and
//!   diffing;
//! - when `DYLECT_PROF=1`: `selfprofile.prof.jsonl` (phase/worker rows
//!   for `dylect-stats summary`) and `<benchmark>-dylect.dual.trace.json`
//!   (Chrome trace with the simulated clock on pid 0 and host wall-clock
//!   spans on pid 1). These are host-nondeterministic by nature and are
//!   never diffed.
//!
//! Profiling state is process-global and would be polluted by report-cache
//! hits (a cached job records no phases), so these jobs bypass the report
//! cache (`cache_name: None`) like `fig_shadow`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dylect_bench::runner::{Job, Runner};
use dylect_bench::{print_table, warmup_for, Mode, RunKey};
use dylect_sim::{SchemeKind, System};
use dylect_sim_core::probe::SpanRecord;
use dylect_sim_core::prof;
use dylect_telemetry::export::{chrome_trace_dual, prof_jsonl};
use dylect_telemetry::{EventJournal, TelemetryConfig};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

/// What one run hands back beside its report.
struct SchemeOutput {
    report_row: Vec<String>,
    export_paths: Vec<PathBuf>,
    /// Simulated-event data for the dual-clock trace (dylect only).
    trace_data: Option<(EventJournal, Vec<SpanRecord>)>,
    total_ops: u64,
}

fn main() {
    let mode = Mode::from_env();
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let bench = flag("--bench").unwrap_or_else(|| "omnetpp".to_owned());
    let out_dir = PathBuf::from(flag("--out").unwrap_or_else(|| "results/selfprofile".to_owned()));
    let spec = BenchmarkSpec::by_name(&bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    });
    let setting = CompressionSetting::High;
    let span_sample = TelemetryConfig::span_sample_from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    // from_env() strict-parses DYLECT_PROF (exit 2 on garbage) and arms
    // the profiler before any job runs.
    let runner = Runner::from_env();
    prof::reset();

    let outputs: Arc<Mutex<BTreeMap<String, SchemeOutput>>> = Arc::default();
    let mut jobs = Vec::new();
    for scheme in [
        SchemeKind::tmcc(),
        SchemeKind::NaiveDynamic,
        SchemeKind::dylect(),
    ] {
        let key = RunKey::new(spec.clone(), scheme, setting, mode);
        let label = key.scheme.label();
        let stem = out_dir.join(format!("{}-{label}", spec.name));
        let want_trace = key.scheme == SchemeKind::dylect();
        let outputs = outputs.clone();
        jobs.push(Job {
            label: format!("{}/{label}/selfprofile", spec.name),
            // A cache hit skips execution, so the profiler would record
            // nothing — bypass the report cache unconditionally.
            cache_name: None,
            work: Box::new(move || {
                let warmup = warmup_for(&key.spec, key.mode);
                let mut sys = System::new(key.config(), &key.spec);
                sys.enable_telemetry(TelemetryConfig {
                    span_sample,
                    ..TelemetryConfig::default()
                });
                let report = sys.run(warmup, key.mode.measure_ops);
                let telemetry = sys.take_telemetry().expect("enabled above");
                let trace_data = want_trace.then(|| {
                    (
                        telemetry.journal().clone(),
                        telemetry.attribution().spans().to_vec(),
                    )
                });
                let mut out = SchemeOutput {
                    report_row: vec![
                        label.clone(),
                        report.instructions.to_string(),
                        report.mem_ops.to_string(),
                        format!("{:.4}", report.tlb_miss_rate),
                        report.l3_misses.to_string(),
                        format!("{:.1}", report.l3_miss_latency_ns),
                    ],
                    export_paths: Vec::new(),
                    trace_data,
                    total_ops: warmup + key.mode.measure_ops,
                };
                match telemetry.export_to(&stem) {
                    Ok(paths) => out.export_paths = paths,
                    Err(e) => eprintln!("[fig_selfprofile] export failed: {e}"),
                }
                outputs.lock().unwrap().insert(label.clone(), out);
                report
            }),
        });
    }
    let wall = Instant::now();
    runner.run_jobs(jobs);
    let wall_ns = wall.elapsed().as_nanos() as f64;

    let outputs = outputs.lock().unwrap();
    let report_rows: Vec<Vec<String>> = outputs.values().map(|o| o.report_row.clone()).collect();
    print_table(
        &format!("Per-scheme run summary ({}, high compression)", spec.name),
        &[
            "scheme",
            "instructions",
            "mem_ops",
            "tlb_miss_rate",
            "l3_misses",
            "l3_lat_ns",
        ],
        &report_rows,
    );
    for out in outputs.values() {
        for p in &out.export_paths {
            println!("wrote {}", p.display());
        }
    }

    if !prof::enabled() {
        println!("DYLECT_PROF not set: host-profiling artifacts skipped");
        return;
    }
    let host = prof::report();
    let total_ops: u64 = outputs.values().map(|o| o.total_ops).sum();
    let meta = vec![
        ("wall_ns".to_owned(), wall_ns),
        ("measure_ops".to_owned(), total_ops as f64),
    ];
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("[fig_selfprofile] cannot create {}: {e}", out_dir.display());
        std::process::exit(2);
    }
    let prof_path = out_dir.join("selfprofile.prof.jsonl");
    match std::fs::write(&prof_path, prof_jsonl(&host, &meta)) {
        Ok(()) => println!("wrote {}", prof_path.display()),
        Err(e) => eprintln!("[fig_selfprofile] write failed: {e}"),
    }
    if let Some((journal, spans)) = outputs.values().find_map(|o| o.trace_data.as_ref()) {
        let dual_path = out_dir.join(format!("{}-dylect.dual.trace.json", spec.name));
        match std::fs::write(&dual_path, chrome_trace_dual(journal, spans, &host)) {
            Ok(()) => println!("wrote {}", dual_path.display()),
            Err(e) => eprintln!("[fig_selfprofile] write failed: {e}"),
        }
    }
    println!(
        "host profile: {} phases, {} spans retained ({} dropped); \
         inspect with `dylect-stats summary {}`",
        host.phases.iter().filter(|p| p.calls > 0).count(),
        host.spans.len(),
        host.spans_dropped,
        prof_path.display()
    );
}
