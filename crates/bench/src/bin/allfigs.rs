//! One-stop reproduction driver: runs the benchmark × setting × scheme
//! matrix once and prints every table/figure section that can be derived
//! from it, then the extra sweeps (page sizes, CTE cache sizes,
//! granularity, group size).
//!
//! The per-figure binaries (`fig18_speedup` etc.) remain the documented
//! entrypoints for individual experiments; this driver exists because the
//! figures share most of their runs. All runs — matrix and sweeps — are
//! submitted to the parallel runner as one batch, so they spread across
//! `DYLECT_JOBS` workers and land in `results/cache/`, where the
//! per-figure binaries pick them up without re-simulating.
//!
//! Usage: `allfigs [--quick] [--all]` (`--all` = full 12-benchmark suite).

use std::collections::HashMap;

use dylect_bench::{geomean, print_table, run_matrix, suite, Mode, RunKey};
use dylect_cpu::PageSizeMode;
use dylect_dram::RequestClass;
use dylect_sim::{RunReport, SchemeKind};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

type Key = (String, &'static str, &'static str);

fn setting_name(s: CompressionSetting) -> &'static str {
    match s {
        CompressionSetting::Low => "low",
        CompressionSetting::High => "high",
    }
}

fn main() {
    let mode = Mode::from_env();
    let specs = suite();

    // ---- Phase 1: build the whole run list ------------------------------
    // Keys are submitted in one batch; the runner dedups identical configs
    // (e.g. the g=1 granularity point repeats the matrix TMCC run) and
    // executes the rest in parallel.
    let mut ids: Vec<Key> = Vec::new();
    let mut keys: Vec<RunKey> = Vec::new();
    let push = |ids: &mut Vec<Key>, keys: &mut Vec<RunKey>, id: Key, key: RunKey| {
        ids.push(id);
        keys.push(key);
    };

    let schemes: [(&'static str, SchemeKind); 4] = [
        ("nocomp", SchemeKind::NoCompression),
        ("tmcc", SchemeKind::tmcc()),
        ("dylect", SchemeKind::dylect()),
        ("upper", SchemeKind::DylectAlwaysHit { group_size: 3 }),
    ];
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        for spec in &specs {
            for (label, scheme) in &schemes {
                push(
                    &mut ids,
                    &mut keys,
                    (spec.name.to_owned(), setting_name(setting), label),
                    RunKey::new(spec.clone(), scheme.clone(), setting, mode),
                );
            }
        }
    }
    // Naive strawman + the 16-rank no-compression system (energy), high only.
    for spec in &specs {
        push(
            &mut ids,
            &mut keys,
            (spec.name.to_owned(), "high", "naive"),
            RunKey::new(
                spec.clone(),
                SchemeKind::NaiveDynamic,
                CompressionSetting::High,
                mode,
            ),
        );
        push(
            &mut ids,
            &mut keys,
            (spec.name.to_owned(), "high", "nocomp16"),
            RunKey::new(
                spec.clone(),
                SchemeKind::NoCompression,
                CompressionSetting::High,
                mode,
            )
            .with_ranks(16, 2),
        );
    }
    // Figure 3: the 4 KB-page baseline (the 2 MB side reuses matrix nocomp).
    for spec in &specs {
        push(
            &mut ids,
            &mut keys,
            (spec.name.to_owned(), "low", "nocomp4k"),
            RunKey::new(
                spec.clone(),
                SchemeKind::NoCompression,
                CompressionSetting::Low,
                mode,
            )
            .with_pages(PageSizeMode::Standard4K),
        );
    }
    // Figure 5: CTE cache size sweep (TMCC, high) on the first 4 benchmarks.
    let sweep_specs: Vec<BenchmarkSpec> = specs.iter().take(4).cloned().collect();
    let cte_sizes: [(&'static str, u64); 4] = [
        ("cte64", 64),
        ("cte128", 128),
        ("cte256", 256),
        ("cte512", 512),
    ];
    for spec in &sweep_specs {
        for (label, kb) in cte_sizes {
            push(
                &mut ids,
                &mut keys,
                (spec.name.to_owned(), "high", label),
                RunKey::new(
                    spec.clone(),
                    SchemeKind::Tmcc {
                        granule_pages: 1,
                        cte_cache_bytes: kb * 1024,
                    },
                    CompressionSetting::High,
                    mode,
                ),
            );
        }
    }
    // Figures 6 + 25: granularity and group-size sweeps on the two fastest
    // benchmarks.
    let g_specs: Vec<BenchmarkSpec> = ["omnetpp", "canneal"]
        .iter()
        .filter_map(|n| BenchmarkSpec::by_name(n))
        .collect();
    let granules: [(&'static str, u64); 4] = [("g1", 1), ("g4", 4), ("g16", 16), ("g32", 32)];
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        for spec in &g_specs {
            for (label, g) in granules {
                push(
                    &mut ids,
                    &mut keys,
                    (spec.name.to_owned(), setting_name(setting), label),
                    RunKey::new(
                        spec.clone(),
                        SchemeKind::Tmcc {
                            granule_pages: g,
                            cte_cache_bytes: 128 * 1024,
                        },
                        setting,
                        mode,
                    ),
                );
            }
        }
    }
    let groups: [(&'static str, u64); 4] = [("grp1", 1), ("grp3", 3), ("grp7", 7), ("grp15", 15)];
    for spec in &g_specs {
        for (label, g) in groups {
            push(
                &mut ids,
                &mut keys,
                (spec.name.to_owned(), "high", label),
                RunKey::new(
                    spec.clone(),
                    SchemeKind::Dylect {
                        group_size: g,
                        cte_cache_bytes: 128 * 1024,
                    },
                    CompressionSetting::High,
                    mode,
                ),
            );
        }
    }

    eprintln!("[allfigs] {} runs submitted", keys.len());
    let results = run_matrix(keys);
    let reports: HashMap<Key, RunReport> = ids.into_iter().zip(results).collect();

    let get = |b: &str, s: &'static str, sch: &'static str| -> &RunReport {
        reports
            .get(&(b.to_owned(), s, sch))
            .expect("report present")
    };

    for s in ["low", "high"] {
        for spec in &specs {
            for (label, _) in &schemes {
                let r = get(spec.name, s, label);
                eprintln!(
                    "[matrix] {s} {} {label}: ips {:.3e} hit {:.3}",
                    spec.name,
                    r.ips(),
                    r.mc.cte_hit_rate()
                );
            }
        }
    }

    // ---- Phase 2: derived figures ---------------------------------------
    // Figure 4.
    let mut rows = Vec::new();
    for s in ["low", "high"] {
        let mut xs = Vec::new();
        for spec in &specs {
            let v = get(spec.name, s, "tmcc").speedup_over(get(spec.name, s, "nocomp"));
            xs.push(v);
            rows.push(vec![s.into(), spec.name.into(), format!("{v:.4}")]);
        }
        rows.push(vec![
            s.into(),
            "GEOMEAN".into(),
            format!("{:.4}", geomean(&xs)),
        ]);
    }
    print_table(
        "Figure 4: TMCC normalized to no-compression (paper: 0.86 low, 0.82 high)",
        &["setting", "benchmark", "tmcc_norm_perf"],
        &rows,
    );

    // Figure 18.
    let mut rows = Vec::new();
    let mut all_speedups = Vec::new();
    for s in ["low", "high"] {
        let mut xs = Vec::new();
        for spec in &specs {
            let d = get(spec.name, s, "dylect").speedup_over(get(spec.name, s, "tmcc"));
            let u = get(spec.name, s, "upper").speedup_over(get(spec.name, s, "tmcc"));
            xs.push(d);
            all_speedups.push(d);
            rows.push(vec![
                s.into(),
                spec.name.into(),
                format!("{d:.4}"),
                format!("{u:.4}"),
            ]);
        }
        rows.push(vec![
            s.into(),
            "GEOMEAN".into(),
            format!("{:.4}", geomean(&xs)),
            String::new(),
        ]);
    }
    print_table(
        "Figure 18: DyLeCT over TMCC + always-hit upper bound (paper: 1.11 low, 1.095 high)",
        &[
            "setting",
            "benchmark",
            "dylect_over_tmcc",
            "upper_over_tmcc",
        ],
        &rows,
    );
    println!("# fig18 overall geomean: {:.4}\n", geomean(&all_speedups));

    // Figure 19.
    let mut rows = Vec::new();
    for s in ["low", "high"] {
        let mut sums = [0.0f64; 4];
        for spec in &specs {
            let t = get(spec.name, s, "tmcc").mc.cte_hit_rate();
            let d = get(spec.name, s, "dylect");
            sums[0] += t;
            sums[1] += d.mc.cte_hit_rate();
            sums[2] += d.mc.pregathered_hit_rate();
            sums[3] += d.mc.unified_hit_rate();
            rows.push(vec![
                s.into(),
                spec.name.into(),
                format!("{t:.4}"),
                format!("{:.4}", d.mc.cte_hit_rate()),
                format!("{:.4}", d.mc.pregathered_hit_rate()),
                format!("{:.4}", d.mc.unified_hit_rate()),
            ]);
        }
        let n = specs.len() as f64;
        rows.push(vec![
            s.into(),
            "MEAN".into(),
            format!("{:.4}", sums[0] / n),
            format!("{:.4}", sums[1] / n),
            format!("{:.4}", sums[2] / n),
            format!("{:.4}", sums[3] / n),
        ]);
    }
    print_table(
        "Figure 19: CTE cache hit rates (paper: low 0.70->0.96, high 0.67->0.91 = 0.77pg + 0.14uni)",
        &["setting", "benchmark", "tmcc", "dylect", "pregathered", "unified"],
        &rows,
    );

    // Figure 20.
    let mut rows = Vec::new();
    for s in ["low", "high"] {
        for spec in &specs {
            let o = get(spec.name, s, "dylect").occupancy;
            let total = (o.ml0_pages + o.ml1_pages + o.ml2_pages) as f64;
            rows.push(vec![
                s.into(),
                spec.name.into(),
                format!("{:.4}", o.ml0_pages as f64 / total),
                format!("{:.4}", o.ml1_pages as f64 / total),
                format!("{:.4}", o.ml2_pages as f64 / total),
                format!("{:.4}", o.ml0_fraction_of_uncompressed()),
            ]);
        }
    }
    print_table(
        "Figure 20: ML0/ML1/ML2 breakdown under DyLeCT (paper: ML0 grows at low compression; 66% of uncompressed at G=3)",
        &["setting", "benchmark", "ml0", "ml1", "ml2", "ml0_of_uncompressed"],
        &rows,
    );

    // Figure 21.
    let mut rows = Vec::new();
    for s in ["low", "high"] {
        let mut sums = [0.0f64; 2];
        for spec in &specs {
            let t = get(spec.name, s, "tmcc").l3_miss_overhead_ns;
            let d = get(spec.name, s, "dylect").l3_miss_overhead_ns;
            sums[0] += t;
            sums[1] += d;
            rows.push(vec![
                s.into(),
                spec.name.into(),
                format!("{t:.2}"),
                format!("{d:.2}"),
            ]);
        }
        let n = specs.len() as f64;
        rows.push(vec![
            s.into(),
            "MEAN".into(),
            format!("{:.2}", sums[0] / n),
            format!("{:.2}", sums[1] / n),
        ]);
    }
    print_table(
        "Figure 21: L3-miss latency adder, ns (paper: TMCC 9.5/12.8, DyLeCT 2.9/5.8)",
        &["setting", "benchmark", "tmcc_ns", "dylect_ns"],
        &rows,
    );

    // Figures 22 + 23.
    let mut rows = Vec::new();
    let mut r22 = Vec::new();
    let mut r23c = Vec::new();
    let mut r23t = Vec::new();
    for spec in &specs {
        let t = get(spec.name, "high", "tmcc");
        let d = get(spec.name, "high", "dylect");
        let per_inst = d.traffic_per_kilo_instruction() / t.traffic_per_kilo_instruction();
        let rate = |r: &RunReport, blocks: u64| blocks as f64 / r.elapsed.as_secs();
        let cte = rate(d, d.dram.class_blocks(RequestClass::CteFetch))
            / rate(t, t.dram.class_blocks(RequestClass::CteFetch));
        let tot = rate(d, d.dram.total_blocks()) / rate(t, t.dram.total_blocks());
        r22.push(per_inst);
        r23c.push(cte);
        r23t.push(tot);
        rows.push(vec![
            spec.name.into(),
            format!("{per_inst:.4}"),
            format!("{cte:.4}"),
            format!("{tot:.4}"),
        ]);
    }
    rows.push(vec![
        "GEOMEAN".into(),
        format!("{:.4}", geomean(&r22)),
        format!("{:.4}", geomean(&r23c)),
        format!("{:.4}", geomean(&r23t)),
    ]);
    print_table(
        "Figures 22-23: DyLeCT/TMCC traffic at high compression (paper: per-inst 0.93, CTE < 1, total ~1.045)",
        &["benchmark", "traffic_per_inst", "cte_traffic_rate", "total_traffic_rate"],
        &rows,
    );

    // Figure 24.
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    for spec in &specs {
        let base = get(spec.name, "high", "nocomp16");
        let d = get(spec.name, "high", "dylect");
        let ratio = d.energy_per_instruction_nj() / base.energy_per_instruction_nj();
        xs.push(ratio);
        rows.push(vec![spec.name.into(), format!("{ratio:.4}")]);
    }
    rows.push(vec!["GEOMEAN".into(), format!("{:.4}", geomean(&xs))]);
    print_table(
        "Figure 24: DRAM energy/instruction, DyLeCT(8rk)/NoComp(16rk) (paper: ~0.60)",
        &["benchmark", "energy_ratio"],
        &rows,
    );

    // Naive ablation.
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    for spec in &specs {
        let t = get(spec.name, "high", "tmcc");
        let n = get(spec.name, "high", "naive");
        let v = n.speedup_over(t);
        xs.push(v);
        rows.push(vec![
            spec.name.into(),
            format!("{:.4}", n.mc.cte_hit_rate()),
            format!("{v:.4}"),
        ]);
    }
    rows.push(vec![
        "GEOMEAN".into(),
        String::new(),
        format!("{:.4}", geomean(&xs)),
    ]);
    print_table(
        "Naive dynamic-length ablation (paper: hit 0.76, perf 0.95x TMCC)",
        &["benchmark", "naive_hit", "naive_over_tmcc"],
        &rows,
    );

    // Figure 17 (bandwidth, no compression, low DRAM config).
    let mut rows = Vec::new();
    for spec in &specs {
        let r = get(spec.name, "low", "nocomp");
        rows.push(vec![
            spec.name.into(),
            format!("{:.4}", r.bus_utilization()),
            format!("{:.2}", r.bus_utilization() * 25.6),
        ]);
    }
    print_table(
        "Figure 17: bandwidth utilization, no compression (paper: ~10-80%)",
        &["benchmark", "utilization", "gb_per_s"],
        &rows,
    );

    // ---- Phase 3: the sweeps --------------------------------------------
    // Figure 3: 4 KB vs 2 MB pages (the 2 MB side is the matrix nocomp run).
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    for spec in &specs {
        let small = get(spec.name, "low", "nocomp4k");
        let huge = get(spec.name, "low", "nocomp");
        let v = huge.speedup_over(small);
        xs.push(v);
        rows.push(vec![
            spec.name.into(),
            format!("{v:.3}"),
            format!("{:.4}", small.tlb_miss_rate),
            format!("{:.5}", huge.tlb_miss_rate),
        ]);
        eprintln!("[fig03] {}: {v:.2}x", spec.name);
    }
    rows.push(vec![
        "GEOMEAN".into(),
        format!("{:.3}", geomean(&xs)),
        String::new(),
        String::new(),
    ]);
    print_table(
        "Figure 3: 2MB over 4KB page speedup, no compression (paper: 1.75x avg)",
        &["benchmark", "speedup", "tlb_miss_4k", "tlb_miss_2m"],
        &rows,
    );

    // Figure 5: CTE cache size sweep (TMCC, high).
    let mut rows = Vec::new();
    for spec in &sweep_specs {
        let mut row = vec![spec.name.to_owned()];
        for (label, _) in cte_sizes {
            let r = get(spec.name, "high", label);
            row.push(format!("{:.4}", 1.0 - r.mc.cte_hit_rate()));
        }
        rows.push(row);
    }
    print_table(
        "Figure 5: TMCC CTE miss rate vs cache size (paper mean: 0.34@64K -> 0.24@512K)",
        &["benchmark", "64k", "128k", "256k", "512k"],
        &rows,
    );

    // Figure 6: granularity sweep on the two fastest benchmarks.
    let mut rows = Vec::new();
    for setting in [CompressionSetting::Low, CompressionSetting::High] {
        for spec in &g_specs {
            let base = get(spec.name, setting_name(setting), "nocomp");
            let mut row = vec![setting_name(setting).to_owned(), spec.name.to_owned()];
            for (label, _) in granules {
                let r = get(spec.name, setting_name(setting), label);
                row.push(format!("{:.4}", r.speedup_over(base)));
            }
            rows.push(row);
        }
    }
    print_table(
        "Figure 6: TMCC at coarse granularity vs no compression (paper low: up with g; high: down with g)",
        &["setting", "benchmark", "g4k", "g16k", "g64k", "g128k"],
        &rows,
    );

    // Figure 25: group-size sweep.
    let mut rows = Vec::new();
    for spec in &g_specs {
        let mut row = vec![spec.name.to_owned()];
        for (label, _) in groups {
            let r = get(spec.name, "high", label);
            row.push(format!("{:.4}", r.occupancy.ml0_fraction_of_uncompressed()));
        }
        rows.push(row);
    }
    print_table(
        "Figure 25: ML0 fraction of uncompressed vs group size, high compression (paper: ~0.66 at G=3, flat at G=7)",
        &["benchmark", "g1", "g3", "g7", "g15"],
        &rows,
    );

    println!("# allfigs complete");
}
