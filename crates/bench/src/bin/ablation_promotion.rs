//! Ablation: DyLeCT's promotion-policy knobs (DESIGN.md §6).
//!
//! Sweeps the counter sampling rate and the promotion thresholds on a
//! representative benchmark at high compression, reporting hit rate, ML0
//! coverage, migration volume, and performance relative to the paper
//! configuration.

use dylect_bench::{config_for, print_table, run_jobs, warmup_for, Job, Mode};
use dylect_sim::{SchemeKind, System};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn main() {
    let mode = Mode::from_env();
    let spec = BenchmarkSpec::by_name("canneal").expect("in suite");
    let setting = CompressionSetting::High;

    // (sample_rate, promotion_threshold, min_promotion_count)
    let variants: [(f64, u8, u8, &str); 5] = [
        (0.05, 2, 2, "paper"),
        (0.01, 2, 2, "sample-1%"),
        (0.20, 2, 2, "sample-20%"),
        (0.05, 0, 0, "eager (no thresholds)"),
        (0.05, 8, 8, "conservative"),
    ];

    let base_fp = format!(
        "cfg{:?};spec{:?};warm{};measure{}",
        config_for(&spec, SchemeKind::dylect(), setting, mode),
        spec,
        warmup_for(&spec, mode),
        mode.measure_ops,
    );
    let mut jobs = Vec::new();
    for (rate, threshold, min_count, label) in variants {
        // The SchemeKind enum doesn't expose these knobs; assemble the
        // scheme directly and wrap it with System::from_parts.
        let s = spec.clone();
        jobs.push(Job::custom(
            format!("promotion/{label}"),
            &format!("{base_fp};rate={rate};threshold={threshold};min={min_count}"),
            move || {
                let base_cfg = config_for(&s, SchemeKind::dylect(), setting, mode);
                let dram = dylect_dram::Dram::new(dylect_dram::DramConfig::paper(
                    base_cfg.dram_bytes,
                    base_cfg.dram_ranks,
                ));
                let footprint = s.footprint_pages(mode.scale);
                let layout = dylect_cpu::PageTableLayout::new(footprint);
                let dcfg = dylect_core::DylectConfig {
                    sample_rate: rate,
                    promotion_threshold: threshold,
                    min_promotion_count: min_count,
                    ..dylect_core::DylectConfig::paper(layout.total_os_pages())
                };
                let scheme = Box::new(dylect_core::Dylect::new(
                    dcfg,
                    &dram,
                    s.workload(mode.scale, base_cfg.seed).profile().clone(),
                    base_cfg.seed,
                ));
                let shared = dylect_sim::SharedMemory::new(
                    base_cfg.l3_bytes,
                    base_cfg.l3_ways,
                    base_cfg.l3_latency,
                    scheme,
                    dram,
                );
                let mut sys = System::from_parts(base_cfg, &s, shared);
                sys.run(dylect_bench::warmup_for(&s, mode), mode.measure_ops)
            },
        ));
    }
    let reports = run_jobs(jobs);

    let mut rows = Vec::new();
    for ((_, _, _, label), r) in variants.iter().zip(&reports) {
        rows.push(vec![
            (*label).to_owned(),
            format!("{:.4}", r.mc.cte_hit_rate()),
            format!("{:.4}", r.occupancy.ml0_fraction_of_uncompressed()),
            format!(
                "{}",
                r.mc.promotions.get() + r.mc.demotions.get() + r.mc.displacements.get()
            ),
            format!("{:.3e}", r.ips()),
        ]);
        eprintln!(
            "[ablation_promotion] {label}: hit {:.3}",
            r.mc.cte_hit_rate()
        );
    }
    print_table(
        "Promotion-policy ablation (canneal, high compression)",
        &[
            "variant",
            "cte_hit",
            "ml0_of_uncompressed",
            "migrations",
            "ips",
        ],
        &rows,
    );
}
