//! Microbenchmarks of the simulator's hot paths, on a dependency-free
//! harness (manual warmup, median of timed batches, `std::hint::black_box`).
//!
//! These are engineering benchmarks (simulator throughput), not paper
//! reproductions — the paper's tables and figures live in `src/bin/`.
//! Compiled with `harness = false`, so `cargo bench` runs `main` directly;
//! `cargo bench -- <filter>` runs the benchmarks whose name contains the
//! filter string.

use std::hint::black_box;
use std::time::Instant;

use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_compression::{bdi, fpc};
use dylect_core::GroupMap;
use dylect_dram::{Dram, DramConfig, DramOp, RequestClass};
use dylect_memctl::FreeSpace;
use dylect_sim::{SchemeKind, System, SystemConfig};
use dylect_sim_core::rng::{Rng, Zipf};
use dylect_sim_core::{digest, prof};
use dylect_sim_core::{DramPageId, MachineAddr, PageId, Time};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

/// Batches per sample; the reported time is the median over samples, which
/// is robust to scheduler noise without criterion's outlier machinery.
const SAMPLES: usize = 15;
const WARMUP_BATCHES: usize = 3;

/// Times `iters`-iteration batches of `f` and prints the median
/// per-iteration time with min/max spread.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    if let Some(filter) = std::env::args().nth(1) {
        if !filter.starts_with('-') && !name.contains(&filter) {
            return;
        }
    }
    for _ in 0..WARMUP_BATCHES {
        for _ in 0..iters {
            f();
        }
    }
    let mut per_iter_ns: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[SAMPLES / 2];
    let (min, max) = (per_iter_ns[0], per_iter_ns[SAMPLES - 1]);
    println!("{name:<24} {median:>12.1} ns/iter  (min {min:.1}, max {max:.1}, {SAMPLES} samples x {iters} iters)");
}

fn main() {
    bench_cte_cache();
    bench_dram_access();
    bench_short_cte_hash();
    bench_compressors();
    bench_freespace();
    bench_zipf();
    bench_end_to_end();
    bench_prof_overhead();
    bench_digest_overhead();
}

fn bench_cte_cache() {
    let mut cache: SetAssocCache = SetAssocCache::new(CacheConfig::lru(128 * 1024, 8, 64));
    let mut rng = Rng::new(7);
    bench("cte_cache_lookup_fill", 100_000, || {
        let key = rng.next_below(1 << 16);
        if !cache.access(black_box(key)) {
            cache.fill(key, false, ());
        }
    });
}

fn bench_dram_access() {
    let mut dram = Dram::new(DramConfig::paper(1 << 30, 8));
    let mut t = Time::ZERO;
    let mut rng = Rng::new(3);
    bench("dram_single_access", 100_000, || {
        let addr = MachineAddr::new(rng.next_below(1 << 30) / 64 * 64);
        t = dram.access(t, black_box(addr), DramOp::Read, RequestClass::Demand);
    });
}

fn bench_short_cte_hash() {
    let groups = GroupMap::new(1 << 22, 3);
    let mut rng = Rng::new(5);
    bench("short_cte_mapping", 1_000_000, || {
        let p = PageId::new(rng.next_below(1 << 24));
        black_box(groups.hash(black_box(p)));
    });
}

fn bench_compressors() {
    let mut block = [0u8; 64];
    for (i, b) in block.iter_mut().enumerate() {
        *b = (i % 7) as u8;
    }
    bench("bdi_compress_64b", 500_000, || {
        black_box(bdi::compressed_bytes(black_box(&block)));
    });
    let mut page = vec![0u8; 4096];
    for (i, b) in page.iter_mut().enumerate() {
        *b = ((i / 3) % 11) as u8;
    }
    bench("fpc_compress_4k", 20_000, || {
        black_box(fpc::compressed_bytes(black_box(&page)));
    });
}

fn bench_freespace() {
    let mut fs = FreeSpace::new();
    for i in 0..256 {
        fs.add_page(DramPageId::new(i));
    }
    let mut rng = Rng::new(11);
    let mut live = Vec::new();
    bench("freespace_alloc_free", 100_000, || {
        if live.len() < 128 {
            let len = (rng.next_below(3840) + 256) as u32;
            if let Some(s) = fs.alloc_span(len) {
                live.push(s);
            }
        } else {
            let idx = rng.next_below(live.len() as u64) as usize;
            fs.free_span(live.swap_remove(idx));
        }
    });
}

fn bench_zipf() {
    let zipf = Zipf::new(1 << 20, 0.99);
    let mut rng = Rng::new(13);
    bench("zipf_sample", 1_000_000, || {
        black_box(zipf.sample(&mut rng));
    });
}

fn bench_end_to_end() {
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    let mut sys = System::new(cfg, &spec);
    sys.run(50_000, 1);
    bench("system_step_1000_ops", 50, || {
        sys.execute(1000);
        black_box(&sys);
    });

    // Same workload with shadow CTE caches + provenance attached, so the
    // observation overhead is a one-line diff against the baseline above
    // (tools/bench_snapshot.sh records both in BENCH_shadow.json).
    let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    let mut sys = System::new(cfg, &spec);
    sys.enable_telemetry(dylect_telemetry::TelemetryConfig {
        shadow: true,
        ..dylect_telemetry::TelemetryConfig::default()
    });
    sys.run(50_000, 1);
    bench("system_step_1000_shadow", 50, || {
        sys.execute(1000);
        black_box(&sys);
    });

    // Intra-run sharding variants: the same workload split across two
    // memory controllers, draining their writeback queues sequentially vs
    // on two worker threads. Reports are byte-identical across the pair
    // (tests/determinism.rs pins it); only wall-clock may differ.
    for (name, jobs) in [
        ("system_step_1000_2mc_seq", 1),
        ("system_step_1000_2mc_jobs2", 2),
    ] {
        let mut cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
        cfg.memory_controllers = 2;
        let mut sys = System::new(cfg, &spec);
        sys.set_jobs(jobs);
        sys.run(50_000, 1);
        bench(name, 50, || {
            sys.execute(1000);
            black_box(&sys);
        });
    }

    // Two-tenant co-schedule: one ASID-tagged core per tenant driving the
    // same memory side. The delta against `system_step_1000_ops` is the
    // cost of multi-core scheduling plus the second trace generator
    // (tools/bench_snapshot.sh records it in BENCH_scenario.json).
    let scenario =
        dylect_scenario::ScenarioSpec::parse("tenants=omnetpp,canneal").expect("valid spec");
    let base = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    let cfg = scenario.configure(base, CompressionSetting::High);
    let mut sys = scenario.build_system(cfg);
    sys.run(50_000, 1);
    bench("system_step_1000_tenants", 50, || {
        sys.execute(1000);
        black_box(&sys);
    });

    // Checkpoint restore cost: snapshot the warmed system once, then each
    // iteration rewinds to that snapshot and advances the same 1000 ops.
    // The delta against `system_step_1000_ops` is the per-resume restore
    // overhead (tools/bench_snapshot.sh records it in BENCH_checkpoint.json).
    let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    let mut sys = System::new(cfg, &spec);
    let snap = sys.warm_up_and_snapshot(50_000);
    bench("system_restore_1000_ops", 50, || {
        sys.restore(black_box(&snap))
            .expect("own snapshot restores");
        sys.execute(1000);
        black_box(&sys);
    });
}

/// The same hot loop as `system_step_1000_ops` with the host self-profiler
/// armed, measured as *interleaved* prof-off / prof-on batch pairs so slow
/// clock-speed drift cancels out of the overhead estimate. The paired
/// overhead (median over per-pair deltas) is printed as a
/// `prof_overhead_pct` line and budgeted at <2% by the
/// `dylect-stats bench-diff --max-overhead-pct` gate; the accumulated
/// phase table follows as `prof_phase` lines so tools/bench_snapshot.sh
/// can snapshot the wall-clock breakdown (BENCH_selfprofile.json).
fn bench_prof_overhead() {
    // Mirror bench()'s filter so an excluded run leaves the global
    // profiler untouched and prints no prof_phase lines.
    if let Some(filter) = std::env::args().nth(1) {
        if !filter.starts_with('-') && !"system_step_1000_prof".contains(&filter) {
            return;
        }
    }
    // Each sample alternates prof-off / prof-on every single execute
    // (~80µs), accumulating total time per side. Multi-millisecond
    // scheduler-steal bursts then span many alternation segments and land
    // on both sides near-evenly, so they cancel out of the per-sample
    // delta — batch-vs-batch timing (the plain benches' shape) cannot
    // resolve a sub-2% overhead on a noisy host. The reported overhead is
    // the median per-sample delta.
    const PAIRS: u64 = 200;
    // More samples than the plain benches: the overhead estimate resolves
    // a fraction of a percent, so the median needs the extra support.
    const PROF_SAMPLES: usize = 31;
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    let mut sys = System::new(cfg, &spec);
    sys.run(50_000, 1);
    prof::set_enabled(false);
    for _ in 0..WARMUP_BATCHES {
        for _ in 0..PAIRS {
            sys.execute(1000);
            black_box(&sys);
        }
    }
    prof::reset();
    let mut off_ns = Vec::with_capacity(PROF_SAMPLES);
    let mut on_ns = Vec::with_capacity(PROF_SAMPLES);
    for _ in 0..PROF_SAMPLES {
        let mut off_total = 0u128;
        let mut on_total = 0u128;
        for pair in 0..PAIRS {
            // Alternate which side goes first: per-execute cost drifts as
            // the simulated state evolves, and a fixed order would bias
            // the second side high.
            for step in 0..2 {
                let on = (pair + step) % 2 == 0;
                prof::set_enabled(on);
                let t0 = Instant::now();
                sys.execute(1000);
                black_box(&sys);
                let ns = t0.elapsed().as_nanos();
                if on {
                    on_total += ns;
                } else {
                    off_total += ns;
                }
            }
            prof::set_enabled(false);
        }
        off_ns.push(off_total as f64 / PAIRS as f64);
        on_ns.push(on_total as f64 / PAIRS as f64);
    }
    let stats = |v: &[f64]| {
        let mut v = v.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        (v[PROF_SAMPLES / 2], v[0], v[PROF_SAMPLES - 1])
    };
    for (name, v) in [
        ("system_step_1000_prof_base", &off_ns),
        ("system_step_1000_prof", &on_ns),
    ] {
        let (median, min, max) = stats(v);
        println!("{name:<24} {median:>12.1} ns/iter  (min {min:.1}, max {max:.1}, {PROF_SAMPLES} samples x {PAIRS} iters)");
    }
    let mut deltas: Vec<f64> = off_ns
        .iter()
        .zip(&on_ns)
        .map(|(off, on)| (on - off) / off * 100.0)
        .collect();
    deltas.sort_by(|a, b| a.total_cmp(b));
    println!("prof_overhead_pct {:.2}", deltas[PROF_SAMPLES / 2]);
    for p in prof::report().phases {
        if p.calls > 0 {
            println!("prof_phase {} {} {}", p.phase.name(), p.est_ns, p.est_calls);
        }
    }
}

/// The same paired-alternation methodology as [`bench_prof_overhead`],
/// with the state-digest window clock armed instead of the profiler. With
/// digests on, every 1000-op execute advances the window clock and
/// hashes the full machine state whenever a default
/// (`digest::DEFAULT_WINDOW_OPS`) window closes. PAIRS is sized so each
/// on-side sample retires more than one full window — every sample's
/// delta therefore includes its amortized share of a full-state capture,
/// and the median measures the real steady-state cost a
/// `DYLECT_DIGEST=1` sweep pays rather than just the per-batch tick.
/// Printed as a `digest_overhead_pct` line, recorded by
/// tools/bench_snapshot.sh in BENCH_digest.json, and budgeted at <2% by
/// the `dylect-stats bench-diff --max-overhead-pct` gate.
fn bench_digest_overhead() {
    if let Some(filter) = std::env::args().nth(1) {
        if !filter.starts_with('-') && !"system_step_1000_digest".contains(&filter) {
            return;
        }
    }
    // 1100 on-iterations x 1000 ops > one 2^20-op window per sample.
    const PAIRS: u64 = 1_100;
    const DIGEST_SAMPLES: usize = 15;
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    let mut sys = System::new(cfg, &spec);
    sys.run(50_000, 1);
    digest::set_enabled(false);
    for _ in 0..WARMUP_BATCHES {
        for _ in 0..PAIRS {
            sys.execute(1000);
            black_box(&sys);
        }
    }
    let mut off_ns = Vec::with_capacity(DIGEST_SAMPLES);
    let mut on_ns = Vec::with_capacity(DIGEST_SAMPLES);
    for _ in 0..DIGEST_SAMPLES {
        let mut off_total = 0u128;
        let mut on_total = 0u128;
        for pair in 0..PAIRS {
            for step in 0..2 {
                let on = (pair + step) % 2 == 0;
                digest::set_enabled(on);
                let t0 = Instant::now();
                sys.execute(1000);
                black_box(&sys);
                let ns = t0.elapsed().as_nanos();
                if on {
                    on_total += ns;
                } else {
                    off_total += ns;
                }
            }
            digest::set_enabled(false);
            // Keep the record buffer from growing across the whole bench;
            // draining is part of the steady-state consumer protocol.
            black_box(sys.take_digests());
        }
        off_ns.push(off_total as f64 / PAIRS as f64);
        on_ns.push(on_total as f64 / PAIRS as f64);
    }
    let stats = |v: &[f64]| {
        let mut v = v.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        (v[DIGEST_SAMPLES / 2], v[0], v[DIGEST_SAMPLES - 1])
    };
    for (name, v) in [
        ("system_step_1000_digest_base", &off_ns),
        ("system_step_1000_digest", &on_ns),
    ] {
        let (median, min, max) = stats(v);
        println!("{name:<24} {median:>12.1} ns/iter  (min {min:.1}, max {max:.1}, {DIGEST_SAMPLES} samples x {PAIRS} iters)");
    }
    let mut deltas: Vec<f64> = off_ns
        .iter()
        .zip(&on_ns)
        .map(|(off, on)| (on - off) / off * 100.0)
        .collect();
    deltas.sort_by(|a, b| a.total_cmp(b));
    println!("digest_overhead_pct {:.2}", deltas[DIGEST_SAMPLES / 2]);
}
