//! Criterion microbenchmarks of the simulator's hot paths.
//!
//! These are engineering benchmarks (simulator throughput), not paper
//! reproductions — the paper's tables and figures live in `src/bin/`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_compression::{bdi, fpc};
use dylect_core::GroupMap;
use dylect_dram::{Dram, DramConfig, DramOp, RequestClass};
use dylect_memctl::FreeSpace;
use dylect_sim::{SchemeKind, System, SystemConfig};
use dylect_sim_core::rng::{Rng, Zipf};
use dylect_sim_core::{DramPageId, MachineAddr, PageId, Time};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn bench_cte_cache(c: &mut Criterion) {
    let mut cache: SetAssocCache = SetAssocCache::new(CacheConfig::lru(128 * 1024, 8, 64));
    let mut rng = Rng::new(7);
    c.bench_function("cte_cache_lookup_fill", |b| {
        b.iter(|| {
            let key = rng.next_below(1 << 16);
            if !cache.access(black_box(key)) {
                cache.fill(key, false, ());
            }
        })
    });
}

fn bench_dram_access(c: &mut Criterion) {
    let mut dram = Dram::new(DramConfig::paper(1 << 30, 8));
    let mut t = Time::ZERO;
    let mut rng = Rng::new(3);
    c.bench_function("dram_single_access", |b| {
        b.iter(|| {
            let addr = MachineAddr::new(rng.next_below(1 << 30) / 64 * 64);
            t = dram.access(t, black_box(addr), DramOp::Read, RequestClass::Demand);
        })
    });
}

fn bench_short_cte_hash(c: &mut Criterion) {
    let groups = GroupMap::new(1 << 22, 3);
    let mut rng = Rng::new(5);
    c.bench_function("short_cte_mapping", |b| {
        b.iter(|| {
            let p = PageId::new(rng.next_below(1 << 24));
            black_box(groups.hash(black_box(p)));
        })
    });
}

fn bench_compressors(c: &mut Criterion) {
    let mut block = [0u8; 64];
    for (i, b) in block.iter_mut().enumerate() {
        *b = (i % 7) as u8;
    }
    c.bench_function("bdi_compress_64b", |b| {
        b.iter(|| bdi::compressed_bytes(black_box(&block)))
    });
    let mut page = vec![0u8; 4096];
    for (i, b) in page.iter_mut().enumerate() {
        *b = ((i / 3) % 11) as u8;
    }
    c.bench_function("fpc_compress_4k", |b| {
        b.iter(|| fpc::compressed_bytes(black_box(&page)))
    });
}

fn bench_freespace(c: &mut Criterion) {
    c.bench_function("freespace_alloc_free", |b| {
        let mut fs = FreeSpace::new();
        for i in 0..256 {
            fs.add_page(DramPageId::new(i));
        }
        let mut rng = Rng::new(11);
        let mut live = Vec::new();
        b.iter(|| {
            if live.len() < 128 {
                let len = (rng.next_below(3840) + 256) as u32;
                if let Some(s) = fs.alloc_span(len) {
                    live.push(s);
                }
            } else {
                let idx = rng.next_below(live.len() as u64) as usize;
                fs.free_span(live.swap_remove(idx));
            }
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(1 << 20, 0.99);
    let mut rng = Rng::new(13);
    c.bench_function("zipf_sample", |b| b.iter(|| zipf.sample(&mut rng)));
}

fn bench_end_to_end(c: &mut Criterion) {
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    let mut sys = System::new(cfg, &spec);
    sys.run(50_000, 1);
    c.bench_function("system_step_1000_ops", |b| b.iter(|| sys.execute(1000)));
}

criterion_group!(
    benches,
    bench_cte_cache,
    bench_dram_access,
    bench_short_cte_hash,
    bench_compressors,
    bench_freespace,
    bench_zipf,
    bench_end_to_end
);
criterion_main!(benches);
