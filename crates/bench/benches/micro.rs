//! Microbenchmarks of the simulator's hot paths, on a dependency-free
//! harness (manual warmup, median of timed batches, `std::hint::black_box`).
//!
//! These are engineering benchmarks (simulator throughput), not paper
//! reproductions — the paper's tables and figures live in `src/bin/`.
//! Compiled with `harness = false`, so `cargo bench` runs `main` directly;
//! `cargo bench -- <filter>` runs the benchmarks whose name contains the
//! filter string.

use std::hint::black_box;
use std::time::Instant;

use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_compression::{bdi, fpc};
use dylect_core::GroupMap;
use dylect_dram::{Dram, DramConfig, DramOp, RequestClass};
use dylect_memctl::FreeSpace;
use dylect_sim::{SchemeKind, System, SystemConfig};
use dylect_sim_core::rng::{Rng, Zipf};
use dylect_sim_core::{DramPageId, MachineAddr, PageId, Time};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

/// Batches per sample; the reported time is the median over samples, which
/// is robust to scheduler noise without criterion's outlier machinery.
const SAMPLES: usize = 15;
const WARMUP_BATCHES: usize = 3;

/// Times `iters`-iteration batches of `f` and prints the median
/// per-iteration time with min/max spread.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    if let Some(filter) = std::env::args().nth(1) {
        if !filter.starts_with('-') && !name.contains(&filter) {
            return;
        }
    }
    for _ in 0..WARMUP_BATCHES {
        for _ in 0..iters {
            f();
        }
    }
    let mut per_iter_ns: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[SAMPLES / 2];
    let (min, max) = (per_iter_ns[0], per_iter_ns[SAMPLES - 1]);
    println!("{name:<24} {median:>12.1} ns/iter  (min {min:.1}, max {max:.1}, {SAMPLES} samples x {iters} iters)");
}

fn main() {
    bench_cte_cache();
    bench_dram_access();
    bench_short_cte_hash();
    bench_compressors();
    bench_freespace();
    bench_zipf();
    bench_end_to_end();
}

fn bench_cte_cache() {
    let mut cache: SetAssocCache = SetAssocCache::new(CacheConfig::lru(128 * 1024, 8, 64));
    let mut rng = Rng::new(7);
    bench("cte_cache_lookup_fill", 100_000, || {
        let key = rng.next_below(1 << 16);
        if !cache.access(black_box(key)) {
            cache.fill(key, false, ());
        }
    });
}

fn bench_dram_access() {
    let mut dram = Dram::new(DramConfig::paper(1 << 30, 8));
    let mut t = Time::ZERO;
    let mut rng = Rng::new(3);
    bench("dram_single_access", 100_000, || {
        let addr = MachineAddr::new(rng.next_below(1 << 30) / 64 * 64);
        t = dram.access(t, black_box(addr), DramOp::Read, RequestClass::Demand);
    });
}

fn bench_short_cte_hash() {
    let groups = GroupMap::new(1 << 22, 3);
    let mut rng = Rng::new(5);
    bench("short_cte_mapping", 1_000_000, || {
        let p = PageId::new(rng.next_below(1 << 24));
        black_box(groups.hash(black_box(p)));
    });
}

fn bench_compressors() {
    let mut block = [0u8; 64];
    for (i, b) in block.iter_mut().enumerate() {
        *b = (i % 7) as u8;
    }
    bench("bdi_compress_64b", 500_000, || {
        black_box(bdi::compressed_bytes(black_box(&block)));
    });
    let mut page = vec![0u8; 4096];
    for (i, b) in page.iter_mut().enumerate() {
        *b = ((i / 3) % 11) as u8;
    }
    bench("fpc_compress_4k", 20_000, || {
        black_box(fpc::compressed_bytes(black_box(&page)));
    });
}

fn bench_freespace() {
    let mut fs = FreeSpace::new();
    for i in 0..256 {
        fs.add_page(DramPageId::new(i));
    }
    let mut rng = Rng::new(11);
    let mut live = Vec::new();
    bench("freespace_alloc_free", 100_000, || {
        if live.len() < 128 {
            let len = (rng.next_below(3840) + 256) as u32;
            if let Some(s) = fs.alloc_span(len) {
                live.push(s);
            }
        } else {
            let idx = rng.next_below(live.len() as u64) as usize;
            fs.free_span(live.swap_remove(idx));
        }
    });
}

fn bench_zipf() {
    let zipf = Zipf::new(1 << 20, 0.99);
    let mut rng = Rng::new(13);
    bench("zipf_sample", 1_000_000, || {
        black_box(zipf.sample(&mut rng));
    });
}

fn bench_end_to_end() {
    let spec = BenchmarkSpec::by_name("omnetpp").expect("in suite");
    let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    let mut sys = System::new(cfg, &spec);
    sys.run(50_000, 1);
    bench("system_step_1000_ops", 50, || {
        sys.execute(1000);
        black_box(&sys);
    });

    // Same workload with shadow CTE caches + provenance attached, so the
    // observation overhead is a one-line diff against the baseline above
    // (tools/bench_snapshot.sh records both in BENCH_shadow.json).
    let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    let mut sys = System::new(cfg, &spec);
    sys.enable_telemetry(dylect_telemetry::TelemetryConfig {
        shadow: true,
        ..dylect_telemetry::TelemetryConfig::default()
    });
    sys.run(50_000, 1);
    bench("system_step_1000_shadow", 50, || {
        sys.execute(1000);
        black_box(&sys);
    });

    // Intra-run sharding variants: the same workload split across two
    // memory controllers, draining their writeback queues sequentially vs
    // on two worker threads. Reports are byte-identical across the pair
    // (tests/determinism.rs pins it); only wall-clock may differ.
    for (name, jobs) in [
        ("system_step_1000_2mc_seq", 1),
        ("system_step_1000_2mc_jobs2", 2),
    ] {
        let mut cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
        cfg.memory_controllers = 2;
        let mut sys = System::new(cfg, &spec);
        sys.set_jobs(jobs);
        sys.run(50_000, 1);
        bench(name, 50, || {
            sys.execute(1000);
            black_box(&sys);
        });
    }

    // Checkpoint restore cost: snapshot the warmed system once, then each
    // iteration rewinds to that snapshot and advances the same 1000 ops.
    // The delta against `system_step_1000_ops` is the per-resume restore
    // overhead (tools/bench_snapshot.sh records it in BENCH_checkpoint.json).
    let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    let mut sys = System::new(cfg, &spec);
    let snap = sys.warm_up_and_snapshot(50_000);
    bench("system_restore_1000_ops", 50, || {
        sys.restore(black_box(&snap))
            .expect("own snapshot restores");
        sys.execute(1000);
        black_box(&sys);
    });
}
