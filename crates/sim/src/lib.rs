//! Full-system assembly for the DyLeCT reproduction.
//!
//! This crate wires the substrates together into the paper's simulated
//! machine (Table 3): four interval-model cores with private L1/L2, TLBs,
//! and page walkers ([`dylect_cpu`]); a shared 8 MB L3; one of the
//! compressed-memory controller schemes (TMCC, DyLeCT, the naive
//! strawman, or the no-compression baseline); and the DDR4-3200 DRAM
//! model.
//!
//! # Example
//!
//! ```
//! use dylect_sim::{SchemeKind, System, SystemConfig};
//! use dylect_workloads::{BenchmarkSpec, CompressionSetting};
//!
//! let spec = BenchmarkSpec::by_name("canneal").unwrap();
//! let cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
//! let mut sys = System::new(cfg, &spec);
//! let report = sys.run(1_000, 2_000);
//! assert!(report.instructions > 0);
//! ```

pub mod backend;
pub mod config;
pub mod report;
pub mod system;

pub use backend::{SharedMemory, SharedStats};
pub use config::{SchemeKind, SystemConfig};
pub use report::RunReport;
pub use system::{System, TenantSummary};
