//! Full-system configuration.

use dylect_cpu::CoreConfig;
use dylect_sim_core::Time;
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

/// Which memory-controller scheme the system runs.
#[derive(Clone, Debug, PartialEq)]
pub enum SchemeKind {
    /// The bigger conventional system without compression.
    NoCompression,
    /// The TMCC baseline at a given compression granule.
    Tmcc {
        /// Compression/translation granule in 4 KB pages.
        granule_pages: u64,
        /// CTE cache capacity in bytes.
        cte_cache_bytes: u64,
    },
    /// DyLeCT.
    Dylect {
        /// DRAM pages per group (3 ⇒ 2-bit short CTEs).
        group_size: u64,
        /// CTE cache capacity in bytes.
        cte_cache_bytes: u64,
    },
    /// DyLeCT with a CTE cache that never misses (the upper bound of
    /// Figure 18).
    DylectAlwaysHit {
        /// DRAM pages per group.
        group_size: u64,
    },
    /// The naive dynamic-length strawman (§IV-A3).
    NaiveDynamic,
}

impl SchemeKind {
    /// The paper's DyLeCT configuration.
    pub fn dylect() -> Self {
        SchemeKind::Dylect {
            group_size: 3,
            cte_cache_bytes: 128 * 1024,
        }
    }

    /// The paper's TMCC configuration.
    pub fn tmcc() -> Self {
        SchemeKind::Tmcc {
            granule_pages: 1,
            cte_cache_bytes: 128 * 1024,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            SchemeKind::NoCompression => "no-compression".to_owned(),
            SchemeKind::Tmcc { granule_pages, .. } => {
                format!("tmcc-{}k", granule_pages * 4)
            }
            SchemeKind::Dylect { group_size, .. } => format!("dylect-g{group_size}"),
            SchemeKind::DylectAlwaysHit { .. } => "dylect-always-hit".to_owned(),
            SchemeKind::NaiveDynamic => "naive-dynamic".to_owned(),
        }
    }
}

/// Full-system configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// The memory-controller scheme.
    pub scheme: SchemeKind,
    /// Number of cores (paper: 4).
    pub cores: usize,
    /// Per-core configuration (caches, TLBs, page mode).
    pub core: CoreConfig,
    /// Shared L3 capacity (paper: 2 MB per core).
    pub l3_bytes: u64,
    /// L3 associativity.
    pub l3_ways: u32,
    /// L3 hit latency (from the core, accumulated: 67 clk at 2.8 GHz).
    pub l3_latency: Time,
    /// DRAM capacity in bytes.
    pub dram_bytes: u64,
    /// DRAM ranks (per memory controller).
    pub dram_ranks: u32,
    /// Independent memory controllers, each with its own scheme module and
    /// locally-attached DRAM slice (paper §IV-D). The paper evaluates 1.
    pub memory_controllers: usize,
    /// Footprint scale denominator (64 ⇒ 1/64 of the paper's sizes).
    pub scale: u64,
    /// Root seed for workloads and the scheme.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's system (Table 3) for a benchmark at a compression
    /// setting, at the default 1/64 scale.
    pub fn paper(spec: &BenchmarkSpec, scheme: SchemeKind, setting: CompressionSetting) -> Self {
        let scale = 64;
        let dram_bytes = match scheme {
            SchemeKind::NoCompression => spec.dram_bytes_no_compression(scale),
            _ => spec.dram_bytes(setting, scale),
        };
        SystemConfig {
            scheme,
            cores: 4,
            core: CoreConfig::paper(),
            l3_bytes: 8 * 1024 * 1024,
            l3_ways: 16,
            l3_latency: Time::from_ns(23.9),
            dram_bytes,
            dram_ranks: 8,
            memory_controllers: 1,
            scale,
            seed: 0x00D1_1EC7,
        }
    }

    /// A smaller, faster configuration for examples and tests: one core,
    /// 1/512 scale, 1 MB L3.
    pub fn quick(spec: &BenchmarkSpec, scheme: SchemeKind, setting: CompressionSetting) -> Self {
        let scale = 512;
        let dram_bytes = match scheme {
            SchemeKind::NoCompression => spec.dram_bytes_no_compression(scale),
            _ => spec.dram_bytes(setting, scale),
        };
        SystemConfig {
            scheme,
            cores: 1,
            core: CoreConfig::paper(),
            l3_bytes: 1024 * 1024,
            l3_ways: 16,
            l3_latency: Time::from_ns(23.9),
            dram_bytes,
            dram_ranks: 8,
            memory_controllers: 1,
            scale,
            seed: 0x00D1_1EC7,
        }
    }
}
