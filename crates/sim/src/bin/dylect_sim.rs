//! `dylect_sim` — command-line front end for the full-system simulator.
//!
//! ```text
//! dylect_sim --bench canneal --scheme dylect --setting high \
//!            [--scale 16] [--cores 4] [--mcs 1] [--warmup 500000] [--ops 200000]
//! ```
//!
//! Schemes: `none`, `tmcc`, `tmcc-16k`, `tmcc-64k`, `tmcc-128k`, `dylect`,
//! `dylect-upper`, `naive`. Prints a flat `key\tvalue` report suitable for
//! scripting.

use dylect_sim::{SchemeKind, System, SystemConfig};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn usage() -> ! {
    eprintln!(
        "usage: dylect_sim --bench <name> [--scheme none|tmcc|tmcc-16k|tmcc-64k|tmcc-128k|dylect|dylect-upper|naive]\n\
         \x20                 [--setting low|high] [--scale N] [--cores N] [--mcs N]\n\
         \x20                 [--warmup OPS] [--ops OPS] [--list]"
    );
    std::process::exit(2);
}

fn parse_scheme(s: &str) -> SchemeKind {
    match s {
        "none" => SchemeKind::NoCompression,
        "tmcc" => SchemeKind::tmcc(),
        "tmcc-16k" => SchemeKind::Tmcc {
            granule_pages: 4,
            cte_cache_bytes: 128 * 1024,
        },
        "tmcc-64k" => SchemeKind::Tmcc {
            granule_pages: 16,
            cte_cache_bytes: 128 * 1024,
        },
        "tmcc-128k" => SchemeKind::Tmcc {
            granule_pages: 32,
            cte_cache_bytes: 128 * 1024,
        },
        "dylect" => SchemeKind::dylect(),
        "dylect-upper" => SchemeKind::DylectAlwaysHit { group_size: 3 },
        "naive" => SchemeKind::NaiveDynamic,
        other => {
            eprintln!("unknown scheme {other}");
            usage()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for b in BenchmarkSpec::suite() {
            println!(
                "{}\t{}\t{:.1} GiB",
                b.name,
                b.suite,
                b.footprint_bytes as f64 / (1u64 << 30) as f64
            );
        }
        return;
    }
    let opt = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let bench = opt("--bench").unwrap_or_else(|| "canneal".to_owned());
    let scheme = parse_scheme(&opt("--scheme").unwrap_or_else(|| "dylect".to_owned()));
    let setting = match opt("--setting").as_deref() {
        Some("low") => CompressionSetting::Low,
        Some("high") | None => CompressionSetting::High,
        Some(other) => {
            eprintln!("unknown setting {other}");
            usage()
        }
    };
    let scale: u64 = opt("--scale").map_or(16, |v| v.parse().expect("--scale N"));
    let cores: usize = opt("--cores").map_or(4, |v| v.parse().expect("--cores N"));
    let mcs: usize = opt("--mcs").map_or(1, |v| v.parse().expect("--mcs N"));
    let warmup: u64 = opt("--warmup").map_or(500_000, |v| v.parse().expect("--warmup OPS"));
    let ops: u64 = opt("--ops").map_or(200_000, |v| v.parse().expect("--ops OPS"));

    let Some(spec) = BenchmarkSpec::by_name(&bench) else {
        eprintln!("unknown benchmark {bench}; try --list");
        usage()
    };
    let mut cfg = SystemConfig::paper(&spec, scheme.clone(), setting);
    cfg.scale = scale;
    cfg.cores = cores;
    cfg.memory_controllers = mcs;
    cfg.dram_bytes = match scheme {
        SchemeKind::NoCompression => spec.dram_bytes_no_compression(scale),
        _ => spec.dram_bytes(setting, scale),
    };
    let mut sys = System::new(cfg, &spec);
    let r = sys.run(warmup, ops);

    println!("benchmark\t{}", r.benchmark);
    println!("scheme\t{}", r.scheme);
    println!("instructions\t{}", r.instructions);
    println!("elapsed_ns\t{:.1}", r.elapsed.as_ns());
    println!("ips\t{:.6e}", r.ips());
    println!("stores_per_ns\t{:.6}", r.stores_per_ns());
    println!("tlb_miss_rate\t{:.6}", r.tlb_miss_rate);
    println!("cte_hit_rate\t{:.6}", r.mc.cte_hit_rate());
    println!("cte_pregathered\t{:.6}", r.mc.pregathered_hit_rate());
    println!("cte_unified\t{:.6}", r.mc.unified_hit_rate());
    println!("l3_miss_overhead_ns\t{:.3}", r.l3_miss_overhead_ns);
    println!("ml0_pages\t{}", r.occupancy.ml0_pages);
    println!("ml1_pages\t{}", r.occupancy.ml1_pages);
    println!("ml2_pages\t{}", r.occupancy.ml2_pages);
    println!(
        "traffic_blocks_per_ki\t{:.3}",
        r.traffic_per_kilo_instruction()
    );
    println!("bus_utilization\t{:.4}", r.bus_utilization());
    println!("energy_nj_per_inst\t{:.4}", r.energy_per_instruction_nj());
}
