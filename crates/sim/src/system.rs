//! The full simulated system and its run loop.

use dylect_core::{Dylect, DylectConfig, NaiveDynamic, NaiveDynamicConfig};
use dylect_cpu::{Core, PageTableLayout};
use dylect_dram::{Dram, DramConfig};
use dylect_memctl::{MemoryScheme, NoCompression};
use dylect_sim_core::blackbox;
use dylect_sim_core::digest::{self, DigestRecord};
use dylect_sim_core::probe::ProbeHandle;
use dylect_sim_core::prof;
use dylect_sim_core::snap::{
    read_header, write_header, Restore as _, SnapError, SnapReader, SnapWriter, Snapshot as _,
};
use dylect_sim_core::trace::OpBatch;
use dylect_sim_core::Time;
use dylect_telemetry::{SampleSnapshot, Telemetry, TelemetryConfig};
use dylect_tmcc::{Tmcc, TmccConfig};
use dylect_workloads::{BenchmarkSpec, PhaseShift, SyntheticWorkload};

use crate::backend::SharedMemory;
use crate::config::{SchemeKind, SystemConfig};
use crate::report::RunReport;

/// Per-tenant (per-core) execution summary for fairness/interference
/// reporting — each core's own share of a run's work and time.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSummary {
    /// Benchmark name this tenant runs.
    pub tenant: String,
    /// Address-space identifier (the core index).
    pub asid: u16,
    /// Instructions this core retired in the measurement window.
    pub instructions: u64,
    /// Memory operations this core retired.
    pub mem_ops: u64,
    /// This core's elapsed time over the measurement window.
    pub elapsed: Time,
    /// This core's TLB miss rate.
    pub tlb_miss_rate: f64,
    /// Time this core spent stalled on page walks.
    pub walk_time: Time,
}

impl TenantSummary {
    /// Instructions per second for this tenant alone.
    pub fn ips(&self) -> f64 {
        if self.elapsed == Time::ZERO {
            return 0.0;
        }
        self.instructions as f64 / (self.elapsed.as_ns() * 1e-9)
    }
}

/// A complete simulated machine running one benchmark.
pub struct System {
    config: SystemConfig,
    benchmark: String,
    /// Benchmark name per core (all equal outside multi-tenant mode).
    tenant_names: Vec<String>,
    cores: Vec<Core>,
    workloads: Vec<SyntheticWorkload>,
    shared: SharedMemory,
    measure_start: Time,
    telemetry: Option<Telemetry>,
    /// Retired-ops clock shared with telemetry's provenance tracker;
    /// `None` while telemetry is off.
    ops_clock: Option<std::rc::Rc<std::cell::Cell<u64>>>,
    ops_in_epoch: u64,
    /// Instructions retired before the last stats reset, so the telemetry
    /// x-axis stays monotonic across the warmup/measurement boundary.
    instr_base: u64,
    /// Reusable struct-of-arrays arena for the batched run loop; cleared
    /// and refilled each batch so steady-state execution never allocates.
    batch: OpBatch,
    /// Ops retired while digest capture was enabled — the digest-window
    /// clock. Not advanced (zero cost) with `DYLECT_DIGEST` off.
    digest_ops: u64,
    /// Ops per digest window, snapshotted from [`digest::window_ops`] at
    /// construction (see [`System::set_digest_window`]).
    digest_window: u64,
    /// Digest records captured since the last [`System::take_digests`].
    digests: Vec<DigestRecord>,
    /// Test-only divergence injector: op index at which to fire
    /// [`SharedMemory::perturb_l3_miss_counter`], armed per system via
    /// [`System::arm_perturb`] (never from global state, so one harness's
    /// injection cannot contaminate an unrelated concurrent run).
    perturb_at: Option<u64>,
    /// Whether the perturbation already fired (it fires at most once).
    perturb_fired: bool,
}

/// Ops generated and retired per batch on the fast path. Large enough to
/// amortise the loop setup, small enough that the three parallel arrays
/// (11 bytes/op) stay resident in L1.
const BATCH_OPS: u64 = 256;

impl System {
    /// Builds the system of `config` running `spec`.
    ///
    /// Each core runs its own deterministic shard of the benchmark (same
    /// page-popularity structure, decorrelated sequences), sharing one
    /// address space — the paper's multi-threaded execution mode.
    ///
    /// # Panics
    ///
    /// Panics if the footprint cannot fit the configured DRAM (fully
    /// compressed for compressing schemes, uncompressed for the baseline).
    pub fn new(config: SystemConfig, spec: &BenchmarkSpec) -> Self {
        let footprint = spec.footprint_pages(config.scale);
        let layout = Self::layout_for(&config, footprint);
        let os_pages_total = layout.total_os_pages();
        let n_mc = config.memory_controllers.max(1) as u64;
        // Pages interleave across MCs; each MC is sized for its share of the
        // OS-visible space and of the DRAM (rounded to the 1 MiB geometry
        // granule).
        let os_pages = os_pages_total.div_ceil(n_mc);
        let dram_bytes_per_mc = (config.dram_bytes / n_mc).div_ceil(1 << 20) << 20;
        let seed = config.seed;

        let mcs: Vec<(Box<dyn MemoryScheme>, Dram)> = (0..n_mc)
            .map(|mc_idx| {
                let dram = Dram::new(DramConfig::paper(dram_bytes_per_mc, config.dram_ranks));
                let profile = spec.workload(config.scale, seed).profile().clone();
                let seed = seed.wrapping_add(mc_idx * 0x9E37);
                let scheme = Self::build_scheme(&config.scheme, os_pages, &dram, profile, seed);
                (scheme, dram)
            })
            .collect();

        let shared =
            SharedMemory::new_multi(config.l3_bytes, config.l3_ways, config.l3_latency, mcs);
        let cores = (0..config.cores)
            .map(|_| Core::new(config.core, layout))
            .collect();
        let workloads = (0..config.cores)
            .map(|i| spec.workload(config.scale, seed.wrapping_add(i as u64 * 7919)))
            .collect();

        System {
            benchmark: spec.name.to_owned(),
            tenant_names: vec![spec.name.to_owned(); config.cores],
            config,
            cores,
            workloads,
            shared,
            measure_start: Time::ZERO,
            telemetry: None,
            ops_clock: None,
            ops_in_epoch: 0,
            instr_base: 0,
            batch: OpBatch::with_capacity(BATCH_OPS as usize),
            digest_ops: 0,
            digest_window: digest::window_ops(),
            digests: Vec::new(),
            perturb_at: None,
            perturb_fired: false,
        }
    }

    /// The page-table layout for one address space under `config`.
    fn layout_for(config: &SystemConfig, footprint: u64) -> PageTableLayout {
        if config.core.nested_walk {
            PageTableLayout::nested(footprint)
        } else {
            PageTableLayout::new(footprint)
        }
    }

    /// Builds a multi-tenant system: one core per tenant, each running its
    /// own benchmark in its own ASID-tagged address space, placed side by
    /// side in machine-physical memory (2 MB-aligned so huge-page regions
    /// never straddle tenants) and interleaved across the shared memory
    /// controllers. `config.cores` must equal `tenants.len()`; the caller
    /// sizes `config.dram_bytes` for the combined footprint.
    ///
    /// With a single tenant this constructs exactly the system that
    /// [`System::new`] builds for a one-core config — same seeds, same
    /// layout, same scheme — so scenario mode is a strict superset.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty, `config.cores != tenants.len()`, or
    /// more than `u16::MAX` tenants are requested.
    pub fn new_tenants(config: SystemConfig, tenants: &[BenchmarkSpec]) -> Self {
        assert!(!tenants.is_empty(), "at least one tenant");
        assert_eq!(config.cores, tenants.len(), "one core per tenant");
        assert!(tenants.len() <= u16::MAX as usize, "too many tenants");
        let page_bytes = dylect_sim_core::PAGE_BYTES;
        let huge_pages = dylect_sim_core::PAGES_PER_HUGE_PAGE;

        // Place each tenant's OS-visible space (workload + page tables) at
        // a 2 MB-aligned machine-physical base.
        let layouts: Vec<PageTableLayout> = tenants
            .iter()
            .map(|t| Self::layout_for(&config, t.footprint_pages(config.scale)))
            .collect();
        let mut base_pages = Vec::with_capacity(tenants.len());
        let mut next = 0u64;
        for l in &layouts {
            base_pages.push(next);
            next = (next + l.total_os_pages()).next_multiple_of(huge_pages);
        }
        let machine_pages = base_pages
            .last()
            .zip(layouts.last())
            .map(|(b, l)| b + l.total_os_pages())
            .expect("non-empty");

        let n_mc = config.memory_controllers.max(1) as u64;
        let os_pages = machine_pages.div_ceil(n_mc);
        let dram_bytes_per_mc = (config.dram_bytes / n_mc).div_ceil(1 << 20) << 20;
        let seed = config.seed;
        let benchmark = tenants.iter().map(|t| t.name).collect::<Vec<_>>().join("+");

        // One compressibility profile per MC. A single tenant keeps its
        // own benchmark's profile (bit-compatible with `System::new`);
        // co-tenants blend into a footprint-weighted mean ratio under the
        // joined name, so the profile digest guards the tenant mix.
        let profile = if tenants.len() == 1 {
            tenants[0].workload(config.scale, seed).profile().clone()
        } else {
            let total: u64 = tenants
                .iter()
                .map(|t| t.footprint_pages(config.scale))
                .sum();
            let mean = tenants
                .iter()
                .map(|t| {
                    t.compression_ratio * t.footprint_pages(config.scale) as f64 / total as f64
                })
                .sum::<f64>();
            dylect_compression::CompressibilityProfile::with_mean_ratio(&benchmark, mean)
        };
        let mcs: Vec<(Box<dyn MemoryScheme>, Dram)> = (0..n_mc)
            .map(|mc_idx| {
                let dram = Dram::new(DramConfig::paper(dram_bytes_per_mc, config.dram_ranks));
                let seed = seed.wrapping_add(mc_idx * 0x9E37);
                let scheme =
                    Self::build_scheme(&config.scheme, os_pages, &dram, profile.clone(), seed);
                (scheme, dram)
            })
            .collect();
        let shared =
            SharedMemory::new_multi(config.l3_bytes, config.l3_ways, config.l3_latency, mcs);

        let cores = layouts
            .iter()
            .zip(&base_pages)
            .enumerate()
            .map(|(i, (layout, base))| {
                let mut core = Core::new(config.core, *layout);
                core.set_address_space(i as u16, base * page_bytes);
                core
            })
            .collect();
        let workloads = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| t.workload(config.scale, seed.wrapping_add(i as u64 * 7919)))
            .collect();

        System {
            benchmark,
            tenant_names: tenants.iter().map(|t| t.name.to_owned()).collect(),
            config,
            cores,
            workloads,
            shared,
            measure_start: Time::ZERO,
            telemetry: None,
            ops_clock: None,
            ops_in_epoch: 0,
            instr_base: 0,
            batch: OpBatch::with_capacity(BATCH_OPS as usize),
            digest_ops: 0,
            digest_window: digest::window_ops(),
            digests: Vec::new(),
            perturb_at: None,
            perturb_fired: false,
        }
    }

    fn build_scheme(
        kind: &SchemeKind,
        os_pages: u64,
        dram: &Dram,
        profile: dylect_compression::CompressibilityProfile,
        seed: u64,
    ) -> Box<dyn MemoryScheme> {
        match kind {
            SchemeKind::NoCompression => Box::new(NoCompression::new(os_pages, dram)),
            SchemeKind::Tmcc {
                granule_pages,
                cte_cache_bytes,
            } => Box::new(Tmcc::new(
                TmccConfig {
                    granule_pages: *granule_pages,
                    cte_cache_bytes: *cte_cache_bytes,
                    ..TmccConfig::paper(os_pages)
                },
                dram,
                profile,
                seed,
            )),
            SchemeKind::Dylect {
                group_size,
                cte_cache_bytes,
            } => Box::new(Dylect::new(
                DylectConfig {
                    group_size: *group_size,
                    cte_cache_bytes: *cte_cache_bytes,
                    ..DylectConfig::paper(os_pages)
                },
                dram,
                profile,
                seed,
            )),
            SchemeKind::DylectAlwaysHit { group_size } => Box::new(Dylect::new(
                DylectConfig {
                    group_size: *group_size,
                    // A CTE cache big enough to never evict: every lookup
                    // after the cold fetch hits (the Figure 18 upper bound).
                    cte_cache_bytes: 64 * 1024 * 1024,
                    ..DylectConfig::paper(os_pages)
                },
                dram,
                profile,
                seed,
            )),
            SchemeKind::NaiveDynamic => Box::new(NaiveDynamic::new(
                NaiveDynamicConfig::paper(os_pages),
                dram,
                profile,
                seed,
            )),
        }
    }

    /// Builds a system around an externally assembled shared-memory side —
    /// for harnesses that sweep scheme parameters the [`SchemeKind`] enum
    /// does not expose.
    pub fn from_parts(config: SystemConfig, spec: &BenchmarkSpec, shared: SharedMemory) -> Self {
        let footprint = spec.footprint_pages(config.scale);
        let layout = Self::layout_for(&config, footprint);
        let cores = (0..config.cores)
            .map(|_| Core::new(config.core, layout))
            .collect();
        let workloads = (0..config.cores)
            .map(|i| spec.workload(config.scale, config.seed.wrapping_add(i as u64 * 7919)))
            .collect();
        System {
            benchmark: spec.name.to_owned(),
            tenant_names: vec![spec.name.to_owned(); config.cores],
            config,
            cores,
            workloads,
            shared,
            measure_start: Time::ZERO,
            telemetry: None,
            ops_clock: None,
            ops_in_epoch: 0,
            instr_base: 0,
            batch: OpBatch::with_capacity(BATCH_OPS as usize),
            digest_ops: 0,
            digest_window: digest::window_ops(),
            digests: Vec::new(),
            perturb_at: None,
            perturb_fired: false,
        }
    }

    /// Turns telemetry on: installs an observability probe into every
    /// memory controller, every core (per-retirement latency attribution),
    /// and the shared memory backend (per-access attribution and sampled
    /// request spans), and starts epoch sampling in [`System::execute`].
    /// With `cfg.shadow` set, each MC's real CTE-cache geometry also sizes
    /// a set of shadow tag arrays and the per-page provenance tracker.
    /// Telemetry is observation-only — the resulting [`RunReport`] is
    /// bit-identical to a run without it.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        let telemetry = Telemetry::new(cfg);
        if cfg.shadow {
            for (mc, geometry) in self.shared.cte_cache_geometries().into_iter().enumerate() {
                telemetry.configure_shadow_for_mc(mc, geometry);
            }
        }
        self.shared.set_probes(|mc| telemetry.probe_for_mc(mc));
        self.shared
            .set_access_probe(telemetry.probe_for_mc(0), cfg.span_sample);
        for core in &mut self.cores {
            core.set_probe(telemetry.probe_for_mc(0));
        }
        self.ops_clock = Some(telemetry.ops_clock());
        self.telemetry = Some(telemetry);
        self.ops_in_epoch = 0;
    }

    /// The telemetry collected so far, if enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Detaches and returns the collected telemetry, disabling the probes.
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        let t = self.telemetry.take();
        if t.is_some() {
            self.ops_clock = None;
            self.shared.set_probes(|_| ProbeHandle::disabled());
            self.shared.set_access_probe(ProbeHandle::disabled(), 0);
            for core in &mut self.cores {
                core.set_probe(ProbeHandle::disabled());
            }
        }
        t
    }

    /// Instructions retired across all cores since the last stats reset.
    fn retired_instructions(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.stats().instructions.get())
            .sum()
    }

    /// Snapshots the cumulative counters into the sampler (no-op when
    /// telemetry is off).
    fn sample_telemetry(&mut self) {
        let Some(t) = &mut self.telemetry else {
            return;
        };
        let instructions = self.instr_base
            + self
                .cores
                .iter()
                .map(|c| c.stats().instructions.get())
                .sum::<u64>();
        t.sample(SampleSnapshot {
            instructions,
            mc: self.shared.mc_stats(),
            dram: self.shared.dram_stats(),
            occupancy: self.shared.occupancy(),
            queue: self.shared.queue_stats(),
        });
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The shared memory side (scheme + DRAM), for inspection.
    pub fn shared(&self) -> &SharedMemory {
        &self.shared
    }

    /// The simulated cores, for inspection (walker/TLB statistics).
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Executes `ops` memory operations across the cores, always stepping
    /// the core that is furthest behind in simulated time.
    ///
    /// With one core and telemetry off, ops are generated and retired in
    /// [`BATCH_OPS`]-sized batches through a reusable struct-of-arrays
    /// arena: the telemetry/probe checks hoist to once per batch and the
    /// per-op loop stays branch-free. The batched path retires the exact
    /// same op stream in the same order as the per-op path, so reports are
    /// byte-identical either way.
    pub fn execute(&mut self, ops: u64) {
        if self.cores.is_empty() {
            // Nothing to run; `finish` reports an explicit empty run.
            return;
        }
        if self.cores.len() == 1 && self.telemetry.is_none() {
            let mut batch = std::mem::take(&mut self.batch);
            let mut remaining = ops;
            while remaining > 0 {
                let n = remaining.min(BATCH_OPS);
                // Sampled, not exact: these fire once per BATCH_OPS chunk,
                // which is frequent enough that exact span retention alone
                // would breach the <2% profiling budget.
                {
                    let _p = prof::sampled_scope(prof::HostPhase::BatchFill);
                    self.workloads[0].fill_batch(&mut batch, n as usize);
                }
                {
                    let _p = prof::sampled_scope(prof::HostPhase::BatchStep);
                    self.cores[0].step_soa(&batch, &mut self.shared);
                }
                self.shared.drain_pending();
                blackbox::record(blackbox::EventKind::BatchRetire, n, remaining - n);
                self.digest_tick(n);
                remaining -= n;
            }
            self.batch = batch;
            return;
        }
        // Host-profiling scope only: reads the wall clock, never writes
        // simulated state.
        let _p = prof::scope(prof::HostPhase::ExecutePerOp);
        // 0 when telemetry is off: the epoch check below stays one
        // predictable branch per op.
        let epoch_ops = self
            .telemetry
            .as_ref()
            .map_or(0, |t| t.config().epoch_ops.max(1));
        // The per-op path lands queued MC writebacks on the same cadence
        // as the batched path, so the two retire identical streams.
        let mut ops_since_drain = 0u64;
        for _ in 0..ops {
            let idx = self
                .cores
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.time())
                .map(|(i, _)| i)
                .expect("at least one core");
            let op = self.workloads[idx].next_op();
            self.cores[idx].step(op, &mut self.shared);
            ops_since_drain += 1;
            if ops_since_drain >= BATCH_OPS {
                ops_since_drain = 0;
                self.shared.drain_pending();
                blackbox::record(blackbox::EventKind::BatchRetire, BATCH_OPS, 0);
                self.digest_tick(BATCH_OPS);
            }
            if epoch_ops > 0 {
                if let Some(clock) = &self.ops_clock {
                    clock.set(clock.get() + 1);
                }
                self.ops_in_epoch += 1;
                if self.ops_in_epoch >= epoch_ops {
                    self.ops_in_epoch = 0;
                    // No drain here: draining only when telemetry is on
                    // would let observation perturb simulated state. A
                    // sample may read MC statistics up to one batch stale.
                    self.sample_telemetry();
                }
            }
        }
        self.shared.drain_pending();
        self.digest_tick(ops_since_drain);
    }

    /// Advances the digest-window clock by `n` just-retired ops. Called at
    /// every drain boundary (each ≤ [`BATCH_OPS`] ops) on both execute
    /// paths, so batched and per-op runs cross window boundaries at
    /// identical points. With `DYLECT_DIGEST` off the entire cost is the
    /// one relaxed load in [`digest::enabled`].
    #[inline]
    fn digest_tick(&mut self, n: u64) {
        if n == 0 || !digest::enabled() {
            return;
        }
        self.digest_tick_slow(n);
    }

    fn digest_tick_slow(&mut self, n: u64) {
        let before = self.digest_ops;
        self.digest_ops += n;
        self.maybe_perturb(self.digest_ops);
        if before / self.digest_window < self.digest_ops / self.digest_window {
            let ops_retired = self.digest_ops;
            self.capture_digest(ops_retired / self.digest_window, None, ops_retired);
        }
    }

    /// Overrides this system's digest window length (ops between window-
    /// boundary captures). Normally inherited from [`digest::window_ops`]
    /// at construction; bisection harnesses and tests shrink it for
    /// resolution. Must be a positive multiple of [`BATCH_OPS`] so both
    /// execute paths cross boundaries at identical points.
    pub fn set_digest_window(&mut self, ops: u64) {
        assert!(
            ops > 0 && ops.is_multiple_of(BATCH_OPS),
            "digest window must be a positive multiple of {BATCH_OPS}, got {ops}"
        );
        self.digest_window = ops;
    }

    /// Fires the test-only `DYLECT_DIGEST_PERTURB` divergence injector
    /// once this system's digest clock reaches the armed op index. Drain
    /// boundaries are the firing sites, so a perturbation index that is a
    /// multiple of [`BATCH_OPS`] fires at the same retired-op count on
    /// the batched, per-op, and op-replay paths.
    fn maybe_perturb(&mut self, ops_retired: u64) {
        if self.perturb_fired {
            return;
        }
        let Some(at) = self.perturb_at else {
            return;
        };
        if ops_retired >= at {
            self.perturb_fired = true;
            blackbox::record(blackbox::EventKind::PerturbFired, ops_retired, 0);
            self.shared.perturb_l3_miss_counter();
        }
    }

    /// Hashes every state component through its existing `Snapshot`
    /// traversal and appends one [`DigestRecord`]. Purely observational:
    /// serializing state mutates nothing, so digest-on runs stay
    /// byte-identical to digest-off runs.
    fn capture_digest(&mut self, window: u64, op: Option<u64>, ops_retired: u64) {
        let core: Vec<u64> = self.cores.iter().map(digest::hash_snapshot).collect();
        let tlb = digest::hash_with(|w| {
            for c in &self.cores {
                c.tlb().write_snapshot(w);
            }
        });
        let shared = self.shared.component_digests();
        let telemetry = match &self.telemetry {
            Some(t) => digest::hash_with(|w| t.write_snapshot(w)),
            None => 0,
        };
        let record = DigestRecord {
            window,
            op,
            ops_retired,
            core,
            tlb,
            cache: shared.cache,
            wb_fifos: shared.wb_fifos,
            dram: shared.dram,
            scheme: shared.scheme,
            compression: shared.compression,
            telemetry,
        };
        // Fold the whole record into one word for the flight recorder.
        let folded = record
            .components()
            .iter()
            .fold(0u64, |acc, (_, h)| acc.rotate_left(7) ^ h);
        blackbox::record(blackbox::EventKind::WindowDigest, window, folded);
        self.digests.push(record);
    }

    /// Detaches the digest records captured so far (empty unless
    /// `DYLECT_DIGEST` was enabled while executing).
    pub fn take_digests(&mut self) -> Vec<DigestRecord> {
        std::mem::take(&mut self.digests)
    }

    /// Arms (or disarms, with `None`) the test-only divergence injector
    /// for **this** system: once its digest clock reaches `at` retired
    /// ops, one spurious L3-miss count is injected. Arming is per
    /// instance by design — see [`digest::parse_perturb`].
    pub fn arm_perturb(&mut self, at: Option<u64>) {
        self.perturb_at = at;
        self.perturb_fired = false;
    }

    /// Executes `ops` memory operations per-op, capturing a full
    /// [`DigestRecord`] after **every** retired op — the bisection
    /// replay mode. `base_op` is the absolute retired-op count this call
    /// starts from (normally a window boundary the caller restored to),
    /// so record indices line up with the window stream of the original
    /// run. Retires the identical op stream as [`System::execute`]
    /// (same drain cadence, same perturbation sites). Orders of magnitude
    /// slower than `execute`; meant for replaying a single diverging
    /// window, not full runs. Telemetry epoch sampling is not driven —
    /// replay systems are built without telemetry.
    pub fn execute_op_digests(&mut self, ops: u64, base_op: u64) {
        self.digest_ops = base_op;
        let mut ops_since_drain = 0u64;
        for i in 0..ops {
            let idx = self
                .cores
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.time())
                .map(|(i, _)| i)
                .expect("at least one core");
            let op = self.workloads[idx].next_op();
            self.cores[idx].step(op, &mut self.shared);
            ops_since_drain += 1;
            if ops_since_drain >= BATCH_OPS {
                ops_since_drain = 0;
                self.shared.drain_pending();
            }
            let n = base_op + i + 1;
            self.digest_ops = n;
            self.maybe_perturb(n);
            self.capture_digest(n / self.digest_window, Some(n), n);
        }
        self.shared.drain_pending();
    }

    /// Sets the worker-thread count for intra-run sharding: with more than
    /// one memory controller, queued writebacks drain on up to `jobs`
    /// threads at batch boundaries (see [`SharedMemory::drain_pending`]).
    /// Reports and exports are byte-identical for every value.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.shared.set_jobs(jobs);
    }

    /// Ends the warmup phase: clears every statistic and marks the start of
    /// the measurement window.
    pub fn start_measurement(&mut self) {
        self.shared.set_warmup(false);
        self.instr_base += self.retired_instructions();
        for c in &mut self.cores {
            c.reset_stats();
        }
        self.shared.reset_stats();
        // A zero-core system has no clocks to read; `finish` short-circuits
        // to an explicit empty report for that case, so the window start is
        // never consulted — pin it to zero openly rather than letting an
        // empty reduction fabricate a timing.
        self.measure_start = match self.cores.iter().map(Core::time).max() {
            Some(t) => t,
            None => Time::ZERO,
        };
    }

    /// Runs warmup then measurement; returns the report.
    pub fn run(&mut self, warmup_ops: u64, measure_ops: u64) -> RunReport {
        self.shared.set_warmup(true);
        self.execute(warmup_ops);
        self.start_measurement();
        self.execute(measure_ops);
        self.finish()
    }

    /// Runs the warmup window without snapshotting — the segmented
    /// scenario driver's entry point, after which it alternates
    /// [`System::execute`] with scenario events and closes with
    /// [`System::finish`].
    pub fn warm_up(&mut self, warmup_ops: u64) {
        self.shared.set_warmup(true);
        self.execute(warmup_ops);
    }

    /// Restores a [`System::warm_up_and_snapshot`] image and opens the
    /// measurement window, leaving this system ready for segmented
    /// execution — the scenario counterpart of
    /// [`System::resume_measurement`], which the caller drives to the end
    /// itself (re-applying scenario events at the same op boundaries).
    pub fn restore_warmed(&mut self, snapshot: &[u8]) -> Result<(), SnapError> {
        self.shared.set_warmup(true);
        self.restore(snapshot)?;
        self.start_measurement();
        Ok(())
    }

    /// Applies a scenario phase shift to tenant `tenant`'s workload
    /// generator. Call only at an [`System::execute`] boundary; both the
    /// straight and the snapshot-resumed run must apply the same shifts at
    /// the same boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn apply_phase_shift(&mut self, tenant: usize, shift: &PhaseShift) {
        self.workloads[tenant].apply_phase(shift);
    }

    /// Applies a scenario memory-pressure event (ballooning): every MC
    /// reclaims until `extra_free_pages` beyond its normal free target are
    /// free, forcing a compaction burst. Deterministic — the event fires
    /// at the maximum core-local time, which is a pure function of the
    /// retired stream. Call only at an [`System::execute`] boundary.
    pub fn apply_pressure(&mut self, extra_free_pages: u64) {
        let now = self
            .cores
            .iter()
            .map(Core::time)
            .max()
            .unwrap_or(Time::ZERO);
        self.shared.apply_pressure(now, extra_free_pages);
    }

    /// Per-tenant (per-core) summaries over the measurement window, for
    /// fairness/interference reporting. Call after [`System::finish`]
    /// (cores drained); each tenant's elapsed time is its own core clock
    /// measured from the shared window start.
    pub fn tenant_summaries(&self) -> Vec<TenantSummary> {
        self.cores
            .iter()
            .zip(&self.tenant_names)
            .enumerate()
            .map(|(i, (c, name))| {
                let t = c.tlb().stats();
                let lookups = t.l1_hits.get() + t.l2_hits.get() + t.misses.get();
                TenantSummary {
                    tenant: name.clone(),
                    asid: i as u16,
                    instructions: c.stats().instructions.get(),
                    mem_ops: c.stats().mem_ops.get(),
                    elapsed: c.time().saturating_sub(self.measure_start),
                    tlb_miss_rate: if lookups == 0 {
                        0.0
                    } else {
                        t.misses.get() as f64 / lookups as f64
                    },
                    walk_time: c.stats().walk_time,
                }
            })
            .collect()
    }

    /// Fingerprint of everything that determines this system's identity
    /// for snapshot purposes: the resolved configuration (scheme, seeds,
    /// geometry, core/MC counts) and the benchmark. Schemes additionally
    /// guard their own construction inputs (compressibility digest, seed)
    /// inside their streams, so a `from_parts` system whose hand-built
    /// scheme differs from `config.scheme` still fails on restore.
    fn snapshot_fingerprint(&self) -> u64 {
        dylect_sim_core::kv::fingerprint64(&format!(
            "system-snapshot;bench={};cfg={:?}",
            self.benchmark, self.config
        ))
    }

    /// Serializes the full mutable simulation state — cores (pipeline
    /// clocks, caches, TLBs, walkers), workload stream positions, the
    /// shared side (L3, every MC's scheme + DRAM + queued writebacks), the
    /// measurement-window bookkeeping, and collected telemetry — as a
    /// versioned snapshot.
    ///
    /// Call at a quiescent boundary (between [`System::execute`] windows;
    /// `execute` always drains in-flight MC writebacks before returning).
    /// Execution knobs — warmup mode, worker count, probe installation —
    /// are orchestration state: the restoring caller re-establishes them
    /// exactly as it would for a fresh run, then overlays this snapshot.
    /// `restore(snapshot_at(n))` followed by `execute(k)` is byte-identical
    /// to a straight `execute(n + k)` run.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        write_header(&mut w, self.snapshot_fingerprint());
        w.seq(self.cores.len());
        for core in &self.cores {
            core.write_snapshot(&mut w);
        }
        w.seq(self.workloads.len());
        for wl in &self.workloads {
            wl.write_snapshot(&mut w);
        }
        self.shared.write_snapshot(&mut w);
        self.measure_start.write_snapshot(&mut w);
        w.u64(self.instr_base);
        w.u64(self.ops_in_epoch);
        w.bool(self.telemetry.is_some());
        if let Some(t) = &self.telemetry {
            t.write_snapshot(&mut w);
        }
        w.into_bytes()
    }

    /// Restores a snapshot produced by [`System::snapshot`] onto this
    /// system, which must be freshly built from the same configuration and
    /// benchmark — and have telemetry already enabled with the same
    /// [`TelemetryConfig`] iff the donor had it enabled at snapshot time.
    ///
    /// Truncated, corrupt, wrong-version, or wrong-configuration input is
    /// rejected with a [`SnapError`]; on error this system's state is
    /// unspecified and the caller should discard it.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        read_header(&mut r, self.snapshot_fingerprint())?;
        r.fixed_seq(self.cores.len(), "core count")?;
        for core in &mut self.cores {
            core.restore_snapshot(&mut r)?;
        }
        r.fixed_seq(self.workloads.len(), "workload count")?;
        for wl in &mut self.workloads {
            wl.restore_snapshot(&mut r)?;
        }
        self.shared.restore_snapshot(&mut r)?;
        self.measure_start.restore_snapshot(&mut r)?;
        self.instr_base = r.u64()?;
        self.ops_in_epoch = r.u64()?;
        if r.bool()? != self.telemetry.is_some() {
            return Err(SnapError::Mismatch("telemetry enabled state"));
        }
        if let Some(t) = &mut self.telemetry {
            t.restore_snapshot(&mut r)?;
        }
        r.finish()
    }

    /// Runs the warmup window and snapshots the warmed state, leaving this
    /// system ready for [`System::start_measurement`]. The returned bytes
    /// hand the entire warmup to [`System::resume_measurement`] on a fresh
    /// same-configuration system.
    pub fn warm_up_and_snapshot(&mut self, warmup_ops: u64) -> Vec<u8> {
        self.shared.set_warmup(true);
        self.execute(warmup_ops);
        self.snapshot()
    }

    /// Skips warmup by restoring a [`System::warm_up_and_snapshot`] image,
    /// then runs the measurement window; returns the report. Byte-identical
    /// to [`System::run`] with the warmup the snapshot was taken at.
    pub fn resume_measurement(
        &mut self,
        snapshot: &[u8],
        measure_ops: u64,
    ) -> Result<RunReport, SnapError> {
        // Warmup acceleration must be live while restoring, exactly as it
        // was on the donor, so the scheme's post-restore sampling state
        // matches until `start_measurement` turns it off.
        self.shared.set_warmup(true);
        self.restore(snapshot)?;
        self.start_measurement();
        self.execute(measure_ops);
        Ok(self.finish())
    }

    /// Drains in-flight work and snapshots the report for the measurement
    /// window.
    ///
    /// A system built with zero cores retired nothing, so the report is an
    /// explicit empty run (all execution-derived fields zero by
    /// construction) rather than timings fabricated from empty reductions.
    ///
    /// # Panics
    ///
    /// Panics if the cores' final time is earlier than the measurement
    /// window start — core clocks only advance, so that would mean
    /// `start_measurement` was called against a different set of cores or
    /// state was corrupted; clamping it would silently skew elapsed time.
    pub fn finish(&mut self) -> RunReport {
        // Close the last (possibly partial) telemetry epoch.
        self.sample_telemetry();
        for c in &mut self.cores {
            c.drain();
        }
        let Some(end) = self.cores.iter().map(Core::time).max() else {
            return self.empty_report();
        };
        assert!(
            end >= self.measure_start,
            "measurement window start {:?} is after the cores' final time {end:?}; \
             core clocks never run backwards, so the window bookkeeping is corrupt",
            self.measure_start
        );
        let elapsed = end - self.measure_start;

        let mut instructions = 0;
        let mut mem_ops = 0;
        let mut stores = 0;
        let mut walks = 0;
        let mut tlb_lookups = 0u64;
        let mut tlb_misses = 0u64;
        for c in &self.cores {
            instructions += c.stats().instructions.get();
            mem_ops += c.stats().mem_ops.get();
            stores += c.stats().stores.get();
            let t = c.tlb().stats();
            tlb_lookups += t.l1_hits.get() + t.l2_hits.get() + t.misses.get();
            tlb_misses += t.misses.get();
            walks += t.misses.get();
        }

        RunReport {
            benchmark: self.benchmark.clone(),
            scheme: self.config.scheme.label(),
            instructions,
            mem_ops,
            stores,
            elapsed,
            tlb_miss_rate: if tlb_lookups == 0 {
                0.0
            } else {
                tlb_misses as f64 / tlb_lookups as f64
            },
            walks,
            l3_misses: self.shared.stats().l3_misses.get(),
            l3_miss_latency_ns: self.shared.stats().l3_miss_latency.mean(),
            l3_miss_overhead_ns: self.shared.stats().l3_miss_overhead.mean(),
            mc: self.shared.mc_stats(),
            dram: self.shared.dram_stats(),
            occupancy: self.shared.occupancy(),
            energy: self.shared.energy(elapsed),
        }
    }

    /// The report for a run with no cores: every execution-derived field is
    /// zero because nothing executed, not because an empty reduction was
    /// clamped. Memory-side snapshots (occupancy, MC/DRAM stats) are still
    /// read out — they are real state, independent of core count.
    fn empty_report(&self) -> RunReport {
        RunReport {
            benchmark: self.benchmark.clone(),
            scheme: self.config.scheme.label(),
            instructions: 0,
            mem_ops: 0,
            stores: 0,
            elapsed: Time::ZERO,
            tlb_miss_rate: 0.0,
            walks: 0,
            l3_misses: self.shared.stats().l3_misses.get(),
            l3_miss_latency_ns: self.shared.stats().l3_miss_latency.mean(),
            l3_miss_overhead_ns: self.shared.stats().l3_miss_overhead.mean(),
            mc: self.shared.mc_stats(),
            dram: self.shared.dram_stats(),
            occupancy: self.shared.occupancy(),
            energy: self.shared.energy(Time::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_workloads::CompressionSetting;

    fn spec() -> BenchmarkSpec {
        BenchmarkSpec::by_name("omnetpp").expect("in suite")
    }

    fn quick(scheme: SchemeKind) -> System {
        let cfg = SystemConfig::quick(&spec(), scheme, CompressionSetting::High);
        System::new(cfg, &spec())
    }

    #[test]
    fn runs_all_schemes_end_to_end() {
        for scheme in [
            SchemeKind::NoCompression,
            SchemeKind::tmcc(),
            SchemeKind::dylect(),
            SchemeKind::DylectAlwaysHit { group_size: 3 },
            SchemeKind::NaiveDynamic,
        ] {
            let mut sys = quick(scheme.clone());
            let report = sys.run(2_000, 5_000);
            assert!(report.instructions > 0, "{scheme:?}");
            assert!(report.elapsed > Time::ZERO, "{scheme:?}");
            assert!(report.ips() > 0.0, "{scheme:?}");
        }
    }

    #[test]
    fn no_compression_beats_compressing_schemes() {
        let base = quick(SchemeKind::NoCompression).run(5_000, 20_000);
        let tmcc = quick(SchemeKind::tmcc()).run(5_000, 20_000);
        assert!(
            tmcc.speedup_over(&base) < 1.05,
            "compression should not be faster than a big uncompressed system: {}",
            tmcc.speedup_over(&base)
        );
    }

    #[test]
    fn deterministic_repeat_runs() {
        let r1 = quick(SchemeKind::dylect()).run(2_000, 5_000);
        let r2 = quick(SchemeKind::dylect()).run(2_000, 5_000);
        assert_eq!(r1.instructions, r2.instructions);
        assert_eq!(r1.elapsed, r2.elapsed);
        assert_eq!(r1.dram.total_blocks(), r2.dram.total_blocks());
    }

    #[test]
    fn single_tenant_scenario_matches_plain_system() {
        // `new_tenants` with one tenant must be bit-compatible with
        // `System::new` at cores = 1: same seeds, layout, and scheme.
        let cfg = SystemConfig::quick(&spec(), SchemeKind::dylect(), CompressionSetting::High);
        let r1 = System::new(cfg.clone(), &spec()).run(2_000, 5_000);
        let r2 = System::new_tenants(cfg, &[spec()]).run(2_000, 5_000);
        assert_eq!(r1, r2);
        assert_eq!(r1.to_cache_text(), r2.to_cache_text());
    }

    fn two_tenants() -> (SystemConfig, Vec<BenchmarkSpec>) {
        let tenants = vec![
            BenchmarkSpec::by_name("omnetpp").expect("in suite"),
            BenchmarkSpec::by_name("canneal").expect("in suite"),
        ];
        let mut cfg =
            SystemConfig::quick(&tenants[0], SchemeKind::dylect(), CompressionSetting::High);
        cfg.cores = 2;
        cfg.dram_bytes = tenants
            .iter()
            .map(|t| t.dram_bytes(CompressionSetting::High, cfg.scale))
            .sum();
        (cfg, tenants)
    }

    #[test]
    fn multi_tenant_system_reports_per_tenant_summaries() {
        let (cfg, tenants) = two_tenants();
        let mut sys = System::new_tenants(cfg, &tenants);
        let report = sys.run(2_000, 6_000);
        assert!(report.instructions > 0);
        let summaries = sys.tenant_summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].tenant, "omnetpp");
        assert_eq!(summaries[1].tenant, "canneal");
        for (i, s) in summaries.iter().enumerate() {
            assert_eq!(s.asid, i as u16);
            assert!(s.instructions > 0, "tenant {i} retired nothing");
            assert!(s.elapsed > Time::ZERO, "tenant {i} has no window");
            assert!(s.ips() > 0.0);
        }
        let total: u64 = summaries.iter().map(|s| s.instructions).sum();
        assert_eq!(total, report.instructions);
    }

    #[test]
    fn multi_tenant_runs_are_deterministic_and_snapshot_exact() {
        let (cfg, tenants) = two_tenants();
        let mut a = System::new_tenants(cfg.clone(), &tenants);
        let r1 = a.run(2_000, 5_000);

        // Straight repeat.
        let mut b = System::new_tenants(cfg.clone(), &tenants);
        let r2 = b.run(2_000, 5_000);
        assert_eq!(r1, r2);

        // Warm-snapshot resume.
        let mut warm = System::new_tenants(cfg.clone(), &tenants);
        let snap = warm.warm_up_and_snapshot(2_000);
        let mut resumed = System::new_tenants(cfg, &tenants);
        let r3 = resumed
            .resume_measurement(&snap, 5_000)
            .expect("snapshot restores");
        assert_eq!(r1, r3);
        assert_eq!(resumed.tenant_summaries(), {
            let mut c = warm;
            c.start_measurement();
            c.execute(5_000);
            c.finish();
            c.tenant_summaries()
        });
    }

    #[test]
    fn pressure_events_force_compaction_and_stay_deterministic() {
        let run = |extra: u64| {
            let cfg = SystemConfig::quick(&spec(), SchemeKind::dylect(), CompressionSetting::High);
            let mut sys = System::new(cfg, &spec());
            sys.warm_up(4_000);
            sys.start_measurement();
            sys.execute(2_000);
            if extra > 0 {
                sys.apply_pressure(extra);
            }
            sys.execute(2_000);
            (sys.finish(), sys)
        };
        let (base, _) = run(0);
        let (squeezed, _) = run(512);
        // Raising the free target reclaims pages: strictly more free space
        // right after the burst, and the run is still deterministic.
        assert!(
            squeezed.occupancy.free_pages >= base.occupancy.free_pages,
            "pressure should not shrink free space: {} vs {}",
            squeezed.occupancy.free_pages,
            base.occupancy.free_pages
        );
        let (squeezed2, _) = run(512);
        assert_eq!(squeezed, squeezed2);
    }

    #[test]
    fn phase_shift_changes_the_run_deterministically() {
        let run = |shift: Option<PhaseShift>| {
            let cfg = SystemConfig::quick(&spec(), SchemeKind::dylect(), CompressionSetting::High);
            let mut sys = System::new(cfg, &spec());
            sys.warm_up(2_000);
            sys.start_measurement();
            sys.execute(2_000);
            if let Some(s) = &shift {
                sys.apply_phase_shift(0, s);
            }
            sys.execute(4_000);
            sys.finish()
        };
        let shift = PhaseShift {
            hot_fraction: Some(0.8),
            zipf_theta: Some(0.2),
            ..PhaseShift::default()
        };
        let base = run(None);
        let churned = run(Some(shift));
        assert_ne!(base, churned, "a real shift must perturb the run");
        assert_eq!(run(Some(shift)), churned);
    }

    #[test]
    fn nested_walk_adds_walk_time() {
        // 4 KB pages and a footprint wider than the nested cache's 128 MB
        // reach (64 entries x 2 MB), so walks miss both the TLB and the
        // nTLB and the second dimension is actually exercised.
        let mut cfg = SystemConfig::quick(&spec(), SchemeKind::dylect(), CompressionSetting::High);
        cfg.core.page_mode = dylect_cpu::PageSizeMode::Standard4K;
        cfg.scale = 4;
        cfg.dram_bytes = spec().dram_bytes(CompressionSetting::High, cfg.scale);
        let mut nested_cfg = cfg.clone();
        nested_cfg.core.nested_walk = true;
        let mut flat_sys = System::new(cfg, &spec());
        let flat = flat_sys.run(2_000, 8_000);
        let mut nested_sys = System::new(nested_cfg, &spec());
        let nested = nested_sys.run(2_000, 8_000);
        assert!(flat.walks > 0, "test must exercise walks");
        assert!(nested.walks > 0, "test must exercise nested walks");
        assert_eq!(
            flat_sys.cores()[0].walker().stats().host_reads.get(),
            0,
            "flat mode never reads the host table"
        );
        assert!(
            nested_sys.cores()[0].walker().stats().host_reads.get() > 0,
            "2D mode must read the host table in the measurement window"
        );
        // Per-walk cost monotonicity is pinned in the cpu crate
        // (`nested_walks_cost_more_walk_time`) where the memory side is
        // held fixed; here the host table itself perturbs cache/DRAM
        // state, so only the mechanism is asserted.
        assert!(nested_sys.tenant_summaries()[0].walk_time > Time::ZERO);
    }

    #[test]
    fn zero_core_config_reports_an_explicit_empty_run() {
        let mut cfg = SystemConfig::quick(&spec(), SchemeKind::dylect(), CompressionSetting::High);
        cfg.cores = 0;
        let mut sys = System::new(cfg, &spec());
        let r = sys.run(1_000, 1_000);
        assert_eq!(r.instructions, 0);
        assert_eq!(r.mem_ops, 0);
        assert_eq!(r.elapsed, Time::ZERO);
        assert_eq!(r.ips(), 0.0, "no fabricated throughput");
        // The memory side still reports its (untouched) real state.
        assert!(r.occupancy.ml0_pages + r.occupancy.ml1_pages + r.occupancy.ml2_pages > 0);
    }

    #[test]
    fn batched_and_per_op_paths_retire_identical_streams() {
        // The single-core fast path must match what per-op stepping (forced
        // here via telemetry, which disables batching) produces.
        let r_batched = quick(SchemeKind::dylect()).run(5_000, 5_000);
        let mut sys = quick(SchemeKind::dylect());
        sys.enable_telemetry(dylect_telemetry::TelemetryConfig::default());
        let r_per_op = sys.run(5_000, 5_000);
        assert_eq!(r_batched.instructions, r_per_op.instructions);
        assert_eq!(r_batched.mem_ops, r_per_op.mem_ops);
        assert_eq!(r_batched.elapsed, r_per_op.elapsed);
        assert_eq!(r_batched.mc, r_per_op.mc);
        assert_eq!(r_batched.dram, r_per_op.dram);
    }

    #[test]
    fn measurement_window_resets_stats() {
        let mut sys = quick(SchemeKind::tmcc());
        sys.execute(2_000);
        sys.start_measurement();
        let r = sys.finish();
        assert_eq!(r.instructions, 0, "no ops after reset");
    }

    #[test]
    fn telemetry_samples_epochs_and_journals_events() {
        let mut sys = quick(SchemeKind::dylect());
        sys.enable_telemetry(dylect_telemetry::TelemetryConfig {
            epoch_ops: 1_000,
            ..dylect_telemetry::TelemetryConfig::default()
        });
        let report = sys.run(30_000, 10_000);
        let t = sys.take_telemetry().expect("enabled");
        // 40k ops at 1k per epoch, plus the closing sample in finish().
        assert!(
            t.sampler().epochs() >= 40,
            "epochs {}",
            t.sampler().epochs()
        );
        let hit = t.sampler().get("cte_hit_rate").unwrap();
        assert!(!hit.bins().is_empty());
        // The x-axis is monotonic across the warmup/measurement reset.
        for w in hit.bins().windows(2) {
            assert!(w[0].x_end <= w[1].x_start);
        }
        // Warmup promotes pages, so the journal saw promotion events, and
        // journal totals agree with cumulative-style evidence in the series.
        use dylect_sim_core::probe::McEvent;
        assert!(t.journal().count(McEvent::Promotion) > 0);
        assert!(report.occupancy.ml0_pages > 0);
    }

    #[test]
    fn shadow_probes_classify_real_misses_and_track_pages() {
        let mut sys = quick(SchemeKind::dylect());
        sys.enable_telemetry(dylect_telemetry::TelemetryConfig {
            shadow: true,
            ..dylect_telemetry::TelemetryConfig::default()
        });
        sys.run(30_000, 10_000);
        let t = sys.take_telemetry().expect("enabled");
        assert!(t.shadow_enabled());
        let shadow = t.shadow();
        let c = shadow.classes_total();
        assert!(c.real_misses > 0, "quick run should miss the CTE cache");
        assert_eq!(
            c.compulsory + c.capacity + c.conflict,
            c.real_misses,
            "3C classes must partition the real misses"
        );
        // Six counterfactual configs, all replaying the same stream.
        let rows = shadow.config_rows();
        assert_eq!(rows.len(), dylect_telemetry::CONFIG_LABELS.len());
        let infinite = rows.last().expect("infinite row");
        assert!(
            rows.iter().all(|r| r.tally.hits <= infinite.tally.hits),
            "no finite shadow may beat the infinite one"
        );
        let prov = t.provenance();
        assert!(prov.pages_tracked() > 0, "warmup migrates pages");
        assert!(
            prov.level_rows().iter().map(|r| r.dwell_ops).sum::<u64>() > 0,
            "retired-ops clock should have advanced dwell time"
        );
    }

    #[test]
    fn telemetry_does_not_change_the_report() {
        let r_plain = quick(SchemeKind::dylect()).run(5_000, 5_000);
        let mut sys = quick(SchemeKind::dylect());
        sys.enable_telemetry(dylect_telemetry::TelemetryConfig::default());
        let r_telemetry = sys.run(5_000, 5_000);
        assert_eq!(r_plain.instructions, r_telemetry.instructions);
        assert_eq!(r_plain.elapsed, r_telemetry.elapsed);
        assert_eq!(r_plain.mc, r_telemetry.mc);
        assert_eq!(r_plain.dram, r_telemetry.dram);
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        for scheme in [
            SchemeKind::NoCompression,
            SchemeKind::tmcc(),
            SchemeKind::dylect(),
            SchemeKind::NaiveDynamic,
        ] {
            let straight = quick(scheme.clone()).run(5_000, 5_000);
            let snap = quick(scheme.clone()).warm_up_and_snapshot(5_000);
            let resumed = quick(scheme.clone())
                .resume_measurement(&snap, 5_000)
                .expect("same-config restore succeeds");
            assert_eq!(
                straight.to_cache_text(),
                resumed.to_cache_text(),
                "{scheme:?}: resumed run must be byte-identical"
            );
        }
    }

    #[test]
    fn snapshot_restore_preserves_telemetry() {
        let cfg = dylect_telemetry::TelemetryConfig {
            shadow: true,
            span_sample: 8,
            ..dylect_telemetry::TelemetryConfig::default()
        };
        let mut straight = quick(SchemeKind::dylect());
        straight.enable_telemetry(cfg);
        let r_straight = straight.run(8_000, 4_000);
        let t_straight = straight.take_telemetry().expect("enabled");

        let mut donor = quick(SchemeKind::dylect());
        donor.enable_telemetry(cfg);
        let snap = donor.warm_up_and_snapshot(8_000);
        let mut resumed = quick(SchemeKind::dylect());
        resumed.enable_telemetry(cfg);
        let r_resumed = resumed
            .resume_measurement(&snap, 4_000)
            .expect("telemetry restore succeeds");
        let t_resumed = resumed.take_telemetry().expect("enabled");

        assert_eq!(r_straight.to_cache_text(), r_resumed.to_cache_text());
        // The collectors resumed exactly: re-snapshotting both telemetry
        // states must give identical bytes.
        let bytes = |t: &Telemetry| {
            let mut w = SnapWriter::new();
            t.write_snapshot(&mut w);
            w.into_bytes()
        };
        assert_eq!(bytes(&t_straight), bytes(&t_resumed));
    }

    #[test]
    fn snapshot_rejects_mismatch_corruption_and_truncation() {
        let mut donor = quick(SchemeKind::dylect());
        let snap = donor.warm_up_and_snapshot(2_000);

        // Wrong scheme: the config fingerprint differs.
        let mut other = quick(SchemeKind::tmcc());
        assert_eq!(
            other.restore(&snap),
            Err(SnapError::Mismatch("configuration fingerprint"))
        );
        // Telemetry on the receiver but not the donor.
        let mut telem = quick(SchemeKind::dylect());
        telem.enable_telemetry(dylect_telemetry::TelemetryConfig::default());
        telem.shared.set_warmup(true);
        assert_eq!(
            telem.restore(&snap),
            Err(SnapError::Mismatch("telemetry enabled state"))
        );
        // Wrong version byte.
        let mut bad = snap.clone();
        bad[4] ^= 0xFF;
        assert!(matches!(
            quick(SchemeKind::dylect()).restore(&bad),
            Err(SnapError::BadVersion { .. })
        ));
        // Truncations error instead of panicking or succeeding (~64 cut
        // points spread over the stream; a fresh receiver per attempt).
        for cut in (0..snap.len()).step_by((snap.len() / 64).max(1)) {
            assert!(
                quick(SchemeKind::dylect()).restore(&snap[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        // Trailing garbage is flagged.
        let mut padded = snap.clone();
        padded.push(0);
        assert!(matches!(
            quick(SchemeKind::dylect()).restore(&padded),
            Err(SnapError::TrailingBytes(_))
        ));
        // The pristine snapshot still restores after all that.
        quick(SchemeKind::dylect()).restore(&snap).unwrap();
    }

    #[test]
    fn multi_mc_snapshot_round_trips_with_queued_writebacks() {
        let spec = BenchmarkSpec::by_name("omnetpp").unwrap();
        let mut cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
        cfg.scale = 16;
        cfg.dram_bytes = spec.dram_bytes(CompressionSetting::High, 16);
        cfg.memory_controllers = 4;
        let straight = System::new(cfg.clone(), &spec).run(20_000, 10_000);
        let snap = System::new(cfg.clone(), &spec).warm_up_and_snapshot(20_000);
        let resumed = System::new(cfg, &spec)
            .resume_measurement(&snap, 10_000)
            .expect("multi-MC restore succeeds");
        assert_eq!(straight.to_cache_text(), resumed.to_cache_text());
    }

    #[test]
    fn dylect_reports_ml0_after_warmup() {
        let mut sys = quick(SchemeKind::dylect());
        let report = sys.run(30_000, 10_000);
        assert!(
            report.occupancy.ml0_pages > 0,
            "warmup should promote hot pages"
        );
        assert!(report.mc.cte_hit_rate() > 0.0);
    }
    /// Serializes tests that toggle the process-global digest switch.
    fn digest_gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Window length these tests pin (the production default amortizes
    /// capture cost over 2^20 ops — far too coarse for a unit test).
    const TEST_WINDOW: u64 = 4_096;

    /// A quick system with digest windows every [`TEST_WINDOW`] ops.
    fn quick_digest(scheme: SchemeKind) -> System {
        let mut sys = quick(scheme);
        sys.set_digest_window(TEST_WINDOW);
        sys
    }

    #[test]
    fn digest_capture_is_off_by_default_and_empty_when_disabled() {
        let _g = digest_gate();
        digest::set_enabled(false);
        let mut sys = quick(SchemeKind::dylect());
        sys.run(5_000, 5_000);
        assert!(sys.take_digests().is_empty());
    }

    #[test]
    fn digest_windows_agree_between_batched_and_per_op_paths() {
        let _g = digest_gate();
        digest::set_enabled(true);
        // 3 full windows; multiples of BATCH_OPS so both paths tick at
        // the same retired-op counts.
        let mut batched = quick_digest(SchemeKind::dylect());
        batched.run(4_096, 8_192);
        let d_batched = batched.take_digests();
        let mut per_op = quick_digest(SchemeKind::dylect());
        per_op.enable_telemetry(dylect_telemetry::TelemetryConfig::default());
        per_op.run(4_096, 8_192);
        let d_per_op = per_op.take_digests();
        digest::set_enabled(false);

        assert_eq!(d_batched.len(), 3, "12288 ops = 3 windows");
        assert_eq!(d_batched.len(), d_per_op.len());
        for (a, b) in d_batched.iter().zip(&d_per_op) {
            assert_eq!(a.window, b.window);
            assert_eq!(a.ops_retired, b.ops_retired);
            // Telemetry forces the per-op path, so that one component
            // legitimately differs; every architectural component must not.
            let strip = |r: &DigestRecord| {
                r.components()
                    .into_iter()
                    .filter(|(name, _)| name != "telemetry")
                    .collect::<Vec<_>>()
            };
            assert_eq!(strip(a), strip(b), "window {}", a.window);
        }
    }

    #[test]
    fn armed_perturbation_first_diverges_in_the_cache_component() {
        let _g = digest_gate();
        digest::set_enabled(true);
        let run_armed = |at: Option<u64>| {
            let mut sys = quick_digest(SchemeKind::dylect());
            sys.arm_perturb(at);
            sys.run(4_096, 8_192);
            sys.take_digests()
        };
        let base = run_armed(None);
        let hurt = run_armed(Some(6_400));
        digest::set_enabled(false);

        assert_eq!(base.len(), hurt.len());
        // Window 1 closes at op 4096, before the injection: identical.
        assert_eq!(digest::first_difference(&base[0], &hurt[0]), None);
        // Window 2 closes at op 8192 and must pin the cache counters.
        assert_eq!(
            digest::first_difference(&base[1], &hurt[1]),
            Some("cache".to_string())
        );
    }

    #[test]
    fn op_replay_names_the_exact_perturbed_op() {
        let _g = digest_gate();
        digest::set_enabled(true);
        let replay = |at: Option<u64>| {
            let mut sys = quick_digest(SchemeKind::dylect());
            sys.arm_perturb(at);
            sys.execute_op_digests(7_000, 0);
            sys.take_digests()
        };
        let base = replay(None);
        let hurt = replay(Some(6_400));
        digest::set_enabled(false);

        assert_eq!(base.len(), 7_000);
        let first = base
            .iter()
            .zip(&hurt)
            .find_map(|(a, b)| digest::first_difference(a, b).map(|c| (a.op, c)))
            .expect("streams must diverge");
        assert_eq!(first, (Some(6_400), "cache".to_string()));
        // Every record from the injection on carries the divergence.
        for (a, b) in base.iter().zip(&hurt).skip(6_400) {
            assert!(digest::first_difference(a, b).is_some());
        }
    }
}

#[cfg(test)]
mod multimc_tests {
    use super::*;
    use dylect_workloads::CompressionSetting;

    #[test]
    fn multi_mc_system_runs_and_conserves_pages() {
        let spec = BenchmarkSpec::by_name("omnetpp").unwrap();
        let mut cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
        cfg.scale = 16;
        cfg.dram_bytes = spec.dram_bytes(CompressionSetting::High, 16);
        cfg.memory_controllers = 4;
        let footprint = spec.footprint_pages(cfg.scale);
        let mut sys = System::new(cfg, &spec);
        let r = sys.run(30_000, 30_000);
        assert!(r.instructions > 0);
        let o = r.occupancy;
        // Each MC rounds its share up, so the census covers at least the
        // whole footprint.
        assert!(o.ml0_pages + o.ml1_pages + o.ml2_pages >= footprint);
        assert!(r.mc.requests.get() > 0);
    }

    #[test]
    fn multi_mc_matches_single_mc_roughly() {
        let spec = BenchmarkSpec::by_name("canneal").unwrap();
        let run = |n_mc: usize| {
            let mut cfg = SystemConfig::quick(&spec, SchemeKind::tmcc(), CompressionSetting::High);
            cfg.scale = 16;
            cfg.dram_bytes = spec.dram_bytes(CompressionSetting::High, 16);
            cfg.memory_controllers = n_mc;
            System::new(cfg, &spec).run(100_000, 50_000)
        };
        let one = run(1);
        let two = run(2);
        // Two MCs halve each DRAM slice but double aggregate bandwidth;
        // performance should be in the same ballpark (paper §IV-D reports
        // minimal impact from MC-local interleaving).
        let ratio = two.speedup_over(&one);
        assert!(
            (0.5..2.0).contains(&ratio),
            "2-MC perf ratio {ratio} out of plausible range"
        );
    }
}
