//! The shared memory system: L3 + compressed-memory controller(s) + DRAM.
//!
//! Like all prior works, DyLeCT is a module *within* a memory controller;
//! systems with multiple MCs run one independent module per MC, each
//! compressing only its locally-attached DRAM with no cross-MC coherence
//! (paper §IV-D). [`SharedMemory`] therefore holds one or more
//! `(scheme, DRAM)` pairs and routes each physical page to its home MC by
//! page-granular interleaving; statistics aggregate across MCs.

use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_cpu::{BackendOp, MemoryBackend};
use dylect_dram::{Dram, DramStats, EnergyBreakdown, QueueStats};
use dylect_memctl::{McResponse, McStats, MemoryScheme, Occupancy};
use dylect_sim_core::blackbox;
use dylect_sim_core::probe::{
    AccessComponent, AccessRecord, AccessScope, MemLevel, ProbeHandle, RequestClass, SpanPhase,
    SpanRecord, TranslationPath,
};
use dylect_sim_core::prof;
use dylect_sim_core::snap::{Restore as _, SnapError, SnapReader, SnapWriter, Snapshot as _};
use dylect_sim_core::stats::{Counter, MeanAccumulator};
use dylect_sim_core::{PhysAddr, Time, BLOCK_BYTES, PAGE_BYTES};

/// Statistics of the shared side of the hierarchy.
#[derive(Clone, Debug, Default)]
pub struct SharedStats {
    /// L3 hits.
    pub l3_hits: Counter,
    /// L3 misses (demand + walks + prefetches).
    pub l3_misses: Counter,
    /// Mean demand L3-miss service latency, ns.
    pub l3_miss_latency: MeanAccumulator,
    /// Mean compressed-memory overhead per demand L3 miss, ns — the
    /// Figure 21 "L3 miss latency adder".
    pub l3_miss_overhead: MeanAccumulator,
}

/// One memory controller and its locally-attached DRAM.
struct McUnit {
    scheme: Box<dyn MemoryScheme>,
    dram: Dram,
    /// Dirty-line writebacks routed here but not yet applied. Multi-MC
    /// configurations defer these to batch boundaries so independent MCs
    /// can advance on worker threads (intra-run sharding); single-MC
    /// configurations apply writebacks immediately and never queue.
    pending: Vec<PendingWriteback>,
}

/// A dirty L3 victim headed for its home MC: the writeback enters the MC
/// at `now` against MC-local address `local`. Queued per MC and applied in
/// FIFO order at the next [`SharedMemory::drain_pending`] call.
#[derive(Copy, Clone, Debug)]
struct PendingWriteback {
    now: Time,
    local: PhysAddr,
}

impl McUnit {
    /// Applies this MC's queued writebacks in arrival order. Touches only
    /// MC-local state, so distinct units can drain on distinct threads.
    fn apply_pending(&mut self) {
        for i in 0..self.pending.len() {
            let pw = self.pending[i];
            self.scheme.access(pw.now, pw.local, true, &mut self.dram);
        }
        self.pending.clear();
    }
}

/// A disjoint chunk of MC units handed to one drain worker.
///
/// SAFETY: `McUnit` is not `Send` only because `Box<dyn MemoryScheme>` may
/// hold a `ProbeHandle` (an `Rc` into the telemetry sink). The parallel
/// drain runs exclusively when no probe was ever installed
/// ([`SharedMemory::probes_installed`] is false), in which case every
/// handle is the `None` variant and no `Rc` exists anywhere in the unit's
/// object graph — the scheme crates themselves use no `Rc`/`RefCell`.
/// Chunks are disjoint `&mut` slices moved into scoped threads that the
/// parent joins before touching `mcs` again.
struct McChunk<'a>(&'a mut [McUnit]);

unsafe impl Send for McChunk<'_> {}

/// Per-component digests of the shared memory side (see
/// [`SharedMemory::component_digests`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedDigests {
    /// L3 tags/state + shared cache statistics.
    pub cache: u64,
    /// Queued writeback FIFOs across every MC.
    pub wb_fifos: u64,
    /// DRAM scheduler state across every MC.
    pub dram: u64,
    /// Scheme directory state across every MC.
    pub scheme: u64,
    /// Compression occupancy census.
    pub compression: u64,
}

/// Everything below the cores' private caches.
pub struct SharedMemory {
    l3: SetAssocCache,
    mcs: Vec<McUnit>,
    l3_latency: Time,
    stats: SharedStats,
    /// Attribution probe (disabled unless telemetry installs one); emits
    /// one mem-scope record per shared-memory access.
    probe: ProbeHandle,
    /// Span-sampling period over demand L3-miss reads (0 = off).
    span_every: u64,
    demand_misses: u64,
    span_seq: u64,
    /// Worker threads for [`SharedMemory::drain_pending`] (1 = in place).
    jobs: usize,
    /// Latched once any telemetry probe is installed; the parallel drain
    /// is forbidden from then on (probe handles are thread-bound).
    probes_installed: bool,
}

impl SharedMemory {
    /// Assembles a single-MC hierarchy (the paper's evaluated
    /// configuration).
    pub fn new(
        l3_bytes: u64,
        l3_ways: u32,
        l3_latency: Time,
        scheme: Box<dyn MemoryScheme>,
        dram: Dram,
    ) -> Self {
        Self::new_multi(l3_bytes, l3_ways, l3_latency, vec![(scheme, dram)])
    }

    /// Assembles a hierarchy with one scheme+DRAM pair per memory
    /// controller. OS pages interleave across MCs page-granularly: page `p`
    /// is served by MC `p % n` and appears to that MC as its local page
    /// `p / n`.
    ///
    /// # Panics
    ///
    /// Panics if `mcs` is empty.
    pub fn new_multi(
        l3_bytes: u64,
        l3_ways: u32,
        l3_latency: Time,
        mcs: Vec<(Box<dyn MemoryScheme>, Dram)>,
    ) -> Self {
        assert!(!mcs.is_empty(), "at least one memory controller");
        SharedMemory {
            l3: SetAssocCache::new(CacheConfig::lru(l3_bytes, l3_ways, BLOCK_BYTES)),
            mcs: mcs
                .into_iter()
                .map(|(scheme, dram)| McUnit {
                    scheme,
                    dram,
                    pending: Vec::new(),
                })
                .collect(),
            l3_latency,
            stats: SharedStats::default(),
            probe: ProbeHandle::disabled(),
            span_every: 0,
            demand_misses: 0,
            span_seq: 0,
            jobs: 1,
            probes_installed: false,
        }
    }

    /// Sets the worker-thread count for [`SharedMemory::drain_pending`].
    /// Purely an execution detail: the drain's observable effect is
    /// invariant in `jobs` (each MC's queue applies in FIFO order against
    /// MC-local state only, and statistics merge in MC-index order), so
    /// any value produces byte-identical reports and exports.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// Number of memory controllers.
    pub fn mc_count(&self) -> usize {
        self.mcs.len()
    }

    /// The first MC's scheme (the only one in single-MC configurations).
    pub fn scheme(&self) -> &dyn MemoryScheme {
        self.mcs[0].scheme.as_ref()
    }

    /// The first MC's DRAM (the only one in single-MC configurations).
    pub fn dram(&self) -> &Dram {
        &self.mcs[0].dram
    }

    /// Scheme statistics aggregated across all MCs.
    pub fn mc_stats(&self) -> McStats {
        let mut agg = McStats::default();
        for mc in &self.mcs {
            agg.merge(mc.scheme.stats());
        }
        agg
    }

    /// DRAM statistics aggregated across all MCs.
    pub fn dram_stats(&self) -> DramStats {
        let mut agg = DramStats::default();
        for mc in &self.mcs {
            agg.merge(mc.dram.stats());
        }
        agg
    }

    /// Memory-level census aggregated across all MCs.
    pub fn occupancy(&self) -> Occupancy {
        let mut agg = Occupancy::default();
        for mc in &self.mcs {
            agg.merge(&mc.scheme.occupancy());
        }
        agg
    }

    /// DRAM queue statistics aggregated across all MCs (telemetry; not
    /// part of run reports).
    pub fn queue_stats(&self) -> QueueStats {
        let mut agg = QueueStats::default();
        for mc in &self.mcs {
            agg.merge(mc.dram.queue_stats());
        }
        agg
    }

    /// Installs one observability probe per memory controller; `make` is
    /// called with each MC's index. Probes are observation-only and do not
    /// change simulated behavior.
    pub fn set_probes(&mut self, mut make: impl FnMut(u32) -> ProbeHandle) {
        self.probes_installed = true;
        for (i, mc) in self.mcs.iter_mut().enumerate() {
            mc.scheme.set_probe(make(i as u32));
        }
    }

    /// Each MC's real CTE-cache geometry (`None` for schemes without a CTE
    /// cache), indexed by MC; sizes the telemetry shadow arrays.
    pub fn cte_cache_geometries(&self) -> Vec<Option<dylect_memctl::CteCacheGeometry>> {
        self.mcs
            .iter()
            .map(|mc| mc.scheme.cte_cache_geometry())
            .collect()
    }

    /// Installs the shared-memory access probe: one mem-scope attribution
    /// record per L3 access plus, when `span_every > 0`, begin/end trace
    /// spans for every `span_every`-th demand L3-miss read. Pass a disabled
    /// handle to turn attribution back off.
    pub fn set_access_probe(&mut self, probe: ProbeHandle, span_every: u64) {
        self.probes_installed = true;
        self.probe = probe;
        self.span_every = span_every;
        self.demand_misses = 0;
        self.span_seq = 0;
    }

    /// DRAM energy over `elapsed`, aggregated across all MCs.
    pub fn energy(&self, elapsed: Time) -> EnergyBreakdown {
        let mut agg = EnergyBreakdown::default();
        for mc in &self.mcs {
            agg.merge(&mc.dram.energy(elapsed));
        }
        agg
    }

    /// Forwards warmup acceleration to every scheme.
    pub fn set_warmup(&mut self, warmup: bool) {
        for mc in &mut self.mcs {
            mc.scheme.set_warmup(warmup);
        }
    }

    /// A scenario memory-pressure event: every MC reclaims until its free
    /// pool holds `extra_free_pages` beyond the normal target (ballooning).
    pub fn apply_pressure(&mut self, now: Time, extra_free_pages: u64) {
        for mc in &mut self.mcs {
            mc.scheme
                .apply_pressure(now, extra_free_pages, &mut mc.dram);
        }
    }

    /// Shared-side statistics.
    pub fn stats(&self) -> &SharedStats {
        &self.stats
    }

    /// Resets all shared-side statistics after warmup.
    pub fn reset_stats(&mut self) {
        // Queued writebacks belong to the pre-reset window; land them
        // before their statistics are cleared.
        self.drain_pending();
        self.stats = SharedStats::default();
        self.l3.reset_stats();
        for mc in &mut self.mcs {
            mc.scheme.reset_stats();
            mc.dram.reset_stats();
        }
    }

    /// Routes a global physical address to `(mc index, local address)`.
    /// Pages interleave across MCs; block offsets are preserved.
    fn route(&self, addr: PhysAddr) -> (usize, PhysAddr) {
        let n = self.mcs.len() as u64;
        if n == 1 {
            return (0, addr);
        }
        let page = addr.page().index();
        let local = PhysAddr::new((page / n) * PAGE_BYTES + addr.page_offset());
        ((page % n) as usize, local)
    }

    fn mc_access(&mut self, now: Time, addr: PhysAddr, write: bool) -> (McResponse, u32) {
        let (idx, local) = self.route(addr);
        let mc = &mut self.mcs[idx];
        // Sampled host timer only; the scheme sees nothing of it.
        let _p = prof::sampled_scope(prof::HostPhase::SchemeAccess);
        let resp = mc.scheme.access(now, local, write, &mut mc.dram);
        (resp, idx as u32)
    }

    fn spill(&mut self, now: Time, key: u64, dirty: bool) {
        if let Some(ev) = self.l3.fill(key, dirty, ()) {
            if ev.dirty {
                let addr = PhysAddr::new(ev.key * BLOCK_BYTES);
                if self.mcs.len() > 1 {
                    // Multi-MC: queue on the victim's home MC. Writeback
                    // latency is off the critical path (the caller never
                    // waits on it), so deferring to the next batch
                    // boundary only delays MC state mutation.
                    let (idx, local) = self.route(addr);
                    self.mcs[idx].pending.push(PendingWriteback { now, local });
                } else {
                    let (resp, _) = self.mc_access(now, addr, true);
                    if self.probe.is_enabled() {
                        self.emit_mem_record(RequestClass::Writeback, now, Time::ZERO, &resp);
                    }
                }
            }
        }
    }

    /// Applies all queued MC writebacks (multi-MC configurations only; a
    /// single-MC hierarchy never queues). The run loop calls this at batch
    /// boundaries and at the end of every execute window.
    ///
    /// With `jobs > 1` and no telemetry probes installed, the MC units
    /// drain on scoped worker threads — each unit's queue touches only
    /// that unit's scheme and DRAM, so threads share nothing. With probes
    /// installed (or `jobs == 1`) the drain is sequential in MC order and
    /// emits the usual writeback attribution records. Both paths apply
    /// each queue in FIFO order, so the simulated outcome is identical.
    pub fn drain_pending(&mut self) {
        let queued: usize = self.mcs.iter().map(|mc| mc.pending.len()).sum();
        if queued == 0 {
            return;
        }
        blackbox::record(
            blackbox::EventKind::DrainWriteback,
            queued as u64,
            self.mcs.len() as u64,
        );
        let _p = prof::scope(prof::HostPhase::DrainWriteback);
        let workers = self.jobs.min(self.mcs.len());
        // Spawning threads for a handful of writebacks costs more than the
        // writebacks; small batches drain in place. Purely wall-clock —
        // both paths land each queue in FIFO order.
        const PARALLEL_DRAIN_MIN: usize = 32;
        if workers > 1 && queued >= PARALLEL_DRAIN_MIN && !self.probes_installed {
            let per = self.mcs.len().div_ceil(workers);
            let prof_on = prof::enabled();
            std::thread::scope(|scope| {
                for (wid, chunk) in self.mcs.chunks_mut(per).map(McChunk).enumerate() {
                    scope.spawn(move || {
                        // Capture the whole wrapper (not its field) so the
                        // closure's Send-ness comes from `McChunk`.
                        let McChunk(units) = { chunk };
                        // Per-worker busy time makes DYLECT_JOBS shard
                        // balance visible; purely host-side bookkeeping.
                        let start = prof_on.then(std::time::Instant::now);
                        let mut items = 0u64;
                        for mc in units {
                            items += mc.pending.len() as u64;
                            mc.apply_pending();
                        }
                        if let Some(start) = start {
                            let busy = start.elapsed().as_nanos() as u64;
                            prof::worker_busy(prof::WorkerKind::Drain, wid, busy, items);
                        }
                    });
                }
            });
            return;
        }
        // The sequential path is the single drain "worker": recording it in
        // the same registry keeps the utilization table meaningful at
        // DYLECT_JOBS=1.
        let start = prof::enabled().then(std::time::Instant::now);
        let probe_on = self.probe.is_enabled();
        for idx in 0..self.mcs.len() {
            let mc = &mut self.mcs[idx];
            if mc.pending.is_empty() {
                continue;
            }
            let pending = std::mem::take(&mut mc.pending);
            for pw in &pending {
                let mc = &mut self.mcs[idx];
                let resp = mc.scheme.access(pw.now, pw.local, true, &mut mc.dram);
                if probe_on {
                    self.emit_mem_record(RequestClass::Writeback, pw.now, Time::ZERO, &resp);
                }
            }
            // Hand the drained queue's allocation back for reuse.
            let mut pending = pending;
            pending.clear();
            self.mcs[idx].pending = pending;
        }
        if let Some(start) = start {
            let busy = start.elapsed().as_nanos() as u64;
            prof::worker_busy(prof::WorkerKind::Drain, 0, busy, queued as u64);
        }
    }

    /// Appends the shared side's mutable state: the L3, shared statistics,
    /// each MC's scheme + DRAM + queued writebacks, and the span-sampling
    /// counters. Execution knobs (`jobs`, probes, `span_every`) are
    /// orchestration state the owner re-establishes, not snapshot content.
    /// Each MC's scheme name travels ahead of its state as an identity
    /// guard, so a snapshot from a different scheme mix fails loudly even
    /// if the stream happens to parse.
    pub fn write_snapshot(&self, w: &mut SnapWriter) {
        self.l3.write_snapshot(w);
        self.stats.l3_hits.write_snapshot(w);
        self.stats.l3_misses.write_snapshot(w);
        self.stats.l3_miss_latency.write_snapshot(w);
        self.stats.l3_miss_overhead.write_snapshot(w);
        w.seq(self.mcs.len());
        for mc in &self.mcs {
            w.str(mc.scheme.name());
            mc.scheme.write_snapshot(w);
            mc.dram.write_snapshot(w);
            w.seq(mc.pending.len());
            for pw in &mc.pending {
                pw.now.write_snapshot(w);
                w.u64(pw.local.raw());
            }
        }
        w.u64(self.demand_misses);
        w.u64(self.span_seq);
    }

    /// Restores state written by [`SharedMemory::write_snapshot`] onto a
    /// hierarchy freshly built from the same configuration.
    pub fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.l3.restore_snapshot(r)?;
        self.stats.l3_hits.restore_snapshot(r)?;
        self.stats.l3_misses.restore_snapshot(r)?;
        self.stats.l3_miss_latency.restore_snapshot(r)?;
        self.stats.l3_miss_overhead.restore_snapshot(r)?;
        r.fixed_seq(self.mcs.len(), "memory-controller count")?;
        for mc in &mut self.mcs {
            if r.str()? != mc.scheme.name() {
                return Err(SnapError::Mismatch("memory-controller scheme"));
            }
            mc.scheme.restore_snapshot(r)?;
            mc.dram.restore_snapshot(r)?;
            let queued = r.seq(16)?;
            mc.pending.clear();
            for _ in 0..queued {
                let mut now = Time::ZERO;
                now.restore_snapshot(r)?;
                let local = PhysAddr::new(r.u64()?);
                mc.pending.push(PendingWriteback { now, local });
            }
        }
        self.demand_misses = r.u64()?;
        self.span_seq = r.u64()?;
        Ok(())
    }

    /// Per-component digests of the shared side, for the state-digest
    /// audit trail. Each digest hashes exactly the bytes the component
    /// contributes to [`SharedMemory::write_snapshot`] (same traversal,
    /// no second serializer), partitioned so a divergence names the
    /// subsystem that drifted: the L3 + shared stats ("cache"), the
    /// queued writeback FIFOs ("wb_fifos"), the DRAM schedulers
    /// ("dram"), the scheme directories ("scheme"), and the
    /// compression-occupancy census ("compression").
    pub fn component_digests(&self) -> SharedDigests {
        use dylect_sim_core::digest::hash_with;
        let cache = hash_with(|w| {
            self.l3.write_snapshot(w);
            self.stats.l3_hits.write_snapshot(w);
            self.stats.l3_misses.write_snapshot(w);
            self.stats.l3_miss_latency.write_snapshot(w);
            self.stats.l3_miss_overhead.write_snapshot(w);
            w.u64(self.demand_misses);
            w.u64(self.span_seq);
        });
        let wb_fifos = hash_with(|w| {
            w.seq(self.mcs.len());
            for mc in &self.mcs {
                w.seq(mc.pending.len());
                for pw in &mc.pending {
                    pw.now.write_snapshot(w);
                    w.u64(pw.local.raw());
                }
            }
        });
        let dram = hash_with(|w| {
            w.seq(self.mcs.len());
            for mc in &self.mcs {
                mc.dram.write_snapshot(w);
            }
        });
        let scheme = hash_with(|w| {
            w.seq(self.mcs.len());
            for mc in &self.mcs {
                w.str(mc.scheme.name());
                mc.scheme.write_snapshot(w);
            }
        });
        let compression = hash_with(|w| {
            let o = self.occupancy();
            w.u64(o.ml0_pages);
            w.u64(o.ml1_pages);
            w.u64(o.ml2_pages);
            w.u64(o.free_pages);
            w.u64(o.free_bytes);
        });
        SharedDigests {
            cache,
            wb_fifos,
            dram,
            scheme,
            compression,
        }
    }

    /// Test-only divergence injector for the bisect smoke: bumps the
    /// shared L3-miss counter by one, exactly the kind of single-counter
    /// drift a broken sharding change would introduce. Armed only through
    /// `DYLECT_DIGEST_PERTURB`; never called in normal operation.
    #[doc(hidden)]
    pub fn perturb_l3_miss_counter(&mut self) {
        self.stats.l3_misses.incr();
    }

    /// Emits one mem-scope attribution record for an access that entered
    /// the shared side at `start`, spent `l3` in the L3 lookup, and (for L3
    /// misses) completed with `resp`; the response breakdown's components
    /// sum to `data_ready - start - l3` by construction, so the record is
    /// conservative with a zero residual.
    fn emit_mem_record(&self, class: RequestClass, start: Time, l3: Time, resp: &McResponse) {
        let b = &resp.breakdown;
        let translation = if b.path == TranslationPath::CteMiss {
            (AccessComponent::CteFetch, b.translation)
        } else {
            (AccessComponent::CteCacheHit, b.translation)
        };
        self.probe.emit_access(&AccessRecord::new(
            AccessScope::Mem,
            class,
            b.level,
            b.path,
            start,
            resp.data_ready.saturating_sub(start),
            &[
                (AccessComponent::CacheLookup, l3),
                translation,
                (AccessComponent::Decompression, b.decompression),
                (AccessComponent::Migration, b.migration),
                (AccessComponent::DramQueue, b.dram_queue),
                (AccessComponent::DramService, b.dram_service),
            ],
        ));
    }

    /// Emits the begin/end span quartet for one sampled demand miss:
    /// the whole request window, then the translate / expand / DRAM phases
    /// partitioning it (the expand phase is omitted when the page needed no
    /// expansion). Phase boundaries are reconstructed from the response
    /// breakdown, so spans cost nothing on unsampled requests.
    fn emit_spans(&mut self, now: Time, mc: u32, addr: PhysAddr, resp: &McResponse) {
        let b = &resp.breakdown;
        let id = self.span_seq;
        self.span_seq += 1;
        let page = addr.page().index();
        let submit = now + self.l3_latency;
        let translated = submit + b.translation;
        let data_start = translated + b.decompression + b.migration;
        let probe = &self.probe;
        let emit = |phase: SpanPhase, start: Time, end: Time| {
            probe.emit_span(&SpanRecord {
                id,
                mc,
                phase,
                start,
                end,
                page,
            });
        };
        emit(SpanPhase::Request, now, resp.data_ready);
        emit(SpanPhase::Translate, submit, translated);
        if data_start > translated {
            emit(SpanPhase::Expand, translated, data_start);
        }
        emit(SpanPhase::Dram, data_start, resp.data_ready);
    }
}

impl MemoryBackend for SharedMemory {
    fn access(&mut self, now: Time, addr: PhysAddr, op: BackendOp) -> Time {
        // Sampled host timer covering the shared hierarchy and below.
        let _p = prof::sampled_scope(prof::HostPhase::MemAccess);
        let key = self.l3.key_of(addr.raw());
        match op {
            BackendOp::Writeback => {
                // L2 dirty spills install into L3; latency is off the
                // critical path.
                self.spill(now, key, true);
                now
            }
            BackendOp::Read | BackendOp::PageWalk | BackendOp::Prefetch => {
                let class = if op == BackendOp::PageWalk {
                    RequestClass::PageWalk
                } else {
                    RequestClass::Demand
                };
                if self.l3.access(key) {
                    self.stats.l3_hits.incr();
                    if self.probe.is_enabled() {
                        self.probe.emit_access(&AccessRecord::new(
                            AccessScope::Mem,
                            class,
                            MemLevel::None,
                            TranslationPath::None,
                            now,
                            self.l3_latency,
                            &[(AccessComponent::CacheLookup, self.l3_latency)],
                        ));
                    }
                    return now + self.l3_latency;
                }
                self.stats.l3_misses.incr();
                let (resp, mc) = self.mc_access(now + self.l3_latency, addr, false);
                if op == BackendOp::Read {
                    self.stats
                        .l3_miss_latency
                        .record_time_ns(resp.data_ready.saturating_sub(now));
                    self.stats.l3_miss_overhead.record_time_ns(resp.overhead);
                }
                if self.probe.is_enabled() {
                    self.emit_mem_record(class, now, self.l3_latency, &resp);
                    if op == BackendOp::Read && self.span_every > 0 {
                        self.demand_misses += 1;
                        if self.demand_misses.is_multiple_of(self.span_every) {
                            self.emit_spans(now, mc, addr, &resp);
                        }
                    }
                }
                self.spill(resp.data_ready, key, false);
                resp.data_ready
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_dram::DramConfig;
    use dylect_memctl::NoCompression;

    fn shared() -> SharedMemory {
        let dram = Dram::new(DramConfig::paper(1 << 28, 8));
        let scheme = Box::new(NoCompression::new(10_000, &dram));
        SharedMemory::new(1 << 20, 16, Time::from_ns(23.9), scheme, dram)
    }

    fn shared_multi(n: usize) -> SharedMemory {
        let mcs = (0..n)
            .map(|_| {
                let dram = Dram::new(DramConfig::paper(1 << 26, 8));
                let scheme: Box<dyn MemoryScheme> = Box::new(NoCompression::new(10_000, &dram));
                (scheme, dram)
            })
            .collect();
        SharedMemory::new_multi(1 << 20, 16, Time::from_ns(23.9), mcs)
    }

    #[test]
    fn l3_hit_is_l3_latency() {
        let mut s = shared();
        let a = PhysAddr::new(0x1000);
        let t1 = s.access(Time::ZERO, a, BackendOp::Read);
        let t2 = s.access(t1, a, BackendOp::Read);
        assert_eq!(t2 - t1, Time::from_ns(23.9));
        assert_eq!(s.stats().l3_hits.get(), 1);
        assert_eq!(s.stats().l3_misses.get(), 1);
    }

    #[test]
    fn miss_goes_to_dram() {
        let mut s = shared();
        let t = s.access(Time::ZERO, PhysAddr::new(0x2000), BackendOp::Read);
        // L3 latency + cold DRAM access.
        assert!(t.as_ns() > 23.9 + 29.0);
        assert_eq!(s.dram().stats().reads.get(), 1);
        assert!(s.stats().l3_miss_latency.mean() > 29.0);
    }

    #[test]
    fn writeback_fills_dirty_and_spills() {
        let mut s = shared();
        // Fill the 1 MB L3 (16384 blocks) with dirty lines; spills follow.
        for i in 0..20_000u64 {
            s.access(Time::ZERO, PhysAddr::new(i * 64), BackendOp::Writeback);
        }
        assert!(s.dram().stats().writes.get() > 0, "dirty spills reach DRAM");
    }

    #[test]
    fn prefetch_misses_do_not_skew_latency_stats() {
        let mut s = shared();
        s.access(Time::ZERO, PhysAddr::new(0x9000), BackendOp::Prefetch);
        assert_eq!(s.stats().l3_miss_latency.count(), 0);
        assert_eq!(s.stats().l3_misses.get(), 1);
    }

    #[test]
    fn multi_mc_routes_pages_round_robin() {
        let mut s = shared_multi(4);
        // Pages 0..8 spread across the 4 MCs, two each.
        for p in 0..8u64 {
            s.access(Time::ZERO, PhysAddr::new(p * PAGE_BYTES), BackendOp::Read);
        }
        let agg = s.dram_stats();
        assert_eq!(agg.reads.get(), 8);
        for mc in &s.mcs {
            assert_eq!(mc.dram.stats().reads.get(), 2, "uneven interleave");
        }
    }

    #[test]
    fn route_preserves_page_offsets_and_is_dense() {
        let s = shared_multi(4);
        // Each MC sees its local pages densely packed from zero.
        let (mc0, a0) = s.route(PhysAddr::new(0));
        let (mc1, a1) = s.route(PhysAddr::new(PAGE_BYTES + 128));
        let (mc0b, a0b) = s.route(PhysAddr::new(4 * PAGE_BYTES + 64));
        assert_eq!((mc0, a0.raw()), (0, 0));
        assert_eq!((mc1, a1.raw()), (1, 128));
        assert_eq!((mc0b, a0b.raw()), (0, PAGE_BYTES + 64));
    }

    #[test]
    fn parallel_drain_matches_sequential_drain() {
        // Queue thousands of writebacks (well past PARALLEL_DRAIN_MIN) on
        // four MCs and land them with one vs. three workers: every
        // aggregated statistic must match exactly, because each MC's queue
        // applies in FIFO order against MC-local state either way.
        let run = |jobs: usize| {
            let mut s = shared_multi(4);
            s.set_jobs(jobs);
            for i in 0..60_000u64 {
                s.access(Time::ZERO, PhysAddr::new(i * 64), BackendOp::Writeback);
            }
            s.drain_pending();
            assert!(
                s.mcs.iter().all(|mc| mc.pending.is_empty()),
                "drain left work queued"
            );
            (s.dram_stats(), s.mc_stats().requests.get())
        };
        let (seq_dram, seq_reqs) = run(1);
        let (par_dram, par_reqs) = run(3);
        assert!(seq_dram.writes.get() > 0, "no writebacks reached DRAM");
        assert_eq!(seq_dram.writes.get(), par_dram.writes.get());
        assert_eq!(seq_dram.reads.get(), par_dram.reads.get());
        assert_eq!(seq_reqs, par_reqs);
    }

    #[test]
    fn aggregated_stats_sum_across_mcs() {
        let mut s = shared_multi(2);
        for p in 0..6u64 {
            s.access(Time::ZERO, PhysAddr::new(p * PAGE_BYTES), BackendOp::Read);
        }
        assert_eq!(s.mc_stats().requests.get(), 6);
        let occ = s.occupancy();
        assert_eq!(occ.ml1_pages, 20_000, "two baselines of 10k pages each");
        assert!(s.energy(Time::from_us(10)).total() > 0.0);
    }
}
