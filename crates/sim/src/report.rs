//! Run results: everything the paper's tables and figures are built from.

use dylect_dram::{DramStats, EnergyBreakdown, RequestClass};
use dylect_memctl::{McStats, Occupancy};
use dylect_sim_core::Time;

/// The measured outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Scheme label.
    pub scheme: String,
    /// Committed instructions in the measurement window.
    pub instructions: u64,
    /// Memory operations executed.
    pub mem_ops: u64,
    /// Committed stores (the paper's performance metric numerator).
    pub stores: u64,
    /// Simulated wall-clock of the measurement window.
    pub elapsed: Time,
    /// Aggregate TLB miss rate across cores.
    pub tlb_miss_rate: f64,
    /// Page walks performed.
    pub walks: u64,
    /// L3 misses (demand + walk + prefetch).
    pub l3_misses: u64,
    /// Mean demand L3-miss latency, ns.
    pub l3_miss_latency_ns: f64,
    /// Mean compressed-memory latency adder per demand L3 miss, ns
    /// (Figure 21).
    pub l3_miss_overhead_ns: f64,
    /// Scheme statistics snapshot (CTE hit rates, migrations, …).
    pub mc: McStats,
    /// DRAM statistics snapshot (traffic per class, row buffer, bus).
    pub dram: DramStats,
    /// Memory-level census at the end of the run (Figure 20/25).
    pub occupancy: Occupancy,
    /// DRAM energy over the measurement window (Figure 24).
    pub energy: EnergyBreakdown,
}

impl RunReport {
    /// Instructions per second of simulated time.
    pub fn ips(&self) -> f64 {
        if self.elapsed == Time::ZERO {
            0.0
        } else {
            self.instructions as f64 / self.elapsed.as_secs()
        }
    }

    /// Committed stores per nanosecond — proportional to the paper's
    /// "committed store instructions per cycle" metric.
    pub fn stores_per_ns(&self) -> f64 {
        if self.elapsed == Time::ZERO {
            0.0
        } else {
            self.stores as f64 / self.elapsed.as_ns()
        }
    }

    /// Speedup of this run over a baseline run (performance ratio).
    pub fn speedup_over(&self, base: &RunReport) -> f64 {
        let b = base.ips();
        if b == 0.0 {
            0.0
        } else {
            self.ips() / b
        }
    }

    /// Total DRAM traffic in 64 B blocks per kilo-instruction
    /// (Figure 22's unit, up to normalization).
    pub fn traffic_per_kilo_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.dram.total_blocks() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// CTE-fetch traffic in blocks per kilo-instruction (Figure 23).
    pub fn cte_traffic_per_kilo_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.dram.class_blocks(RequestClass::CteFetch) as f64 * 1000.0
                / self.instructions as f64
        }
    }

    /// DRAM energy per instruction in nanojoules (Figure 24).
    pub fn energy_per_instruction_nj(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.energy.total() * 1e9 / self.instructions as f64
        }
    }

    /// DRAM bus utilization over the window (Figure 17).
    pub fn bus_utilization(&self) -> f64 {
        self.dram.bus_utilization(self.elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(instructions: u64, elapsed_ns: f64) -> RunReport {
        RunReport {
            benchmark: "x".into(),
            scheme: "y".into(),
            instructions,
            mem_ops: 0,
            stores: instructions / 4,
            elapsed: Time::from_ns(elapsed_ns),
            tlb_miss_rate: 0.0,
            walks: 0,
            l3_misses: 0,
            l3_miss_latency_ns: 0.0,
            l3_miss_overhead_ns: 0.0,
            mc: McStats::default(),
            dram: DramStats::default(),
            occupancy: Occupancy::default(),
            energy: EnergyBreakdown::default(),
        }
    }

    #[test]
    fn speedup_math() {
        let fast = dummy(2000, 1000.0);
        let slow = dummy(1000, 1000.0);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-9);
        assert_eq!(fast.stores_per_ns(), 0.5);
    }

    #[test]
    fn guards_zero_division() {
        let z = dummy(0, 0.0);
        assert_eq!(z.ips(), 0.0);
        assert_eq!(z.traffic_per_kilo_instruction(), 0.0);
        assert_eq!(z.energy_per_instruction_nj(), 0.0);
    }
}
