//! Run results: everything the paper's tables and figures are built from.

use dylect_dram::{DramStats, EnergyBreakdown, RequestClass};
use dylect_memctl::{McStats, Occupancy};
use dylect_sim_core::kv::{KvReader, KvWriter};
use dylect_sim_core::Time;

/// The measured outcome of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Scheme label.
    pub scheme: String,
    /// Committed instructions in the measurement window.
    pub instructions: u64,
    /// Memory operations executed.
    pub mem_ops: u64,
    /// Committed stores (the paper's performance metric numerator).
    pub stores: u64,
    /// Simulated wall-clock of the measurement window.
    pub elapsed: Time,
    /// Aggregate TLB miss rate across cores.
    pub tlb_miss_rate: f64,
    /// Page walks performed.
    pub walks: u64,
    /// L3 misses (demand + walk + prefetch).
    pub l3_misses: u64,
    /// Mean demand L3-miss latency, ns.
    pub l3_miss_latency_ns: f64,
    /// Mean compressed-memory latency adder per demand L3 miss, ns
    /// (Figure 21).
    pub l3_miss_overhead_ns: f64,
    /// Scheme statistics snapshot (CTE hit rates, migrations, …).
    pub mc: McStats,
    /// DRAM statistics snapshot (traffic per class, row buffer, bus).
    pub dram: DramStats,
    /// Memory-level census at the end of the run (Figure 20/25).
    pub occupancy: Occupancy,
    /// DRAM energy over the measurement window (Figure 24).
    pub energy: EnergyBreakdown,
}

impl RunReport {
    /// Instructions per second of simulated time.
    pub fn ips(&self) -> f64 {
        if self.elapsed == Time::ZERO {
            0.0
        } else {
            self.instructions as f64 / self.elapsed.as_secs()
        }
    }

    /// Committed stores per nanosecond — proportional to the paper's
    /// "committed store instructions per cycle" metric.
    pub fn stores_per_ns(&self) -> f64 {
        if self.elapsed == Time::ZERO {
            0.0
        } else {
            self.stores as f64 / self.elapsed.as_ns()
        }
    }

    /// Speedup of this run over a baseline run (performance ratio).
    pub fn speedup_over(&self, base: &RunReport) -> f64 {
        let b = base.ips();
        if b == 0.0 {
            0.0
        } else {
            self.ips() / b
        }
    }

    /// Total DRAM traffic in 64 B blocks per kilo-instruction
    /// (Figure 22's unit, up to normalization).
    pub fn traffic_per_kilo_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.dram.total_blocks() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// CTE-fetch traffic in blocks per kilo-instruction (Figure 23).
    pub fn cte_traffic_per_kilo_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.dram.class_blocks(RequestClass::CteFetch) as f64 * 1000.0
                / self.instructions as f64
        }
    }

    /// DRAM energy per instruction in nanojoules (Figure 24).
    pub fn energy_per_instruction_nj(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.energy.total() * 1e9 / self.instructions as f64
        }
    }

    /// DRAM bus utilization over the window (Figure 17).
    pub fn bus_utilization(&self) -> f64 {
        self.dram.bus_utilization(self.elapsed)
    }

    /// Bump when the report layout changes: the experiment runner embeds
    /// this in every cache record and treats a mismatch as a miss, so stale
    /// `results/cache/` files can never be misparsed into a report.
    pub const CACHE_FORMAT_VERSION: u64 = 1;

    /// Serializes the full report into the JSON-ish on-disk cache format.
    ///
    /// The encoding is bit-exact for floats, so
    /// `RunReport::from_cache_text(&r.to_cache_text())` compares equal to
    /// `r` — the report-cache round-trip can never perturb figure outputs.
    pub fn to_cache_text(&self) -> String {
        let mut w = KvWriter::new();
        w.put_u64("format", Self::CACHE_FORMAT_VERSION);
        w.put_str("benchmark", &self.benchmark);
        w.put_str("scheme", &self.scheme);
        w.put_u64("instructions", self.instructions);
        w.put_u64("mem_ops", self.mem_ops);
        w.put_u64("stores", self.stores);
        w.put_u64("elapsed_ps", self.elapsed.as_ps());
        w.put_f64("tlb_miss_rate", self.tlb_miss_rate);
        w.put_u64("walks", self.walks);
        w.put_u64("l3_misses", self.l3_misses);
        w.put_f64("l3_miss_latency_ns", self.l3_miss_latency_ns);
        w.put_f64("l3_miss_overhead_ns", self.l3_miss_overhead_ns);
        self.mc.write_kv(&mut w, "mc");
        self.dram.write_kv(&mut w, "dram");
        self.occupancy.write_kv(&mut w, "occupancy");
        self.energy.write_kv(&mut w, "energy");
        w.finish()
    }

    /// Parses a report serialized by [`RunReport::to_cache_text`].
    ///
    /// Returns `None` (a cache miss) on malformed input, missing fields, or
    /// a [`RunReport::CACHE_FORMAT_VERSION`] mismatch.
    pub fn from_cache_text(text: &str) -> Option<RunReport> {
        let r = KvReader::parse(text)?;
        if r.get_u64("format")? != Self::CACHE_FORMAT_VERSION {
            return None;
        }
        Some(RunReport {
            benchmark: r.get_str("benchmark")?.to_owned(),
            scheme: r.get_str("scheme")?.to_owned(),
            instructions: r.get_u64("instructions")?,
            mem_ops: r.get_u64("mem_ops")?,
            stores: r.get_u64("stores")?,
            elapsed: Time::from_ps(r.get_u64("elapsed_ps")?),
            tlb_miss_rate: r.get_f64("tlb_miss_rate")?,
            walks: r.get_u64("walks")?,
            l3_misses: r.get_u64("l3_misses")?,
            l3_miss_latency_ns: r.get_f64("l3_miss_latency_ns")?,
            l3_miss_overhead_ns: r.get_f64("l3_miss_overhead_ns")?,
            mc: McStats::read_kv(&r, "mc")?,
            dram: DramStats::read_kv(&r, "dram")?,
            occupancy: Occupancy::read_kv(&r, "occupancy")?,
            energy: EnergyBreakdown::read_kv(&r, "energy")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(instructions: u64, elapsed_ns: f64) -> RunReport {
        RunReport {
            benchmark: "x".into(),
            scheme: "y".into(),
            instructions,
            mem_ops: 0,
            stores: instructions / 4,
            elapsed: Time::from_ns(elapsed_ns),
            tlb_miss_rate: 0.0,
            walks: 0,
            l3_misses: 0,
            l3_miss_latency_ns: 0.0,
            l3_miss_overhead_ns: 0.0,
            mc: McStats::default(),
            dram: DramStats::default(),
            occupancy: Occupancy::default(),
            energy: EnergyBreakdown::default(),
        }
    }

    #[test]
    fn speedup_math() {
        let fast = dummy(2000, 1000.0);
        let slow = dummy(1000, 1000.0);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-9);
        assert_eq!(fast.stores_per_ns(), 0.5);
    }

    #[test]
    fn guards_zero_division() {
        let z = dummy(0, 0.0);
        assert_eq!(z.ips(), 0.0);
        assert_eq!(z.traffic_per_kilo_instruction(), 0.0);
        assert_eq!(z.energy_per_instruction_nj(), 0.0);
    }

    #[test]
    fn cache_text_roundtrips_exactly() {
        let mut r = dummy(12345, 678.9);
        r.tlb_miss_rate = 0.1; // not exactly representable: exercises bit-exact floats
        r.mc.promotions.add(7);
        r.energy.refresh = 1e-3 / 3.0;
        let text = r.to_cache_text();
        let back = RunReport::from_cache_text(&text).expect("parses");
        assert_eq!(back, r);
        assert_eq!(back.to_cache_text(), text);
    }

    #[test]
    fn cache_text_rejects_other_versions() {
        let text = dummy(1, 1.0)
            .to_cache_text()
            .replace("\"format\": \"1\"", "\"format\": \"999\"");
        assert!(RunReport::from_cache_text(&text).is_none());
        assert!(RunReport::from_cache_text("{}").is_none());
    }
}
