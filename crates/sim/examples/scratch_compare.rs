//! Developer utility: compare all schemes on one benchmark and print the
//! calibration metrics used while tuning the workload model.
//!
//! ```text
//! cargo run --release -p dylect-sim --example scratch_compare -- [bench] [scale] [warmup]
//! LOW=1 ... # low-compression setting instead of high
//! ```

use dylect_sim::{SchemeKind, System, SystemConfig};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args.get(1).map(String::as_str).unwrap_or("canneal");
    let spec = BenchmarkSpec::by_name(bench).unwrap();
    let setting = if std::env::var("LOW").is_ok() {
        CompressionSetting::Low
    } else {
        CompressionSetting::High
    };
    let scale: u64 = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(4);
    for scheme in [
        SchemeKind::NoCompression,
        SchemeKind::tmcc(),
        SchemeKind::dylect(),
        SchemeKind::DylectAlwaysHit { group_size: 3 },
    ] {
        let t0 = std::time::Instant::now();
        let mut cfg = SystemConfig::paper(&spec, scheme.clone(), setting);
        cfg.scale = scale;
        cfg.dram_bytes = match scheme {
            SchemeKind::NoCompression => spec.dram_bytes_no_compression(scale),
            _ => spec.dram_bytes(setting, scale),
        };
        let mut sys = System::new(cfg, &spec);
        let r = sys.run(
            args.get(3).map(|s| s.parse().unwrap()).unwrap_or(600_000),
            400_000,
        );
        println!("{:<18} ips={:.3e} exp/req={:.4} cte_hit={:.3} (pg={:.3} uni={:.3}) l3ov={:.1}ns ml0={} ml1={} ml2={} traffic/ki={:.1} wall={:.1}s",
            r.scheme, r.ips(), r.mc.expansions.get() as f64 / r.mc.requests.get().max(1) as f64, r.mc.cte_hit_rate(), r.mc.pregathered_hit_rate(), r.mc.unified_hit_rate(),
            r.l3_miss_overhead_ns, r.occupancy.ml0_pages, r.occupancy.ml1_pages, r.occupancy.ml2_pages,
            r.traffic_per_kilo_instruction(), t0.elapsed().as_secs_f64());
        println!(
            "    promo={} demo={} displ={} compact={} exp={} req={}",
            r.mc.promotions.get(),
            r.mc.demotions.get(),
            r.mc.displacements.get(),
            r.mc.compactions.get(),
            r.mc.expansions.get(),
            r.mc.requests.get()
        );
    }
}
