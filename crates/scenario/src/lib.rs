//! Datacenter scenario subsystem for the DyLeCT reproduction.
//!
//! The paper evaluates single-process runs; real deployments of
//! hardware-compressed memory face four extra stressors this crate
//! models on top of [`dylect_sim::System`]:
//!
//! * **Multi-tenant co-scheduling** — N benchmarks run side by side, one
//!   per core, each in its own ASID-tagged address space, interleaved
//!   across the shared memory controllers (so they contend for the CTE
//!   cache and DRAM queues).
//! * **Virtualization** — optional 2D nested page walks
//!   (guest → host → machine-physical; CTE translation is the third
//!   layer underneath).
//! * **Phase churn** — workload parameter shifts at declared op
//!   boundaries, stressing promotion/demotion and the background
//!   compressor.
//! * **Memory pressure** — scheduled free-target squeezes (ballooning)
//!   forcing compaction bursts mid-run.
//!
//! A scenario is described by a compact spec string (the
//! `DYLECT_SCENARIO` environment variable):
//!
//! ```text
//! tenants=omnetpp,mcf;nested=1;phase@256000=theta:0.99,hot:0.2;pressure@512000=256
//! ```
//!
//! Segments are `;`-separated. `tenants=` (required, once) lists the
//! co-scheduled benchmarks; `nested=` (optional) turns on 2D walks;
//! `phase@<op>=` applies a [`PhaseShift`] (keys `tenant:<idx>` to target
//! one tenant — default all — plus `hot:`, `theta:`, `write:`,
//! `stream:`); `pressure@<op>=<pages>` raises every MC's free target by
//! `<pages>` for one reclamation burst. Event offsets count retired ops
//! from the start of the *measurement window*, must be positive
//! multiples of [`EVENT_ALIGN_OPS`] (the execute paths' drain-batch
//! size), and must be strictly increasing. Parsing is strict: garbage
//! anywhere is an error, never a silent default.
//!
//! Scenario runs inherit every determinism guarantee of the plain
//! system: byte-identical reports for any `DYLECT_JOBS`, exact resume
//! from a warmup snapshot (events re-fire at the same boundaries), and
//! digest-auditable windows under `DYLECT_DIGEST=1`. With a single
//! tenant, no events, and `nested=0`, a scenario run is bit-compatible
//! with the plain single-process run.

use dylect_sim::{RunReport, SchemeKind, System, SystemConfig, TenantSummary};
use dylect_sim_core::snap::SnapError;
use dylect_workloads::{BenchmarkSpec, CompressionSetting, PhaseShift};

/// Scenario event offsets must divide into the execute paths' drain
/// batches (mirrors `dylect_sim_core::digest::WINDOW_ALIGN_OPS`), so
/// batched and per-op execution hit event boundaries at identical
/// points.
pub const EVENT_ALIGN_OPS: u64 = 256;

/// One scheduled scenario event.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioEvent {
    /// Retired ops into the measurement window at which the event fires.
    pub at_op: u64,
    /// What happens at the boundary.
    pub action: ScenarioAction,
}

/// The action an event performs.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioAction {
    /// Shift one tenant's (or every tenant's) workload parameters.
    Phase {
        /// Target tenant index, or `None` for all tenants.
        tenant: Option<usize>,
        /// The parameter shift.
        shift: PhaseShift,
    },
    /// Raise every MC's free target by this many pages (ballooning),
    /// forcing a reclamation/compaction burst.
    Pressure {
        /// Extra pages each MC must free beyond its normal target.
        extra_free_pages: u64,
    },
}

impl ScenarioEvent {
    /// Canonical spec-string segment for this event.
    fn to_segment(&self) -> String {
        match &self.action {
            ScenarioAction::Phase { tenant, shift } => {
                let mut kv = Vec::new();
                if let Some(t) = tenant {
                    kv.push(format!("tenant:{t}"));
                }
                if let Some(h) = shift.hot_fraction {
                    kv.push(format!("hot:{h}"));
                }
                if let Some(t) = shift.zipf_theta {
                    kv.push(format!("theta:{t}"));
                }
                if let Some(w) = shift.write_fraction {
                    kv.push(format!("write:{w}"));
                }
                if let Some(s) = shift.stream_fraction {
                    kv.push(format!("stream:{s}"));
                }
                format!("phase@{}={}", self.at_op, kv.join(","))
            }
            ScenarioAction::Pressure { extra_free_pages } => {
                format!("pressure@{}={}", self.at_op, extra_free_pages)
            }
        }
    }
}

/// A parsed, validated scenario description.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Co-scheduled benchmark names (validated against the suite).
    pub tenants: Vec<String>,
    /// Whether cores perform 2D nested page walks.
    pub nested: bool,
    /// Scheduled events, strictly increasing in `at_op`.
    pub events: Vec<ScenarioEvent>,
}

impl ScenarioSpec {
    /// A plain scenario over one benchmark: no co-tenants, no nesting,
    /// no events. Running it reproduces the single-process run
    /// byte-identically.
    pub fn solo(benchmark: &str) -> Result<ScenarioSpec, String> {
        let spec = ScenarioSpec {
            tenants: vec![benchmark.to_owned()],
            nested: false,
            events: Vec::new(),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a spec string (see the crate docs for the grammar).
    /// Strict: every malformed segment, unknown key, out-of-range value,
    /// or mis-ordered event is an error.
    pub fn parse(raw: &str) -> Result<ScenarioSpec, String> {
        let raw = raw.trim();
        if raw.is_empty() {
            return Err("scenario spec is empty (unset DYLECT_SCENARIO to disable)".to_owned());
        }
        let mut tenants: Option<Vec<String>> = None;
        let mut nested: Option<bool> = None;
        let mut events: Vec<ScenarioEvent> = Vec::new();
        for segment in raw.split(';') {
            let segment = segment.trim();
            if segment.is_empty() {
                return Err("empty segment (stray `;`) in scenario spec".to_owned());
            }
            let (head, value) = segment
                .split_once('=')
                .ok_or_else(|| format!("segment `{segment}` is not `key=value`"))?;
            match head.split_once('@') {
                None => match head {
                    "tenants" => {
                        if tenants.is_some() {
                            return Err("`tenants=` given twice".to_owned());
                        }
                        tenants = Some(Self::parse_tenants(value)?);
                    }
                    "nested" => {
                        if nested.is_some() {
                            return Err("`nested=` given twice".to_owned());
                        }
                        nested = Some(match value {
                            "0" | "false" => false,
                            "1" | "true" => true,
                            other => {
                                return Err(format!(
                                    "`nested=` must be one of 1/true/0/false, got `{other}`"
                                ))
                            }
                        });
                    }
                    other => return Err(format!("unknown scenario key `{other}`")),
                },
                Some((kind, at)) => {
                    let at_op = Self::parse_at_op(at, events.last().map(|e| e.at_op))?;
                    let action = match kind {
                        "phase" => Self::parse_phase(value)?,
                        "pressure" => Self::parse_pressure(value)?,
                        other => return Err(format!("unknown scenario event `{other}@`")),
                    };
                    events.push(ScenarioEvent { at_op, action });
                }
            }
        }
        let spec = ScenarioSpec {
            tenants: tenants.ok_or("scenario spec needs a `tenants=` segment")?,
            nested: nested.unwrap_or(false),
            events,
        };
        spec.validate()?;
        Ok(spec)
    }

    fn parse_tenants(value: &str) -> Result<Vec<String>, String> {
        let names: Vec<String> = value
            .split(',')
            .map(|n| n.trim().to_owned())
            .collect::<Vec<_>>();
        if names.iter().any(String::is_empty) {
            return Err(format!("`tenants={value}` has an empty benchmark name"));
        }
        Ok(names)
    }

    fn parse_at_op(at: &str, prev: Option<u64>) -> Result<u64, String> {
        let at_op: u64 = at
            .parse()
            .map_err(|_| format!("event offset `@{at}` is not an integer"))?;
        if at_op == 0 || !at_op.is_multiple_of(EVENT_ALIGN_OPS) {
            return Err(format!(
                "event offset `@{at_op}` must be a positive multiple of {EVENT_ALIGN_OPS}"
            ));
        }
        if let Some(prev) = prev {
            if at_op <= prev {
                return Err(format!(
                    "event offsets must be strictly increasing (`@{at_op}` after `@{prev}`)"
                ));
            }
        }
        Ok(at_op)
    }

    fn parse_phase(value: &str) -> Result<ScenarioAction, String> {
        let mut tenant: Option<usize> = None;
        let mut shift = PhaseShift::default();
        for kv in value.split(',') {
            let (key, v) = kv
                .split_once(':')
                .ok_or_else(|| format!("phase entry `{kv}` is not `key:value`"))?;
            let fraction = |name: &str, lo: f64, hi: f64| -> Result<f64, String> {
                let f: f64 = v
                    .parse()
                    .map_err(|_| format!("phase `{name}:` value `{v}` is not a number"))?;
                if !f.is_finite() || f < lo || f > hi {
                    return Err(format!(
                        "phase `{name}:` must be in [{lo}, {hi}], got `{v}`"
                    ));
                }
                Ok(f)
            };
            let dup = |set: bool, name: &str| -> Result<(), String> {
                if set {
                    Err(format!("phase `{name}:` given twice"))
                } else {
                    Ok(())
                }
            };
            match key {
                "tenant" => {
                    dup(tenant.is_some(), key)?;
                    tenant = Some(v.parse().map_err(|_| {
                        format!("phase `tenant:` value `{v}` is not a tenant index")
                    })?);
                }
                "hot" => {
                    dup(shift.hot_fraction.is_some(), key)?;
                    // A zero hot fraction would clamp to one region anyway;
                    // require an honest positive value.
                    let f = fraction(key, 0.0, 1.0)?;
                    if f == 0.0 {
                        return Err("phase `hot:` must be positive".to_owned());
                    }
                    shift.hot_fraction = Some(f);
                }
                "theta" => {
                    dup(shift.zipf_theta.is_some(), key)?;
                    shift.zipf_theta = Some(fraction(key, 0.0, 4.0)?);
                }
                "write" => {
                    dup(shift.write_fraction.is_some(), key)?;
                    shift.write_fraction = Some(fraction(key, 0.0, 1.0)?);
                }
                "stream" => {
                    dup(shift.stream_fraction.is_some(), key)?;
                    shift.stream_fraction = Some(fraction(key, 0.0, 1.0)?);
                }
                other => return Err(format!("unknown phase key `{other}:`")),
            }
        }
        if shift.is_empty() {
            return Err("a phase event must shift at least one parameter".to_owned());
        }
        Ok(ScenarioAction::Phase { tenant, shift })
    }

    fn parse_pressure(value: &str) -> Result<ScenarioAction, String> {
        match value.parse::<u64>() {
            Ok(0) => Err("pressure must free a positive number of pages".to_owned()),
            Ok(extra_free_pages) => Ok(ScenarioAction::Pressure { extra_free_pages }),
            Err(_) => Err(format!("pressure value `{value}` is not a page count")),
        }
    }

    /// Cross-field validation shared by [`parse`](Self::parse) and the
    /// programmatic constructors.
    fn validate(&self) -> Result<(), String> {
        if self.tenants.is_empty() {
            return Err("scenario needs at least one tenant".to_owned());
        }
        if self.tenants.len() > u16::MAX as usize {
            return Err("too many tenants".to_owned());
        }
        for name in &self.tenants {
            if BenchmarkSpec::by_name(name).is_none() {
                return Err(format!("unknown benchmark `{name}` in `tenants=`"));
            }
        }
        for ev in &self.events {
            if let ScenarioAction::Phase {
                tenant: Some(t), ..
            } = ev.action
            {
                if t >= self.tenants.len() {
                    return Err(format!(
                        "phase `tenant:{t}` out of range for {} tenants",
                        self.tenants.len()
                    ));
                }
            }
        }
        Ok(())
    }

    /// The canonical spec string: `Self::parse(&self.to_spec_string())`
    /// reproduces `self`. Used to fold the scenario into report-cache
    /// fingerprints and artifact labels.
    pub fn to_spec_string(&self) -> String {
        let mut parts = vec![format!("tenants={}", self.tenants.join(","))];
        if self.nested {
            parts.push("nested=1".to_owned());
        }
        parts.extend(self.events.iter().map(ScenarioEvent::to_segment));
        parts.join(";")
    }

    /// The resolved benchmark specs, in tenant order.
    pub fn resolve(&self) -> Vec<BenchmarkSpec> {
        self.tenants
            .iter()
            .map(|n| BenchmarkSpec::by_name(n).expect("validated at parse"))
            .collect()
    }

    /// Adapts a base single-process configuration to this scenario:
    /// one core per tenant, the nested-walk toggle, and DRAM sized for
    /// the combined footprint at `setting`.
    pub fn configure(&self, mut base: SystemConfig, setting: CompressionSetting) -> SystemConfig {
        let tenants = self.resolve();
        base.cores = tenants.len();
        base.core.nested_walk = self.nested;
        base.dram_bytes = tenants
            .iter()
            .map(|t| match base.scheme {
                SchemeKind::NoCompression => t.dram_bytes_no_compression(base.scale),
                _ => t.dram_bytes(setting, base.scale),
            })
            .sum();
        base
    }

    /// Builds the multi-tenant system for this scenario. `config` should
    /// come from [`configure`](Self::configure) (or agree with it on
    /// `cores` and `nested_walk`).
    pub fn build_system(&self, config: SystemConfig) -> System {
        System::new_tenants(config, &self.resolve())
    }

    /// Runs warmup then the segmented measurement window, firing events
    /// at their declared boundaries.
    pub fn run(&self, sys: &mut System, warmup_ops: u64, measure_ops: u64) -> ScenarioOutcome {
        sys.warm_up(warmup_ops);
        sys.start_measurement();
        self.drive(sys, measure_ops)
    }

    /// Resumes a warmed snapshot (from
    /// [`System::warm_up_and_snapshot`]) and replays the same segmented
    /// measurement window — events re-fire at the same boundaries, so
    /// the outcome is byte-identical to the straight run.
    pub fn resume(
        &self,
        sys: &mut System,
        snapshot: &[u8],
        measure_ops: u64,
    ) -> Result<ScenarioOutcome, SnapError> {
        sys.restore_warmed(snapshot)?;
        Ok(self.drive(sys, measure_ops))
    }

    /// The segmented measurement loop: execute to each event boundary,
    /// fire the event, record the segment, then run out the window.
    /// Events at or past `measure_ops` never fire.
    fn drive(&self, sys: &mut System, measure_ops: u64) -> ScenarioOutcome {
        let mut segments = Vec::new();
        let mut done = 0u64;
        for ev in &self.events {
            if ev.at_op >= measure_ops {
                break;
            }
            sys.execute(ev.at_op - done);
            done = ev.at_op;
            match &ev.action {
                ScenarioAction::Phase { tenant, shift } => match tenant {
                    Some(t) => sys.apply_phase_shift(*t, shift),
                    None => {
                        for t in 0..self.tenants.len() {
                            sys.apply_phase_shift(t, shift);
                        }
                    }
                },
                ScenarioAction::Pressure { extra_free_pages } => {
                    sys.apply_pressure(*extra_free_pages);
                }
            }
            segments.push(SegmentRecord {
                at_op: done,
                label: ev.to_segment(),
                pingpong_pages: pingpong_pages(sys),
            });
        }
        sys.execute(measure_ops - done);
        let report = sys.finish();
        segments.push(SegmentRecord {
            at_op: measure_ops,
            label: "end".to_owned(),
            pingpong_pages: pingpong_pages(sys),
        });
        ScenarioOutcome {
            report,
            tenants: sys.tenant_summaries(),
            segments,
        }
    }
}

/// Pages the telemetry provenance tracker currently classifies as
/// ping-ponging; 0 when telemetry shadow probes are off.
fn pingpong_pages(sys: &System) -> u64 {
    sys.telemetry()
        .filter(|t| t.config().shadow)
        .map_or(0, |t| t.provenance().pingpong_pages())
}

/// One scenario-event boundary, recorded as it fired.
#[derive(Clone, Debug, PartialEq)]
pub struct SegmentRecord {
    /// Ops into the measurement window (the event's `at_op`; the final
    /// record is the window end).
    pub at_op: u64,
    /// The canonical event text (`"end"` for the closing record).
    pub label: String,
    /// Cumulative ping-ponging pages at this boundary (telemetry shadow
    /// on), for the per-phase churn metric: diff consecutive records.
    pub pingpong_pages: u64,
}

/// A completed scenario run.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioOutcome {
    /// The aggregate report (same shape as a plain run).
    pub report: RunReport,
    /// Per-tenant summaries for fairness/interference analysis.
    pub tenants: Vec<TenantSummary>,
    /// Event boundaries in firing order, closed by an `"end"` record.
    pub segments: Vec<SegmentRecord>,
}

impl ScenarioOutcome {
    /// Per-tenant slowdown versus solo instructions-per-second
    /// baselines (`solo_ips[i]` is tenant `i` running alone): > 1 means
    /// the co-run hurt that tenant. Fairness is the spread of these.
    pub fn slowdowns(&self, solo_ips: &[f64]) -> Vec<f64> {
        assert_eq!(
            solo_ips.len(),
            self.tenants.len(),
            "one baseline per tenant"
        );
        self.tenants
            .iter()
            .zip(solo_ips)
            .map(|(t, &solo)| {
                if t.ips() > 0.0 {
                    solo / t.ips()
                } else {
                    f64::INFINITY
                }
            })
            .collect()
    }
}

/// Parses a `DYLECT_SCENARIO` value: unset means no scenario
/// (`Ok(None)`); anything present — including an empty string — must be
/// a valid spec.
pub fn parse_scenario(raw: Option<&str>) -> Result<Option<ScenarioSpec>, String> {
    match raw {
        None => Ok(None),
        Some(raw) => ScenarioSpec::parse(raw)
            .map(Some)
            .map_err(|e| format!("DYLECT_SCENARIO: {e}")),
    }
}

/// [`parse_scenario`] against the live environment; a malformed value
/// prints a usage message and exits with status 2.
pub fn scenario_from_env() -> Option<ScenarioSpec> {
    let raw = std::env::var("DYLECT_SCENARIO").ok();
    match parse_scenario(raw.as_deref()) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("usage: {msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str =
        "tenants=omnetpp,mcf;nested=1;phase@256000=theta:0.99,hot:0.2;pressure@512000=256";

    #[test]
    fn parses_the_full_grammar() {
        let spec = ScenarioSpec::parse(SPEC).expect("valid");
        assert_eq!(spec.tenants, ["omnetpp", "mcf"]);
        assert!(spec.nested);
        assert_eq!(spec.events.len(), 2);
        assert_eq!(
            spec.events[0],
            ScenarioEvent {
                at_op: 256_000,
                action: ScenarioAction::Phase {
                    tenant: None,
                    shift: PhaseShift {
                        zipf_theta: Some(0.99),
                        hot_fraction: Some(0.2),
                        ..PhaseShift::default()
                    },
                },
            }
        );
        assert_eq!(
            spec.events[1],
            ScenarioEvent {
                at_op: 512_000,
                action: ScenarioAction::Pressure {
                    extra_free_pages: 256
                },
            }
        );
    }

    #[test]
    fn canonical_string_round_trips() {
        let spec = ScenarioSpec::parse(SPEC).expect("valid");
        let canonical = spec.to_spec_string();
        assert_eq!(ScenarioSpec::parse(&canonical).expect("valid"), spec);
        // Canonical form is a fixed point.
        assert_eq!(
            ScenarioSpec::parse(&canonical).unwrap().to_spec_string(),
            canonical
        );
    }

    #[test]
    fn tenant_scoped_phase_round_trips() {
        let raw = "tenants=omnetpp,mcf;phase@512=tenant:1,write:0.5";
        let spec = ScenarioSpec::parse(raw).expect("valid");
        assert_eq!(
            spec.events[0].action,
            ScenarioAction::Phase {
                tenant: Some(1),
                shift: PhaseShift {
                    write_fraction: Some(0.5),
                    ..PhaseShift::default()
                },
            }
        );
        assert_eq!(spec.to_spec_string(), raw);
    }

    #[test]
    fn rejects_malformed_specs() {
        for (raw, why) in [
            ("", "empty spec"),
            ("   ", "blank spec"),
            ("nested=1", "missing tenants"),
            ("tenants=", "empty tenant name"),
            ("tenants=omnetpp,", "trailing comma"),
            ("tenants=nosuchbench", "unknown benchmark"),
            ("tenants=omnetpp;tenants=mcf", "tenants twice"),
            ("tenants=omnetpp;nested=2", "bad nested value"),
            ("tenants=omnetpp;nested=1;nested=1", "nested twice"),
            ("tenants=omnetpp;;nested=1", "stray semicolon"),
            ("tenants=omnetpp;bogus=1", "unknown key"),
            ("tenants=omnetpp;bogus@512=1", "unknown event"),
            ("tenants=omnetpp;phase@0=hot:0.5", "zero offset"),
            ("tenants=omnetpp;phase@100=hot:0.5", "unaligned offset"),
            ("tenants=omnetpp;phase@abc=hot:0.5", "non-numeric offset"),
            (
                "tenants=omnetpp;phase@512=hot:0.5;pressure@512=1",
                "non-increasing offsets",
            ),
            (
                "tenants=omnetpp;pressure@512=1;phase@256=hot:0.5",
                "decreasing offsets",
            ),
            ("tenants=omnetpp;phase@512=", "empty phase"),
            ("tenants=omnetpp;phase@512=hot", "phase entry without value"),
            ("tenants=omnetpp;phase@512=hot:x", "non-numeric fraction"),
            ("tenants=omnetpp;phase@512=hot:0", "zero hot fraction"),
            ("tenants=omnetpp;phase@512=hot:1.5", "fraction above range"),
            ("tenants=omnetpp;phase@512=hot:-0.1", "negative fraction"),
            ("tenants=omnetpp;phase@512=hot:inf", "non-finite fraction"),
            (
                "tenants=omnetpp;phase@512=hot:0.5,hot:0.6",
                "duplicate phase key",
            ),
            ("tenants=omnetpp;phase@512=frob:0.5", "unknown phase key"),
            ("tenants=omnetpp;phase@512=tenant:0", "shift-free phase"),
            (
                "tenants=omnetpp;phase@512=tenant:1,hot:0.5",
                "tenant index out of range",
            ),
            ("tenants=omnetpp;pressure@512=0", "zero pressure"),
            ("tenants=omnetpp;pressure@512=lots", "non-numeric pressure"),
            ("tenants=omnetpp;phase", "segment without ="),
        ] {
            assert!(
                ScenarioSpec::parse(raw).is_err(),
                "{why}: `{raw}` must not parse"
            );
        }
    }

    #[test]
    fn env_parser_distinguishes_unset_from_garbage() {
        assert_eq!(parse_scenario(None), Ok(None));
        assert!(parse_scenario(Some("")).is_err(), "empty is a usage error");
        assert!(parse_scenario(Some("garbage")).is_err());
        let spec = parse_scenario(Some("tenants=omnetpp")).expect("valid");
        assert_eq!(spec.expect("present").tenants, ["omnetpp"]);
    }

    fn quick_config(spec: &ScenarioSpec) -> SystemConfig {
        let first = BenchmarkSpec::by_name(&spec.tenants[0]).expect("in suite");
        let base = SystemConfig::quick(&first, SchemeKind::dylect(), CompressionSetting::High);
        spec.configure(base, CompressionSetting::High)
    }

    #[test]
    fn configure_sizes_the_system_for_the_tenant_mix() {
        let spec = ScenarioSpec::parse("tenants=omnetpp,mcf,canneal;nested=1").expect("valid");
        let cfg = quick_config(&spec);
        assert_eq!(cfg.cores, 3);
        assert!(cfg.core.nested_walk);
        let combined: u64 = spec
            .resolve()
            .iter()
            .map(|t| t.dram_bytes(CompressionSetting::High, cfg.scale))
            .sum();
        assert_eq!(cfg.dram_bytes, combined);
    }

    #[test]
    fn solo_scenario_reproduces_the_plain_run() {
        let spec = ScenarioSpec::solo("omnetpp").expect("in suite");
        let cfg = quick_config(&spec);
        let bench = BenchmarkSpec::by_name("omnetpp").expect("in suite");
        let plain = System::new(cfg.clone(), &bench).run(2_000, 6_000);
        let outcome = spec.run(&mut spec.build_system(cfg), 2_000, 6_000);
        assert_eq!(outcome.report, plain);
        assert_eq!(outcome.tenants.len(), 1);
        assert_eq!(outcome.segments.len(), 1, "only the end record");
        assert_eq!(outcome.segments[0].label, "end");
    }

    #[test]
    fn scenario_runs_are_deterministic_and_resume_exact() {
        let spec = ScenarioSpec::parse(
            "tenants=omnetpp,canneal;phase@1024=theta:0.2,hot:0.8;pressure@2048=128",
        )
        .expect("valid");
        let cfg = quick_config(&spec);

        let straight = spec.run(&mut spec.build_system(cfg.clone()), 2_000, 5_000);
        let repeat = spec.run(&mut spec.build_system(cfg.clone()), 2_000, 5_000);
        assert_eq!(straight, repeat);
        assert_eq!(straight.segments.len(), 3, "phase, pressure, end");

        let snap = spec.build_system(cfg.clone()).warm_up_and_snapshot(2_000);
        let resumed = spec
            .resume(&mut spec.build_system(cfg), &snap, 5_000)
            .expect("snapshot restores");
        assert_eq!(straight, resumed);
    }

    #[test]
    fn events_past_the_window_never_fire() {
        let spec = ScenarioSpec::parse("tenants=omnetpp;pressure@1048576=64").expect("valid");
        let cfg = quick_config(&spec);
        let outcome = spec.run(&mut spec.build_system(cfg.clone()), 1_000, 3_000);
        assert_eq!(outcome.segments.len(), 1, "only the end record");
        // And the run equals the event-free run outright.
        let plain = ScenarioSpec::solo("omnetpp").expect("in suite");
        let base = plain.run(&mut plain.build_system(cfg), 1_000, 3_000);
        assert_eq!(outcome.report, base.report);
    }

    #[test]
    fn slowdowns_compare_against_solo_baselines() {
        let spec = ScenarioSpec::parse("tenants=omnetpp,canneal").expect("valid");
        let cfg = quick_config(&spec);
        let outcome = spec.run(&mut spec.build_system(cfg), 2_000, 5_000);
        let solo: Vec<f64> = outcome.tenants.iter().map(|t| t.ips() * 2.0).collect();
        let slow = outcome.slowdowns(&solo);
        assert_eq!(slow.len(), 2);
        for s in slow {
            assert!((s - 2.0).abs() < 1e-9, "ips doubled baseline ⇒ slowdown 2");
        }
    }

    #[test]
    fn digest_capture_stays_consistent_across_jobs_and_resume() {
        // Process-global digest toggle: this test owns it for its scope.
        // The scenario crate's test binary is its own process, so this
        // cannot race the sim crate's digest tests.
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        dylect_sim_core::digest::set_enabled(true);

        let spec =
            ScenarioSpec::parse("tenants=omnetpp,canneal;phase@1024=theta:0.2;pressure@2048=128")
                .expect("valid");
        let cfg = quick_config(&spec);
        let digests = |jobs: usize| {
            let mut sys = spec.build_system(cfg.clone());
            sys.set_digest_window(1024);
            sys.set_jobs(jobs);
            let outcome = spec.run(&mut sys, 2_000, 5_000);
            (outcome, sys.take_digests())
        };
        let (o1, d1) = digests(1);
        let (o3, d3) = digests(3);
        dylect_sim_core::digest::set_enabled(false);
        assert_eq!(o1, o3, "worker count must not change a scenario run");
        assert!(!d1.is_empty(), "windows were captured");
        assert_eq!(d1, d3, "digest streams must agree across DYLECT_JOBS");
    }
}
