//! The Recency List (paper §II-B, "Compressing Least-Recently-Used ML1
//! Page").
//!
//! TMCC (and DyLeCT, which inherits the mechanism) tracks all uncompressed
//! pages in a doubly-linked recency list. Once every `TOUCH_PERIOD` memory
//! requests the most-recently-accessed page is moved to the head, so colder
//! pages sink toward the tail; the tail is the compression victim when
//! memory pressure demands freeing space.

use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::PageId;

/// How often (in MC requests) the list head is updated. The paper uses
/// 100 at its multi-billion-request timescale; our measurement windows are
/// ~1000x shorter, so a denser period keeps the list's recency signal at an
/// equivalent resolution relative to the window.
pub const TOUCH_PERIOD: u64 = 10;

const NIL: u32 = u32::MAX;

/// An intrusive doubly-linked recency list over OS pages.
///
/// Capacity is fixed at construction (one slot per OS-visible page); all
/// operations are O(1).
///
/// # Example
///
/// ```
/// use dylect_memctl::recency::RecencyList;
/// use dylect_sim_core::PageId;
///
/// let mut list = RecencyList::new(16);
/// list.touch(PageId::new(3));
/// list.touch(PageId::new(5));
/// list.touch(PageId::new(3)); // 3 back to head; 5 is now the tail
/// assert_eq!(list.tail(), Some(PageId::new(5)));
/// ```
#[derive(Clone, Debug)]
pub struct RecencyList {
    prev: Vec<u32>,
    next: Vec<u32>,
    present: Vec<bool>,
    head: u32,
    tail: u32,
    len: usize,
}

impl RecencyList {
    /// Creates an empty list able to hold pages `0..capacity`.
    pub fn new(capacity: u64) -> Self {
        let n = usize::try_from(capacity).expect("capacity fits usize");
        assert!(n < NIL as usize, "capacity too large for u32 links");
        RecencyList {
            prev: vec![NIL; n],
            next: vec![NIL; n],
            present: vec![false; n],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of pages on the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `page` is on the list.
    pub fn contains(&self, page: PageId) -> bool {
        self.present[page.index() as usize]
    }

    /// Moves `page` to the head (inserting it if absent).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of capacity.
    pub fn touch(&mut self, page: PageId) {
        let i = page.index() as usize;
        if self.present[i] {
            self.unlink(i as u32);
        } else {
            self.present[i] = true;
            self.len += 1;
        }
        // Link at head.
        let i = i as u32;
        self.prev[i as usize] = NIL;
        self.next[i as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Removes `page` from the list; returns `false` if it was absent.
    pub fn remove(&mut self, page: PageId) -> bool {
        let i = page.index() as usize;
        if !self.present[i] {
            return false;
        }
        self.unlink(i as u32);
        self.present[i] = false;
        self.len -= 1;
        true
    }

    /// Returns the least-recently-touched page, if any.
    pub fn tail(&self) -> Option<PageId> {
        (self.tail != NIL).then(|| PageId::new(self.tail as u64))
    }

    /// Returns the most-recently-touched page, if any.
    pub fn head(&self) -> Option<PageId> {
        (self.head != NIL).then(|| PageId::new(self.head as u64))
    }

    /// Removes and returns the tail (the compression victim).
    pub fn pop_tail(&mut self) -> Option<PageId> {
        let t = self.tail()?;
        self.remove(t);
        Some(t)
    }

    fn unlink(&mut self, i: u32) {
        let p = self.prev[i as usize];
        let n = self.next[i as usize];
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
    }
}

// The link arrays travel verbatim: list order is the compression-victim
// order and must survive a round trip exactly.
impl Snapshot for RecencyList {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.seq(self.prev.len());
        for &x in &self.prev {
            w.u32(x);
        }
        for &x in &self.next {
            w.u32(x);
        }
        for &x in &self.present {
            w.bool(x);
        }
        w.u32(self.head);
        w.u32(self.tail);
        w.u64(self.len as u64);
    }
}

impl Restore for RecencyList {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let cap = self.prev.len();
        let link_ok = |x: u32| x == NIL || (x as usize) < cap;
        r.fixed_seq(cap, "recency capacity")?;
        for x in &mut self.prev {
            *x = r.u32()?;
            if !link_ok(*x) {
                return Err(SnapError::Corrupt("recency prev link out of range"));
            }
        }
        for x in &mut self.next {
            *x = r.u32()?;
            if !link_ok(*x) {
                return Err(SnapError::Corrupt("recency next link out of range"));
            }
        }
        for x in &mut self.present {
            *x = r.bool()?;
        }
        self.head = r.u32()?;
        self.tail = r.u32()?;
        if !link_ok(self.head) || !link_ok(self.tail) {
            return Err(SnapError::Corrupt("recency head/tail out of range"));
        }
        let len = r.u64()?;
        if len > cap as u64 {
            return Err(SnapError::Corrupt("recency length exceeds capacity"));
        }
        self.len = len as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    #[test]
    fn lru_order() {
        let mut l = RecencyList::new(8);
        l.touch(p(0));
        l.touch(p(1));
        l.touch(p(2));
        assert_eq!(l.tail(), Some(p(0)));
        assert_eq!(l.head(), Some(p(2)));
        l.touch(p(0));
        assert_eq!(l.tail(), Some(p(1)));
        assert_eq!(l.head(), Some(p(0)));
    }

    #[test]
    fn pop_tail_drains_in_order() {
        let mut l = RecencyList::new(8);
        for i in 0..5 {
            l.touch(p(i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| l.pop_tail().map(|x| x.index())).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_middle() {
        let mut l = RecencyList::new(8);
        l.touch(p(0));
        l.touch(p(1));
        l.touch(p(2));
        assert!(l.remove(p(1)));
        assert!(!l.remove(p(1)));
        assert_eq!(l.len(), 2);
        assert_eq!(l.pop_tail(), Some(p(0)));
        assert_eq!(l.pop_tail(), Some(p(2)));
    }

    #[test]
    fn remove_head_and_tail() {
        let mut l = RecencyList::new(4);
        l.touch(p(0));
        l.touch(p(1));
        assert!(l.remove(p(1))); // head
        assert_eq!(l.head(), Some(p(0)));
        assert_eq!(l.tail(), Some(p(0)));
        assert!(l.remove(p(0))); // last
        assert!(l.is_empty());
        assert_eq!(l.head(), None);
        assert_eq!(l.tail(), None);
    }

    #[test]
    fn touch_singleton_repeatedly() {
        let mut l = RecencyList::new(2);
        l.touch(p(1));
        l.touch(p(1));
        l.touch(p(1));
        assert_eq!(l.len(), 1);
        assert_eq!(l.head(), l.tail());
    }

    #[test]
    fn contains_tracks_membership() {
        let mut l = RecencyList::new(4);
        assert!(!l.contains(p(2)));
        l.touch(p(2));
        assert!(l.contains(p(2)));
        l.remove(p(2));
        assert!(!l.contains(p(2)));
    }
}
