//! The compressed-memory store: shared mechanism underneath every scheme.
//!
//! [`CompressedStore`] bundles the page directory, free-space tracker,
//! recency list, and compressibility model, and implements the physical
//! operations every scheme performs:
//!
//! - **initial packing** — place, compress, and pack the workload's pages
//!   into the available DRAM (the paper does the same before simulation);
//! - **page expansion** (ML2 → uncompressed) with its read + decompress +
//!   write traffic;
//! - **page compaction** (uncompressed → ML2) into a tightly fitting hole;
//! - **demand-adaptive compaction** maintaining a free-page target
//!   (paper §II-B: TMCC keeps 16 MB of free DRAM pages);
//! - **uncompressed page migration** to a specific DRAM page (used by
//!   DyLeCT's promotions and displacements).
//!
//! Schemes add the *policy*: which CTEs exist, when to promote/demote, and
//! how translation latency is modeled.

use dylect_compression::latency::{compression_latency, decompression_latency};
use dylect_compression::CompressibilityProfile;
use dylect_dram::{Dram, RequestClass};
use dylect_sim_core::rng::hash64;
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::{DramPageId, PageId, Time, PAGE_BYTES};

use crate::directory::{PageDirectory, PageState};
use crate::freespace::{FreeSpace, Span};
use crate::recency::RecencyList;
use crate::transfer;

/// Shared physical state of a compressed-memory controller.
#[derive(Clone, Debug)]
pub struct CompressedStore {
    /// Where every OS page lives.
    pub dir: PageDirectory,
    /// Free pages and holes.
    pub free: FreeSpace,
    /// Recency of uncompressed pages (compression victim order).
    pub recency: RecencyList,
    profile: CompressibilityProfile,
    seed: u64,
    free_target_pages: u64,
}

impl CompressedStore {
    /// Packs `os_pages` of OS-visible memory into `data_pages` of DRAM,
    /// keeping `free_target_pages` whole pages free, compressing the
    /// coldest-assumed pages (a deterministic pseudo-random subset — warmup
    /// re-sorts hot/cold).
    ///
    /// # Panics
    ///
    /// Panics if the footprint cannot fit even fully compressed.
    pub fn pack(
        os_pages: u64,
        data_pages: u64,
        profile: CompressibilityProfile,
        seed: u64,
        free_target_pages: u64,
    ) -> Self {
        Self::pack_granular(os_pages, data_pages, profile, seed, free_target_pages, 1)
    }

    /// Like [`CompressedStore::pack`], but keeps `granule_pages`-sized
    /// groups of consecutive pages entirely compressed or entirely
    /// uncompressed — the packing used by TMCC at coarse compression
    /// granularity (paper Figure 6).
    ///
    /// # Panics
    ///
    /// Panics if the footprint cannot fit, or `granule_pages` is 0.
    pub fn pack_granular(
        os_pages: u64,
        data_pages: u64,
        profile: CompressibilityProfile,
        seed: u64,
        free_target_pages: u64,
        granule_pages: u64,
    ) -> Self {
        assert!(granule_pages > 0, "granule must be at least one page");
        let mut store = CompressedStore {
            dir: PageDirectory::new(os_pages),
            free: FreeSpace::new(),
            recency: RecencyList::new(os_pages),
            profile,
            seed,
            free_target_pages,
        };
        for d in 0..data_pages {
            store.free.add_page(DramPageId::new(d));
        }

        // Deterministic pseudo-random ordering over granules: the first `u`
        // granules stay uncompressed.
        let granules = os_pages.div_ceil(granule_pages);
        let mut order: Vec<u64> = (0..granules).collect();
        order.sort_by_key(|&g| hash64(g ^ seed));
        let pages_of = |g: u64| (g * granule_pages)..((g + 1) * granule_pages).min(os_pages);

        let budget = (data_pages.saturating_sub(free_target_pages)) * PAGE_BYTES;
        // Suffix sums of compressed granule sizes in `order`.
        let mut g_unc = vec![0u64; order.len()]; // uncompressed bytes
        let mut suffix = vec![0u64; order.len() + 1];
        for i in (0..order.len()).rev() {
            let mut comp = 0u64;
            let mut unc = 0u64;
            for p in pages_of(order[i]) {
                comp += store.compressed_size(PageId::new(p)) as u64;
                unc += PAGE_BYTES;
            }
            g_unc[i] = unc;
            suffix[i] = suffix[i + 1] + comp;
        }
        let prefix_unc: Vec<u64> = std::iter::once(0)
            .chain(g_unc.iter().scan(0, |acc, &x| {
                *acc += x;
                Some(*acc)
            }))
            .collect();
        // total(u) is nondecreasing in u: binary search the largest u that
        // fits.
        let total = |u: usize| prefix_unc[u] + suffix[u];
        assert!(
            total(0) <= budget,
            "footprint does not fit even fully compressed ({} > {budget})",
            total(0)
        );
        let (mut lo, mut hi) = (0usize, order.len());
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if total(mid) <= budget {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let u = lo;

        for &g in &order[..u] {
            for p in pages_of(g) {
                let page = PageId::new(p);
                let dram = store.free.take_any_page().expect("budget guarantees room");
                store.dir.place_uncompressed(page, dram);
                store.recency.touch(page);
            }
        }
        for &g in &order[u..] {
            for p in pages_of(g) {
                let page = PageId::new(p);
                let size = store.compressed_size(page);
                let span = store.free.alloc_span(size).expect("budget guarantees room");
                store.dir.place_compressed(page, span);
            }
        }
        store
    }

    /// The stable compressed size of `page` (already quantized).
    pub fn compressed_size(&self, page: PageId) -> u32 {
        self.profile.compressed_bytes(self.seed, page)
    }

    /// The free-page target of demand-adaptive compaction.
    pub fn free_target_pages(&self) -> u64 {
        self.free_target_pages
    }

    /// Whether `page` is currently compressed (in ML2).
    pub fn is_compressed(&self, page: PageId) -> bool {
        matches!(self.dir.state(page), Some(PageState::Compressed(_)))
    }

    /// Expands a compressed page into a free DRAM page: reads the span,
    /// decompresses, writes the full page, and returns
    /// `(new DRAM page, time the uncompressed data is available)`.
    ///
    /// Bills the span read and page write as `class` traffic. If no whole
    /// free page exists, compacts synchronously first (this is the slow
    /// path the 16 MB free target exists to avoid).
    ///
    /// # Panics
    ///
    /// Panics if `page` is not compressed.
    pub fn expand(
        &mut self,
        dram: &mut Dram,
        now: Time,
        page: PageId,
        class: RequestClass,
    ) -> (DramPageId, Time) {
        let Some(PageState::Compressed(span)) = self.dir.state(page) else {
            panic!("expand called on non-compressed page {page}");
        };
        let mut now = now;
        if self.free.free_page_count() == 0 {
            now = self.compact_until(dram, now, 1);
        }
        let read_done = transfer::read_span(dram, now, span, class);
        let ready = read_done + decompression_latency(PAGE_BYTES);
        let dst = self
            .free
            .take_any_page()
            .expect("compact_until guarantees a page");
        self.dir.detach(page);
        self.free.free_span(span);
        transfer::write_page(dram, ready, dst, class);
        self.dir.place_uncompressed(page, dst);
        self.recency.touch(page);
        (dst, ready)
    }

    /// Compresses an uncompressed page into a tightly fitting hole,
    /// freeing its DRAM page. Returns the completion time.
    ///
    /// If no hole fits, the compressed span is placed at the start of the
    /// page's *own* DRAM page (guaranteeing progress under zero free
    /// memory) and the remainder is freed.
    ///
    /// # Panics
    ///
    /// Panics if `page` is not uncompressed.
    pub fn compact_page(&mut self, dram: &mut Dram, now: Time, page: PageId) -> Time {
        let Some(PageState::Uncompressed(src)) = self.dir.state(page) else {
            panic!("compact_page called on non-uncompressed page {page}");
        };
        let size = self.compressed_size(page);
        let read_done = transfer::read_page(dram, now, src, RequestClass::Compression);
        let compressed_at = read_done + compression_latency(PAGE_BYTES);

        self.dir.detach(page);
        self.recency.remove(page);
        let span = if let Some(span) = self.free.alloc_span(size) {
            self.free.add_page(src);
            span
        } else {
            // In-place fallback: reuse the victim's own page.
            let span = Span::new(src, 0, size);
            if (size as u64) < PAGE_BYTES {
                self.free
                    .free_span(Span::new(src, size, PAGE_BYTES as u32 - size));
            }
            span
        };
        let done = transfer::write_span(dram, compressed_at, span, RequestClass::Compression);
        self.dir.place_compressed(page, span);
        done
    }

    /// Demand-adaptive compaction: compresses recency-tail victims until at
    /// least `target` whole pages are free (or no victims remain). Returns
    /// when the compaction traffic completes.
    pub fn compact_until(&mut self, dram: &mut Dram, now: Time, target: u64) -> Time {
        let mut t = now;
        let mut guard = self.recency.len() + 1;
        while (self.free.free_page_count() as u64) < target && guard > 0 {
            guard -= 1;
            let Some(victim) = self.recency.tail() else {
                break;
            };
            t = self.compact_page(dram, t, victim);
        }
        t
    }

    /// Runs background compaction toward the configured free target.
    /// Returns the number of pages compacted.
    pub fn maintain(&mut self, dram: &mut Dram, now: Time) -> u64 {
        let before = self.recency.len();
        self.compact_until(dram, now, self.free_target_pages);
        (before - self.recency.len()) as u64
    }

    /// Moves an uncompressed page to a *specific* free DRAM page (the
    /// caller must have reserved `dst`, e.g. via
    /// [`FreeSpace::take_specific_page`]). Returns completion time and
    /// frees the source page.
    ///
    /// # Panics
    ///
    /// Panics if `page` is not uncompressed.
    pub fn move_uncompressed(
        &mut self,
        dram: &mut Dram,
        now: Time,
        page: PageId,
        dst: DramPageId,
        class: RequestClass,
    ) -> Time {
        let Some(PageState::Uncompressed(src)) = self.dir.state(page) else {
            panic!("move_uncompressed called on non-uncompressed page {page}");
        };
        let done = transfer::copy_page(dram, now, src, dst, class);
        self.dir.detach(page);
        self.free.add_page(src);
        self.dir.place_uncompressed(page, dst);
        done
    }

    /// Checks internal consistency (used by tests): every OS page placed,
    /// free bytes + used bytes == data bytes.
    pub fn check_invariants(&self, data_pages: u64) {
        let mut used = 0u64;
        for p in 0..self.dir.os_pages() {
            match self.dir.state(PageId::new(p)) {
                Some(PageState::Uncompressed(_)) => used += PAGE_BYTES,
                Some(PageState::Compressed(s)) => used += s.len as u64,
                None => panic!("page {p} unplaced"),
            }
        }
        assert_eq!(
            used + self.free.free_bytes(),
            data_pages * PAGE_BYTES,
            "space accounting broken"
        );
    }
}

// The (profile, seed) pair determines every page's compressed size, so it
// travels as an identity guard: restoring onto a store packed differently
// fails loudly instead of silently diverging. `free_target_pages` is
// configuration, never mutated.
impl Snapshot for CompressedStore {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.profile.digest());
        w.u64(self.seed);
        self.dir.write_snapshot(w);
        self.free.write_snapshot(w);
        self.recency.write_snapshot(w);
    }
}

impl Restore for CompressedStore {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.u64()? != self.profile.digest() {
            return Err(SnapError::Mismatch("compressibility profile"));
        }
        if r.u64()? != self.seed {
            return Err(SnapError::Mismatch("store seed"));
        }
        self.dir.restore_snapshot(r)?;
        self.free.restore_snapshot(r)?;
        self.recency.restore_snapshot(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_dram::DramConfig;

    fn dram() -> Dram {
        Dram::new(DramConfig::paper(1 << 30, 8))
    }

    fn store(os_pages: u64, data_pages: u64) -> CompressedStore {
        CompressedStore::pack(
            os_pages,
            data_pages,
            CompressibilityProfile::with_mean_ratio("t", 3.0),
            7,
            4,
        )
    }

    #[test]
    fn pack_fits_and_meets_free_target() {
        let s = store(1000, 700);
        s.check_invariants(700);
        assert!(s.free.free_page_count() >= 4);
        let (unc, comp) = s.dir.census();
        assert_eq!(unc + comp, 1000);
        assert!(comp > 0, "pressure should force compression");
        assert!(unc > 0, "some pages should stay uncompressed");
    }

    #[test]
    fn pack_uncompressed_when_plenty_of_room() {
        let s = store(100, 200);
        let (unc, comp) = s.dir.census();
        assert_eq!(unc, 100);
        assert_eq!(comp, 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pack_rejects_impossible_fit() {
        let _ = store(1000, 50);
    }

    #[test]
    fn expand_round_trip() {
        let mut s = store(1000, 700);
        let mut d = dram();
        let victim = (0..1000)
            .map(PageId::new)
            .find(|&p| s.is_compressed(p))
            .expect("some compressed page");
        let (dst, ready) = s.expand(&mut d, Time::ZERO, victim, RequestClass::Migration);
        assert!(ready.as_ns() >= 280.0, "must include decompression");
        assert_eq!(s.dir.state(victim), Some(PageState::Uncompressed(dst)));
        assert!(s.recency.contains(victim));
        s.check_invariants(700);
    }

    #[test]
    fn compact_round_trip() {
        let mut s = store(1000, 700);
        let mut d = dram();
        // Pick a compressible uncompressed victim (an incompressible one
        // would legally free zero bytes).
        let victim = (0..1000)
            .map(PageId::new)
            .find(|&p| !s.is_compressed(p) && (s.compressed_size(p) as u64) < PAGE_BYTES)
            .expect("some compressible uncompressed page");
        let before_free = s.free.free_bytes();
        s.compact_page(&mut d, Time::ZERO, victim);
        assert!(s.is_compressed(victim));
        assert!(!s.recency.contains(victim));
        assert!(s.free.free_bytes() > before_free);
        s.check_invariants(700);
    }

    #[test]
    fn compact_until_replenishes_free_pages() {
        let mut s = store(1000, 700);
        let mut d = dram();
        // Drain the free list.
        while s.free.take_any_page().is_some() {}
        // Freed pages vanished from accounting; re-add as in-use elsewhere is
        // not possible, so rebuild a smaller scenario: expand until free
        // pages run dry instead.
        let mut s = store(1000, 700);
        while s.free.free_page_count() > 0 {
            let Some(victim) = (0..1000).map(PageId::new).find(|&p| s.is_compressed(p)) else {
                break;
            };
            s.expand(&mut d, Time::ZERO, victim, RequestClass::Migration);
        }
        let t = s.compact_until(&mut d, Time::ZERO, 4);
        assert!(s.free.free_page_count() >= 4);
        assert!(t > Time::ZERO);
        s.check_invariants(700);
    }

    #[test]
    fn expand_compacts_synchronously_when_dry() {
        let mut s = store(1000, 700);
        let mut d = dram();
        // Exhaust free pages via expansions.
        while s.free.free_page_count() > 0 {
            let victim = (0..1000)
                .map(PageId::new)
                .find(|&p| s.is_compressed(p))
                .unwrap();
            s.expand(&mut d, Time::ZERO, victim, RequestClass::Migration);
        }
        let victim = (0..1000)
            .map(PageId::new)
            .find(|&p| s.is_compressed(p))
            .unwrap();
        let (_, ready) = s.expand(&mut d, Time::ZERO, victim, RequestClass::Migration);
        assert!(ready > Time::ZERO);
        s.check_invariants(700);
    }

    #[test]
    fn move_uncompressed_to_specific_page() {
        let mut s = store(100, 200);
        let mut d = dram();
        let page = PageId::new(5);
        let dst = s.free.take_any_page().unwrap();
        let done = s.move_uncompressed(&mut d, Time::ZERO, page, dst, RequestClass::Migration);
        assert_eq!(s.dir.state(page), Some(PageState::Uncompressed(dst)));
        assert!(done > Time::ZERO);
        s.check_invariants(200);
    }

    #[test]
    fn maintain_reports_compactions() {
        let mut s = store(1000, 700);
        let mut d = dram();
        while s.free.free_page_count() > 2 {
            let Some(victim) = (0..1000).map(PageId::new).find(|&p| s.is_compressed(p)) else {
                break;
            };
            s.expand(&mut d, Time::ZERO, victim, RequestClass::Migration);
        }
        let n = s.maintain(&mut d, Time::ZERO);
        assert!(n > 0);
        assert!(s.free.free_page_count() >= 4);
    }
}

#[cfg(test)]
mod granular_tests {
    use super::*;
    use crate::directory::PageState;

    #[test]
    fn granules_stay_together() {
        let s = CompressedStore::pack_granular(
            1024,
            700,
            CompressibilityProfile::with_mean_ratio("t", 3.0),
            5,
            4,
            16,
        );
        s.check_invariants(700);
        for g in 0..(1024 / 16) {
            let states: Vec<bool> = (g * 16..(g + 1) * 16)
                .map(|p| matches!(s.dir.state(PageId::new(p)), Some(PageState::Compressed(_))))
                .collect();
            assert!(
                states.iter().all(|&x| x) || states.iter().all(|&x| !x),
                "granule {g} split: {states:?}"
            );
        }
    }

    #[test]
    fn partial_last_granule_is_handled() {
        let s = CompressedStore::pack_granular(
            1000, // not divisible by 16
            700,
            CompressibilityProfile::with_mean_ratio("t", 3.0),
            5,
            4,
            16,
        );
        s.check_invariants(700);
        let (unc, comp) = s.dir.census();
        assert_eq!(unc + comp, 1000);
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use dylect_dram::DramConfig;
    use dylect_sim_core::snap::{SnapError, SnapReader, SnapWriter};

    fn store(seed: u64) -> CompressedStore {
        CompressedStore::pack(
            600,
            420,
            CompressibilityProfile::with_mean_ratio("t", 3.0),
            seed,
            4,
        )
    }

    fn churn(s: &mut CompressedStore) {
        let mut d = Dram::new(DramConfig::paper(1 << 30, 8));
        let mut t = Time::ZERO;
        for p in 0..600 {
            let page = PageId::new(p * 13 % 600);
            if s.is_compressed(page) {
                let (_, ready) = s.expand(&mut d, t, page, RequestClass::Migration);
                t = ready;
            } else {
                s.recency.touch(page);
            }
            if p % 7 == 0 {
                s.maintain(&mut d, t);
            }
        }
    }

    fn bytes_of(s: &CompressedStore) -> Vec<u8> {
        let mut w = SnapWriter::new();
        s.write_snapshot(&mut w);
        w.into_bytes()
    }

    #[test]
    fn snapshot_round_trips_byte_identical() {
        let mut a = store(7);
        churn(&mut a);
        let snap = bytes_of(&a);
        // Restore onto a freshly packed (different-state) store.
        let mut b = store(7);
        let mut r = SnapReader::new(&snap);
        b.restore_snapshot(&mut r).expect("restore");
        r.finish().expect("fully consumed");
        b.check_invariants(420);
        assert_eq!(bytes_of(&b), snap, "re-snapshot must be byte-identical");
        // Observable state survives: same census, free space, victim order.
        assert_eq!(a.dir.census(), b.dir.census());
        assert_eq!(a.free.free_bytes(), b.free.free_bytes());
        assert_eq!(a.recency.tail(), b.recency.tail());
    }

    #[test]
    fn restore_rejects_wrong_identity() {
        let a = store(7);
        let snap = bytes_of(&a);
        // Different pack seed: sizes disagree.
        let mut r = SnapReader::new(&snap);
        assert_eq!(
            store(8).restore_snapshot(&mut r),
            Err(SnapError::Mismatch("store seed"))
        );
        // Different profile.
        let mut other = CompressedStore::pack(
            600,
            420,
            CompressibilityProfile::with_mean_ratio("u", 2.0),
            7,
            4,
        );
        let mut r = SnapReader::new(&snap);
        assert_eq!(
            other.restore_snapshot(&mut r),
            Err(SnapError::Mismatch("compressibility profile"))
        );
    }

    #[test]
    fn restore_rejects_truncation_everywhere() {
        let mut a = store(3);
        churn(&mut a);
        let snap = bytes_of(&a);
        // Every strict prefix must error (never panic, never succeed).
        for cut in (0..snap.len()).step_by(97) {
            let mut b = store(3);
            let mut r = SnapReader::new(&snap[..cut]);
            assert!(b.restore_snapshot(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn restore_rejects_corrupt_page_state_tag() {
        let a = store(3);
        let mut snap = bytes_of(&a);
        // Byte 24 is the first page-state tag (digest + seed + count = 24).
        snap[24] = 9;
        let mut b = store(3);
        let mut r = SnapReader::new(&snap);
        match b.restore_snapshot(&mut r) {
            Err(SnapError::Corrupt(_)) | Err(SnapError::Truncated { .. }) => {}
            other => panic!("expected corrupt/truncated, got {other:?}"),
        }
    }
}
