//! Probabilistic per-page access counters (Banshee's Algorithm 1).
//!
//! DyLeCT's ML1→ML0 promotion policy adapts the page-level DRAM-caching
//! policy of Banshee [Yu et al., MICRO'17]: every OS page has a small
//! (5-bit) saturating counter that is incremented with a sampling
//! probability (5% in the paper) on each access. Promotion happens when a
//! candidate's count exceeds the coldest current occupant's count by a
//! threshold. When any counter saturates, all counters are halved so the
//! counters track *recent* frequency.

use dylect_sim_core::rng::Rng;
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::stats::Counter;
use dylect_sim_core::PageId;

/// Sampling probability from the paper (5%).
pub const SAMPLE_RATE: f64 = 0.05;
/// 5-bit counters saturate at 31.
pub const COUNTER_MAX: u8 = 31;

/// Per-page sampled access counters.
///
/// # Example
///
/// ```
/// use dylect_memctl::counters::AccessCounters;
/// use dylect_sim_core::rng::Rng;
/// use dylect_sim_core::PageId;
///
/// let mut c = AccessCounters::new(64, 1.0); // sample every access
/// let mut rng = Rng::new(1);
/// c.on_access(PageId::new(3), &mut rng);
/// assert_eq!(c.get(PageId::new(3)), 1);
/// ```
#[derive(Clone, Debug)]
pub struct AccessCounters {
    counts: Vec<u8>,
    sample_rate: f64,
    /// Number of global halvings performed (each costs a table sweep).
    pub halvings: Counter,
}

impl AccessCounters {
    /// Creates zeroed counters for pages `0..capacity` with the given
    /// sampling probability.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is outside `(0, 1]`.
    pub fn new(capacity: u64, sample_rate: f64) -> Self {
        assert!(
            sample_rate > 0.0 && sample_rate <= 1.0,
            "sample rate {sample_rate} out of range"
        );
        AccessCounters {
            counts: vec![0; usize::try_from(capacity).expect("capacity fits usize")],
            sample_rate,
            halvings: Counter::default(),
        }
    }

    /// Creates counters with the paper's 5% sampling.
    pub fn paper(capacity: u64) -> Self {
        Self::new(capacity, SAMPLE_RATE)
    }

    /// Observes an access to `page`; with probability `sample_rate` the
    /// counter is incremented. Returns `true` when the counter was
    /// incremented (the scheme only re-evaluates promotion on sampled
    /// accesses, keeping the policy cheap).
    pub fn on_access(&mut self, page: PageId, rng: &mut Rng) -> bool {
        if !rng.chance(self.sample_rate) {
            return false;
        }
        let c = &mut self.counts[page.index() as usize];
        if *c >= COUNTER_MAX {
            self.halve_all();
        }
        self.counts[page.index() as usize] += 1;
        true
    }

    /// Changes the sampling probability (the paper warms its memory levels
    /// over >20 G instructions in fast-forward mode; harnesses accelerate
    /// warmup by sampling more aggressively, then restore 5% to measure).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `(0, 1]`.
    pub fn set_sample_rate(&mut self, rate: f64) {
        assert!(rate > 0.0 && rate <= 1.0, "sample rate {rate} out of range");
        self.sample_rate = rate;
    }

    /// Current count for `page`.
    pub fn get(&self, page: PageId) -> u8 {
        self.counts[page.index() as usize]
    }

    /// Clears the counter of a page (used when a page is compressed, so a
    /// stale hot history does not linger).
    pub fn reset(&mut self, page: PageId) {
        self.counts[page.index() as usize] = 0;
    }

    fn halve_all(&mut self) {
        for c in &mut self.counts {
            *c >>= 1;
        }
        self.halvings.incr();
    }
}

// `sample_rate` is serialized (warmup mutates it via `set_sample_rate`), so
// a snapshot taken mid-warmup restores with warmup-rate sampling intact.
impl Snapshot for AccessCounters {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.seq(self.counts.len());
        w.bytes(&self.counts);
        w.f64(self.sample_rate);
        self.halvings.write_snapshot(w);
    }
}

impl Restore for AccessCounters {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.fixed_seq(self.counts.len(), "counter capacity")?;
        let n = self.counts.len();
        self.counts.copy_from_slice(r.bytes(n)?);
        let rate = r.f64()?;
        if !(rate > 0.0 && rate <= 1.0) {
            return Err(SnapError::Corrupt("sample rate out of range"));
        }
        self.sample_rate = rate;
        self.halvings.restore_snapshot(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_rate_is_respected() {
        let mut c = AccessCounters::new(4, 0.05);
        let mut rng = Rng::new(42);
        let mut sampled = 0;
        for _ in 0..100_000 {
            if c.on_access(PageId::new(0), &mut rng) {
                sampled += 1;
            }
        }
        assert!(
            (3_500..6_500).contains(&sampled),
            "sampled {sampled} of 100k at 5%"
        );
    }

    #[test]
    fn saturation_halves_everything() {
        let mut c = AccessCounters::new(4, 1.0);
        let mut rng = Rng::new(1);
        for _ in 0..31 {
            c.on_access(PageId::new(0), &mut rng);
        }
        for _ in 0..10 {
            c.on_access(PageId::new(1), &mut rng);
        }
        assert_eq!(c.get(PageId::new(0)), 31);
        assert_eq!(c.get(PageId::new(1)), 10);
        // The next sampled access to page 0 halves all, then increments.
        c.on_access(PageId::new(0), &mut rng);
        assert_eq!(c.get(PageId::new(0)), 16);
        assert_eq!(c.get(PageId::new(1)), 5);
        assert_eq!(c.halvings.get(), 1);
    }

    #[test]
    fn hot_pages_count_higher() {
        let mut c = AccessCounters::new(2, 0.2);
        let mut rng = Rng::new(7);
        for i in 0..1000 {
            c.on_access(PageId::new(0), &mut rng);
            if i % 10 == 0 {
                c.on_access(PageId::new(1), &mut rng);
            }
        }
        assert!(c.get(PageId::new(0)) > c.get(PageId::new(1)));
    }

    #[test]
    fn reset_clears() {
        let mut c = AccessCounters::new(2, 1.0);
        let mut rng = Rng::new(1);
        c.on_access(PageId::new(1), &mut rng);
        c.reset(PageId::new(1));
        assert_eq!(c.get(PageId::new(1)), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_zero_rate() {
        let _ = AccessCounters::new(1, 0.0);
    }
}
