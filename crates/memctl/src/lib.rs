//! Shared memory-controller framework for hardware-compressed memory.
//!
//! Hardware memory compression lives entirely in the memory controller
//! (MC): the MC translates OS-physical addresses to machine-physical DRAM
//! locations through compressed-memory translation entries (CTEs), packs
//! compressed pages into irregular free spaces, and migrates pages as their
//! temperature changes. This crate provides the *mechanisms* every scheme in
//! this workspace shares:
//!
//! - [`freespace`] — the Free List of whole DRAM pages plus coalescing
//!   irregular-size free spans (TMCC §II-B);
//! - [`recency`] — the Recency List selecting compression victims;
//! - [`counters`] — Banshee-style sampled access counters for DyLeCT's
//!   ML1→ML0 promotion;
//! - [`layout`] — machine-address layout of the unified CTE table, the
//!   pre-gathered table, and the counter table;
//! - [`directory`] / [`store`] — authoritative page locations and the
//!   physical expand/compact/migrate operations with DRAM traffic billing;
//! - [`controller`] — the [`MemoryScheme`] trait implemented by TMCC,
//!   DyLeCT, and the baselines, plus shared statistics.
//!
//! # Example
//!
//! ```
//! use dylect_compression::CompressibilityProfile;
//! use dylect_memctl::store::CompressedStore;
//!
//! // Pack 1000 OS pages into 700 DRAM pages (compression pressure).
//! let store = CompressedStore::pack(
//!     1000,
//!     700,
//!     CompressibilityProfile::with_mean_ratio("demo", 3.0),
//!     42,
//!     16,
//! );
//! let (uncompressed, compressed) = store.dir.census();
//! assert_eq!(uncompressed + compressed, 1000);
//! ```

pub mod controller;
pub mod counters;
pub mod directory;
pub mod freespace;
pub mod layout;
pub mod recency;
pub mod store;
pub mod transfer;

pub use controller::{
    AccessBreakdown, CteCacheGeometry, McResponse, McStats, MemoryScheme, NoCompression, Occupancy,
    CTE_CACHE_HIT_LATENCY,
};
pub use directory::{DramUse, PageDirectory, PageState};
pub use freespace::{FreeSpace, Span};
pub use layout::{LayoutOptions, McLayout};
pub use store::CompressedStore;
