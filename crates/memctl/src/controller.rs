//! The memory-scheme interface and shared statistics.
//!
//! A *scheme* is the policy half of a compressed-memory controller: given an
//! LLC miss or writeback to an OS-physical address, it performs CTE
//! translation (possibly fetching CTE blocks from DRAM), triggers page
//! expansions/promotions/demotions, bills all resulting DRAM traffic, and
//! returns when the demanded data is available. TMCC, DyLeCT, the naive
//! dynamic-length design, and the no-compression baseline all implement
//! [`MemoryScheme`].

use dylect_compression::latency::attributable_decompression;
use dylect_dram::{CompletionDetail, Dram, DramOp, RequestClass};
use dylect_sim_core::kv::{KvReader, KvWriter};
use dylect_sim_core::probe::{MemLevel, ProbeHandle, TranslationPath};
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::stats::{Counter, MeanAccumulator};
use dylect_sim_core::{PhysAddr, Time};

/// CTE cache hit latency: 2 memory-controller clocks (Table 3, following
/// Compresso) at the DDR4-3200 memory clock (1.6 GHz).
pub const CTE_CACHE_HIT_LATENCY: Time = Time::from_ps(1250);

/// How one access's critical path decomposes — filled by every scheme
/// alongside the response so the telemetry attribution layer can account
/// cycles without re-deriving scheme internals. Purely observational: the
/// fields are never serialized into run reports and computing them is a
/// handful of subtractions, so responses stay identical whether telemetry
/// is on or off.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessBreakdown {
    /// How the physical→machine translation was resolved.
    pub path: TranslationPath,
    /// Memory level of the page when the access arrived.
    pub level: MemLevel,
    /// Cycles spent resolving translation (CTE cache hit latency or the
    /// CTE DRAM fetch).
    pub translation: Time,
    /// Decompression cycles on the critical path (on-demand expansion).
    pub decompression: Time,
    /// Page-movement cycles on the critical path (expansion data movement,
    /// displacement, compaction blocking this access).
    pub migration: Time,
    /// Demand-block DRAM queueing delay.
    pub dram_queue: Time,
    /// Demand-block DRAM service time.
    pub dram_service: Time,
}

impl AccessBreakdown {
    /// Splits an expansion window (`t_translated → t_data_start`) into
    /// decompression and data-movement cycles. The decompression share is
    /// the ASIC latency for `uncompressed_bytes` (one page for per-page
    /// expansion, the whole granule for TMCC), clamped to the window so the
    /// two always sum to it exactly.
    pub fn split_expansion(window: Time, uncompressed_bytes: u64) -> (Time, Time) {
        let dec = attributable_decompression(window, uncompressed_bytes);
        (dec, window - dec)
    }

    /// Copies the demand block's DRAM queue/service split in.
    pub fn with_dram(mut self, detail: CompletionDetail) -> AccessBreakdown {
        self.dram_queue = detail.queue;
        self.dram_service = detail.service;
        self
    }
}

/// Result of one memory-controller access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct McResponse {
    /// When the demanded 64 B block is available to return to the LLC.
    pub data_ready: Time,
    /// The part of the service latency attributable to the compressed-memory
    /// machinery (translation + expansion), i.e. the L3-miss latency *adder*
    /// the paper plots in Figure 21.
    pub overhead: Time,
    /// Critical-path decomposition for the attribution layer.
    pub breakdown: AccessBreakdown,
}

/// Aggregate statistics of a scheme.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct McStats {
    /// LLC-side requests served (reads + writebacks).
    pub requests: Counter,
    /// CTE cache hits served by a pre-gathered block (DyLeCT only).
    pub cte_hits_pregathered: Counter,
    /// CTE cache hits served by a unified block.
    pub cte_hits_unified: Counter,
    /// CTE cache misses (both blocks missing / unified missing as
    /// applicable).
    pub cte_misses: Counter,
    /// ML2→ML1 (or ML2→ML0) page expansions.
    pub expansions: Counter,
    /// Pages compressed (demand-adaptive compaction).
    pub compactions: Counter,
    /// ML1→ML0 promotions (short-CTE switches).
    pub promotions: Counter,
    /// ML0→ML1 demotions (long-CTE switches).
    pub demotions: Counter,
    /// Pages displaced from a DRAM page-group slot to make room for a
    /// promotion.
    pub displacements: Counter,
    /// Mean translation latency per request, ns.
    pub translation_latency: MeanAccumulator,
    /// Mean total overhead (translation + expansion wait) per request, ns.
    pub overhead_latency: MeanAccumulator,
}

impl McStats {
    /// Folds another scheme's statistics into this one (multi-MC
    /// aggregation, paper §IV-D: each MC runs its own module).
    pub fn merge(&mut self, other: &McStats) {
        self.requests.merge(other.requests);
        self.cte_hits_pregathered.merge(other.cte_hits_pregathered);
        self.cte_hits_unified.merge(other.cte_hits_unified);
        self.cte_misses.merge(other.cte_misses);
        self.expansions.merge(other.expansions);
        self.compactions.merge(other.compactions);
        self.promotions.merge(other.promotions);
        self.demotions.merge(other.demotions);
        self.displacements.merge(other.displacements);
        self.translation_latency.merge(&other.translation_latency);
        self.overhead_latency.merge(&other.overhead_latency);
    }

    /// Total CTE cache lookups.
    pub fn cte_lookups(&self) -> u64 {
        self.cte_hits_pregathered.get() + self.cte_hits_unified.get() + self.cte_misses.get()
    }

    /// CTE cache hit rate (paper Figure 19).
    pub fn cte_hit_rate(&self) -> f64 {
        let hits = self.cte_hits_pregathered.get() + self.cte_hits_unified.get();
        if self.cte_lookups() == 0 {
            0.0
        } else {
            hits as f64 / self.cte_lookups() as f64
        }
    }

    /// Fraction of lookups served by pre-gathered blocks.
    pub fn pregathered_hit_rate(&self) -> f64 {
        self.cte_hits_pregathered.fraction_of(self.cte_lookups())
    }

    /// Fraction of lookups served by unified blocks.
    pub fn unified_hit_rate(&self) -> f64 {
        self.cte_hits_unified.fraction_of(self.cte_lookups())
    }

    /// Serializes every field under `prefix` into a report-cache record.
    pub fn write_kv(&self, w: &mut KvWriter, prefix: &str) {
        w.put_u64(&format!("{prefix}.requests"), self.requests.get());
        w.put_u64(
            &format!("{prefix}.cte_hits_pregathered"),
            self.cte_hits_pregathered.get(),
        );
        w.put_u64(
            &format!("{prefix}.cte_hits_unified"),
            self.cte_hits_unified.get(),
        );
        w.put_u64(&format!("{prefix}.cte_misses"), self.cte_misses.get());
        w.put_u64(&format!("{prefix}.expansions"), self.expansions.get());
        w.put_u64(&format!("{prefix}.compactions"), self.compactions.get());
        w.put_u64(&format!("{prefix}.promotions"), self.promotions.get());
        w.put_u64(&format!("{prefix}.demotions"), self.demotions.get());
        w.put_u64(&format!("{prefix}.displacements"), self.displacements.get());
        w.put_f64(
            &format!("{prefix}.translation_latency.sum"),
            self.translation_latency.sum(),
        );
        w.put_u64(
            &format!("{prefix}.translation_latency.count"),
            self.translation_latency.count(),
        );
        w.put_f64(
            &format!("{prefix}.overhead_latency.sum"),
            self.overhead_latency.sum(),
        );
        w.put_u64(
            &format!("{prefix}.overhead_latency.count"),
            self.overhead_latency.count(),
        );
    }

    /// Inverse of [`McStats::write_kv`]; `None` if any field is missing.
    pub fn read_kv(r: &KvReader, prefix: &str) -> Option<McStats> {
        let counter = |name: &str| -> Option<Counter> {
            Some(Counter::from_value(r.get_u64(&format!("{prefix}.{name}"))?))
        };
        let mean = |name: &str| -> Option<MeanAccumulator> {
            Some(MeanAccumulator::from_parts(
                r.get_f64(&format!("{prefix}.{name}.sum"))?,
                r.get_u64(&format!("{prefix}.{name}.count"))?,
            ))
        };
        Some(McStats {
            requests: counter("requests")?,
            cte_hits_pregathered: counter("cte_hits_pregathered")?,
            cte_hits_unified: counter("cte_hits_unified")?,
            cte_misses: counter("cte_misses")?,
            expansions: counter("expansions")?,
            compactions: counter("compactions")?,
            promotions: counter("promotions")?,
            demotions: counter("demotions")?,
            displacements: counter("displacements")?,
            translation_latency: mean("translation_latency")?,
            overhead_latency: mean("overhead_latency")?,
        })
    }
}

impl Snapshot for McStats {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.requests.write_snapshot(w);
        self.cte_hits_pregathered.write_snapshot(w);
        self.cte_hits_unified.write_snapshot(w);
        self.cte_misses.write_snapshot(w);
        self.expansions.write_snapshot(w);
        self.compactions.write_snapshot(w);
        self.promotions.write_snapshot(w);
        self.demotions.write_snapshot(w);
        self.displacements.write_snapshot(w);
        self.translation_latency.write_snapshot(w);
        self.overhead_latency.write_snapshot(w);
    }
}

impl Restore for McStats {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.requests.restore_snapshot(r)?;
        self.cte_hits_pregathered.restore_snapshot(r)?;
        self.cte_hits_unified.restore_snapshot(r)?;
        self.cte_misses.restore_snapshot(r)?;
        self.expansions.restore_snapshot(r)?;
        self.compactions.restore_snapshot(r)?;
        self.promotions.restore_snapshot(r)?;
        self.demotions.restore_snapshot(r)?;
        self.displacements.restore_snapshot(r)?;
        self.translation_latency.restore_snapshot(r)?;
        self.overhead_latency.restore_snapshot(r)
    }
}

/// Memory-level census for Figure 20 (DRAM breakdown of ML0/ML1/ML2).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Occupancy {
    /// Uncompressed pages addressed by short CTEs (DyLeCT only).
    pub ml0_pages: u64,
    /// Uncompressed pages addressed by long CTEs.
    pub ml1_pages: u64,
    /// Compressed pages.
    pub ml2_pages: u64,
    /// Whole free DRAM pages.
    pub free_pages: u64,
    /// Total free bytes (pages + holes).
    pub free_bytes: u64,
}

impl Occupancy {
    /// Folds another census into this one (multi-MC aggregation).
    pub fn merge(&mut self, other: &Occupancy) {
        self.ml0_pages += other.ml0_pages;
        self.ml1_pages += other.ml1_pages;
        self.ml2_pages += other.ml2_pages;
        self.free_pages += other.free_pages;
        self.free_bytes += other.free_bytes;
    }

    /// Fraction of *uncompressed* pages that are in ML0 (Figure 25).
    pub fn ml0_fraction_of_uncompressed(&self) -> f64 {
        let unc = self.ml0_pages + self.ml1_pages;
        if unc == 0 {
            0.0
        } else {
            self.ml0_pages as f64 / unc as f64
        }
    }

    /// Serializes the census into a snapshot.
    pub fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.ml0_pages);
        w.u64(self.ml1_pages);
        w.u64(self.ml2_pages);
        w.u64(self.free_pages);
        w.u64(self.free_bytes);
    }

    /// Reads a census back from a snapshot.
    pub fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.ml0_pages = r.u64()?;
        self.ml1_pages = r.u64()?;
        self.ml2_pages = r.u64()?;
        self.free_pages = r.u64()?;
        self.free_bytes = r.u64()?;
        Ok(())
    }

    /// Serializes every field under `prefix` into a report-cache record.
    pub fn write_kv(&self, w: &mut KvWriter, prefix: &str) {
        w.put_u64(&format!("{prefix}.ml0_pages"), self.ml0_pages);
        w.put_u64(&format!("{prefix}.ml1_pages"), self.ml1_pages);
        w.put_u64(&format!("{prefix}.ml2_pages"), self.ml2_pages);
        w.put_u64(&format!("{prefix}.free_pages"), self.free_pages);
        w.put_u64(&format!("{prefix}.free_bytes"), self.free_bytes);
    }

    /// Inverse of [`Occupancy::write_kv`].
    pub fn read_kv(r: &KvReader, prefix: &str) -> Option<Occupancy> {
        Some(Occupancy {
            ml0_pages: r.get_u64(&format!("{prefix}.ml0_pages"))?,
            ml1_pages: r.get_u64(&format!("{prefix}.ml1_pages"))?,
            ml2_pages: r.get_u64(&format!("{prefix}.ml2_pages"))?,
            free_pages: r.get_u64(&format!("{prefix}.free_pages"))?,
            free_bytes: r.get_u64(&format!("{prefix}.free_bytes"))?,
        })
    }
}

/// Static geometry of a scheme's CTE cache, exposed so the telemetry
/// shadow-probe layer can build counterfactual tag arrays (same-capacity
/// fully-associative, 2×/4× size, 2× associativity) that mirror the real
/// structure. Purely descriptive: nothing in the simulation reads it back.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CteCacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (lines per set).
    pub ways: u32,
    /// Block (line) size in bytes.
    pub block_bytes: u64,
    /// DRAM page-group size in pages (0 if the scheme has no page groups).
    pub group_size: u64,
    /// Number of DRAM page groups (0 if the scheme has no page groups).
    pub num_groups: u64,
}

/// A hardware-compressed-memory controller policy.
pub trait MemoryScheme {
    /// Short human-readable name ("tmcc", "dylect", …).
    fn name(&self) -> &'static str;

    /// Serves one LLC miss (read) or writeback (write) to `addr` at `now`.
    fn access(&mut self, now: Time, addr: PhysAddr, is_write: bool, dram: &mut Dram) -> McResponse;

    /// Switches warmup acceleration on or off. During warmup a scheme may
    /// speed up its adaptive machinery (e.g. DyLeCT samples access counters
    /// more aggressively so ML0 converges in simulatable time, mirroring
    /// the paper's 20 G-instruction fast-forward warmup); measurement always
    /// runs with paper parameters. Default: no-op.
    fn set_warmup(&mut self, _warmup: bool) {}

    /// Attaches an observability probe. Schemes with discrete policy events
    /// (promotion, demotion, expansion, compaction) forward them through the
    /// handle; probes are observation-only and must never change simulated
    /// behavior. Default: events are discarded.
    fn set_probe(&mut self, _probe: ProbeHandle) {}

    /// Geometry of this scheme's CTE cache, if it has one, for the shadow
    /// tag arrays. Default: no CTE cache (the no-compression baseline).
    fn cte_cache_geometry(&self) -> Option<CteCacheGeometry> {
        None
    }

    /// A scenario memory-pressure event (ballooning): reclaim until the
    /// scheme's free pool holds `extra_free_pages` pages beyond its normal
    /// free target, forcing a compaction burst. Schemes without a
    /// compressed level have nothing to squeeze. Default: no-op.
    fn apply_pressure(&mut self, _now: Time, _extra_free_pages: u64, _dram: &mut Dram) {}

    /// Accumulated statistics.
    fn stats(&self) -> &McStats;

    /// Resets statistics after warmup.
    fn reset_stats(&mut self);

    /// Current memory-level census.
    fn occupancy(&self) -> Occupancy;

    /// Appends the scheme's mutable state to a snapshot stream. Called at a
    /// quiescent boundary (no access in flight); configuration-derived
    /// state is not written — restore targets a scheme freshly built from
    /// the same configuration.
    fn write_snapshot(&self, w: &mut SnapWriter);

    /// Overlays state written by [`MemoryScheme::write_snapshot`] onto this
    /// scheme. Must be panic-free on corrupt input: structural problems
    /// surface as [`SnapError`].
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// The bigger conventional system without compression (paper §V,
/// "Modeling a bigger system without memory compression"): OS pages map
/// identity to DRAM pages, there is no CTE layer, and so no overhead.
#[derive(Debug)]
pub struct NoCompression {
    os_pages: u64,
    stats: McStats,
}

impl NoCompression {
    /// Creates the baseline; `dram` must be at least as large as the
    /// OS-visible memory.
    ///
    /// # Panics
    ///
    /// Panics if the DRAM is smaller than the OS-visible memory.
    pub fn new(os_pages: u64, dram: &Dram) -> Self {
        assert!(
            dram.config().geometry.capacity_pages() >= os_pages,
            "no-compression baseline needs DRAM >= footprint"
        );
        NoCompression {
            os_pages,
            stats: McStats::default(),
        }
    }
}

impl MemoryScheme for NoCompression {
    fn name(&self) -> &'static str {
        "no-compression"
    }

    fn access(&mut self, now: Time, addr: PhysAddr, is_write: bool, dram: &mut Dram) -> McResponse {
        self.stats.requests.incr();
        debug_assert!(addr.page().index() < self.os_pages, "address out of range");
        let (op, class) = if is_write {
            (DramOp::Write, RequestClass::Writeback)
        } else {
            (DramOp::Read, RequestClass::Demand)
        };
        let machine = dylect_sim_core::MachineAddr::new(addr.block_base().raw());
        let detail = dram.access_detailed(now, machine, op, class);
        self.stats.translation_latency.record(0.0);
        self.stats.overhead_latency.record(0.0);
        McResponse {
            data_ready: detail.done,
            overhead: Time::ZERO,
            breakdown: AccessBreakdown::default().with_dram(detail),
        }
    }

    fn stats(&self) -> &McStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = McStats::default();
    }

    fn occupancy(&self) -> Occupancy {
        Occupancy {
            ml1_pages: self.os_pages,
            ..Occupancy::default()
        }
    }

    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.stats.write_snapshot(w);
    }

    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.stats.restore_snapshot(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_dram::DramConfig;

    #[test]
    fn no_compression_has_zero_overhead() {
        let mut dram = Dram::new(DramConfig::paper(1 << 30, 8));
        let mut s = NoCompression::new(1000, &dram);
        let r = s.access(Time::ZERO, PhysAddr::new(0x1040), false, &mut dram);
        assert_eq!(r.overhead, Time::ZERO);
        assert_eq!(r.data_ready.as_ns(), 13.75 + 13.75 + 2.5);
        assert_eq!(s.stats().requests.get(), 1);
        assert_eq!(s.stats().cte_lookups(), 0);
        // Breakdown: no translation/expansion, all cycles in DRAM.
        let b = r.breakdown;
        assert_eq!(b.path, TranslationPath::None);
        assert_eq!(b.translation + b.decompression + b.migration, Time::ZERO);
        assert_eq!(b.dram_queue + b.dram_service, r.data_ready);
    }

    #[test]
    fn breakdown_expansion_split_is_conservative() {
        let window = Time::from_ns(500.0);
        // One 4 KB page decompresses in 280 ns.
        let (dec, mv) = AccessBreakdown::split_expansion(window, 4096);
        assert_eq!(dec, Time::from_ns(280.0));
        assert_eq!(dec + mv, window);
        // The estimate is clamped to the window.
        let (dec, mv) = AccessBreakdown::split_expansion(Time::from_ns(100.0), 4096);
        assert_eq!(dec, Time::from_ns(100.0));
        assert_eq!(mv, Time::ZERO);
    }

    #[test]
    fn stats_rates() {
        let mut st = McStats::default();
        st.cte_hits_pregathered.add(77);
        st.cte_hits_unified.add(14);
        st.cte_misses.add(9);
        assert!((st.cte_hit_rate() - 0.91).abs() < 1e-9);
        assert!((st.pregathered_hit_rate() - 0.77).abs() < 1e-9);
        assert!((st.unified_hit_rate() - 0.14).abs() < 1e-9);
    }

    #[test]
    fn occupancy_ml0_fraction() {
        let o = Occupancy {
            ml0_pages: 66,
            ml1_pages: 34,
            ml2_pages: 100,
            ..Occupancy::default()
        };
        assert!((o.ml0_fraction_of_uncompressed() - 0.66).abs() < 1e-9);
        assert_eq!(Occupancy::default().ml0_fraction_of_uncompressed(), 0.0);
    }

    #[test]
    #[should_panic(expected = "DRAM >= footprint")]
    fn no_compression_rejects_small_dram() {
        let dram = Dram::new(DramConfig::paper(1 << 24, 8));
        let _ = NoCompression::new(1 << 20, &dram);
    }
}
