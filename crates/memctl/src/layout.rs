//! Machine-address-space layout: data region + reserved translation tables.
//!
//! The CTE table(s) are "stored in a statically reserved memory region"
//! (paper §II-A). We place the data region at the bottom of machine-physical
//! memory and the tables above it:
//!
//! ```text
//! +--------------------+ 0
//! |   data region      |   <- DRAM pages managed by the scheme
//! +--------------------+ data_pages * 4K
//! |   unified CTE table|   <- 8 B entries (64 B blocks = 8 CTEs, 32 KB reach)
//! +--------------------+
//! |   pre-gathered tbl |   <- 2-bit entries (64 B blocks = 256 CTEs, 1 MB reach)
//! +--------------------+
//! |   access counters  |   <- promotion-policy counters (DyLeCT only)
//! +--------------------+ total DRAM
//! ```

use dylect_sim_core::{MachineAddr, PageId, BLOCK_BYTES, PAGE_BYTES};

/// Bytes per unified-table entry (a long CTE; paper: 8 B).
pub const UNIFIED_ENTRY_BYTES: u64 = 8;
/// Unified CTEs per 64 B block.
pub const UNIFIED_ENTRIES_PER_BLOCK: u64 = BLOCK_BYTES / UNIFIED_ENTRY_BYTES;
/// Pre-gathered short CTEs per 64 B block (2-bit entries).
pub const PREGATHERED_ENTRIES_PER_BLOCK: u64 = BLOCK_BYTES * 8 / 2;
/// Access counters per 64 B block (one byte per counter; the paper packs
/// 5-bit counters, we round up to bytes — still <0.1% of DRAM).
pub const COUNTERS_PER_BLOCK: u64 = BLOCK_BYTES;

/// Which reserved tables a scheme needs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LayoutOptions {
    /// Reserve a pre-gathered short-CTE table (DyLeCT).
    pub pregathered: bool,
    /// Reserve the per-page access-counter table (DyLeCT).
    pub counters: bool,
    /// Number of unified-table entries (one per translation granule; equals
    /// the OS page count at 4 KB granularity).
    pub unified_entries: u64,
}

/// The resolved layout.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct McLayout {
    os_pages: u64,
    data_pages: u64,
    unified_base_page: u64,
    unified_pages: u64,
    pregathered_base_page: u64,
    pregathered_pages: u64,
    counter_base_page: u64,
    counter_pages: u64,
}

impl McLayout {
    /// Lays out `total_dram_pages` of machine memory for a system exposing
    /// `os_pages` of OS-visible memory.
    ///
    /// # Panics
    ///
    /// Panics if the tables do not leave any data pages.
    pub fn new(total_dram_pages: u64, os_pages: u64, opts: LayoutOptions) -> Self {
        let unified_pages = (opts.unified_entries * UNIFIED_ENTRY_BYTES).div_ceil(PAGE_BYTES);
        let pregathered_pages = if opts.pregathered {
            os_pages
                .div_ceil(PREGATHERED_ENTRIES_PER_BLOCK)
                .max(1)
                .div_ceil(PAGE_BYTES / BLOCK_BYTES)
                .max(1)
        } else {
            0
        };
        let counter_pages = if opts.counters {
            os_pages.div_ceil(PAGE_BYTES).max(1)
        } else {
            0
        };
        let reserved = unified_pages + pregathered_pages + counter_pages;
        assert!(
            reserved < total_dram_pages,
            "tables ({reserved} pages) leave no data pages in {total_dram_pages}"
        );
        let data_pages = total_dram_pages - reserved;
        McLayout {
            os_pages,
            data_pages,
            unified_base_page: data_pages,
            unified_pages,
            pregathered_base_page: data_pages + unified_pages,
            pregathered_pages,
            counter_base_page: data_pages + unified_pages + pregathered_pages,
            counter_pages,
        }
    }

    /// Number of OS-visible pages this layout serves.
    pub fn os_pages(&self) -> u64 {
        self.os_pages
    }

    /// Number of DRAM pages available for data.
    pub fn data_pages(&self) -> u64 {
        self.data_pages
    }

    /// Pages consumed by all reserved tables.
    pub fn reserved_pages(&self) -> u64 {
        self.unified_pages + self.pregathered_pages + self.counter_pages
    }

    /// Machine address of the unified-table 64 B block holding `entry`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the entry is beyond the table.
    pub fn unified_block_addr(&self, entry: u64) -> MachineAddr {
        let block = entry / UNIFIED_ENTRIES_PER_BLOCK;
        debug_assert!(
            block * BLOCK_BYTES < self.unified_pages * PAGE_BYTES,
            "unified entry {entry} beyond table"
        );
        MachineAddr::new(self.unified_base_page * PAGE_BYTES + block * BLOCK_BYTES)
    }

    /// Machine address of the pre-gathered 64 B block covering `page`.
    ///
    /// One block covers 256 pages = 1 MB of OS-visible memory (the paper's
    /// huge-page-like reach).
    ///
    /// # Panics
    ///
    /// Panics if the layout has no pre-gathered table.
    pub fn pregathered_block_addr(&self, page: PageId) -> MachineAddr {
        assert!(self.pregathered_pages > 0, "no pre-gathered table");
        let block = page.index() / PREGATHERED_ENTRIES_PER_BLOCK;
        MachineAddr::new(self.pregathered_base_page * PAGE_BYTES + block * BLOCK_BYTES)
    }

    /// Machine address of the counter block covering `page`.
    ///
    /// # Panics
    ///
    /// Panics if the layout has no counter table.
    pub fn counter_block_addr(&self, page: PageId) -> MachineAddr {
        assert!(self.counter_pages > 0, "no counter table");
        let block = page.index() / COUNTERS_PER_BLOCK;
        MachineAddr::new(self.counter_base_page * PAGE_BYTES + block * BLOCK_BYTES)
    }

    /// Key identifying the unified block covering `entry` (for CTE caching).
    pub fn unified_block_key(&self, entry: u64) -> u64 {
        self.unified_block_addr(entry).block_index()
    }

    /// Key identifying the pre-gathered block covering `page`.
    pub fn pregathered_block_key(&self, page: PageId) -> u64 {
        self.pregathered_block_addr(page).block_index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> McLayout {
        // 64 Ki DRAM pages (256 MiB), 96 Ki OS pages (384 MiB).
        McLayout::new(
            65_536,
            98_304,
            LayoutOptions {
                pregathered: true,
                counters: true,
                unified_entries: 98_304,
            },
        )
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = layout();
        assert!(l.data_pages() > 0);
        assert_eq!(l.unified_base_page, l.data_pages);
        assert!(l.pregathered_base_page >= l.unified_base_page + l.unified_pages);
        assert!(l.counter_base_page >= l.pregathered_base_page + l.pregathered_pages);
        assert_eq!(l.data_pages + l.reserved_pages(), 65_536);
    }

    #[test]
    fn unified_block_granularity() {
        let l = layout();
        // Entries 0..7 share a block; entry 8 starts the next.
        let b0 = l.unified_block_addr(0);
        assert_eq!(l.unified_block_addr(7), b0);
        assert_eq!(l.unified_block_addr(8), b0.offset(64));
    }

    #[test]
    fn pregathered_block_covers_1mb() {
        let l = layout();
        let b0 = l.pregathered_block_addr(PageId::new(0));
        assert_eq!(l.pregathered_block_addr(PageId::new(255)), b0);
        assert_eq!(l.pregathered_block_addr(PageId::new(256)), b0.offset(64));
    }

    #[test]
    fn table_sizes_match_paper_overheads() {
        let l = layout();
        // Unified: 8 B per page. Pre-gathered: 32x smaller.
        assert_eq!(l.unified_pages, 98_304 * 8 / 4096);
        assert!(l.pregathered_pages <= l.unified_pages / 32 + 1);
    }

    #[test]
    fn tmcc_layout_has_no_extra_tables() {
        let l = McLayout::new(
            1024,
            1024,
            LayoutOptions {
                pregathered: false,
                counters: false,
                unified_entries: 1024,
            },
        );
        assert_eq!(l.reserved_pages(), 2); // 1024 * 8 B = 2 pages
    }

    #[test]
    fn coarse_granularity_shrinks_table() {
        // 64 KB granules: 16x fewer entries.
        let fine = McLayout::new(
            65_536,
            98_304,
            LayoutOptions {
                pregathered: false,
                counters: false,
                unified_entries: 98_304,
            },
        );
        let coarse = McLayout::new(
            65_536,
            98_304,
            LayoutOptions {
                pregathered: false,
                counters: false,
                unified_entries: 98_304 / 16,
            },
        );
        assert!(coarse.reserved_pages() < fine.reserved_pages());
    }

    #[test]
    #[should_panic(expected = "no data pages")]
    fn rejects_table_only_layout() {
        let _ = McLayout::new(
            2,
            98_304,
            LayoutOptions {
                pregathered: true,
                counters: true,
                unified_entries: 98_304,
            },
        );
    }

    #[test]
    fn counter_blocks() {
        let l = layout();
        let b0 = l.counter_block_addr(PageId::new(0));
        assert_eq!(l.counter_block_addr(PageId::new(63)), b0);
        assert_eq!(l.counter_block_addr(PageId::new(64)), b0.offset(64));
    }
}
