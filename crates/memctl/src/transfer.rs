//! DRAM traffic billing helpers for page-sized and span-sized transfers.

use dylect_dram::{Dram, DramOp, RequestClass};
use dylect_sim_core::{DramPageId, Time, BLOCKS_PER_PAGE, BLOCK_BYTES};

use crate::freespace::Span;

/// Reads all 64 blocks of a DRAM page; returns the completion of the last.
pub fn read_page(dram: &mut Dram, at: Time, page: DramPageId, class: RequestClass) -> Time {
    let addrs =
        (0..BLOCKS_PER_PAGE).map(|i| (page.base_addr().offset(i * BLOCK_BYTES), DramOp::Read));
    dram.access_batch(at, addrs, class)
}

/// Writes all 64 blocks of a DRAM page; returns the completion of the last.
pub fn write_page(dram: &mut Dram, at: Time, page: DramPageId, class: RequestClass) -> Time {
    let addrs =
        (0..BLOCKS_PER_PAGE).map(|i| (page.base_addr().offset(i * BLOCK_BYTES), DramOp::Write));
    dram.access_batch(at, addrs, class)
}

/// Copies a whole DRAM page (`64` reads + `64` writes); returns completion.
pub fn copy_page(
    dram: &mut Dram,
    at: Time,
    src: DramPageId,
    dst: DramPageId,
    class: RequestClass,
) -> Time {
    let read_done = read_page(dram, at, src, class);
    write_page(dram, read_done, dst, class)
}

/// Reads the blocks covering a compressed span; returns completion.
pub fn read_span(dram: &mut Dram, at: Time, span: Span, class: RequestClass) -> Time {
    let first = span.offset as u64 / BLOCK_BYTES;
    let last = (span.offset as u64 + span.len as u64 - 1) / BLOCK_BYTES;
    let addrs = (first..=last).map(|i| {
        (
            span.dram_page.base_addr().offset(i * BLOCK_BYTES),
            DramOp::Read,
        )
    });
    dram.access_batch(at, addrs, class)
}

/// Writes the blocks covering a compressed span; returns completion.
pub fn write_span(dram: &mut Dram, at: Time, span: Span, class: RequestClass) -> Time {
    let first = span.offset as u64 / BLOCK_BYTES;
    let last = (span.offset as u64 + span.len as u64 - 1) / BLOCK_BYTES;
    let addrs = (first..=last).map(|i| {
        (
            span.dram_page.base_addr().offset(i * BLOCK_BYTES),
            DramOp::Write,
        )
    });
    dram.access_batch(at, addrs, class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_dram::DramConfig;
    use dylect_sim_core::PAGE_BYTES;

    fn dram() -> Dram {
        Dram::new(DramConfig::paper(1 << 30, 8))
    }

    #[test]
    fn page_read_bills_64_blocks() {
        let mut d = dram();
        read_page(
            &mut d,
            Time::ZERO,
            DramPageId::new(3),
            RequestClass::Migration,
        );
        assert_eq!(d.stats().reads.get(), 64);
        assert_eq!(d.stats().class_blocks(RequestClass::Migration), 64);
    }

    #[test]
    fn copy_bills_reads_then_writes() {
        let mut d = dram();
        let done = copy_page(
            &mut d,
            Time::ZERO,
            DramPageId::new(0),
            DramPageId::new(100),
            RequestClass::Migration,
        );
        assert_eq!(d.stats().reads.get(), 64);
        assert_eq!(d.stats().writes.get(), 64);
        // At bus rate a page copy is at least 128 bursts * 2.5 ns.
        assert!(done.as_ns() >= 128.0 * 2.5);
    }

    #[test]
    fn span_transfer_counts_covering_blocks() {
        let mut d = dram();
        // 1 KB span starting mid-block: covers ceil boundaries.
        let span = Span::new(DramPageId::new(1), 32, 1024);
        read_span(&mut d, Time::ZERO, span, RequestClass::Compression);
        // Blocks 0..=16 (offset 32..1056) = 17 blocks.
        assert_eq!(d.stats().reads.get(), 17);
    }

    #[test]
    fn aligned_span_is_exact() {
        let mut d = dram();
        let span = Span::new(DramPageId::new(1), 0, 1024);
        write_span(&mut d, Time::ZERO, span, RequestClass::Compression);
        assert_eq!(d.stats().writes.get(), 16);
    }

    #[test]
    fn full_page_span_equals_page_transfer() {
        let mut d = dram();
        let span = Span::new(DramPageId::new(2), 0, PAGE_BYTES as u32);
        read_span(&mut d, Time::ZERO, span, RequestClass::Migration);
        assert_eq!(d.stats().reads.get(), 64);
    }
}
