//! The page directory: authoritative record of where every OS page lives.
//!
//! The directory is the simulator-side ground truth behind the CTE tables:
//! each OS-visible 4 KB page is either **uncompressed** in some DRAM page or
//! **compressed** into a sub-page span. It also maintains the reverse map
//! (what does each DRAM page hold), which the schemes need when vacating a
//! DRAM page (e.g. DyLeCT's ML1→ML0 promotion must displace whatever
//! occupies the target DRAM page group slot).

use std::collections::HashMap;

use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::{DramPageId, PageId};

use crate::freespace::Span;

/// Where an OS page currently lives.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PageState {
    /// Stored uncompressed in a full DRAM page.
    Uncompressed(DramPageId),
    /// Stored compressed in a sub-page span.
    Compressed(Span),
}

/// What a data-region DRAM page currently holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DramUse {
    /// Free or unassigned (tracked by [`crate::freespace::FreeSpace`]).
    Unassigned,
    /// Holds one uncompressed OS page.
    Uncompressed(PageId),
    /// Holds one or more compressed spans (possibly with free holes).
    Pool,
}

/// Authoritative OS-page → location map with reverse indices.
///
/// # Example
///
/// ```
/// use dylect_memctl::directory::{DramUse, PageDirectory, PageState};
/// use dylect_sim_core::{DramPageId, PageId};
///
/// let mut dir = PageDirectory::new(8);
/// dir.place_uncompressed(PageId::new(3), DramPageId::new(5));
/// assert_eq!(dir.state(PageId::new(3)), Some(PageState::Uncompressed(DramPageId::new(5))));
/// assert_eq!(dir.dram_use(DramPageId::new(5)), DramUse::Uncompressed(PageId::new(3)));
/// ```
#[derive(Clone, Debug)]
pub struct PageDirectory {
    states: Vec<Option<PageState>>,
    dram_owner: HashMap<u64, PageId>,
    compressed_in: HashMap<u64, Vec<PageId>>,
}

impl PageDirectory {
    /// Creates a directory for OS pages `0..os_pages`, all initially
    /// unplaced.
    pub fn new(os_pages: u64) -> Self {
        PageDirectory {
            states: vec![None; usize::try_from(os_pages).expect("os_pages fits usize")],
            dram_owner: HashMap::new(),
            compressed_in: HashMap::new(),
        }
    }

    /// Number of OS pages tracked.
    pub fn os_pages(&self) -> u64 {
        self.states.len() as u64
    }

    /// Current location of `page` (`None` if never placed).
    pub fn state(&self, page: PageId) -> Option<PageState> {
        self.states[page.index() as usize]
    }

    /// What `dram` currently holds.
    pub fn dram_use(&self, dram: DramPageId) -> DramUse {
        if let Some(&os) = self.dram_owner.get(&dram.index()) {
            return DramUse::Uncompressed(os);
        }
        if self
            .compressed_in
            .get(&dram.index())
            .is_some_and(|v| !v.is_empty())
        {
            return DramUse::Pool;
        }
        DramUse::Unassigned
    }

    /// OS pages whose compressed spans live in `dram`.
    pub fn compressed_pages_in(&self, dram: DramPageId) -> &[PageId] {
        self.compressed_in
            .get(&dram.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Records `page` as uncompressed in `dram`, detaching any previous
    /// location bookkeeping for `page`.
    ///
    /// # Panics
    ///
    /// Panics if `dram` already holds a different uncompressed page or
    /// compressed spans.
    pub fn place_uncompressed(&mut self, page: PageId, dram: DramPageId) {
        assert_eq!(
            self.dram_use(dram),
            DramUse::Unassigned,
            "DRAM page {dram} is occupied"
        );
        self.detach(page);
        self.states[page.index() as usize] = Some(PageState::Uncompressed(dram));
        self.dram_owner.insert(dram.index(), page);
    }

    /// Records `page` as compressed into `span`.
    ///
    /// # Panics
    ///
    /// Panics if `span`'s DRAM page holds an uncompressed page.
    pub fn place_compressed(&mut self, page: PageId, span: Span) {
        assert!(
            !self.dram_owner.contains_key(&span.dram_page.index()),
            "DRAM page {} holds an uncompressed page",
            span.dram_page
        );
        self.detach(page);
        self.states[page.index() as usize] = Some(PageState::Compressed(span));
        self.compressed_in
            .entry(span.dram_page.index())
            .or_default()
            .push(page);
    }

    /// Removes `page` from the reverse maps (its DRAM space is presumed
    /// returned to the free tracker by the caller). Returns the old state.
    pub fn detach(&mut self, page: PageId) -> Option<PageState> {
        let old = self.states[page.index() as usize].take();
        match old {
            Some(PageState::Uncompressed(d)) => {
                let removed = self.dram_owner.remove(&d.index());
                debug_assert_eq!(removed, Some(page));
            }
            Some(PageState::Compressed(s)) => {
                let v = self
                    .compressed_in
                    .get_mut(&s.dram_page.index())
                    .expect("reverse map entry exists");
                let pos = v.iter().position(|&p| p == page).expect("page in list");
                v.swap_remove(pos);
                if v.is_empty() {
                    self.compressed_in.remove(&s.dram_page.index());
                }
            }
            None => {}
        }
        old
    }

    /// Counts pages by state: `(uncompressed, compressed)`.
    pub fn census(&self) -> (u64, u64) {
        let mut unc = 0;
        let mut comp = 0;
        for s in &self.states {
            match s {
                Some(PageState::Uncompressed(_)) => unc += 1,
                Some(PageState::Compressed(_)) => comp += 1,
                None => {}
            }
        }
        (unc, comp)
    }
}

// `states` is the ground truth; `dram_owner` is derived and rebuilt. The
// per-DRAM-page `compressed_in` vectors travel verbatim because their order
// is semantic (`detach` swap-removes, and schemes relocate a vacated page's
// spans in list order), written under sorted DRAM-page keys so HashMap
// iteration order never leaks into the stream.
impl Snapshot for PageDirectory {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.seq(self.states.len());
        for s in &self.states {
            match s {
                None => w.u8(0),
                Some(PageState::Uncompressed(d)) => {
                    w.u8(1);
                    w.u64(d.index());
                }
                Some(PageState::Compressed(span)) => {
                    w.u8(2);
                    span.write_snapshot(w);
                }
            }
        }
        let mut keys: Vec<u64> = self.compressed_in.keys().copied().collect();
        keys.sort_unstable();
        w.seq(keys.len());
        for k in keys {
            w.u64(k);
            let v = &self.compressed_in[&k];
            w.seq(v.len());
            for p in v {
                w.u64(p.index());
            }
        }
    }
}

impl Restore for PageDirectory {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.fixed_seq(self.states.len(), "directory page count")?;
        self.dram_owner.clear();
        self.compressed_in.clear();
        let mut compressed = 0u64;
        for i in 0..self.states.len() {
            self.states[i] = match r.u8()? {
                0 => None,
                1 => {
                    let d = r.u64()?;
                    if self.dram_owner.insert(d, PageId::new(i as u64)).is_some() {
                        return Err(SnapError::Corrupt("DRAM page owned twice"));
                    }
                    Some(PageState::Uncompressed(DramPageId::new(d)))
                }
                2 => {
                    compressed += 1;
                    Some(PageState::Compressed(Span::read_snapshot(r)?))
                }
                _ => return Err(SnapError::Corrupt("unknown page state tag")),
            };
        }
        let groups = r.seq(16)?;
        let mut listed = 0u64;
        for _ in 0..groups {
            let dram = r.u64()?;
            if self.dram_owner.contains_key(&dram) {
                return Err(SnapError::Corrupt("compressed spans in an owned DRAM page"));
            }
            let n = r.seq(8)?;
            if n == 0 {
                return Err(SnapError::Corrupt("empty compressed-page list"));
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let p = r.u64()?;
                let consistent = usize::try_from(p)
                    .ok()
                    .and_then(|i| self.states.get(i))
                    .is_some_and(|s| {
                        matches!(s, Some(PageState::Compressed(sp)) if sp.dram_page.index() == dram)
                    });
                if !consistent {
                    return Err(SnapError::Corrupt(
                        "compressed-page list disagrees with states",
                    ));
                }
                v.push(PageId::new(p));
            }
            listed += n as u64;
            if self.compressed_in.insert(dram, v).is_some() {
                return Err(SnapError::Corrupt("duplicate DRAM page key"));
            }
        }
        if listed != compressed {
            return Err(SnapError::Corrupt("compressed-page census mismatch"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(d: u64, off: u32, len: u32) -> Span {
        Span::new(DramPageId::new(d), off, len)
    }

    #[test]
    fn uncompressed_round_trip() {
        let mut dir = PageDirectory::new(4);
        dir.place_uncompressed(PageId::new(1), DramPageId::new(9));
        assert_eq!(
            dir.state(PageId::new(1)),
            Some(PageState::Uncompressed(DramPageId::new(9)))
        );
        assert_eq!(
            dir.dram_use(DramPageId::new(9)),
            DramUse::Uncompressed(PageId::new(1))
        );
        dir.detach(PageId::new(1));
        assert_eq!(dir.state(PageId::new(1)), None);
        assert_eq!(dir.dram_use(DramPageId::new(9)), DramUse::Unassigned);
    }

    #[test]
    fn compressed_reverse_map() {
        let mut dir = PageDirectory::new(4);
        dir.place_compressed(PageId::new(0), span(3, 0, 1024));
        dir.place_compressed(PageId::new(1), span(3, 1024, 512));
        assert_eq!(dir.dram_use(DramPageId::new(3)), DramUse::Pool);
        let mut in3: Vec<u64> = dir
            .compressed_pages_in(DramPageId::new(3))
            .iter()
            .map(|p| p.index())
            .collect();
        in3.sort_unstable();
        assert_eq!(in3, vec![0, 1]);
        dir.detach(PageId::new(0));
        assert_eq!(dir.compressed_pages_in(DramPageId::new(3)).len(), 1);
    }

    #[test]
    fn moving_a_page_updates_both_maps() {
        let mut dir = PageDirectory::new(4);
        dir.place_uncompressed(PageId::new(2), DramPageId::new(0));
        dir.place_compressed(PageId::new(2), span(1, 0, 768));
        assert_eq!(dir.dram_use(DramPageId::new(0)), DramUse::Unassigned);
        assert_eq!(dir.dram_use(DramPageId::new(1)), DramUse::Pool);
        assert_eq!(dir.census(), (0, 1));
    }

    #[test]
    fn census_counts() {
        let mut dir = PageDirectory::new(5);
        dir.place_uncompressed(PageId::new(0), DramPageId::new(0));
        dir.place_uncompressed(PageId::new(1), DramPageId::new(1));
        dir.place_compressed(PageId::new(2), span(2, 0, 512));
        assert_eq!(dir.census(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "is occupied")]
    fn cannot_double_book_dram_page() {
        let mut dir = PageDirectory::new(4);
        dir.place_uncompressed(PageId::new(0), DramPageId::new(7));
        dir.place_uncompressed(PageId::new(1), DramPageId::new(7));
    }

    #[test]
    #[should_panic(expected = "holds an uncompressed page")]
    fn cannot_pack_spans_into_owned_page() {
        let mut dir = PageDirectory::new(4);
        dir.place_uncompressed(PageId::new(0), DramPageId::new(7));
        dir.place_compressed(PageId::new(1), span(7, 0, 256));
    }
}
