//! Free-space management for compressed memory.
//!
//! Mirrors TMCC's structure (paper §II-B): a **Free List** of whole free
//! 4 KB DRAM pages plus per-size free lists of irregular sub-page spaces
//! left behind by compressed pages. [`FreeSpace`] unifies both: freeing a
//! span coalesces it with its neighbors, and a span that grows back to a
//! full page is promoted to the whole-page list; allocating a span prefers
//! a tightly fitting existing hole (best-fit) and only carves a fresh page
//! when no hole fits.

use std::collections::{BTreeMap, BTreeSet};

use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::{DramPageId, PAGE_BYTES};

/// A contiguous range of free or allocated bytes inside one DRAM page.
///
/// Spans never cross a 4 KB DRAM page boundary (compressed pages are packed
/// within pages, as in the prior works the paper builds on).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// The DRAM page containing the span.
    pub dram_page: DramPageId,
    /// Byte offset within the page.
    pub offset: u32,
    /// Length in bytes.
    pub len: u32,
}

impl Span {
    /// Creates a span, validating it stays inside one page.
    ///
    /// # Panics
    ///
    /// Panics if the span is empty or crosses the page boundary.
    pub fn new(dram_page: DramPageId, offset: u32, len: u32) -> Self {
        assert!(len > 0, "empty span");
        assert!(
            offset as u64 + len as u64 <= PAGE_BYTES,
            "span crosses page boundary"
        );
        Span {
            dram_page,
            offset,
            len,
        }
    }

    /// A span covering an entire DRAM page.
    pub fn full_page(dram_page: DramPageId) -> Self {
        Span::new(dram_page, 0, PAGE_BYTES as u32)
    }

    /// Reads a span written by its [`Snapshot`] impl, re-validating the
    /// page-boundary invariant (a corrupt stream must error, not panic in
    /// [`Span::new`]).
    pub fn read_snapshot(r: &mut SnapReader<'_>) -> Result<Span, SnapError> {
        let dram_page = DramPageId::new(r.u64()?);
        let offset = r.u32()?;
        let len = r.u32()?;
        if len == 0 || offset as u64 + len as u64 > PAGE_BYTES {
            return Err(SnapError::Corrupt("span out of page bounds"));
        }
        Ok(Span {
            dram_page,
            offset,
            len,
        })
    }
}

impl Snapshot for Span {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.dram_page.index());
        w.u32(self.offset);
        w.u32(self.len);
    }
}

/// An indexed set of whole free DRAM pages with O(1) insert, pop, and
/// remove-specific.
#[derive(Clone, Debug, Default)]
pub struct PageSet {
    pages: Vec<DramPageId>,
    index: std::collections::HashMap<u64, usize>,
}

impl PageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages in the set.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Whether `page` is in the set.
    pub fn contains(&self, page: DramPageId) -> bool {
        self.index.contains_key(&page.index())
    }

    /// Inserts `page`; returns `false` if it was already present.
    pub fn insert(&mut self, page: DramPageId) -> bool {
        if self.contains(page) {
            return false;
        }
        self.index.insert(page.index(), self.pages.len());
        self.pages.push(page);
        true
    }

    /// Removes and returns an arbitrary page (LIFO).
    pub fn pop(&mut self) -> Option<DramPageId> {
        let page = self.pages.pop()?;
        self.index.remove(&page.index());
        Some(page)
    }

    /// Removes a specific page; returns `false` if absent.
    pub fn remove(&mut self, page: DramPageId) -> bool {
        let Some(pos) = self.index.remove(&page.index()) else {
            return false;
        };
        let last = self.pages.pop().expect("index implies non-empty");
        if pos < self.pages.len() {
            self.pages[pos] = last;
            self.index.insert(last.index(), pos);
        }
        true
    }
}

// `pages` order is semantic (`pop` is LIFO and `remove` swap-fills), so it
// travels verbatim; `index` is derived and rebuilt.
impl Snapshot for PageSet {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.seq(self.pages.len());
        for p in &self.pages {
            w.u64(p.index());
        }
    }
}

impl Restore for PageSet {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.seq(8)?;
        self.pages.clear();
        self.index.clear();
        self.pages.reserve(n);
        for _ in 0..n {
            if !self.insert(DramPageId::new(r.u64()?)) {
                return Err(SnapError::Corrupt("duplicate free page"));
            }
        }
        Ok(())
    }
}

/// Unified free-space tracker: whole pages + coalescing sub-page spans.
///
/// # Example
///
/// ```
/// use dylect_memctl::freespace::FreeSpace;
/// use dylect_sim_core::DramPageId;
///
/// let mut fs = FreeSpace::new();
/// fs.add_page(DramPageId::new(3));
/// let span = fs.alloc_span(1024).unwrap();
/// assert_eq!(span.len, 1024);
/// fs.free_span(span);
/// assert_eq!(fs.free_page_count(), 1); // coalesced back to a whole page
/// ```
#[derive(Clone, Debug, Default)]
pub struct FreeSpace {
    pages: PageSet,
    /// Free spans by (page, offset) for neighbor coalescing.
    by_addr: BTreeMap<(u64, u32), u32>,
    /// Free spans by (len, page, offset) for best-fit allocation.
    by_size: BTreeSet<(u32, u64, u32)>,
}

impl FreeSpace {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of whole free DRAM pages.
    pub fn free_page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total free bytes (whole pages + spans).
    pub fn free_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_BYTES + self.by_addr.values().map(|&l| l as u64).sum::<u64>()
    }

    /// Whether a whole DRAM page is free.
    pub fn is_page_free(&self, page: DramPageId) -> bool {
        self.pages.contains(page)
    }

    /// Adds a whole free page.
    ///
    /// # Panics
    ///
    /// Panics if the page (or part of it) is already free.
    pub fn add_page(&mut self, page: DramPageId) {
        assert!(
            self.spans_in_page(page).next().is_none(),
            "page {page} has free spans; free them as spans instead"
        );
        assert!(self.pages.insert(page), "double free of page {page}");
    }

    /// Takes an arbitrary whole free page.
    pub fn take_any_page(&mut self) -> Option<DramPageId> {
        self.pages.pop()
    }

    /// Takes a *specific* whole free page if it is free.
    ///
    /// DyLeCT uses this during ML1→ML0 promotion when a DRAM page group
    /// slot happens to be free.
    pub fn take_specific_page(&mut self, page: DramPageId) -> bool {
        self.pages.remove(page)
    }

    /// Allocates `len` bytes: best-fit among existing holes, else carves a
    /// fresh page. Returns `None` when out of memory.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or exceeds a page.
    pub fn alloc_span(&mut self, len: u32) -> Option<Span> {
        assert!(len > 0 && len as u64 <= PAGE_BYTES, "bad span length {len}");
        // Best fit: smallest hole with hole.len >= len.
        if let Some(&(hole_len, page, offset)) = self.by_size.range((len, 0, 0)..).next() {
            self.remove_span_internal(page, offset, hole_len);
            if hole_len > len {
                self.insert_span_internal(page, offset + len, hole_len - len);
            }
            return Some(Span::new(DramPageId::new(page), offset, len));
        }
        // Carve from a whole page.
        let page = self.pages.pop()?;
        if (len as u64) < PAGE_BYTES {
            self.insert_span_internal(page.index(), len, PAGE_BYTES as u32 - len);
        }
        Some(Span::new(page, 0, len))
    }

    /// Like [`FreeSpace::alloc_span`], but never allocates inside
    /// `exclude` — needed when relocating compressed spans *out of* a DRAM
    /// page that is being vacated (a hole in the page being vacated must not
    /// receive its own contents back).
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or exceeds a page.
    pub fn alloc_span_excluding(&mut self, len: u32, exclude: DramPageId) -> Option<Span> {
        assert!(len > 0 && len as u64 <= PAGE_BYTES, "bad span length {len}");
        if let Some(&(hole_len, page, offset)) = self
            .by_size
            .range((len, 0, 0)..)
            .find(|&&(_, page, _)| page != exclude.index())
        {
            self.remove_span_internal(page, offset, hole_len);
            if hole_len > len {
                self.insert_span_internal(page, offset + len, hole_len - len);
            }
            return Some(Span::new(DramPageId::new(page), offset, len));
        }
        // Whole free pages can never be the excluded (occupied) page.
        let page = self.pages.pop()?;
        debug_assert_ne!(page, exclude, "excluded page was on the free list");
        if (len as u64) < PAGE_BYTES {
            self.insert_span_internal(page.index(), len, PAGE_BYTES as u32 - len);
        }
        Some(Span::new(page, 0, len))
    }

    /// Frees a span, coalescing with adjacent free spans; a fully free page
    /// is promoted to the whole-page list.
    ///
    /// # Panics
    ///
    /// Panics on double free (overlap with an existing free span or a free
    /// page).
    pub fn free_span(&mut self, span: Span) {
        assert!(
            !self.pages.contains(span.dram_page),
            "freeing span in already-free page {}",
            span.dram_page
        );
        let p = span.dram_page.index();
        let mut start = span.offset;
        let mut len = span.len;

        // Coalesce with predecessor.
        if let Some((&(pp, po), &pl)) = self
            .by_addr
            .range(..(p, start))
            .next_back()
            .filter(|(&(pp, _), _)| pp == p)
        {
            assert!(po + pl <= start, "double free: overlaps predecessor");
            if po + pl == start {
                self.remove_span_internal(pp, po, pl);
                start = po;
                len += pl;
            }
        }
        // Coalesce with successor.
        if let Some((&(sp, so), &sl)) = self
            .by_addr
            .range((p, start)..)
            .next()
            .filter(|(&(sp, _), _)| sp == p)
        {
            assert!(start + len <= so, "double free: overlaps successor");
            if start + len == so {
                self.remove_span_internal(sp, so, sl);
                len += sl;
            }
        }

        if len as u64 == PAGE_BYTES {
            assert!(self.pages.insert(span.dram_page), "double free of page");
        } else {
            self.insert_span_internal(p, start, len);
        }
    }

    /// Iterates over free spans within one DRAM page.
    pub fn spans_in_page(&self, page: DramPageId) -> impl Iterator<Item = Span> + '_ {
        let p = page.index();
        self.by_addr
            .range((p, 0)..(p, PAGE_BYTES as u32))
            .map(move |(&(_, o), &l)| Span::new(page, o, l))
    }

    fn insert_span_internal(&mut self, page: u64, offset: u32, len: u32) {
        self.by_addr.insert((page, offset), len);
        self.by_size.insert((len, page, offset));
    }

    fn remove_span_internal(&mut self, page: u64, offset: u32, len: u32) {
        let removed = self.by_addr.remove(&(page, offset));
        debug_assert_eq!(removed, Some(len));
        let removed = self.by_size.remove(&(len, page, offset));
        debug_assert!(removed);
    }
}

// `by_addr` is a BTreeMap, so iteration order is deterministic; `by_size`
// is derived and rebuilt.
impl Snapshot for FreeSpace {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.pages.write_snapshot(w);
        w.seq(self.by_addr.len());
        for (&(page, offset), &len) in &self.by_addr {
            w.u64(page);
            w.u32(offset);
            w.u32(len);
        }
    }
}

impl Restore for FreeSpace {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.pages.restore_snapshot(r)?;
        let n = r.seq(16)?;
        self.by_addr.clear();
        self.by_size.clear();
        for _ in 0..n {
            let page = r.u64()?;
            let offset = r.u32()?;
            let len = r.u32()?;
            if len == 0 || offset as u64 + len as u64 > PAGE_BYTES {
                return Err(SnapError::Corrupt("free span out of page bounds"));
            }
            if self.by_addr.insert((page, offset), len).is_some() {
                return Err(SnapError::Corrupt("duplicate free span"));
            }
            self.by_size.insert((len, page, offset));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pageset_basics() {
        let mut s = PageSet::new();
        assert!(s.insert(DramPageId::new(1)));
        assert!(s.insert(DramPageId::new(2)));
        assert!(!s.insert(DramPageId::new(1)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(DramPageId::new(1)));
        assert!(!s.remove(DramPageId::new(1)));
        assert_eq!(s.pop(), Some(DramPageId::new(2)));
        assert!(s.is_empty());
    }

    #[test]
    fn alloc_prefers_tight_hole_over_fresh_page() {
        let mut fs = FreeSpace::new();
        fs.add_page(DramPageId::new(0));
        fs.add_page(DramPageId::new(1));
        // Carve page 1 (LIFO) leaving a 3072 B hole.
        let a = fs.alloc_span(1024).unwrap();
        assert_eq!(a.dram_page, DramPageId::new(1));
        // A 512 B request should come from the hole, not page 0.
        let b = fs.alloc_span(512).unwrap();
        assert_eq!(b.dram_page, DramPageId::new(1));
        assert_eq!(b.offset, 1024);
        assert_eq!(fs.free_page_count(), 1);
    }

    #[test]
    fn best_fit_picks_smallest_adequate_hole() {
        let mut fs = FreeSpace::new();
        fs.add_page(DramPageId::new(0));
        fs.add_page(DramPageId::new(1));
        // Make a 3072 B hole in one page and a 1024 B hole in another.
        let big = fs.alloc_span(1024).unwrap(); // page 1, hole 3072
        let small = fs.alloc_span(3072).unwrap(); // page 0 (no 3072 hole fits? 3072 fits in 3072!)
                                                  // The 3072 request exactly consumed page 1's hole; redo setup.
        fs.free_span(big);
        fs.free_span(small);
        assert_eq!(fs.free_page_count(), 2);

        let _a = fs.alloc_span(3072).unwrap(); // hole of 1024 left
        let _b = fs.alloc_span(1024).unwrap(); // takes the 1024 hole exactly
        assert_eq!(fs.free_page_count(), 1);
    }

    #[test]
    fn free_coalesces_to_whole_page() {
        let mut fs = FreeSpace::new();
        fs.add_page(DramPageId::new(5));
        let a = fs.alloc_span(1000).unwrap();
        let b = fs.alloc_span(2000).unwrap();
        let c = fs.alloc_span(1096).unwrap();
        assert_eq!(fs.free_page_count(), 0);
        fs.free_span(b);
        fs.free_span(a);
        fs.free_span(c);
        assert_eq!(fs.free_page_count(), 1);
        assert!(fs.is_page_free(DramPageId::new(5)));
        assert_eq!(fs.free_bytes(), PAGE_BYTES);
    }

    #[test]
    fn take_specific_page() {
        let mut fs = FreeSpace::new();
        fs.add_page(DramPageId::new(7));
        assert!(!fs.take_specific_page(DramPageId::new(8)));
        assert!(fs.take_specific_page(DramPageId::new(7)));
        assert!(!fs.take_specific_page(DramPageId::new(7)));
    }

    #[test]
    fn spans_in_page_lists_holes() {
        let mut fs = FreeSpace::new();
        fs.add_page(DramPageId::new(2));
        let a = fs.alloc_span(512).unwrap();
        let _b = fs.alloc_span(512).unwrap();
        fs.free_span(a); // hole at 0..512 and 1024..4096
        let spans: Vec<Span> = fs.spans_in_page(DramPageId::new(2)).collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], Span::new(DramPageId::new(2), 0, 512));
        assert_eq!(spans[1], Span::new(DramPageId::new(2), 1024, 3072));
    }

    #[test]
    fn out_of_memory_returns_none() {
        let mut fs = FreeSpace::new();
        assert!(fs.alloc_span(64).is_none());
        fs.add_page(DramPageId::new(0));
        assert!(fs.alloc_span(4096).is_some());
        assert!(fs.alloc_span(64).is_none());
    }

    #[test]
    fn accounting_is_conserved() {
        let mut fs = FreeSpace::new();
        for i in 0..4 {
            fs.add_page(DramPageId::new(i));
        }
        let total = fs.free_bytes();
        let mut live = Vec::new();
        // Deterministic pseudo-random alloc/free churn.
        let mut x = 123u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if !x.is_multiple_of(3) || live.is_empty() {
                let len = ((x >> 8) % 1500 + 64) as u32;
                if let Some(s) = fs.alloc_span(len) {
                    live.push(s);
                }
            } else {
                let idx = ((x >> 16) as usize) % live.len();
                fs.free_span(live.swap_remove(idx));
            }
            let live_bytes: u64 = live.iter().map(|s| s.len as u64).sum();
            assert_eq!(fs.free_bytes() + live_bytes, total, "bytes leaked");
        }
        for s in live.drain(..) {
            fs.free_span(s);
        }
        assert_eq!(fs.free_bytes(), total);
        assert_eq!(fs.free_page_count(), 4, "all pages should re-coalesce");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_page_panics() {
        let mut fs = FreeSpace::new();
        fs.add_page(DramPageId::new(0));
        fs.add_page(DramPageId::new(0));
    }

    #[test]
    #[should_panic(expected = "already-free page")]
    fn free_span_in_free_page_panics() {
        let mut fs = FreeSpace::new();
        fs.add_page(DramPageId::new(0));
        fs.free_span(Span::new(DramPageId::new(0), 0, 64));
    }

    #[test]
    #[should_panic(expected = "crosses page boundary")]
    fn span_cannot_cross_pages() {
        let _ = Span::new(DramPageId::new(0), 4000, 200);
    }
}

#[cfg(test)]
mod exclusion_tests {
    use super::*;

    #[test]
    fn alloc_excluding_skips_holes_in_excluded_page() {
        let mut fs = FreeSpace::new();
        fs.add_page(DramPageId::new(0));
        fs.add_page(DramPageId::new(1));
        // Put a perfect-fit hole in page 1.
        let a = fs.alloc_span(512).unwrap(); // page 1, leaves 3584 hole
        assert_eq!(a.dram_page, DramPageId::new(1));
        let b = fs
            .alloc_span_excluding(3584, DramPageId::new(1))
            .expect("page 0 available");
        assert_eq!(b.dram_page, DramPageId::new(0));
        // Without exclusion it would have used page 1's hole.
        fs.free_span(b);
        let c = fs.alloc_span(3584).unwrap();
        assert_eq!(c.dram_page, DramPageId::new(1));
    }

    #[test]
    fn alloc_excluding_exhaustion() {
        let mut fs = FreeSpace::new();
        fs.add_page(DramPageId::new(9));
        let _a = fs.alloc_span(512).unwrap(); // hole lives in page 9
        assert!(fs.alloc_span_excluding(256, DramPageId::new(9)).is_none());
    }
}
