//! Hardware prefetcher models.
//!
//! The paper's simulated CPU (Table 3) uses a next-line prefetcher with
//! automatic enable/disable at L1/L2 and stride prefetchers (degree 2 at L1,
//! degree 4 at L2). Both are modeled here as *block-address stream*
//! prefetchers: the caller feeds demand block keys and receives candidate
//! block keys to prefetch.

use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

/// A next-line prefetcher with an accuracy-driven automatic enable/disable.
///
/// The prefetcher tracks how many of its recently issued prefetches were
/// subsequently demanded. When accuracy drops below a threshold it disables
/// itself; it periodically re-probes by re-enabling after a backoff.
///
/// # Example
///
/// ```
/// use dylect_cache::prefetch::NextLinePrefetcher;
///
/// let mut pf = NextLinePrefetcher::new();
/// let c = pf.on_demand(100);
/// assert_eq!(c, Some(101));
/// ```
#[derive(Clone, Debug)]
pub struct NextLinePrefetcher {
    enabled: bool,
    issued: [u64; 32],
    cursor: usize,
    useful: u32,
    issued_count: u32,
    probe_countdown: u32,
}

impl Default for NextLinePrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl NextLinePrefetcher {
    /// Window of issued prefetches after which accuracy is evaluated.
    const WINDOW: u32 = 64;
    /// Minimum useful fraction to stay enabled.
    const MIN_ACCURACY: f64 = 0.35;
    /// Demands to wait before re-probing after a disable.
    const BACKOFF: u32 = 4096;

    /// Creates an enabled next-line prefetcher.
    pub fn new() -> Self {
        NextLinePrefetcher {
            enabled: true,
            issued: [u64::MAX; 32],
            cursor: 0,
            useful: 0,
            issued_count: 0,
            probe_countdown: 0,
        }
    }

    /// Returns whether the prefetcher is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Observes a demand access to `block` and returns the block to
    /// prefetch, if any.
    pub fn on_demand(&mut self, block: u64) -> Option<u64> {
        // Score usefulness: did we predict this block?
        if self.issued.contains(&block) {
            self.useful += 1;
        }

        if !self.enabled {
            self.probe_countdown = self.probe_countdown.saturating_sub(1);
            if self.probe_countdown == 0 {
                self.enabled = true;
                self.useful = 0;
                self.issued_count = 0;
            }
            return None;
        }

        let candidate = block + 1;
        self.issued[self.cursor] = candidate;
        self.cursor = (self.cursor + 1) % self.issued.len();
        self.issued_count += 1;

        if self.issued_count >= Self::WINDOW {
            let accuracy = self.useful as f64 / self.issued_count as f64;
            if accuracy < Self::MIN_ACCURACY {
                self.enabled = false;
                self.probe_countdown = Self::BACKOFF;
            }
            self.useful = 0;
            self.issued_count = 0;
        }
        Some(candidate)
    }
}

impl Snapshot for NextLinePrefetcher {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.bool(self.enabled);
        for &b in &self.issued {
            w.u64(b);
        }
        w.u64(self.cursor as u64);
        w.u32(self.useful);
        w.u32(self.issued_count);
        w.u32(self.probe_countdown);
    }
}

impl Restore for NextLinePrefetcher {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.enabled = r.bool()?;
        for b in &mut self.issued {
            *b = r.u64()?;
        }
        let cursor = r.u64()? as usize;
        if cursor >= self.issued.len() {
            return Err(SnapError::Corrupt("prefetch cursor out of range"));
        }
        self.cursor = cursor;
        self.useful = r.u32()?;
        self.issued_count = r.u32()?;
        self.probe_countdown = r.u32()?;
        Ok(())
    }
}

/// A fixed-capacity batch of prefetch candidates returned by
/// [`StridePrefetcher::on_demand`].
///
/// Dereferences to a slice; exists so the hot path (one call per L1 demand
/// miss) never heap-allocates.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Prefetches {
    buf: [u64; Prefetches::MAX],
    len: u8,
}

impl Prefetches {
    /// Maximum candidates per demand (bounds the supported degree).
    pub const MAX: usize = 8;

    #[inline]
    fn push(&mut self, block: u64) {
        self.buf[self.len as usize] = block;
        self.len += 1;
    }
}

impl std::ops::Deref for Prefetches {
    type Target = [u64];

    #[inline]
    fn deref(&self) -> &[u64] {
        &self.buf[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a Prefetches {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct StrideEntry {
    tag: u64,
    last_block: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// A table-based stride prefetcher.
///
/// Streams are identified by a caller-provided id (the simulator uses the
/// access's 4 KB page, a common PC-less approximation). Once the same stride
/// is observed twice, `degree` blocks ahead are prefetched.
///
/// # Example
///
/// ```
/// use dylect_cache::prefetch::StridePrefetcher;
///
/// let mut pf = StridePrefetcher::new(16, 2);
/// assert!(pf.on_demand(7, 100).is_empty()); // first touch: learn
/// assert!(pf.on_demand(7, 102).is_empty()); // stride 2 observed once
/// let out = pf.on_demand(7, 104);            // confirmed: prefetch ahead
/// assert_eq!(&out[..], &[106, 108]);
/// ```
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    degree: u32,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with `entries` table slots issuing
    /// `degree` prefetches per confirmed access.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `degree` exceeds [`Prefetches::MAX`].
    pub fn new(entries: usize, degree: u32) -> Self {
        assert!(entries > 0, "stride table must have entries");
        assert!(
            degree as usize <= Prefetches::MAX,
            "degree exceeds Prefetches::MAX"
        );
        StridePrefetcher {
            table: vec![StrideEntry::default(); entries],
            degree,
        }
    }

    /// Observes a demand access to `block` on stream `stream_id`; returns
    /// blocks to prefetch (possibly empty).
    pub fn on_demand(&mut self, stream_id: u64, block: u64) -> Prefetches {
        let idx = (stream_id % self.table.len() as u64) as usize;
        let e = &mut self.table[idx];
        let mut out = Prefetches::default();
        if !e.valid || e.tag != stream_id {
            *e = StrideEntry {
                tag: stream_id,
                last_block: block,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return out;
        }
        let stride = block as i64 - e.last_block as i64;
        e.last_block = block;
        if stride == 0 {
            return out;
        }
        if stride == e.stride {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        if e.confidence >= 1 {
            for k in 1..=self.degree as i64 {
                let b = block as i64 + e.stride * k;
                if let Ok(b) = u64::try_from(b) {
                    out.push(b);
                }
            }
        }
        out
    }
}

impl Snapshot for StridePrefetcher {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.seq(self.table.len());
        for e in &self.table {
            w.u64(e.tag);
            w.u64(e.last_block);
            w.i64(e.stride);
            w.u8(e.confidence);
            w.bool(e.valid);
        }
    }
}

impl Restore for StridePrefetcher {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.fixed_seq(self.table.len(), "stride table size")?;
        for e in &mut self.table {
            e.tag = r.u64()?;
            e.last_block = r.u64()?;
            e.stride = r.i64()?;
            e.confidence = r.u8()?;
            e.valid = r.bool()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_predicts_sequential() {
        let mut pf = NextLinePrefetcher::new();
        assert_eq!(pf.on_demand(10), Some(11));
        assert_eq!(pf.on_demand(11), Some(12));
    }

    #[test]
    fn next_line_disables_on_random_stream() {
        let mut pf = NextLinePrefetcher::new();
        let mut x: u64 = 12345;
        let mut issued_any_after_disable = false;
        for i in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let block = x >> 32;
            let out = pf.on_demand(block);
            if i > 200 && !pf.is_enabled() {
                assert!(out.is_none());
                issued_any_after_disable = true;
                break;
            }
        }
        assert!(issued_any_after_disable, "never disabled on random stream");
    }

    #[test]
    fn next_line_stays_enabled_on_sequential() {
        let mut pf = NextLinePrefetcher::new();
        for b in 0..1000u64 {
            pf.on_demand(b);
        }
        assert!(pf.is_enabled());
    }

    #[test]
    fn next_line_reenables_after_backoff() {
        let mut pf = NextLinePrefetcher::new();
        let mut x: u64 = 7;
        // Drive it to disable.
        while pf.is_enabled() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            pf.on_demand(x >> 32);
        }
        // Feed sequential demands until it re-probes.
        let mut b = 1_000_000;
        for _ in 0..10_000 {
            b += 1;
            pf.on_demand(b);
            if pf.is_enabled() {
                return;
            }
        }
        panic!("prefetcher never re-enabled");
    }

    #[test]
    fn stride_learns_negative_stride() {
        let mut pf = StridePrefetcher::new(8, 1);
        pf.on_demand(1, 100);
        pf.on_demand(1, 97);
        let out = pf.on_demand(1, 94);
        assert_eq!(&out[..], &[91]);
    }

    #[test]
    fn stride_resets_on_stream_conflict() {
        let mut pf = StridePrefetcher::new(1, 2);
        pf.on_demand(1, 100);
        pf.on_demand(1, 102);
        // Stream 2 aliases into the single entry, evicting stream 1.
        assert!(pf.on_demand(2, 500).is_empty());
        assert!(pf.on_demand(1, 104).is_empty(), "stream 1 must re-learn");
    }

    #[test]
    fn stride_ignores_zero_stride() {
        let mut pf = StridePrefetcher::new(8, 2);
        pf.on_demand(3, 50);
        assert!(pf.on_demand(3, 50).is_empty());
        assert!(pf.on_demand(3, 50).is_empty());
    }

    #[test]
    fn stride_does_not_underflow() {
        let mut pf = StridePrefetcher::new(8, 4);
        pf.on_demand(1, 10);
        pf.on_demand(1, 5);
        let out = pf.on_demand(1, 0);
        // Stride -5 from block 0 would go negative; those candidates drop.
        assert!(out.is_empty());
    }
}
