//! A sector (sub-block) cache.
//!
//! Sector caches [Rothman & Smith] amortize tag overhead by attaching one
//! tag to a large line whose *sectors* are filled individually. The DyLeCT
//! paper's §IV-A2 considers one ("Option B") for the naive short-CTE cache:
//! 64 B lines of gathered short CTEs, where each fetched unified block can
//! fill only a 2 B sector — so lines warm up slowly and most bits sit
//! invalid in the common case.

use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::stats::Counter;

/// Statistics of a [`SectorCache`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SectorStats {
    /// Lookups where both the line and the sector were present.
    pub sector_hits: Counter,
    /// Lookups where the line was present but the sector invalid.
    pub sector_misses: Counter,
    /// Lookups where the whole line was absent.
    pub line_misses: Counter,
}

impl SectorStats {
    /// Full hit rate (line + sector present).
    pub fn hit_rate(&self) -> f64 {
        let total = self.sector_hits.get() + self.sector_misses.get() + self.line_misses.get();
        self.sector_hits.fraction_of(total)
    }
}

#[derive(Clone, Debug)]
struct SectorLine {
    tag: u64,
    valid: bool,
    stamp: u64,
    sectors: Vec<bool>,
}

/// Outcome of a [`SectorCache::access`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SectorOutcome {
    /// Line and sector present.
    Hit,
    /// Line present, sector not yet filled.
    SectorMiss,
    /// Line absent entirely.
    LineMiss,
}

/// A set-associative sector cache keyed by *sector key*; `sectors_per_line`
/// consecutive sector keys share one line (and one tag).
///
/// # Example
///
/// ```
/// use dylect_cache::sector::{SectorCache, SectorOutcome};
///
/// let mut c = SectorCache::new(64, 4, 8); // 64 lines, 4-way, 8 sectors/line
/// assert_eq!(c.access(17), SectorOutcome::LineMiss);
/// c.fill(17);
/// assert_eq!(c.access(17), SectorOutcome::Hit);
/// // Same line, different sector: the tag matches but the sector is cold.
/// assert_eq!(c.access(18), SectorOutcome::SectorMiss);
/// ```
#[derive(Clone, Debug)]
pub struct SectorCache {
    sets: Vec<Vec<SectorLine>>,
    sectors_per_line: u64,
    clock: u64,
    stats: SectorStats,
}

impl SectorCache {
    /// Creates an empty sector cache with `lines` total lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (`lines` not divisible by
    /// `ways`, or zero anywhere).
    pub fn new(lines: u64, ways: u32, sectors_per_line: u64) -> Self {
        assert!(
            lines > 0 && ways > 0 && sectors_per_line > 0,
            "empty geometry"
        );
        assert!(
            lines.is_multiple_of(ways as u64),
            "lines must divide into ways"
        );
        let num_sets = (lines / ways as u64) as usize;
        SectorCache {
            sets: (0..num_sets)
                .map(|_| {
                    (0..ways)
                        .map(|_| SectorLine {
                            tag: 0,
                            valid: false,
                            stamp: 0,
                            sectors: vec![false; sectors_per_line as usize],
                        })
                        .collect()
                })
                .collect(),
            sectors_per_line,
            clock: 0,
            stats: SectorStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SectorStats {
        &self.stats
    }

    /// Resets statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = SectorStats::default();
    }

    fn locate(&self, sector_key: u64) -> (usize, u64, usize) {
        let line_key = sector_key / self.sectors_per_line;
        let set = (line_key % self.sets.len() as u64) as usize;
        let sector = (sector_key % self.sectors_per_line) as usize;
        (set, line_key, sector)
    }

    /// Looks up a sector, updating recency and statistics.
    pub fn access(&mut self, sector_key: u64) -> SectorOutcome {
        self.clock += 1;
        let clock = self.clock;
        let (set, line_key, sector) = self.locate(sector_key);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == line_key {
                line.stamp = clock;
                return if line.sectors[sector] {
                    self.stats.sector_hits.incr();
                    SectorOutcome::Hit
                } else {
                    self.stats.sector_misses.incr();
                    SectorOutcome::SectorMiss
                };
            }
        }
        self.stats.line_misses.incr();
        SectorOutcome::LineMiss
    }

    /// Fills one sector, allocating (and cold-clearing) the line if needed;
    /// returns `true` if a valid line was evicted.
    pub fn fill(&mut self, sector_key: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let (set, line_key, sector) = self.locate(sector_key);
        // Present: set the sector.
        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.tag == line_key)
        {
            line.sectors[sector] = true;
            line.stamp = clock;
            return false;
        }
        // Allocate: invalid way first, else LRU victim.
        let victim = if let Some(i) = self.sets[set].iter().position(|l| !l.valid) {
            i
        } else {
            self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp)
                .map(|(i, _)| i)
                .expect("non-empty set")
        };
        let evicted = self.sets[set][victim].valid;
        let line = &mut self.sets[set][victim];
        line.tag = line_key;
        line.valid = true;
        line.stamp = clock;
        line.sectors.fill(false);
        line.sectors[sector] = true;
        evicted
    }

    /// Fraction of sectors valid among resident lines (the "wasted bits"
    /// measure of the paper's Figure 9 Option B).
    pub fn sector_utilization(&self) -> f64 {
        let mut valid_lines = 0u64;
        let mut valid_sectors = 0u64;
        for set in &self.sets {
            for line in set {
                if line.valid {
                    valid_lines += 1;
                    valid_sectors += line.sectors.iter().filter(|&&s| s).count() as u64;
                }
            }
        }
        if valid_lines == 0 {
            0.0
        } else {
            valid_sectors as f64 / (valid_lines * self.sectors_per_line) as f64
        }
    }
}

impl Snapshot for SectorStats {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.sector_hits.write_snapshot(w);
        self.sector_misses.write_snapshot(w);
        self.line_misses.write_snapshot(w);
    }
}

impl Restore for SectorStats {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.sector_hits.restore_snapshot(r)?;
        self.sector_misses.restore_snapshot(r)?;
        self.line_misses.restore_snapshot(r)
    }
}

impl Snapshot for SectorCache {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.seq(self.sets.len());
        for set in &self.sets {
            w.seq(set.len());
            for line in set {
                w.u64(line.tag);
                w.bool(line.valid);
                w.u64(line.stamp);
                for &s in &line.sectors {
                    w.bool(s);
                }
            }
        }
        w.u64(self.clock);
        self.stats.write_snapshot(w);
    }
}

impl Restore for SectorCache {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.fixed_seq(self.sets.len(), "sector cache set count")?;
        for set in &mut self.sets {
            r.fixed_seq(set.len(), "sector cache way count")?;
            for line in set {
                line.tag = r.u64()?;
                line.valid = r.bool()?;
                line.stamp = r.u64()?;
                for s in &mut line.sectors {
                    *s = r.bool()?;
                }
            }
        }
        self.clock = r.u64()?;
        self.stats.restore_snapshot(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> SectorCache {
        SectorCache::new(8, 2, 4)
    }

    #[test]
    fn hit_sector_miss_line_miss() {
        let mut c = cache();
        assert_eq!(c.access(0), SectorOutcome::LineMiss);
        c.fill(0);
        assert_eq!(c.access(0), SectorOutcome::Hit);
        assert_eq!(c.access(1), SectorOutcome::SectorMiss);
        c.fill(1);
        assert_eq!(c.access(1), SectorOutcome::Hit);
        assert_eq!(c.stats().sector_hits.get(), 2);
        assert_eq!(c.stats().sector_misses.get(), 1);
        assert_eq!(c.stats().line_misses.get(), 1);
    }

    #[test]
    fn allocation_clears_old_sectors() {
        let mut c = SectorCache::new(2, 2, 4); // one set, 2 ways
        c.fill(0); // line 0, sector 0
        c.fill(4); // line 1, sector 0
        c.fill(8); // line 2 evicts line 0 (LRU)
        assert_eq!(c.access(0), SectorOutcome::LineMiss, "line 0 evicted");
        // Re-allocate line 0: its old sector must not have survived.
        c.fill(1);
        assert_eq!(c.access(0), SectorOutcome::SectorMiss);
    }

    #[test]
    fn eviction_reported() {
        let mut c = SectorCache::new(2, 2, 2);
        assert!(!c.fill(0));
        assert!(!c.fill(2));
        assert!(c.fill(4), "third line in a 2-way set evicts");
    }

    #[test]
    fn utilization_tracks_warmup() {
        let mut c = cache();
        c.fill(0);
        assert!((c.sector_utilization() - 0.25).abs() < 1e-9);
        c.fill(1);
        c.fill(2);
        c.fill(3);
        assert!((c.sector_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slow_warmup_is_the_point() {
        // Random sector stream: lines allocate but sectors stay mostly cold
        // — the paper's Option B pathology.
        let mut c = SectorCache::new(64, 4, 32);
        let mut x = 9u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 32) % 4096;
            if c.access(key) != SectorOutcome::Hit {
                c.fill(key);
            }
        }
        assert!(
            c.sector_utilization() < 0.5,
            "random fills should leave most sectors invalid: {}",
            c.sector_utilization()
        );
    }

    #[test]
    #[should_panic(expected = "divide into ways")]
    fn rejects_bad_geometry() {
        let _ = SectorCache::new(9, 2, 4);
    }
}
