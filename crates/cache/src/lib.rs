//! Cache and prefetcher models for the DyLeCT simulator.
//!
//! [`SetAssocCache`] is a tag-only set-associative cache used throughout the
//! workspace: for the CPU's L1/L2/L3 data caches, for TLBs (a TLB is just a
//! cache of page numbers), for the page-walker cache, and — most importantly
//! for this reproduction — for the memory controller's **CTE cache**, which
//! caches 64 B blocks of the compressed-memory translation tables.
//!
//! The cache stores no data payload by default (the simulator tracks *where*
//! values live, not the values themselves), but is generic over a per-line
//! metadata type for callers that need one.
//!
//! [`prefetch`] provides the next-line and stride prefetchers from the
//! paper's Table 3.

pub mod prefetch;
pub mod sector;

use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::stats::Counter;

/// Replacement policy of a [`SetAssocCache`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Least-recently-used (the default, and what the paper assumes).
    #[default]
    Lru,
    /// Pseudo-random replacement (deterministic xorshift sequence).
    Random,
}

/// Static geometry of a [`SetAssocCache`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (lines per set).
    pub ways: u32,
    /// Line (block) size in bytes; keys are derived as `addr / block_bytes`.
    pub block_bytes: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Convenience constructor for an LRU cache.
    ///
    /// # Example
    ///
    /// ```
    /// use dylect_cache::CacheConfig;
    /// let cfg = CacheConfig::lru(128 * 1024, 8, 64);
    /// assert_eq!(cfg.num_sets(), 256);
    /// ```
    pub const fn lru(capacity_bytes: u64, ways: u32, block_bytes: u64) -> Self {
        CacheConfig {
            capacity_bytes,
            ways,
            block_bytes,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is empty.
    pub const fn num_sets(&self) -> u64 {
        let lines = self.capacity_bytes / self.block_bytes;
        assert!(lines > 0, "cache has no lines");
        assert!(
            lines.is_multiple_of(self.ways as u64),
            "lines must divide evenly into ways"
        );
        lines / self.ways as u64
    }
}

/// A line evicted by [`SetAssocCache::fill`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Evicted<T> {
    /// Block key of the victim line.
    pub key: u64,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
    /// Metadata stored with the victim.
    pub meta: T,
}

/// Dirty flag, stored in the tag's top bit so a demand access touches no
/// third array (tags + stamps only).
const DIRTY_BIT: u64 = 1 << 63;

/// Mask selecting the key part of a tag.
const TAG_KEY: u64 = DIRTY_BIT - 1;

/// Encodes `key` as a (clean) tag. Tag 0 means "invalid line", so a lookup
/// is a single compare against `key + 1` with no separate valid bit.
#[inline]
fn tag_of(key: u64) -> u64 {
    debug_assert!(key < TAG_KEY, "key too large for tag encoding");
    key + 1
}

/// Bitmask of the ways in `set` whose tag equals `tag` (bit `w` = way `w`).
///
/// Branch-free with fixed trip counts for the common associativities, so
/// the set scan vectorizes instead of mispredicting an early-exit compare
/// per way.
#[inline]
fn match_mask(set: &[u64], tag: u64) -> u32 {
    #[inline]
    fn fixed<const W: usize>(set: &[u64; W], tag: u64) -> u32 {
        let mut mask = 0u32;
        let mut w = 0;
        while w < W {
            mask |= ((set[w] & TAG_KEY == tag) as u32) << w;
            w += 1;
        }
        mask
    }
    match set.len() {
        8 => fixed::<8>(set.try_into().expect("len checked"), tag),
        4 => fixed::<4>(set.try_into().expect("len checked"), tag),
        2 => fixed::<2>(set.try_into().expect("len checked"), tag),
        _ => {
            let mut mask = 0u32;
            for (w, &t) in set.iter().enumerate() {
                mask |= ((t & TAG_KEY == tag) as u32) << w;
            }
            mask
        }
    }
}

/// Aggregate hit/miss statistics of a cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: Counter,
    /// Lookups that missed.
    pub misses: Counter,
    /// Dirty evictions (writebacks generated).
    pub writebacks: Counter,
}

impl CacheStats {
    /// Hit rate over all lookups (0 if none).
    pub fn hit_rate(&self) -> f64 {
        self.hits.fraction_of(self.hits.get() + self.misses.get())
    }

    /// Miss rate over all lookups (0 if none).
    pub fn miss_rate(&self) -> f64 {
        self.misses.fraction_of(self.hits.get() + self.misses.get())
    }
}

/// A tag-only set-associative cache keyed by *block key*
/// (`address / block_bytes`), generic over per-line metadata `T`.
///
/// # Example
///
/// ```
/// use dylect_cache::{CacheConfig, SetAssocCache};
///
/// let mut c: SetAssocCache = SetAssocCache::new(CacheConfig::lru(4096, 4, 64));
/// let key = 0x1234;
/// assert!(!c.access(key));          // cold miss
/// c.fill(key, false, ());
/// assert!(c.access(key));           // now hits
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache<T = ()> {
    config: CacheConfig,
    /// Per-line tags in struct-of-arrays layout: set `s` occupies
    /// `tags[s * ways .. (s + 1) * ways]`. A tag is `key + 1` with the
    /// line's dirty flag in the top bit ([`DIRTY_BIT`]), or 0 for an
    /// invalid line, so an 8-way set scan touches exactly one 64 B host
    /// cache line and needs no valid-bit or dirty array.
    tags: Vec<u64>,
    /// LRU stamps, parallel to `tags`.
    stamps: Vec<u64>,
    /// Per-line metadata, parallel to `tags`.
    meta: Vec<T>,
    num_sets: u64,
    ways: usize,
    /// `num_sets - 1` when the set count is a power of two, else `u64::MAX`
    /// as a "use the modulo path" sentinel.
    set_mask: u64,
    /// `log2(block_bytes)` when the block size is a power of two, else
    /// `u32::MAX` as a "use the division path" sentinel.
    block_shift: u32,
    clock: u64,
    rand_state: u64,
    stats: CacheStats,
}

impl<T: Clone> SetAssocCache<T> {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::num_sets`]).
    pub fn new(config: CacheConfig) -> Self
    where
        T: Default,
    {
        let num_sets = config.num_sets();
        let ways = config.ways as usize;
        let lines = num_sets as usize * ways;
        let set_mask = if num_sets.is_power_of_two() {
            num_sets - 1
        } else {
            u64::MAX
        };
        let block_shift = if config.block_bytes.is_power_of_two() {
            config.block_bytes.trailing_zeros()
        } else {
            u32::MAX
        };
        SetAssocCache {
            config,
            tags: vec![0; lines],
            stamps: vec![0; lines],
            meta: (0..lines).map(|_| T::default()).collect(),
            num_sets,
            ways,
            set_mask,
            block_shift,
            clock: 0,
            rand_state: 0x243F_6A88_85A3_08D3,
            stats: CacheStats::default(),
        }
    }

    /// Returns the configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warmup) without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Converts a byte address to this cache's block key.
    #[inline]
    pub fn key_of(&self, addr: u64) -> u64 {
        if self.block_shift != u32::MAX {
            addr >> self.block_shift
        } else {
            addr / self.config.block_bytes
        }
    }

    #[inline]
    fn set_index(&self, key: u64) -> usize {
        if self.set_mask != u64::MAX {
            (key & self.set_mask) as usize
        } else {
            (key % self.num_sets) as usize
        }
    }

    /// First line index of `key`'s set.
    #[inline]
    fn set_base(&self, key: u64) -> usize {
        self.set_index(key) * self.ways
    }

    /// Absolute line index holding `key`, if resident. Scans the set's ways
    /// in fixed way order.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let base = self.set_base(key);
        let tag = tag_of(key);
        let mask = match_mask(&self.tags[base..base + self.ways], tag);
        if mask == 0 {
            None
        } else {
            Some(base + mask.trailing_zeros() as usize)
        }
    }

    /// Looks up `key`, updating recency and hit/miss statistics.
    ///
    /// Returns `true` on hit. Does not allocate on miss; call [`fill`]
    /// (typically after the modeled fill latency) to insert.
    ///
    /// [`fill`]: SetAssocCache::fill
    pub fn access(&mut self, key: u64) -> bool {
        self.clock += 1;
        if let Some(i) = self.find(key) {
            self.stamps[i] = self.clock;
            self.stats.hits.incr();
            true
        } else {
            self.stats.misses.incr();
            false
        }
    }

    /// Looks up `key` and marks the line dirty on hit (a store hit).
    pub fn access_write(&mut self, key: u64) -> bool {
        self.clock += 1;
        if let Some(i) = self.find(key) {
            self.stamps[i] = self.clock;
            self.tags[i] |= DIRTY_BIT;
            self.stats.hits.incr();
            true
        } else {
            self.stats.misses.incr();
            false
        }
    }

    /// Checks residency without updating recency or statistics.
    pub fn probe(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Returns the metadata of a resident line, if any (no recency update).
    pub fn peek(&self, key: u64) -> Option<&T> {
        self.find(key).map(|i| &self.meta[i])
    }

    /// Returns mutable metadata of a resident line, if any (no recency
    /// update).
    pub fn peek_mut(&mut self, key: u64) -> Option<&mut T> {
        self.find(key).map(|i| &mut self.meta[i])
    }

    /// Inserts `key`, evicting the replacement victim if the set is full.
    ///
    /// If `key` is already resident its line is refreshed in place (recency,
    /// dirtiness OR-ed, metadata replaced) and `None` is returned.
    pub fn fill(&mut self, key: u64, dirty: bool, meta: T) -> Option<Evicted<T>> {
        self.clock += 1;
        let clock = self.clock;

        // Refresh in place on duplicate fill.
        if let Some(i) = self.find(key) {
            self.stamps[i] = clock;
            self.tags[i] |= (dirty as u64) << 63;
            self.meta[i] = meta;
            return None;
        }

        self.insert_absent(key, dirty, meta, clock)
    }

    /// Inserts `key`, which the caller knows is absent — it just observed a
    /// miss or failed [`probe`] on `key` with no intervening insert of the
    /// same key. Skips the duplicate-refresh scan of [`fill`]; behavior is
    /// otherwise identical.
    ///
    /// [`fill`]: SetAssocCache::fill
    /// [`probe`]: SetAssocCache::probe
    pub fn fill_after_miss(&mut self, key: u64, dirty: bool, meta: T) -> Option<Evicted<T>> {
        debug_assert!(
            self.find(key).is_none(),
            "fill_after_miss on resident key {key}"
        );
        self.clock += 1;
        let clock = self.clock;
        self.insert_absent(key, dirty, meta, clock)
    }

    /// Demand access with write-allocate, in a single set scan: looks up
    /// `key`, and on a miss immediately installs it (with default metadata,
    /// `write` as the dirty bit). Equivalent to [`access`]/[`access_write`]
    /// followed on miss by [`fill`], with the intermediate re-scans elided;
    /// returns the hit flag and the miss install's victim, if any.
    ///
    /// [`access`]: SetAssocCache::access
    /// [`access_write`]: SetAssocCache::access_write
    /// [`fill`]: SetAssocCache::fill
    pub fn access_fill(&mut self, key: u64, write: bool) -> (bool, Option<Evicted<T>>)
    where
        T: Default,
    {
        self.clock += 1;
        let clock = self.clock;
        let base = self.set_base(key);
        let tag = tag_of(key);
        let mask = match_mask(&self.tags[base..base + self.ways], tag);
        if mask != 0 {
            let i = base + mask.trailing_zeros() as usize;
            self.stamps[i] = clock;
            self.tags[i] |= (write as u64) << 63;
            self.stats.hits.incr();
            return (true, None);
        }
        self.stats.misses.incr();
        (false, self.insert_absent(key, write, T::default(), clock))
    }

    /// Reads out line `victim` as an [`Evicted`] record (counting the
    /// writeback if dirty), or `None` if the line is invalid.
    #[inline]
    fn evict_line(&mut self, victim: usize) -> Option<Evicted<T>> {
        if self.tags[victim] == 0 {
            return None;
        }
        let evicted = Evicted {
            key: (self.tags[victim] & TAG_KEY) - 1,
            dirty: self.tags[victim] & DIRTY_BIT != 0,
            meta: self.meta[victim].clone(),
        };
        if evicted.dirty {
            self.stats.writebacks.incr();
        }
        Some(evicted)
    }

    /// Installs `key` (known absent) into its set, choosing an invalid way
    /// first, then the replacement victim.
    fn insert_absent(&mut self, key: u64, dirty: bool, meta: T, clock: u64) -> Option<Evicted<T>> {
        let base = self.set_base(key);
        let victim = match self.config.replacement {
            Replacement::Lru => {
                // Single pass over the set: invalid ways score stamp 0 and
                // valid stamps start at 1, so invalid-first falls out of
                // the minimum (first-minimum ties match the old two-scan
                // order exactly).
                let mut victim = base;
                let mut best = u64::MAX;
                for i in base..base + self.ways {
                    let s = if self.tags[i] == 0 { 0 } else { self.stamps[i] };
                    let better = s < best;
                    best = if better { s } else { best };
                    victim = if better { i } else { victim };
                }
                victim
            }
            Replacement::Random => {
                let set_tags = &self.tags[base..base + self.ways];
                if let Some(w) = set_tags.iter().position(|&t| t == 0) {
                    base + w
                } else {
                    // xorshift64*
                    self.rand_state ^= self.rand_state >> 12;
                    self.rand_state ^= self.rand_state << 25;
                    self.rand_state ^= self.rand_state >> 27;
                    base + (self.rand_state.wrapping_mul(0x2545_F491_4F6C_DD1D)
                        % self.config.ways as u64) as usize
                }
            }
        };
        let evicted = self.evict_line(victim);
        self.tags[victim] = tag_of(key) | (dirty as u64) << 63;
        self.stamps[victim] = clock;
        self.meta[victim] = meta;
        evicted
    }

    /// Invalidates `key` if resident; returns the removed line's
    /// `(dirty, meta)`.
    pub fn invalidate(&mut self, key: u64) -> Option<(bool, T)> {
        if let Some(i) = self.find(key) {
            let dirty = self.tags[i] & DIRTY_BIT != 0;
            self.tags[i] = 0;
            return Some((dirty, self.meta[i].clone()));
        }
        None
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != 0).count()
    }

    /// Iterates over the keys of all valid lines (unspecified order).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.tags
            .iter()
            .filter(|&&t| t != 0)
            .map(|&t| (t & TAG_KEY) - 1)
    }
}

impl Snapshot for CacheStats {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.hits.write_snapshot(w);
        self.misses.write_snapshot(w);
        self.writebacks.write_snapshot(w);
    }
}

impl Restore for CacheStats {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.hits.restore_snapshot(r)?;
        self.misses.restore_snapshot(r)?;
        self.writebacks.restore_snapshot(r)
    }
}

// Geometry (config, num_sets, ways, set_mask, block_shift) is construction
// state and never serialized; the line count doubles as the geometry check.
impl<T: Snapshot> Snapshot for SetAssocCache<T> {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.seq(self.tags.len());
        for &t in &self.tags {
            w.u64(t);
        }
        for &s in &self.stamps {
            w.u64(s);
        }
        for m in &self.meta {
            m.write_snapshot(w);
        }
        w.u64(self.clock);
        w.u64(self.rand_state);
        self.stats.write_snapshot(w);
    }
}

impl<T: Restore> Restore for SetAssocCache<T> {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.fixed_seq(self.tags.len(), "cache line count")?;
        for t in &mut self.tags {
            *t = r.u64()?;
        }
        for s in &mut self.stamps {
            *s = r.u64()?;
        }
        for m in &mut self.meta {
            m.restore_snapshot(r)?;
        }
        self.clock = r.u64()?;
        self.rand_state = r.u64()?;
        self.stats.restore_snapshot(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways, 64 B blocks.
        SetAssocCache::new(CacheConfig::lru(512, 2, 64))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(5));
        c.fill(5, false, ());
        assert!(c.access(5));
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Keys 0, 4, 8 all map to set 0 (key % 4).
        c.fill(0, false, ());
        c.fill(4, false, ());
        assert!(c.access(0)); // 0 is now MRU; 4 is LRU
        let ev = c.fill(8, false, ()).expect("eviction");
        assert_eq!(ev.key, 4);
        assert!(c.probe(0));
        assert!(c.probe(8));
        assert!(!c.probe(4));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.fill(0, true, ());
        c.fill(4, false, ());
        let ev = c.fill(8, false, ()).expect("eviction");
        assert_eq!(ev.key, 0);
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.fill(0, false, ());
        assert!(c.access_write(0));
        c.fill(4, false, ());
        // 0 was touched before 4 was filled, so 0 is the LRU victim and its
        // store-hit dirtiness must surface as a writeback.
        let ev = c.fill(8, false, ()).expect("eviction");
        assert_eq!(ev.key, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn duplicate_fill_refreshes_in_place() {
        let mut c = small();
        c.fill(0, false, ());
        assert!(c.fill(0, true, ()).is_none());
        assert_eq!(c.occupancy(), 1);
        c.fill(4, false, ());
        let ev = c.fill(8, false, ()).expect("eviction");
        assert!(ev.dirty, "dirtiness should have been OR-ed in");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(3, true, ());
        assert_eq!(c.invalidate(3), Some((true, ())));
        assert!(!c.probe(3));
        assert_eq!(c.invalidate(3), None);
    }

    #[test]
    fn probe_does_not_touch_stats_or_lru() {
        let mut c = small();
        c.fill(0, false, ());
        c.fill(4, false, ());
        for _ in 0..10 {
            assert!(c.probe(0));
        }
        // 0 was filled first and probes don't refresh it, so it is the victim.
        let ev = c.fill(8, false, ()).expect("eviction");
        assert_eq!(ev.key, 0);
        assert_eq!(c.stats().hits.get(), 0);
    }

    #[test]
    fn metadata_round_trip() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(CacheConfig::lru(512, 2, 64));
        c.fill(9, false, 77);
        assert_eq!(c.peek(9), Some(&77));
        *c.peek_mut(9).unwrap() = 78;
        assert_eq!(c.peek(9), Some(&78));
        assert_eq!(c.peek(10), None);
    }

    #[test]
    fn random_replacement_fills_whole_cache() {
        let cfg = CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            block_bytes: 64,
            replacement: Replacement::Random,
        };
        let mut c: SetAssocCache = SetAssocCache::new(cfg);
        for k in 0..64 {
            c.fill(k, false, ());
        }
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn key_of_uses_block_size() {
        let c = small();
        assert_eq!(c.key_of(0), 0);
        assert_eq!(c.key_of(63), 0);
        assert_eq!(c.key_of(64), 1);
    }

    #[test]
    fn keys_iterates_valid_lines() {
        let mut c = small();
        c.fill(1, false, ());
        c.fill(2, false, ());
        let mut keys: Vec<_> = c.keys().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = small();
        c.fill(0, false, ());
        c.access(0);
        c.access(1);
        assert_eq!(c.stats().hit_rate(), 0.5);
        assert_eq!(c.stats().miss_rate(), 0.5);
        c.reset_stats();
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_bad_geometry() {
        let _ = SetAssocCache::<()>::new(CacheConfig::lru(512, 3, 64));
    }
}
