//! Cache and prefetcher models for the DyLeCT simulator.
//!
//! [`SetAssocCache`] is a tag-only set-associative cache used throughout the
//! workspace: for the CPU's L1/L2/L3 data caches, for TLBs (a TLB is just a
//! cache of page numbers), for the page-walker cache, and — most importantly
//! for this reproduction — for the memory controller's **CTE cache**, which
//! caches 64 B blocks of the compressed-memory translation tables.
//!
//! The cache stores no data payload by default (the simulator tracks *where*
//! values live, not the values themselves), but is generic over a per-line
//! metadata type for callers that need one.
//!
//! [`prefetch`] provides the next-line and stride prefetchers from the
//! paper's Table 3.

pub mod prefetch;
pub mod sector;

use dylect_sim_core::stats::Counter;

/// Replacement policy of a [`SetAssocCache`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Least-recently-used (the default, and what the paper assumes).
    #[default]
    Lru,
    /// Pseudo-random replacement (deterministic xorshift sequence).
    Random,
}

/// Static geometry of a [`SetAssocCache`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (lines per set).
    pub ways: u32,
    /// Line (block) size in bytes; keys are derived as `addr / block_bytes`.
    pub block_bytes: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Convenience constructor for an LRU cache.
    ///
    /// # Example
    ///
    /// ```
    /// use dylect_cache::CacheConfig;
    /// let cfg = CacheConfig::lru(128 * 1024, 8, 64);
    /// assert_eq!(cfg.num_sets(), 256);
    /// ```
    pub const fn lru(capacity_bytes: u64, ways: u32, block_bytes: u64) -> Self {
        CacheConfig {
            capacity_bytes,
            ways,
            block_bytes,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is empty.
    pub const fn num_sets(&self) -> u64 {
        let lines = self.capacity_bytes / self.block_bytes;
        assert!(lines > 0, "cache has no lines");
        assert!(
            lines.is_multiple_of(self.ways as u64),
            "lines must divide evenly into ways"
        );
        lines / self.ways as u64
    }
}

/// A line evicted by [`SetAssocCache::fill`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Evicted<T> {
    /// Block key of the victim line.
    pub key: u64,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
    /// Metadata stored with the victim.
    pub meta: T,
}

#[derive(Clone, Debug)]
struct Line<T> {
    key: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
    meta: T,
}

/// Aggregate hit/miss statistics of a cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: Counter,
    /// Lookups that missed.
    pub misses: Counter,
    /// Dirty evictions (writebacks generated).
    pub writebacks: Counter,
}

impl CacheStats {
    /// Hit rate over all lookups (0 if none).
    pub fn hit_rate(&self) -> f64 {
        self.hits.fraction_of(self.hits.get() + self.misses.get())
    }

    /// Miss rate over all lookups (0 if none).
    pub fn miss_rate(&self) -> f64 {
        self.misses.fraction_of(self.hits.get() + self.misses.get())
    }
}

/// A tag-only set-associative cache keyed by *block key*
/// (`address / block_bytes`), generic over per-line metadata `T`.
///
/// # Example
///
/// ```
/// use dylect_cache::{CacheConfig, SetAssocCache};
///
/// let mut c: SetAssocCache = SetAssocCache::new(CacheConfig::lru(4096, 4, 64));
/// let key = 0x1234;
/// assert!(!c.access(key));          // cold miss
/// c.fill(key, false, ());
/// assert!(c.access(key));           // now hits
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache<T = ()> {
    config: CacheConfig,
    sets: Vec<Vec<Line<T>>>,
    clock: u64,
    rand_state: u64,
    stats: CacheStats,
}

impl<T: Clone> SetAssocCache<T> {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::num_sets`]).
    pub fn new(config: CacheConfig) -> Self
    where
        T: Default,
    {
        let num_sets = config.num_sets() as usize;
        let sets = (0..num_sets)
            .map(|_| {
                (0..config.ways)
                    .map(|_| Line {
                        key: 0,
                        valid: false,
                        dirty: false,
                        stamp: 0,
                        meta: T::default(),
                    })
                    .collect()
            })
            .collect();
        SetAssocCache {
            config,
            sets,
            clock: 0,
            rand_state: 0x243F_6A88_85A3_08D3,
            stats: CacheStats::default(),
        }
    }

    /// Returns the configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warmup) without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Converts a byte address to this cache's block key.
    #[inline]
    pub fn key_of(&self, addr: u64) -> u64 {
        addr / self.config.block_bytes
    }

    #[inline]
    fn set_index(&self, key: u64) -> usize {
        (key % self.sets.len() as u64) as usize
    }

    /// Looks up `key`, updating recency and hit/miss statistics.
    ///
    /// Returns `true` on hit. Does not allocate on miss; call [`fill`]
    /// (typically after the modeled fill latency) to insert.
    ///
    /// [`fill`]: SetAssocCache::fill
    pub fn access(&mut self, key: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(key);
        for line in &mut self.sets[set] {
            if line.valid && line.key == key {
                line.stamp = clock;
                self.stats.hits.incr();
                return true;
            }
        }
        self.stats.misses.incr();
        false
    }

    /// Looks up `key` and marks the line dirty on hit (a store hit).
    pub fn access_write(&mut self, key: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(key);
        for line in &mut self.sets[set] {
            if line.valid && line.key == key {
                line.stamp = clock;
                line.dirty = true;
                self.stats.hits.incr();
                return true;
            }
        }
        self.stats.misses.incr();
        false
    }

    /// Checks residency without updating recency or statistics.
    pub fn probe(&self, key: u64) -> bool {
        let set = self.set_index(key);
        self.sets[set].iter().any(|l| l.valid && l.key == key)
    }

    /// Returns the metadata of a resident line, if any (no recency update).
    pub fn peek(&self, key: u64) -> Option<&T> {
        let set = self.set_index(key);
        self.sets[set]
            .iter()
            .find(|l| l.valid && l.key == key)
            .map(|l| &l.meta)
    }

    /// Returns mutable metadata of a resident line, if any (no recency
    /// update).
    pub fn peek_mut(&mut self, key: u64) -> Option<&mut T> {
        let set = self.set_index(key);
        self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.key == key)
            .map(|l| &mut l.meta)
    }

    /// Inserts `key`, evicting the replacement victim if the set is full.
    ///
    /// If `key` is already resident its line is refreshed in place (recency,
    /// dirtiness OR-ed, metadata replaced) and `None` is returned.
    pub fn fill(&mut self, key: u64, dirty: bool, meta: T) -> Option<Evicted<T>> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(key);

        // Refresh in place on duplicate fill.
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.key == key) {
            line.stamp = clock;
            line.dirty |= dirty;
            line.meta = meta;
            return None;
        }

        // Prefer an invalid way.
        if let Some(line) = self.sets[set].iter_mut().find(|l| !l.valid) {
            *line = Line {
                key,
                valid: true,
                dirty,
                stamp: clock,
                meta,
            };
            return None;
        }

        // Choose a victim.
        let victim_idx = match self.config.replacement {
            Replacement::Lru => self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp)
                .map(|(i, _)| i)
                .expect("non-empty set"),
            Replacement::Random => {
                // xorshift64*
                self.rand_state ^= self.rand_state >> 12;
                self.rand_state ^= self.rand_state << 25;
                self.rand_state ^= self.rand_state >> 27;
                (self.rand_state.wrapping_mul(0x2545_F491_4F6C_DD1D) % self.config.ways as u64)
                    as usize
            }
        };
        let line = &mut self.sets[set][victim_idx];
        let evicted = Evicted {
            key: line.key,
            dirty: line.dirty,
            meta: line.meta.clone(),
        };
        if evicted.dirty {
            self.stats.writebacks.incr();
        }
        *line = Line {
            key,
            valid: true,
            dirty,
            stamp: clock,
            meta,
        };
        Some(evicted)
    }

    /// Invalidates `key` if resident; returns the removed line's
    /// `(dirty, meta)`.
    pub fn invalidate(&mut self, key: u64) -> Option<(bool, T)> {
        let set = self.set_index(key);
        for line in &mut self.sets[set] {
            if line.valid && line.key == key {
                line.valid = false;
                return Some((line.dirty, line.meta.clone()));
            }
        }
        None
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|l| l.valid).count())
            .sum()
    }

    /// Iterates over the keys of all valid lines (unspecified order).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.sets
            .iter()
            .flat_map(|s| s.iter().filter(|l| l.valid).map(|l| l.key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways, 64 B blocks.
        SetAssocCache::new(CacheConfig::lru(512, 2, 64))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(5));
        c.fill(5, false, ());
        assert!(c.access(5));
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Keys 0, 4, 8 all map to set 0 (key % 4).
        c.fill(0, false, ());
        c.fill(4, false, ());
        assert!(c.access(0)); // 0 is now MRU; 4 is LRU
        let ev = c.fill(8, false, ()).expect("eviction");
        assert_eq!(ev.key, 4);
        assert!(c.probe(0));
        assert!(c.probe(8));
        assert!(!c.probe(4));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.fill(0, true, ());
        c.fill(4, false, ());
        let ev = c.fill(8, false, ()).expect("eviction");
        assert_eq!(ev.key, 0);
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.fill(0, false, ());
        assert!(c.access_write(0));
        c.fill(4, false, ());
        // 0 was touched before 4 was filled, so 0 is the LRU victim and its
        // store-hit dirtiness must surface as a writeback.
        let ev = c.fill(8, false, ()).expect("eviction");
        assert_eq!(ev.key, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn duplicate_fill_refreshes_in_place() {
        let mut c = small();
        c.fill(0, false, ());
        assert!(c.fill(0, true, ()).is_none());
        assert_eq!(c.occupancy(), 1);
        c.fill(4, false, ());
        let ev = c.fill(8, false, ()).expect("eviction");
        assert!(ev.dirty, "dirtiness should have been OR-ed in");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(3, true, ());
        assert_eq!(c.invalidate(3), Some((true, ())));
        assert!(!c.probe(3));
        assert_eq!(c.invalidate(3), None);
    }

    #[test]
    fn probe_does_not_touch_stats_or_lru() {
        let mut c = small();
        c.fill(0, false, ());
        c.fill(4, false, ());
        for _ in 0..10 {
            assert!(c.probe(0));
        }
        // 0 was filled first and probes don't refresh it, so it is the victim.
        let ev = c.fill(8, false, ()).expect("eviction");
        assert_eq!(ev.key, 0);
        assert_eq!(c.stats().hits.get(), 0);
    }

    #[test]
    fn metadata_round_trip() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(CacheConfig::lru(512, 2, 64));
        c.fill(9, false, 77);
        assert_eq!(c.peek(9), Some(&77));
        *c.peek_mut(9).unwrap() = 78;
        assert_eq!(c.peek(9), Some(&78));
        assert_eq!(c.peek(10), None);
    }

    #[test]
    fn random_replacement_fills_whole_cache() {
        let cfg = CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            block_bytes: 64,
            replacement: Replacement::Random,
        };
        let mut c: SetAssocCache = SetAssocCache::new(cfg);
        for k in 0..64 {
            c.fill(k, false, ());
        }
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn key_of_uses_block_size() {
        let c = small();
        assert_eq!(c.key_of(0), 0);
        assert_eq!(c.key_of(63), 0);
        assert_eq!(c.key_of(64), 1);
    }

    #[test]
    fn keys_iterates_valid_lines() {
        let mut c = small();
        c.fill(1, false, ());
        c.fill(2, false, ());
        let mut keys: Vec<_> = c.keys().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = small();
        c.fill(0, false, ());
        c.access(0);
        c.access(1);
        assert_eq!(c.stats().hit_rate(), 0.5);
        assert_eq!(c.stats().miss_rate(), 0.5);
        c.reset_stats();
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_bad_geometry() {
        let _ = SetAssocCache::<()>::new(CacheConfig::lru(512, 3, 64));
    }
}
