//! The interval core timing model.
//!
//! The paper simulates a 4-wide out-of-order core in Gem5; we substitute an
//! *interval model* that preserves the properties its results depend on
//! (DESIGN.md §5): non-memory instructions retire at pipeline width;
//! independent long-latency misses overlap up to an MLP limit bounded by
//! the ROB; dependent (pointer-chasing) accesses serialize on the previous
//! access's completion. Added memory latency — exactly what CTE translation
//! and page expansion inject — therefore slows the core the same way it
//! would slow the paper's OoO core.

use std::collections::VecDeque;

use dylect_cache::prefetch::{NextLinePrefetcher, StridePrefetcher};
use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_sim_core::probe::{
    AccessComponent, AccessRecord, AccessScope, MemLevel, ProbeHandle, RequestClass,
    TranslationPath,
};
use dylect_sim_core::prof;
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::stats::Counter;
use dylect_sim_core::trace::{MemOp, OpBatch};
use dylect_sim_core::{PhysAddr, Time, BLOCK_BYTES};

use crate::tlb::{PageSizeMode, Tlb, TlbConfig, TlbOutcome};
use crate::walker::{PageTableLayout, PageWalker};

/// How a request leaves the core for the shared memory system.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BackendOp {
    /// A demand fill (load or store miss; write-allocate).
    Read,
    /// A dirty-block writeback from the core's L2.
    Writeback,
    /// A page-walk read.
    PageWalk,
    /// A prefetch fill (off the critical path).
    Prefetch,
}

/// The shared memory system below the core's private caches (L3 + memory
/// controller + DRAM). Implemented by the system assembly crate.
pub trait MemoryBackend {
    /// Serves one 64 B block request; returns the data-ready time.
    fn access(&mut self, now: Time, addr: PhysAddr, op: BackendOp) -> Time;
}

/// Core configuration (paper Table 3).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CoreConfig {
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Pipeline width (instructions per cycle for non-memory work).
    pub width: u32,
    /// Reorder-buffer depth.
    pub rob: u32,
    /// Maximum overlapping long-latency misses.
    pub mlp: usize,
    /// Private L1 data cache bytes / ways.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Private L2 bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: u32,
    /// L2 hit latency (accumulated, from the core).
    pub l2_hit_latency: Time,
    /// Extra latency of an L2-TLB hit.
    pub l2_tlb_penalty_cycles: u32,
    /// Page size the OS maps the workload with.
    pub page_mode: PageSizeMode,
    /// Virtualized (2D) page walks: every guest page-table access and the
    /// data page itself need a host translation, served by the walker's
    /// nested cache or a host-table read.
    pub nested_walk: bool,
}

impl CoreConfig {
    /// The paper's core: 2.8 GHz, 4-wide, 224-entry ROB, 32 KB L1, 256 KB
    /// L2, huge pages.
    pub fn paper() -> Self {
        CoreConfig {
            freq_ghz: 2.8,
            width: 4,
            rob: 224,
            mlp: 12,
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l2_bytes: 256 * 1024,
            l2_ways: 8,
            l2_hit_latency: Time::from_ns(5.0),
            l2_tlb_penalty_cycles: 7,
            page_mode: PageSizeMode::Huge2M,
            nested_walk: false,
        }
    }

    /// Picoseconds per core clock.
    pub fn cycle(&self) -> Time {
        Time::from_ps((1000.0 / self.freq_ghz).round() as u64)
    }
}

/// Per-core execution statistics.
#[derive(Clone, Debug, Default)]
pub struct CoreStats {
    /// Instructions committed (memory ops + their `work`).
    pub instructions: Counter,
    /// Memory operations executed.
    pub mem_ops: Counter,
    /// Committed stores.
    pub stores: Counter,
    /// L1 data misses.
    pub l1_misses: Counter,
    /// L2 (private) misses that went to the shared backend.
    pub l2_misses: Counter,
    /// Cycles (approximated) spent stalled on page walks.
    pub walk_time: Time,
}

/// One simulated core: private L1/L2, TLBs, walker, prefetchers, and the
/// interval timing state.
///
/// Cores are driven by [`Core::step`] with one [`MemOp`] at a time; the
/// shared system below them is abstracted as a [`MemoryBackend`].
#[derive(Clone, Debug)]
pub struct Core {
    cfg: CoreConfig,
    /// Cached `cfg.cycle()`: the float divide + round is too expensive to
    /// redo on every retired op.
    cycle: Time,
    /// `log2(width)` when the pipeline width is a power of two (it always
    /// is in practice); `u32::MAX` selects the division fallback.
    width_shift: u32,
    /// Cached ROB slip window, `cycle * (rob / width)`.
    rob_window: Time,
    layout: PageTableLayout,
    time: Time,
    l1: SetAssocCache,
    l2: SetAssocCache,
    tlb: Tlb,
    walker: PageWalker,
    stride_pf: StridePrefetcher,
    nextline_pf: NextLinePrefetcher,
    outstanding: VecDeque<Time>,
    last_completion: Time,
    stats: CoreStats,
    probe: ProbeHandle,
    /// Address-space identifier tagged into every TLB entry (0 = the
    /// untagged single-process default).
    asid: u16,
    /// Machine-physical base of this core's address space in bytes (0 for
    /// a single tenant). Local (guest-physical) addresses are offset by
    /// this before leaving the core.
    phys_base: u64,
    /// First machine-physical page this core may touch.
    phys_first_page: u64,
    /// One past the last machine-physical page this core may touch.
    phys_page_limit: u64,
}

impl Core {
    /// Creates an idle core at time zero.
    pub fn new(cfg: CoreConfig, layout: PageTableLayout) -> Self {
        Core {
            l1: SetAssocCache::new(CacheConfig::lru(cfg.l1_bytes, cfg.l1_ways, BLOCK_BYTES)),
            l2: SetAssocCache::new(CacheConfig::lru(cfg.l2_bytes, cfg.l2_ways, BLOCK_BYTES)),
            tlb: Tlb::new(TlbConfig::default()),
            walker: PageWalker::new(128),
            stride_pf: StridePrefetcher::new(64, 2),
            nextline_pf: NextLinePrefetcher::new(),
            outstanding: VecDeque::new(),
            time: Time::ZERO,
            last_completion: Time::ZERO,
            stats: CoreStats::default(),
            probe: ProbeHandle::disabled(),
            cycle: cfg.cycle(),
            width_shift: if cfg.width.is_power_of_two() {
                cfg.width.trailing_zeros()
            } else {
                u32::MAX
            },
            rob_window: cfg.cycle() * (cfg.rob / cfg.width) as u64,
            asid: 0,
            phys_base: 0,
            phys_first_page: 0,
            phys_page_limit: layout.total_os_pages(),
            cfg,
            layout,
        }
    }

    /// Attaches a telemetry probe; each retired memory operation then emits
    /// a core-scope latency-attribution record.
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    /// Places this core's address space: TLB entries are tagged with
    /// `asid` and every address leaving the core is offset by `phys_base`
    /// bytes. `(0, 0)` is the single-tenant default and changes nothing.
    ///
    /// # Panics
    ///
    /// Panics if `phys_base` is not page-aligned.
    pub fn set_address_space(&mut self, asid: u16, phys_base: u64) {
        assert_eq!(phys_base % dylect_sim_core::PAGE_BYTES, 0, "page-aligned");
        self.asid = asid;
        self.phys_base = phys_base;
        self.phys_first_page = phys_base / dylect_sim_core::PAGE_BYTES;
        self.phys_page_limit = self.phys_first_page + self.layout.total_os_pages();
    }

    /// The core's current local time.
    pub fn time(&self) -> Time {
        self.time
    }

    /// Execution statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The TLB (for miss-rate reporting).
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// The page walker (for nested-walk reporting).
    pub fn walker(&self) -> &PageWalker {
        &self.walker
    }

    /// Resets statistics after warmup without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
        self.tlb.reset_stats();
        self.l1.reset_stats();
        self.l2.reset_stats();
    }

    /// Advances core-local time by non-memory work and ROB stalls, executes
    /// one memory operation through the hierarchy, and returns its
    /// completion time.
    pub fn step<B: MemoryBackend + ?Sized>(&mut self, op: MemOp, backend: &mut B) -> Time {
        if self.probe.is_enabled() {
            self.step_inner::<true, B>(op, backend)
        } else {
            self.step_inner::<false, B>(op, backend)
        }
    }

    /// Retires a whole batch of memory operations. Equivalent to calling
    /// [`Core::step`] once per op, but the telemetry-enabled check is made
    /// once per batch instead of once per op, and with a concrete backend
    /// type the full hierarchy walk monomorphizes into one loop.
    pub fn step_batch<B: MemoryBackend + ?Sized>(&mut self, ops: &[MemOp], backend: &mut B) {
        if self.probe.is_enabled() {
            for &op in ops {
                self.step_inner::<true, B>(op, backend);
            }
        } else {
            for &op in ops {
                self.step_inner::<false, B>(op, backend);
            }
        }
    }

    /// [`Core::step_batch`] over a struct-of-arrays [`OpBatch`] arena.
    pub fn step_soa<B: MemoryBackend + ?Sized>(&mut self, ops: &OpBatch, backend: &mut B) {
        if self.probe.is_enabled() {
            for op in ops.iter() {
                self.step_inner::<true, B>(op, backend);
            }
        } else {
            // Retirement counters are linear in the batch contents, so they
            // accumulate once per batch instead of three times per op.
            self.stats.instructions.add(ops.total_instructions());
            self.stats.mem_ops.add(ops.len() as u64);
            self.stats.stores.add(ops.stores());
            for op in ops.iter() {
                self.step_core::<false, B>(op, backend);
            }
        }
    }

    #[inline]
    fn step_inner<const PROBE: bool, B: MemoryBackend + ?Sized>(
        &mut self,
        op: MemOp,
        backend: &mut B,
    ) -> Time {
        self.stats.instructions.add(op.instructions());
        self.stats.mem_ops.incr();
        if op.write {
            self.stats.stores.incr();
        }
        self.step_core::<PROBE, B>(op, backend)
    }

    /// The retirement path shared by the per-op and batched loops:
    /// everything in [`Core::step_inner`] except the retirement counters.
    #[inline]
    fn step_core<const PROBE: bool, B: MemoryBackend + ?Sized>(
        &mut self,
        op: MemOp,
        backend: &mut B,
    ) -> Time {
        let cycle = self.cycle;
        // Non-memory instructions retire at pipeline width.
        let work_ps = cycle.as_ps() * op.work as u64;
        self.time += Time::from_ps(if self.width_shift != u32::MAX {
            work_ps >> self.width_shift
        } else {
            work_ps / self.cfg.width as u64
        });
        // Pointer chases wait for the previous value.
        if op.dep_on_prev {
            self.time = self.time.max(self.last_completion);
        }
        let issue = self.time;

        // Address translation.
        let translated_at = match self
            .tlb
            .lookup_asid(op.vaddr, self.cfg.page_mode, self.asid)
        {
            TlbOutcome::L1Hit => issue,
            TlbOutcome::L2Hit => issue + cycle * self.cfg.l2_tlb_penalty_cycles as u64,
            TlbOutcome::Miss => {
                let done = self.do_walk(issue, op.vaddr, backend);
                self.tlb.fill_asid(op.vaddr, self.cfg.page_mode, self.asid);
                self.stats.walk_time += done - issue;
                done
            }
        };

        // Virtual-to-physical is identity in this simulator (DESIGN.md):
        // translation *cost* is modeled, the mapping itself is 1:1. Tenants
        // are placed side by side in machine-physical space by `phys_base`.
        let phys = PhysAddr::new(self.phys_base + op.vaddr.raw());
        let done = self.mem_access(translated_at, phys, op.write, backend);

        if PROBE {
            // Core view of the retired op: TLB/page-walk time, then the
            // cache-hierarchy (and below) time.
            self.probe.emit_access(&AccessRecord::new(
                AccessScope::Core,
                RequestClass::Demand,
                MemLevel::None,
                TranslationPath::None,
                issue,
                done.saturating_sub(issue),
                &[
                    (
                        AccessComponent::TlbWalk,
                        translated_at.saturating_sub(issue),
                    ),
                    (
                        AccessComponent::CacheLookup,
                        done.saturating_sub(translated_at),
                    ),
                ],
            ));
        }

        // Interval-model bookkeeping for long-latency misses.
        let latency = done.saturating_sub(issue);
        if latency > self.cfg.l2_hit_latency {
            if self.outstanding.len() >= self.cfg.mlp {
                let head = self.outstanding.pop_front().expect("mlp > 0");
                self.time = self.time.max(head);
            }
            self.outstanding.push_back(done);
            // The ROB cannot slip more than rob/width cycles past the oldest
            // outstanding miss.
            if let Some(&head) = self.outstanding.front() {
                self.time = self.time.max(head.saturating_sub(self.rob_window));
            }
        }
        self.last_completion = done;
        done
    }

    /// Waits out all outstanding misses (call at the end of a run before
    /// reading `time`).
    pub fn drain(&mut self) {
        while let Some(t) = self.outstanding.pop_front() {
            self.time = self.time.max(t);
        }
        self.time = self.time.max(self.last_completion);
    }

    /// A page walk: serial accesses to page-table blocks through the cache
    /// hierarchy.
    fn do_walk<B: MemoryBackend + ?Sized>(
        &mut self,
        now: Time,
        vaddr: dylect_sim_core::VirtAddr,
        backend: &mut B,
    ) -> Time {
        // Sampled host timer; walk behavior is unaffected.
        let _p = prof::sampled_scope(prof::HostPhase::TlbWalk);
        let plan = self.walker.walk(vaddr, self.cfg.page_mode, &self.layout);
        let mut t = now;
        for addr in plan {
            t = self.walk_read(t, addr, backend);
        }
        // In a 2D walk the data page's own guest-physical address needs a
        // host translation before the TLB can cache vaddr → machine
        // physical. No-op (and no cost) for a non-nested layout.
        if let Some(host) = self
            .walker
            .host_translate(PhysAddr::new(vaddr.raw()), &self.layout)
        {
            t = self.walk_read(t, host, backend);
        }
        t
    }

    /// One page-walk read: through L2 (not L1), then the shared backend.
    /// `addr` is local (guest-physical); the machine-physical offset is
    /// applied here.
    fn walk_read<B: MemoryBackend + ?Sized>(
        &mut self,
        now: Time,
        addr: PhysAddr,
        backend: &mut B,
    ) -> Time {
        let addr = PhysAddr::new(self.phys_base + addr.raw());
        let key = self.l2.key_of(addr.raw());
        if self.l2.access(key) {
            now + self.cfg.l2_hit_latency
        } else {
            let done = backend.access(now, addr, BackendOp::PageWalk);
            self.fill_l2(addr, false, backend, done);
            done
        }
    }

    /// Data access through L1 → L2 → backend with write-allocate and
    /// cascading dirty writebacks; returns the data-ready time.
    #[inline]
    fn mem_access<B: MemoryBackend + ?Sized>(
        &mut self,
        now: Time,
        phys: PhysAddr,
        write: bool,
        backend: &mut B,
    ) -> Time {
        let key = self.l1.key_of(phys.raw());
        // Combined lookup + write-allocate install: one L1 set scan per op.
        let (l1_hit, l1_victim) = self.l1.access_fill(key, write);
        if l1_hit {
            return now; // L1 latency is hidden by the pipeline
        }
        self.stats.l1_misses.incr();

        // L1-miss stride prefetch (degree 2), keyed by page as a PC-less
        // stream id.
        let candidates = self
            .stride_pf
            .on_demand(phys.page().index(), phys.block_index());
        for &c in &candidates {
            self.prefetch_block(now, PhysAddr::new(c * BLOCK_BYTES), backend);
        }

        let done = if self.l2.access(key) {
            now + self.cfg.l2_hit_latency
        } else {
            self.stats.l2_misses.incr();
            // L2-miss next-line prefetch.
            if let Some(c) = self.nextline_pf.on_demand(phys.block_index()) {
                self.prefetch_block(now, PhysAddr::new(c * BLOCK_BYTES), backend);
            }
            let done = backend.access(now, phys, BackendOp::Read);
            self.fill_l2(phys, false, backend, done);
            done
        };
        // The L1 victim's dirty data folds into L2 (after the demand fill,
        // matching the former access-then-fill ordering).
        if let Some(ev) = l1_victim {
            if ev.dirty {
                self.l2.fill(ev.key, true, ());
            }
        }
        done
    }

    /// Installs `addr` in L2 after a miss (the caller has just observed the
    /// block absent), spilling any dirty victim to the backend.
    fn fill_l2<B: MemoryBackend + ?Sized>(
        &mut self,
        addr: PhysAddr,
        dirty: bool,
        backend: &mut B,
        now: Time,
    ) {
        let key = self.l2.key_of(addr.raw());
        if let Some(ev) = self.l2.fill_after_miss(key, dirty, ()) {
            if ev.dirty {
                backend.access(
                    now,
                    PhysAddr::new(ev.key * BLOCK_BYTES),
                    BackendOp::Writeback,
                );
            }
        }
    }

    fn prefetch_block<B: MemoryBackend + ?Sized>(
        &mut self,
        now: Time,
        addr: PhysAddr,
        backend: &mut B,
    ) {
        // Never prefetch beyond this core's OS-visible range.
        let page = addr.page().index();
        if page < self.phys_first_page || page >= self.phys_page_limit {
            return;
        }
        let key = self.l2.key_of(addr.raw());
        if self.l2.probe(key) {
            return;
        }
        backend.access(now, addr, BackendOp::Prefetch);
        self.fill_l2(addr, false, backend, now);
    }
}

// Configuration and derived fields (cfg, cycle, width_shift, rob_window,
// layout, asid, phys_base and the derived page bounds) are construction
// state; the probe handle is reinstalled by the
// owner. Note `outstanding` may legitimately be non-empty at a snapshot
// boundary — in-flight miss completions are part of the interval model's
// timing state and must round-trip.
impl Snapshot for Core {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.time.write_snapshot(w);
        self.l1.write_snapshot(w);
        self.l2.write_snapshot(w);
        self.tlb.write_snapshot(w);
        self.walker.write_snapshot(w);
        self.stride_pf.write_snapshot(w);
        self.nextline_pf.write_snapshot(w);
        w.seq(self.outstanding.len());
        for t in &self.outstanding {
            t.write_snapshot(w);
        }
        self.last_completion.write_snapshot(w);
        self.stats.instructions.write_snapshot(w);
        self.stats.mem_ops.write_snapshot(w);
        self.stats.stores.write_snapshot(w);
        self.stats.l1_misses.write_snapshot(w);
        self.stats.l2_misses.write_snapshot(w);
        self.stats.walk_time.write_snapshot(w);
    }
}

impl Restore for Core {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.time.restore_snapshot(r)?;
        self.l1.restore_snapshot(r)?;
        self.l2.restore_snapshot(r)?;
        self.tlb.restore_snapshot(r)?;
        self.walker.restore_snapshot(r)?;
        self.stride_pf.restore_snapshot(r)?;
        self.nextline_pf.restore_snapshot(r)?;
        let n = r.seq(8)?;
        if n > self.cfg.mlp {
            return Err(SnapError::Corrupt("outstanding misses exceed MLP"));
        }
        self.outstanding.clear();
        for _ in 0..n {
            let mut t = Time::ZERO;
            t.restore_snapshot(r)?;
            self.outstanding.push_back(t);
        }
        self.last_completion.restore_snapshot(r)?;
        self.stats.instructions.restore_snapshot(r)?;
        self.stats.mem_ops.restore_snapshot(r)?;
        self.stats.stores.restore_snapshot(r)?;
        self.stats.l1_misses.restore_snapshot(r)?;
        self.stats.l2_misses.restore_snapshot(r)?;
        self.stats.walk_time.restore_snapshot(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_sim_core::VirtAddr;

    /// A backend with a fixed service latency that records its requests.
    struct FixedBackend {
        latency: Time,
        log: Vec<(PhysAddr, BackendOp)>,
    }

    impl FixedBackend {
        fn new(ns: f64) -> Self {
            FixedBackend {
                latency: Time::from_ns(ns),
                log: Vec::new(),
            }
        }
    }

    impl MemoryBackend for FixedBackend {
        fn access(&mut self, now: Time, addr: PhysAddr, op: BackendOp) -> Time {
            self.log.push((addr, op));
            now + self.latency
        }
    }

    fn core() -> Core {
        Core::new(CoreConfig::paper(), PageTableLayout::new(1 << 20))
    }

    #[test]
    fn l1_hits_are_free() {
        let mut c = core();
        let mut b = FixedBackend::new(100.0);
        let a = VirtAddr::new(0x1000);
        c.step(MemOp::load(a, 0), &mut b);
        let t0 = c.time();
        let done = c.step(MemOp::load(a, 0), &mut b);
        assert_eq!(done, t0, "repeat access must hit L1");
        assert_eq!(c.stats().l1_misses.get(), 1);
    }

    #[test]
    fn work_advances_time_at_width() {
        let mut c = core();
        let mut b = FixedBackend::new(0.0);
        c.step(MemOp::load(VirtAddr::new(0), 400), &mut b);
        // 400 instructions at width 4 = 100 cycles of 357 ps.
        assert_eq!(c.time(), CoreConfig::paper().cycle() * 100);
    }

    #[test]
    fn dependent_misses_serialize() {
        let mut c = core();
        let mut b = FixedBackend::new(100.0);
        // Independent chain: 8 distinct blocks, no deps.
        for i in 0..8u64 {
            c.step(MemOp::load(VirtAddr::new(i * 4096), 0), &mut b);
        }
        c.drain();
        let t_indep = c.time();

        let mut c2 = core();
        let mut b2 = FixedBackend::new(100.0);
        for i in 0..8u64 {
            c2.step(MemOp::load(VirtAddr::new(i * 4096), 0).dependent(), &mut b2);
        }
        c2.drain();
        assert!(
            c2.time().as_ns() > t_indep.as_ns() * 2.0,
            "dependent {} vs independent {}",
            c2.time(),
            t_indep
        );
    }

    #[test]
    fn mlp_caps_overlap() {
        let mut c = core();
        let mut b = FixedBackend::new(1000.0);
        // 60 independent misses with zero work: at MLP 12 they take at
        // least 5 serialized waves.
        for i in 0..60u64 {
            c.step(MemOp::load(VirtAddr::new(i * 4096), 0), &mut b);
        }
        c.drain();
        assert!(c.time().as_ns() >= 5.0 * 1000.0 * 0.9, "time {}", c.time());
    }

    #[test]
    fn huge_pages_walk_less_than_4k() {
        let paper = CoreConfig::paper();
        // 1 GiB footprint: 512 huge pages fit the L2 TLB, 256k standard
        // pages thrash it — the Figure 3 contrast.
        let layout = PageTableLayout::new(1 << 18);
        let run = |mode: PageSizeMode| {
            let mut c = Core::new(
                CoreConfig {
                    page_mode: mode,
                    ..paper
                },
                layout,
            );
            let mut b = FixedBackend::new(60.0);
            let mut x = 12345u64;
            for _ in 0..20_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let page = (x >> 33) % (1 << 18);
                c.step(MemOp::load(VirtAddr::new(page * 4096), 2), &mut b);
            }
            c.drain();
            (c.tlb().stats().miss_rate(), c.time())
        };
        let (miss_4k, t_4k) = run(PageSizeMode::Standard4K);
        let (miss_2m, t_2m) = run(PageSizeMode::Huge2M);
        assert!(
            miss_4k > miss_2m * 5.0,
            "4K miss rate {miss_4k:.3} vs 2M {miss_2m:.3}"
        );
        assert!(t_4k > t_2m, "huge pages should be faster");
    }

    #[test]
    fn dirty_evictions_become_writebacks() {
        let mut c = core();
        let mut b = FixedBackend::new(10.0);
        // Write a footprint much larger than L2 (256 KB = 4096 blocks).
        for i in 0..20_000u64 {
            c.step(MemOp::store(VirtAddr::new(i * 64), 0), &mut b);
        }
        assert!(
            b.log.iter().any(|(_, op)| *op == BackendOp::Writeback),
            "L2 should spill dirty blocks"
        );
    }

    #[test]
    fn sequential_streams_trigger_prefetch() {
        let mut c = core();
        let mut b = FixedBackend::new(50.0);
        for i in 0..64u64 {
            c.step(MemOp::load(VirtAddr::new(i * 64), 0), &mut b);
        }
        assert!(
            b.log.iter().any(|(_, op)| *op == BackendOp::Prefetch),
            "sequential stream should prefetch"
        );
    }

    #[test]
    fn walks_reach_the_backend_as_pagewalk() {
        let mut c = core();
        let mut b = FixedBackend::new(10.0);
        c.step(MemOp::load(VirtAddr::new(0x10_0000), 0), &mut b);
        assert!(b.log.iter().any(|(_, op)| *op == BackendOp::PageWalk));
        assert!(c.stats().walk_time > Time::ZERO);
    }

    #[test]
    fn nested_walks_cost_more_walk_time() {
        let run = |nested: bool| {
            let cfg = CoreConfig {
                nested_walk: nested,
                page_mode: PageSizeMode::Standard4K,
                ..CoreConfig::paper()
            };
            let layout = if nested {
                PageTableLayout::nested(1 << 18)
            } else {
                PageTableLayout::new(1 << 18)
            };
            let mut c = Core::new(cfg, layout);
            let mut b = FixedBackend::new(60.0);
            let mut x = 999u64;
            for _ in 0..20_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let page = (x >> 33) % (1 << 18);
                c.step(MemOp::load(VirtAddr::new(page * 4096), 2), &mut b);
            }
            c.drain();
            (c.stats().walk_time, c.walker().stats().host_reads.get())
        };
        let (t_flat, host_flat) = run(false);
        let (t_nested, host_nested) = run(true);
        assert_eq!(host_flat, 0);
        assert!(host_nested > 0, "2D walks must read the host table");
        assert!(
            t_nested > t_flat,
            "nested {t_nested} should exceed flat {t_flat}"
        );
    }

    #[test]
    fn address_space_offsets_all_backend_traffic() {
        let layout = PageTableLayout::new(1 << 16);
        let span = layout.total_os_pages() * 4096;
        let base = span.next_multiple_of(4096 * 512);
        let mut c = Core::new(CoreConfig::paper(), layout);
        c.set_address_space(3, base);
        let mut b = FixedBackend::new(50.0);
        let mut x = 7u64;
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let page = (x >> 33) % (1 << 16);
            c.step(MemOp::load(VirtAddr::new(page * 4096), 1), &mut b);
        }
        assert!(!b.log.is_empty());
        for (addr, _) in &b.log {
            assert!(
                addr.raw() >= base && addr.raw() < base + span,
                "backend saw out-of-tenant address {addr:?}"
            );
        }
    }

    #[test]
    fn drain_is_idempotent() {
        let mut c = core();
        let mut b = FixedBackend::new(100.0);
        c.step(MemOp::load(VirtAddr::new(0), 0), &mut b);
        c.drain();
        let t = c.time();
        c.drain();
        assert_eq!(c.time(), t);
    }
}
