//! Trace-driven CPU substrate for the DyLeCT simulator.
//!
//! This crate models everything above the shared L3: per-core TLBs
//! ([`tlb`]), the page walker and page-table layout ([`walker`]), private
//! L1/L2 caches with prefetchers, and an interval (MLP/ROB) core timing
//! model ([`core`]). The shared memory system below — L3, the compressed
//! memory controller, DRAM — is abstracted behind
//! [`core::MemoryBackend`], implemented by the system-assembly crate.
//!
//! # Example
//!
//! ```
//! use dylect_cpu::core::{BackendOp, Core, CoreConfig, MemoryBackend};
//! use dylect_cpu::walker::PageTableLayout;
//! use dylect_sim_core::trace::MemOp;
//! use dylect_sim_core::{PhysAddr, Time, VirtAddr};
//!
//! struct Flat;
//! impl MemoryBackend for Flat {
//!     fn access(&mut self, now: Time, _a: PhysAddr, _op: BackendOp) -> Time {
//!         now + Time::from_ns(60.0)
//!     }
//! }
//!
//! let mut core = Core::new(CoreConfig::paper(), PageTableLayout::new(1000));
//! core.step(MemOp::load(VirtAddr::new(0x1000), 8), &mut Flat);
//! assert!(core.time() > Time::ZERO);
//! ```

pub mod core;
pub mod tlb;
pub mod walker;

pub use crate::core::{BackendOp, Core, CoreConfig, CoreStats, MemoryBackend};
pub use tlb::{PageSizeMode, Tlb, TlbConfig, TlbOutcome};
pub use walker::{PageTableLayout, PageWalker};
