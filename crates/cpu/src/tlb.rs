//! Two-level TLB supporting 4 KB and 2 MB pages.
//!
//! The paper's motivation (Figure 3) rests on the TLB: large irregular
//! workloads miss constantly with 4 KB pages and ~20× less with 2 MB huge
//! pages. The model is a conventional x86-style hierarchy: small split L1
//! TLBs per page size, a larger unified L2 TLB.

use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::stats::Counter;
use dylect_sim_core::{VirtAddr, HUGE_PAGE_BYTES, PAGE_BYTES};

/// The page size the OS maps the workload with.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PageSizeMode {
    /// Standard 4 KB pages.
    Standard4K,
    /// Transparent/explicit 2 MB huge pages (the paper's evaluation mode).
    Huge2M,
}

impl PageSizeMode {
    /// Bytes per page under this mode.
    pub fn page_bytes(self) -> u64 {
        match self {
            PageSizeMode::Standard4K => PAGE_BYTES,
            PageSizeMode::Huge2M => HUGE_PAGE_BYTES,
        }
    }

    /// The virtual page number of `vaddr` under this mode.
    pub fn vpn(self, vaddr: VirtAddr) -> u64 {
        vaddr.raw() / self.page_bytes()
    }
}

/// Geometry of the TLB hierarchy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// L1 entries for 4 KB pages.
    pub l1_4k_entries: u64,
    /// L1 entries for 2 MB pages.
    pub l1_2m_entries: u64,
    /// Unified L2 entries (paper Table 3: 1024).
    pub l2_entries: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            l1_4k_entries: 64,
            l1_2m_entries: 32,
            l2_entries: 1024,
        }
    }
}

/// Outcome of a TLB lookup.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the first level (no added latency).
    L1Hit,
    /// Hit in the second level (small added latency).
    L2Hit,
    /// Miss: a page walk is required.
    Miss,
}

/// TLB hit/miss statistics.
#[derive(Copy, Clone, Debug, Default)]
pub struct TlbStats {
    /// L1 hits.
    pub l1_hits: Counter,
    /// L2 hits.
    pub l2_hits: Counter,
    /// Full misses (page walks).
    pub misses: Counter,
}

impl TlbStats {
    /// Miss rate over all lookups.
    pub fn miss_rate(&self) -> f64 {
        self.misses
            .fraction_of(self.l1_hits.get() + self.l2_hits.get() + self.misses.get())
    }
}

/// A per-core two-level TLB.
///
/// # Example
///
/// ```
/// use dylect_cpu::tlb::{PageSizeMode, Tlb, TlbConfig, TlbOutcome};
/// use dylect_sim_core::VirtAddr;
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// let a = VirtAddr::new(0x1234_5000);
/// assert_eq!(tlb.lookup(a, PageSizeMode::Huge2M), TlbOutcome::Miss);
/// tlb.fill(a, PageSizeMode::Huge2M);
/// assert_eq!(tlb.lookup(a, PageSizeMode::Huge2M), TlbOutcome::L1Hit);
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    l1_4k: SetAssocCache,
    l1_2m: SetAssocCache,
    l2: SetAssocCache,
    /// The most recently translated page, as an [`Tlb::l2_key`]-style
    /// size-tagged key (`u64::MAX` = none). Models the translation register
    /// real pipelines keep for back-to-back same-page accesses: a repeat
    /// hit costs no TLB port and, here, no host-side cache scan. Counted as
    /// an L1 hit in the stats.
    last_key: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if any level's entry count is not divisible by its
    /// associativity (4 for L1, 8 for L2).
    pub fn new(cfg: TlbConfig) -> Self {
        Tlb {
            l1_4k: SetAssocCache::new(CacheConfig::lru(cfg.l1_4k_entries, 4, 1)),
            l1_2m: SetAssocCache::new(CacheConfig::lru(cfg.l1_2m_entries, 4, 1)),
            l2: SetAssocCache::new(CacheConfig::lru(cfg.l2_entries, 8, 1)),
            last_key: u64::MAX,
            stats: TlbStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets statistics after warmup.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    fn l1(&mut self, mode: PageSizeMode) -> &mut SetAssocCache {
        match mode {
            PageSizeMode::Standard4K => &mut self.l1_4k,
            PageSizeMode::Huge2M => &mut self.l1_2m,
        }
    }

    /// L1 keys fold the address-space identifier into bits the virtual page
    /// number never reaches (scaled footprints stay far below 2^44 pages),
    /// so entries from different tenants never alias and ASID 0 reproduces
    /// the untagged key exactly.
    fn l1_key(asid: u16, vpn: u64) -> u64 {
        ((asid as u64) << 44) | vpn
    }

    /// L2 keys carry the page size so a 4 KB and a 2 MB translation of the
    /// same region never alias, plus the ASID one bit higher than the L1
    /// tag to make room for the size bit.
    fn l2_key(asid: u16, mode: PageSizeMode, vpn: u64) -> u64 {
        let size_tagged = match mode {
            PageSizeMode::Standard4K => vpn << 1,
            PageSizeMode::Huge2M => (vpn << 1) | 1,
        };
        ((asid as u64) << 45) | size_tagged
    }

    /// Looks up the translation for `vaddr`, updating recency and stats.
    pub fn lookup(&mut self, vaddr: VirtAddr, mode: PageSizeMode) -> TlbOutcome {
        self.lookup_asid(vaddr, mode, 0)
    }

    /// [`Tlb::lookup`] for a tagged address space. ASID 0 is bit-for-bit
    /// the untagged behavior.
    pub fn lookup_asid(&mut self, vaddr: VirtAddr, mode: PageSizeMode, asid: u16) -> TlbOutcome {
        let vpn = mode.vpn(vaddr);
        let key = Self::l2_key(asid, mode, vpn);
        if key == self.last_key {
            self.stats.l1_hits.incr();
            return TlbOutcome::L1Hit;
        }
        if self.l1(mode).access(Self::l1_key(asid, vpn)) {
            self.last_key = key;
            self.stats.l1_hits.incr();
            return TlbOutcome::L1Hit;
        }
        if self.l2.access(key) {
            // Promote to L1.
            self.l1(mode).fill(Self::l1_key(asid, vpn), false, ());
            self.last_key = key;
            self.stats.l2_hits.incr();
            return TlbOutcome::L2Hit;
        }
        self.stats.misses.incr();
        TlbOutcome::Miss
    }

    /// Installs a translation after a page walk.
    pub fn fill(&mut self, vaddr: VirtAddr, mode: PageSizeMode) {
        self.fill_asid(vaddr, mode, 0);
    }

    /// [`Tlb::fill`] for a tagged address space.
    pub fn fill_asid(&mut self, vaddr: VirtAddr, mode: PageSizeMode, asid: u16) {
        let vpn = mode.vpn(vaddr);
        self.l1(mode).fill(Self::l1_key(asid, vpn), false, ());
        self.l2.fill(Self::l2_key(asid, mode, vpn), false, ());
        self.last_key = Self::l2_key(asid, mode, vpn);
    }
}

impl Snapshot for Tlb {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.l1_4k.write_snapshot(w);
        self.l1_2m.write_snapshot(w);
        self.l2.write_snapshot(w);
        w.u64(self.last_key);
        self.stats.l1_hits.write_snapshot(w);
        self.stats.l2_hits.write_snapshot(w);
        self.stats.misses.write_snapshot(w);
    }
}

impl Restore for Tlb {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.l1_4k.restore_snapshot(r)?;
        self.l1_2m.restore_snapshot(r)?;
        self.l2.restore_snapshot(r)?;
        self.last_key = r.u64()?;
        self.stats.l1_hits.restore_snapshot(r)?;
        self.stats.l2_hits.restore_snapshot(r)?;
        self.stats.misses.restore_snapshot(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(TlbConfig::default())
    }

    #[test]
    fn l2_backs_up_l1() {
        let mut t = tlb();
        // Fill 100 distinct 4 KB pages: L1 (64) overflows, L2 (1024) holds.
        for i in 0..100u64 {
            t.fill(VirtAddr::new(i * PAGE_BYTES), PageSizeMode::Standard4K);
        }
        let outcome = t.lookup(VirtAddr::new(0), PageSizeMode::Standard4K);
        assert_eq!(outcome, TlbOutcome::L2Hit);
        // And the L2 hit promoted it back to L1.
        assert_eq!(
            t.lookup(VirtAddr::new(0), PageSizeMode::Standard4K),
            TlbOutcome::L1Hit
        );
    }

    #[test]
    fn huge_pages_multiply_reach() {
        let mut t = tlb();
        let span = 512 * PAGE_BYTES * 100; // 100 huge pages worth of memory
                                           // Touch with 2 MB pages: 100 entries, all fit in L2 (and mostly L1).
        let mut misses_2m = 0;
        for pass in 0..2 {
            for a in (0..span).step_by(HUGE_PAGE_BYTES as usize) {
                if t.lookup(VirtAddr::new(a), PageSizeMode::Huge2M) == TlbOutcome::Miss {
                    misses_2m += 1;
                    t.fill(VirtAddr::new(a), PageSizeMode::Huge2M);
                }
            }
            if pass == 0 {
                assert_eq!(misses_2m, 100, "cold misses only");
            }
        }
        assert_eq!(misses_2m, 100, "second pass fully hits");
    }

    #[test]
    fn four_k_pages_thrash() {
        let mut t = tlb();
        // 4096 distinct 4 KB pages exceed the 1024-entry L2.
        for i in 0..4096u64 {
            if t.lookup(VirtAddr::new(i * PAGE_BYTES), PageSizeMode::Standard4K) == TlbOutcome::Miss
            {
                t.fill(VirtAddr::new(i * PAGE_BYTES), PageSizeMode::Standard4K);
            }
        }
        t.reset_stats();
        for i in 0..4096u64 {
            let _ = t.lookup(VirtAddr::new(i * PAGE_BYTES), PageSizeMode::Standard4K);
        }
        assert!(t.stats().miss_rate() > 0.5, "LRU sweep should thrash");
    }

    #[test]
    fn sizes_do_not_alias_in_l2() {
        let mut t = tlb();
        t.fill(VirtAddr::new(0), PageSizeMode::Standard4K);
        assert_eq!(
            t.lookup(VirtAddr::new(0), PageSizeMode::Huge2M),
            TlbOutcome::Miss
        );
    }

    #[test]
    fn asids_do_not_alias() {
        let mut t = tlb();
        let a = VirtAddr::new(0x5000);
        t.fill_asid(a, PageSizeMode::Standard4K, 1);
        assert_eq!(
            t.lookup_asid(a, PageSizeMode::Standard4K, 1),
            TlbOutcome::L1Hit
        );
        // Same vaddr from another tenant misses at every level.
        assert_eq!(
            t.lookup_asid(a, PageSizeMode::Standard4K, 2),
            TlbOutcome::Miss
        );
        assert_eq!(t.lookup(a, PageSizeMode::Standard4K), TlbOutcome::Miss);
    }

    #[test]
    fn asid_zero_is_the_untagged_path() {
        let a = VirtAddr::new(0x1234_5000);
        let mut legacy = tlb();
        let mut tagged = tlb();
        legacy.fill(a, PageSizeMode::Huge2M);
        tagged.fill_asid(a, PageSizeMode::Huge2M, 0);
        assert_eq!(
            legacy.lookup(a, PageSizeMode::Huge2M),
            tagged.lookup_asid(a, PageSizeMode::Huge2M, 0)
        );
        // The snapshots agree byte for byte: identical keys, identical state.
        let mut wl = SnapWriter::new();
        let mut wt = SnapWriter::new();
        legacy.write_snapshot(&mut wl);
        tagged.write_snapshot(&mut wt);
        assert_eq!(wl.into_bytes(), wt.into_bytes());
    }

    #[test]
    fn stats_accumulate() {
        let mut t = tlb();
        let a = VirtAddr::new(0x5000);
        t.lookup(a, PageSizeMode::Standard4K);
        t.fill(a, PageSizeMode::Standard4K);
        t.lookup(a, PageSizeMode::Standard4K);
        assert_eq!(t.stats().misses.get(), 1);
        assert_eq!(t.stats().l1_hits.get(), 1);
        assert!((t.stats().miss_rate() - 0.5).abs() < 1e-9);
    }
}
