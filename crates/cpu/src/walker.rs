//! Page-table layout and the hardware page walker with its walker cache.
//!
//! Page tables are OS-visible memory: their physical pages sit right after
//! the workload footprint and their accesses flow through the cache
//! hierarchy and — crucially for this paper — through the memory
//! controller's CTE translation like any other physical access.
//!
//! The model collapses the radix walk to its two meaningful levels:
//!
//! - **4 KB mode**: a PDE lookup (one 8 B entry per 2 MB region) then the
//!   leaf PTE lookup (8 B per 4 KB page). The 1 KB walker cache (Table 3,
//!   after citation \[23\]) caches PDEs, so a warm walk is a single leaf access.
//! - **2 MB mode**: a PDPTE lookup (8 B per 1 GB) then the leaf PDE (8 B per
//!   2 MB page). Both arrays are tiny and cache-resident, which is why huge
//!   pages make walks both rare *and* cheap.

use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::stats::Counter;
use dylect_sim_core::{PhysAddr, VirtAddr, PAGES_PER_HUGE_PAGE, PAGE_BYTES};

use crate::tlb::PageSizeMode;

/// Physical placement of the page tables, shared by all cores.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PageTableLayout {
    workload_pages: u64,
    pte_base_page: u64,
    pde_base_page: u64,
    pdpte_base_page: u64,
    /// Base of the host (second-dimension) page table; equal to
    /// `total_pages` when the layout is not nested (empty region).
    host_base_page: u64,
    total_pages: u64,
}

impl PageTableLayout {
    /// Lays out page tables for a workload of `workload_pages` 4 KB pages.
    pub fn new(workload_pages: u64) -> Self {
        let pte_pages = (workload_pages * 8).div_ceil(PAGE_BYTES).max(1);
        let pde_pages = (workload_pages.div_ceil(PAGES_PER_HUGE_PAGE) * 8)
            .div_ceil(PAGE_BYTES)
            .max(1);
        let pdpte_pages = 1;
        let pte_base_page = workload_pages;
        let pde_base_page = pte_base_page + pte_pages;
        let pdpte_base_page = pde_base_page + pde_pages;
        PageTableLayout {
            workload_pages,
            pte_base_page,
            pde_base_page,
            pdpte_base_page,
            host_base_page: pdpte_base_page + pdpte_pages,
            total_pages: pdpte_base_page + pdpte_pages,
        }
    }

    /// Lays out page tables for a virtualized guest: the guest tables from
    /// [`PageTableLayout::new`] plus a host (nested) table mapping the
    /// guest-physical space at 2 MB granularity — 8 B per 2 MB region,
    /// covering the workload *and* the guest page tables, since in a 2D
    /// walk every guest-physical access (including the walker's own table
    /// reads) needs a host translation.
    pub fn nested(workload_pages: u64) -> Self {
        let mut l = Self::new(workload_pages);
        let host_entries = l.total_pages.div_ceil(PAGES_PER_HUGE_PAGE);
        let host_pages = (host_entries * 8).div_ceil(PAGE_BYTES).max(1);
        l.host_base_page = l.total_pages;
        l.total_pages += host_pages;
        l
    }

    /// Whether this layout carries a host (nested) table.
    pub fn is_nested(&self) -> bool {
        self.total_pages > self.host_base_page
    }

    /// Physical address of the host-table entry translating the 2 MB
    /// guest-physical region that `target` falls in.
    pub fn host_entry_addr(&self, target: PhysAddr) -> PhysAddr {
        let region = target.raw() / (PAGES_PER_HUGE_PAGE * PAGE_BYTES);
        PhysAddr::new(self.host_base_page * PAGE_BYTES + region * 8)
    }

    /// The workload footprint in 4 KB pages.
    pub fn workload_pages(&self) -> u64 {
        self.workload_pages
    }

    /// Total OS-visible pages including page tables — what the memory
    /// controller must be sized for.
    pub fn total_os_pages(&self) -> u64 {
        self.total_pages
    }

    /// Physical address of the leaf page-table entry for `vaddr`.
    pub fn leaf_entry_addr(&self, vaddr: VirtAddr, mode: PageSizeMode) -> PhysAddr {
        match mode {
            PageSizeMode::Standard4K => {
                let vpn = vaddr.raw() / PAGE_BYTES;
                PhysAddr::new(self.pte_base_page * PAGE_BYTES + vpn * 8)
            }
            PageSizeMode::Huge2M => {
                let hpn = vaddr.raw() / (PAGES_PER_HUGE_PAGE * PAGE_BYTES);
                PhysAddr::new(self.pde_base_page * PAGE_BYTES + hpn * 8)
            }
        }
    }

    /// Physical address of the upper-level entry for `vaddr`.
    pub fn upper_entry_addr(&self, vaddr: VirtAddr, mode: PageSizeMode) -> PhysAddr {
        match mode {
            PageSizeMode::Standard4K => {
                let hpn = vaddr.raw() / (PAGES_PER_HUGE_PAGE * PAGE_BYTES);
                PhysAddr::new(self.pde_base_page * PAGE_BYTES + hpn * 8)
            }
            PageSizeMode::Huge2M => {
                let gpn = vaddr.raw() >> 30; // 1 GB regions
                PhysAddr::new(self.pdpte_base_page * PAGE_BYTES + gpn * 8)
            }
        }
    }
}

/// Walker statistics.
#[derive(Copy, Clone, Debug, Default)]
pub struct WalkerStats {
    /// Walks performed.
    pub walks: Counter,
    /// Walks whose upper level hit the walker cache (single-access walks).
    pub upper_hits: Counter,
    /// Host-table reads issued by the nested (2D) walk — one per
    /// guest-physical 2 MB region that missed the nested walker cache.
    pub host_reads: Counter,
}

/// The per-core page walker with its walker cache.
///
/// # Example
///
/// ```
/// use dylect_cpu::tlb::PageSizeMode;
/// use dylect_cpu::walker::{PageTableLayout, PageWalker};
/// use dylect_sim_core::VirtAddr;
///
/// let layout = PageTableLayout::new(100_000);
/// let mut w = PageWalker::new(128);
/// let plan = w.walk(VirtAddr::new(0x40_0000), PageSizeMode::Huge2M, &layout);
/// assert!(!plan.is_empty() && plan.len() <= 2);
/// ```
#[derive(Clone, Debug)]
pub struct PageWalker {
    cache: SetAssocCache,
    /// Nested-walk (gPA → hPA) cache, modeled after a hardware nTLB:
    /// caches 2 MB guest-physical regions whose host translation is known.
    /// Always constructed (so snapshots have one shape); only consulted
    /// when the layout is nested.
    nested_cache: SetAssocCache,
    stats: WalkerStats,
}

impl PageWalker {
    /// Entries in the nested (gPA → hPA) walker cache.
    const NESTED_ENTRIES: u64 = 64;

    /// Creates a walker whose walker cache holds `entries` upper-level
    /// entries (1 KB = 128 entries in the paper's configuration).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by 4.
    pub fn new(entries: u64) -> Self {
        PageWalker {
            cache: SetAssocCache::new(CacheConfig::lru(entries, 4, 1)),
            nested_cache: SetAssocCache::new(CacheConfig::lru(Self::NESTED_ENTRIES, 4, 1)),
            stats: WalkerStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &WalkerStats {
        &self.stats
    }

    /// For a nested layout, the host-table block that must be read to
    /// translate guest-physical `target` — `None` on a nested-cache hit or
    /// for a non-nested layout. Updates the nested cache.
    pub fn host_translate(
        &mut self,
        target: PhysAddr,
        layout: &PageTableLayout,
    ) -> Option<PhysAddr> {
        if !layout.is_nested() {
            return None;
        }
        let region = target.raw() / (PAGES_PER_HUGE_PAGE * PAGE_BYTES);
        if self.nested_cache.access(region) {
            return None;
        }
        self.nested_cache.fill(region, false, ());
        self.stats.host_reads.incr();
        Some(layout.host_entry_addr(target).block_base())
    }

    /// Plans a walk: the ordered physical block addresses the walker must
    /// read. Updates the walker cache. For a nested layout each guest
    /// table access is preceded by its host-table read when the 2 MB
    /// guest-physical region misses the nested cache (the 2D walk); the
    /// data page's own host translation is planned separately via
    /// [`PageWalker::host_translate`].
    pub fn walk(
        &mut self,
        vaddr: VirtAddr,
        mode: PageSizeMode,
        layout: &PageTableLayout,
    ) -> Vec<PhysAddr> {
        self.stats.walks.incr();
        let upper = layout.upper_entry_addr(vaddr, mode);
        let leaf = layout.leaf_entry_addr(vaddr, mode);
        let upper_key = (upper.block_index() << 1)
            | match mode {
                PageSizeMode::Standard4K => 0,
                PageSizeMode::Huge2M => 1,
            };
        let mut plan = Vec::with_capacity(2);
        if self.cache.access(upper_key) {
            self.stats.upper_hits.incr();
        } else {
            self.cache.fill(upper_key, false, ());
            if let Some(host) = self.host_translate(upper, layout) {
                plan.push(host);
            }
            plan.push(upper.block_base());
        }
        if let Some(host) = self.host_translate(leaf, layout) {
            plan.push(host);
        }
        plan.push(leaf.block_base());
        plan
    }
}

impl Snapshot for PageWalker {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.cache.write_snapshot(w);
        self.nested_cache.write_snapshot(w);
        self.stats.walks.write_snapshot(w);
        self.stats.upper_hits.write_snapshot(w);
        self.stats.host_reads.write_snapshot(w);
    }
}

impl Restore for PageWalker {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cache.restore_snapshot(r)?;
        self.nested_cache.restore_snapshot(r)?;
        self.stats.walks.restore_snapshot(r)?;
        self.stats.upper_hits.restore_snapshot(r)?;
        self.stats.host_reads.restore_snapshot(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let l = PageTableLayout::new(100_000);
        assert_eq!(l.workload_pages(), 100_000);
        assert!(l.total_os_pages() > 100_000);
        let pte = l.leaf_entry_addr(VirtAddr::new(0), PageSizeMode::Standard4K);
        let pde = l.leaf_entry_addr(VirtAddr::new(0), PageSizeMode::Huge2M);
        assert!(pte.page().index() >= 100_000);
        assert!(pde.page().index() > pte.page().index());
    }

    #[test]
    fn leaf_entries_pack_eight_per_block() {
        let l = PageTableLayout::new(100_000);
        let a = l.leaf_entry_addr(VirtAddr::new(0), PageSizeMode::Standard4K);
        let b = l.leaf_entry_addr(VirtAddr::new(7 * PAGE_BYTES), PageSizeMode::Standard4K);
        let c = l.leaf_entry_addr(VirtAddr::new(8 * PAGE_BYTES), PageSizeMode::Standard4K);
        assert_eq!(a.block_base(), b.block_base());
        assert_ne!(a.block_base(), c.block_base());
    }

    #[test]
    fn warm_walks_are_single_access() {
        let l = PageTableLayout::new(100_000);
        let mut w = PageWalker::new(128);
        let cold = w.walk(VirtAddr::new(0x1000), PageSizeMode::Standard4K, &l);
        assert_eq!(cold.len(), 2);
        let warm = w.walk(VirtAddr::new(0x3000), PageSizeMode::Standard4K, &l);
        assert_eq!(warm.len(), 1, "PDE cached: leaf only");
        assert_eq!(w.stats().upper_hits.get(), 1);
    }

    #[test]
    fn modes_do_not_share_walker_entries() {
        let l = PageTableLayout::new(100_000);
        let mut w = PageWalker::new(128);
        w.walk(VirtAddr::new(0), PageSizeMode::Standard4K, &l);
        let cold_2m = w.walk(VirtAddr::new(0), PageSizeMode::Huge2M, &l);
        assert_eq!(cold_2m.len(), 2);
    }

    #[test]
    fn nested_layout_appends_host_table() {
        let base = PageTableLayout::new(100_000);
        let nested = PageTableLayout::nested(100_000);
        assert!(!base.is_nested());
        assert!(nested.is_nested());
        assert!(nested.total_os_pages() > base.total_os_pages());
        // Guest regions are identical; the host table sits after them.
        assert_eq!(
            base.leaf_entry_addr(VirtAddr::new(0), PageSizeMode::Standard4K),
            nested.leaf_entry_addr(VirtAddr::new(0), PageSizeMode::Standard4K)
        );
        let host = nested.host_entry_addr(PhysAddr::new(0));
        assert!(host.page().index() >= base.total_os_pages());
        assert!(host.page().index() < nested.total_os_pages());
        // The host table covers the very last guest-physical page.
        let last = nested.host_entry_addr(PhysAddr::new((base.total_os_pages() - 1) * PAGE_BYTES));
        assert!(last.page().index() < nested.total_os_pages());
    }

    #[test]
    fn nested_walks_add_host_reads() {
        let l = PageTableLayout::nested(1 << 20);
        let mut w = PageWalker::new(128);
        let cold = w.walk(VirtAddr::new(0x1000), PageSizeMode::Standard4K, &l);
        // Cold 2D walk: host(upper) + upper + [host(leaf) if new region] + leaf.
        assert!(
            cold.len() >= 3,
            "cold nested walk reads host table: {cold:?}"
        );
        assert!(w.stats().host_reads.get() >= 1);
        let before = w.stats().host_reads.get();
        let warm = w.walk(VirtAddr::new(0x3000), PageSizeMode::Standard4K, &l);
        assert_eq!(warm.len(), 1, "warm nested walk: nTLB + PDE cache hit");
        assert_eq!(w.stats().host_reads.get(), before);
        // A region far away misses the nested cache again.
        assert!(w.host_translate(PhysAddr::new(500 << 21), &l).is_some());
    }

    #[test]
    fn non_nested_layout_never_plans_host_reads() {
        let l = PageTableLayout::new(1 << 20);
        let mut w = PageWalker::new(128);
        assert!(w.host_translate(PhysAddr::new(0), &l).is_none());
        let cold = w.walk(VirtAddr::new(0x1000), PageSizeMode::Standard4K, &l);
        assert_eq!(cold.len(), 2);
        assert_eq!(w.stats().host_reads.get(), 0);
    }

    #[test]
    fn huge_mode_leaf_covers_16mb_per_block() {
        // 8 PDEs per 64 B block, each covering 2 MB -> 16 MB per block.
        let l = PageTableLayout::new(1 << 20);
        let a = l.leaf_entry_addr(VirtAddr::new(0), PageSizeMode::Huge2M);
        let b = l.leaf_entry_addr(VirtAddr::new(15 << 20), PageSizeMode::Huge2M);
        let c = l.leaf_entry_addr(VirtAddr::new(16 << 20), PageSizeMode::Huge2M);
        assert_eq!(a.block_base(), b.block_base());
        assert_ne!(a.block_base(), c.block_base());
    }
}
