//! Page-table layout and the hardware page walker with its walker cache.
//!
//! Page tables are OS-visible memory: their physical pages sit right after
//! the workload footprint and their accesses flow through the cache
//! hierarchy and — crucially for this paper — through the memory
//! controller's CTE translation like any other physical access.
//!
//! The model collapses the radix walk to its two meaningful levels:
//!
//! - **4 KB mode**: a PDE lookup (one 8 B entry per 2 MB region) then the
//!   leaf PTE lookup (8 B per 4 KB page). The 1 KB walker cache (Table 3,
//!   after citation \[23\]) caches PDEs, so a warm walk is a single leaf access.
//! - **2 MB mode**: a PDPTE lookup (8 B per 1 GB) then the leaf PDE (8 B per
//!   2 MB page). Both arrays are tiny and cache-resident, which is why huge
//!   pages make walks both rare *and* cheap.

use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::stats::Counter;
use dylect_sim_core::{PhysAddr, VirtAddr, PAGES_PER_HUGE_PAGE, PAGE_BYTES};

use crate::tlb::PageSizeMode;

/// Physical placement of the page tables, shared by all cores.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PageTableLayout {
    workload_pages: u64,
    pte_base_page: u64,
    pde_base_page: u64,
    pdpte_base_page: u64,
    total_pages: u64,
}

impl PageTableLayout {
    /// Lays out page tables for a workload of `workload_pages` 4 KB pages.
    pub fn new(workload_pages: u64) -> Self {
        let pte_pages = (workload_pages * 8).div_ceil(PAGE_BYTES).max(1);
        let pde_pages = (workload_pages.div_ceil(PAGES_PER_HUGE_PAGE) * 8)
            .div_ceil(PAGE_BYTES)
            .max(1);
        let pdpte_pages = 1;
        let pte_base_page = workload_pages;
        let pde_base_page = pte_base_page + pte_pages;
        let pdpte_base_page = pde_base_page + pde_pages;
        PageTableLayout {
            workload_pages,
            pte_base_page,
            pde_base_page,
            pdpte_base_page,
            total_pages: pdpte_base_page + pdpte_pages,
        }
    }

    /// The workload footprint in 4 KB pages.
    pub fn workload_pages(&self) -> u64 {
        self.workload_pages
    }

    /// Total OS-visible pages including page tables — what the memory
    /// controller must be sized for.
    pub fn total_os_pages(&self) -> u64 {
        self.total_pages
    }

    /// Physical address of the leaf page-table entry for `vaddr`.
    pub fn leaf_entry_addr(&self, vaddr: VirtAddr, mode: PageSizeMode) -> PhysAddr {
        match mode {
            PageSizeMode::Standard4K => {
                let vpn = vaddr.raw() / PAGE_BYTES;
                PhysAddr::new(self.pte_base_page * PAGE_BYTES + vpn * 8)
            }
            PageSizeMode::Huge2M => {
                let hpn = vaddr.raw() / (PAGES_PER_HUGE_PAGE * PAGE_BYTES);
                PhysAddr::new(self.pde_base_page * PAGE_BYTES + hpn * 8)
            }
        }
    }

    /// Physical address of the upper-level entry for `vaddr`.
    pub fn upper_entry_addr(&self, vaddr: VirtAddr, mode: PageSizeMode) -> PhysAddr {
        match mode {
            PageSizeMode::Standard4K => {
                let hpn = vaddr.raw() / (PAGES_PER_HUGE_PAGE * PAGE_BYTES);
                PhysAddr::new(self.pde_base_page * PAGE_BYTES + hpn * 8)
            }
            PageSizeMode::Huge2M => {
                let gpn = vaddr.raw() >> 30; // 1 GB regions
                PhysAddr::new(self.pdpte_base_page * PAGE_BYTES + gpn * 8)
            }
        }
    }
}

/// Walker statistics.
#[derive(Copy, Clone, Debug, Default)]
pub struct WalkerStats {
    /// Walks performed.
    pub walks: Counter,
    /// Walks whose upper level hit the walker cache (single-access walks).
    pub upper_hits: Counter,
}

/// The per-core page walker with its walker cache.
///
/// # Example
///
/// ```
/// use dylect_cpu::tlb::PageSizeMode;
/// use dylect_cpu::walker::{PageTableLayout, PageWalker};
/// use dylect_sim_core::VirtAddr;
///
/// let layout = PageTableLayout::new(100_000);
/// let mut w = PageWalker::new(128);
/// let plan = w.walk(VirtAddr::new(0x40_0000), PageSizeMode::Huge2M, &layout);
/// assert!(!plan.is_empty() && plan.len() <= 2);
/// ```
#[derive(Clone, Debug)]
pub struct PageWalker {
    cache: SetAssocCache,
    stats: WalkerStats,
}

impl PageWalker {
    /// Creates a walker whose walker cache holds `entries` upper-level
    /// entries (1 KB = 128 entries in the paper's configuration).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by 4.
    pub fn new(entries: u64) -> Self {
        PageWalker {
            cache: SetAssocCache::new(CacheConfig::lru(entries, 4, 1)),
            stats: WalkerStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &WalkerStats {
        &self.stats
    }

    /// Plans a walk: the ordered physical block addresses the walker must
    /// read. Updates the walker cache.
    pub fn walk(
        &mut self,
        vaddr: VirtAddr,
        mode: PageSizeMode,
        layout: &PageTableLayout,
    ) -> Vec<PhysAddr> {
        self.stats.walks.incr();
        let upper = layout.upper_entry_addr(vaddr, mode);
        let leaf = layout.leaf_entry_addr(vaddr, mode);
        let upper_key = (upper.block_index() << 1)
            | match mode {
                PageSizeMode::Standard4K => 0,
                PageSizeMode::Huge2M => 1,
            };
        if self.cache.access(upper_key) {
            self.stats.upper_hits.incr();
            vec![leaf.block_base()]
        } else {
            self.cache.fill(upper_key, false, ());
            vec![upper.block_base(), leaf.block_base()]
        }
    }
}

impl Snapshot for PageWalker {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.cache.write_snapshot(w);
        self.stats.walks.write_snapshot(w);
        self.stats.upper_hits.write_snapshot(w);
    }
}

impl Restore for PageWalker {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cache.restore_snapshot(r)?;
        self.stats.walks.restore_snapshot(r)?;
        self.stats.upper_hits.restore_snapshot(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let l = PageTableLayout::new(100_000);
        assert_eq!(l.workload_pages(), 100_000);
        assert!(l.total_os_pages() > 100_000);
        let pte = l.leaf_entry_addr(VirtAddr::new(0), PageSizeMode::Standard4K);
        let pde = l.leaf_entry_addr(VirtAddr::new(0), PageSizeMode::Huge2M);
        assert!(pte.page().index() >= 100_000);
        assert!(pde.page().index() > pte.page().index());
    }

    #[test]
    fn leaf_entries_pack_eight_per_block() {
        let l = PageTableLayout::new(100_000);
        let a = l.leaf_entry_addr(VirtAddr::new(0), PageSizeMode::Standard4K);
        let b = l.leaf_entry_addr(VirtAddr::new(7 * PAGE_BYTES), PageSizeMode::Standard4K);
        let c = l.leaf_entry_addr(VirtAddr::new(8 * PAGE_BYTES), PageSizeMode::Standard4K);
        assert_eq!(a.block_base(), b.block_base());
        assert_ne!(a.block_base(), c.block_base());
    }

    #[test]
    fn warm_walks_are_single_access() {
        let l = PageTableLayout::new(100_000);
        let mut w = PageWalker::new(128);
        let cold = w.walk(VirtAddr::new(0x1000), PageSizeMode::Standard4K, &l);
        assert_eq!(cold.len(), 2);
        let warm = w.walk(VirtAddr::new(0x3000), PageSizeMode::Standard4K, &l);
        assert_eq!(warm.len(), 1, "PDE cached: leaf only");
        assert_eq!(w.stats().upper_hits.get(), 1);
    }

    #[test]
    fn modes_do_not_share_walker_entries() {
        let l = PageTableLayout::new(100_000);
        let mut w = PageWalker::new(128);
        w.walk(VirtAddr::new(0), PageSizeMode::Standard4K, &l);
        let cold_2m = w.walk(VirtAddr::new(0), PageSizeMode::Huge2M, &l);
        assert_eq!(cold_2m.len(), 2);
    }

    #[test]
    fn huge_mode_leaf_covers_16mb_per_block() {
        // 8 PDEs per 64 B block, each covering 2 MB -> 16 MB per block.
        let l = PageTableLayout::new(1 << 20);
        let a = l.leaf_entry_addr(VirtAddr::new(0), PageSizeMode::Huge2M);
        let b = l.leaf_entry_addr(VirtAddr::new(15 << 20), PageSizeMode::Huge2M);
        let c = l.leaf_entry_addr(VirtAddr::new(16 << 20), PageSizeMode::Huge2M);
        assert_eq!(a.block_base(), b.block_base());
        assert_ne!(a.block_base(), c.block_base());
    }
}
