//! The TMCC baseline — "Translation-optimized Memory Compression for
//! Capacity" (MICRO'22) — as described in §II-B of the DyLeCT paper.
//!
//! TMCC divides memory into a two-level exclusive hierarchy: **ML1** holds
//! hot pages uncompressed (so their CTEs stay small), **ML2** holds cold
//! pages compressed at page granularity. A flat unified CTE table holds one
//! 8 B CTE per translation granule; 64 B CTE blocks (8 CTEs, 32 KB reach at
//! 4 KB granularity) are cached in a dedicated CTE cache in the MC. On every
//! access to an ML2 granule the whole granule is decompressed into free DRAM
//! pages ("page expansion"); demand-adaptive background compaction
//! compresses recency-tail victims to maintain a free-page target.
//!
//! TMCC's page-walker-embedding optimization (truncated CTEs inside PTBs) is
//! *not* modeled because, as the paper argues in §III-A, it is inapplicable
//! under 2 MB huge pages — the evaluation setting of every experiment here.
//!
//! The `granule_pages` knob generalizes TMCC to the coarse compression
//! granularities of Figure 6 (16 KB / 64 KB / 128 KB): coarser granules give
//! each CTE more reach but multiply expansion bandwidth and decompression
//! latency.
//!
//! # Example
//!
//! ```
//! use dylect_compression::CompressibilityProfile;
//! use dylect_dram::{Dram, DramConfig};
//! use dylect_memctl::MemoryScheme;
//! use dylect_sim_core::{PhysAddr, Time};
//! use dylect_tmcc::{Tmcc, TmccConfig};
//!
//! let mut dram = Dram::new(DramConfig::paper(1 << 28, 8));
//! let profile = CompressibilityProfile::with_mean_ratio("demo", 3.0);
//! // 80k OS pages into a 64k-page DRAM: compression required.
//! let mut tmcc = Tmcc::new(TmccConfig::paper(80_000), &dram, profile, 1);
//! let r = tmcc.access(Time::ZERO, PhysAddr::new(0x1000), false, &mut dram);
//! assert!(r.data_ready > Time::ZERO);
//! ```

use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_compression::latency::decompression_latency;
use dylect_compression::CompressibilityProfile;
use dylect_dram::{Dram, DramOp, RequestClass};
use dylect_memctl::controller::{
    AccessBreakdown, CteCacheGeometry, McResponse, McStats, MemoryScheme, Occupancy,
};
use dylect_memctl::layout::{LayoutOptions, McLayout};
use dylect_memctl::recency::TOUCH_PERIOD;
use dylect_memctl::store::CompressedStore;
use dylect_memctl::{PageState, CTE_CACHE_HIT_LATENCY};
use dylect_sim_core::probe::{
    CteBlockKind, CteOp, CteRecord, McEvent, MemLevel, ProbeHandle, TranslationPath,
};
use dylect_sim_core::snap::{Restore as _, SnapError, SnapReader, SnapWriter, Snapshot as _};
use dylect_sim_core::{MachineAddr, PageId, PhysAddr, Time, PAGE_BYTES};

/// Configuration of a [`Tmcc`] controller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TmccConfig {
    /// OS-visible memory size in 4 KB pages.
    pub os_pages: u64,
    /// CTE cache capacity in bytes (paper: 128 KB).
    pub cte_cache_bytes: u64,
    /// CTE cache associativity.
    pub cte_cache_ways: u32,
    /// Compression/translation granule in 4 KB pages (1, 4, 16, or 32 for
    /// the paper's 4 KB–128 KB sweep).
    pub granule_pages: u64,
    /// Whole free DRAM pages the background compactor maintains.
    pub free_target_pages: u64,
}

impl TmccConfig {
    /// The paper's configuration (Table 3): 128 KB CTE cache, 4 KB granules.
    pub fn paper(os_pages: u64) -> Self {
        TmccConfig {
            os_pages,
            cte_cache_bytes: 128 * 1024,
            cte_cache_ways: 8,
            granule_pages: 1,
            free_target_pages: 256,
        }
    }
}

/// The TMCC memory controller.
#[derive(Clone, Debug)]
pub struct Tmcc {
    cfg: TmccConfig,
    store: CompressedStore,
    layout: McLayout,
    cte_cache: SetAssocCache,
    stats: McStats,
    probe: ProbeHandle,
    requests_seen: u64,
}

impl Tmcc {
    /// Builds a TMCC controller over `dram`, packing `cfg.os_pages` of
    /// OS-visible memory (with per-page sizes from `profile`) into the DRAM.
    ///
    /// # Panics
    ///
    /// Panics if the footprint cannot fit fully compressed.
    pub fn new(cfg: TmccConfig, dram: &Dram, profile: CompressibilityProfile, seed: u64) -> Self {
        let total_pages = dram.config().geometry.capacity_pages();
        let granules = cfg.os_pages.div_ceil(cfg.granule_pages);
        let layout = McLayout::new(
            total_pages,
            cfg.os_pages,
            LayoutOptions {
                pregathered: false,
                counters: false,
                unified_entries: granules,
            },
        );
        let store = CompressedStore::pack_granular(
            cfg.os_pages,
            layout.data_pages(),
            profile,
            seed,
            cfg.free_target_pages,
            cfg.granule_pages,
        );
        let cte_cache = SetAssocCache::new(CacheConfig::lru(
            cfg.cte_cache_bytes,
            cfg.cte_cache_ways,
            64,
        ));
        Tmcc {
            cfg,
            store,
            layout,
            cte_cache,
            stats: McStats::default(),
            probe: ProbeHandle::disabled(),
            requests_seen: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TmccConfig {
        &self.cfg
    }

    /// Shared-store access for tests and harnesses.
    pub fn store(&self) -> &CompressedStore {
        &self.store
    }

    fn granule_of(&self, page: PageId) -> u64 {
        page.index() / self.cfg.granule_pages
    }

    fn granule_pages_range(&self, granule: u64) -> impl Iterator<Item = PageId> {
        let start = granule * self.cfg.granule_pages;
        let end = ((granule + 1) * self.cfg.granule_pages).min(self.cfg.os_pages);
        (start..end).map(PageId::new)
    }

    /// CTE cache lookup / fill on miss; returns the time translation is
    /// available and whether it missed.
    fn translate(&mut self, now: Time, granule: u64, dram: &mut Dram) -> (Time, bool) {
        let key = self.layout.unified_block_key(granule);
        if self.cte_cache.access(key) {
            self.probe.emit_cte(&CteRecord {
                kind: CteBlockKind::Unified,
                op: CteOp::Lookup {
                    hit: true,
                    fill_on_miss: false,
                },
                key,
            });
            self.stats.cte_hits_unified.incr();
            return (now + CTE_CACHE_HIT_LATENCY, false);
        }
        self.probe.emit_cte(&CteRecord {
            kind: CteBlockKind::Unified,
            op: CteOp::Lookup {
                hit: false,
                fill_on_miss: true,
            },
            key,
        });
        self.stats.cte_misses.incr();
        let addr = self.layout.unified_block_addr(granule);
        let done = dram.access(now, addr, DramOp::Read, RequestClass::CteFetch);
        if let Some(ev) = self.cte_cache.fill(key, false, ()) {
            if ev.dirty {
                // Write back the evicted CTE block.
                let wb_addr = MachineAddr::new(ev.key * 64);
                dram.access(done, wb_addr, DramOp::Write, RequestClass::CteFetch);
            }
        }
        (done, true)
    }

    /// Marks a granule's CTE as modified: dirty in cache, or a direct table
    /// write if uncached.
    fn update_cte(&mut self, now: Time, granule: u64, dram: &mut Dram) {
        let key = self.layout.unified_block_key(granule);
        if self.cte_cache.probe(key) {
            self.cte_cache.fill(key, true, ());
        } else {
            let addr = self.layout.unified_block_addr(granule);
            dram.access(now, addr, DramOp::Write, RequestClass::CteFetch);
        }
        self.probe.emit_cte(&CteRecord {
            kind: CteBlockKind::Unified,
            op: CteOp::Touch,
            key,
        });
    }

    /// Expands every compressed page of `granule`; returns when the data is
    /// usable. Decompression latency scales with granule size (Figure 6's
    /// coarse-granularity cost).
    fn expand_granule(&mut self, now: Time, granule: u64, dram: &mut Dram) -> Time {
        self.stats.expansions.incr();
        // Journal the granule's first page as the event's subject.
        self.probe
            .emit(now, McEvent::Expansion, granule * self.cfg.granule_pages);
        // Ensure enough whole free pages exist for the expansion without
        // tripping the store's single-page emergency path mid-granule.
        let needed = self.cfg.granule_pages;
        if (self.store.free.free_page_count() as u64) < needed {
            self.store.compact_until(dram, now, needed);
        }
        let mut ready = now;
        let pages: Vec<PageId> = self
            .granule_pages_range(granule)
            .filter(|&p| self.store.is_compressed(p))
            .collect();
        let extra_decompress = decompression_latency(self.cfg.granule_pages * PAGE_BYTES)
            .saturating_sub(decompression_latency(PAGE_BYTES));
        for p in pages {
            let (_, t) = self.store.expand(dram, now, p, RequestClass::Migration);
            ready = ready.max(t);
        }
        self.update_cte(ready, granule, dram);
        ready + extra_decompress
    }

    /// Background maintenance: compact whole granules from the recency tail
    /// until the free target is met.
    fn maintain(&mut self, now: Time, dram: &mut Dram) {
        self.maintain_to(now, self.store.free_target_pages(), dram);
    }

    /// [`Tmcc::maintain`] with an explicit free target (scenario pressure
    /// events raise it past the steady-state floor).
    fn maintain_to(&mut self, now: Time, target: u64, dram: &mut Dram) {
        let mut t = now;
        let mut guard = 64;
        while (self.store.free.free_page_count() as u64) < target && guard > 0 {
            guard -= 1;
            let Some(victim) = self.store.recency.tail() else {
                break;
            };
            let granule = self.granule_of(victim);
            self.stats.compactions.incr();
            self.probe.emit(t, McEvent::Compaction, victim.index());
            for p in self.granule_pages_range(granule) {
                if !self.store.is_compressed(p) {
                    t = self.store.compact_page(dram, t, p);
                }
            }
            self.update_cte(t, granule, dram);
        }
    }
}

impl MemoryScheme for Tmcc {
    fn name(&self) -> &'static str {
        "tmcc"
    }

    fn access(&mut self, now: Time, addr: PhysAddr, is_write: bool, dram: &mut Dram) -> McResponse {
        let page = addr.page();
        debug_assert!(page.index() < self.cfg.os_pages, "address out of range");
        self.stats.requests.incr();
        self.requests_seen += 1;
        if self.requests_seen.is_multiple_of(TOUCH_PERIOD) && !self.store.is_compressed(page) {
            self.store.recency.touch(page);
        }

        let granule = self.granule_of(page);
        // TMCC has no ML0; compressed pages are ML2, the rest ML1.
        let level = if self.store.is_compressed(page) {
            MemLevel::Ml2
        } else {
            MemLevel::Ml1
        };
        let (t_translated, missed) = self.translate(now, granule, dram);
        let path = if missed {
            TranslationPath::CteMiss
        } else {
            TranslationPath::LongCteHit
        };

        // Serve the data.
        let (t_data_start, expanded) = match self.store.dir.state(page) {
            Some(PageState::Uncompressed(_)) => (t_translated, false),
            Some(PageState::Compressed(_)) => {
                (self.expand_granule(t_translated, granule, dram), true)
            }
            None => unreachable!("page always placed"),
        };
        let Some(PageState::Uncompressed(dpage)) = self.store.dir.state(page) else {
            unreachable!("page uncompressed after expansion");
        };
        let machine = dpage.base_addr().offset(addr.page_offset());
        let (op, class) = if is_write {
            (DramOp::Write, RequestClass::Writeback)
        } else {
            (DramOp::Read, RequestClass::Demand)
        };
        let detail = dram.access_detailed(t_data_start, machine.block_base(), op, class);
        let data_ready = detail.done;

        // Demand-adaptive background compaction, off the critical path.
        if expanded {
            self.maintain(data_ready, dram);
        }

        let overhead = (t_data_start - now).min(data_ready.saturating_sub(now));
        self.stats
            .translation_latency
            .record_time_ns(t_translated.saturating_sub(now));
        self.stats.overhead_latency.record_time_ns(overhead);
        // TMCC decompresses whole granules, so the estimated decompression
        // share of the expansion window scales with the granule size.
        let (decompression, migration) = AccessBreakdown::split_expansion(
            t_data_start.saturating_sub(t_translated),
            self.cfg.granule_pages * PAGE_BYTES,
        );
        McResponse {
            data_ready,
            overhead,
            breakdown: AccessBreakdown {
                path,
                level,
                translation: t_translated.saturating_sub(now),
                decompression,
                migration,
                ..AccessBreakdown::default()
            }
            .with_dram(detail),
        }
    }

    fn apply_pressure(&mut self, now: Time, extra_free_pages: u64, dram: &mut Dram) {
        let target = self
            .store
            .free_target_pages()
            .saturating_add(extra_free_pages);
        self.maintain_to(now, target, dram);
    }

    fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    fn cte_cache_geometry(&self) -> Option<CteCacheGeometry> {
        let c = self.cte_cache.config();
        Some(CteCacheGeometry {
            capacity_bytes: c.capacity_bytes,
            ways: c.ways,
            block_bytes: c.block_bytes,
            group_size: 0,
            num_groups: 0,
        })
    }

    fn stats(&self) -> &McStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = McStats::default();
        self.cte_cache.reset_stats();
    }

    fn occupancy(&self) -> Occupancy {
        let (unc, comp) = self.store.dir.census();
        Occupancy {
            ml0_pages: 0,
            ml1_pages: unc,
            ml2_pages: comp,
            free_pages: self.store.free.free_page_count() as u64,
            free_bytes: self.store.free.free_bytes(),
        }
    }

    // `cfg` and `layout` are construction state; the probe is reinstalled
    // by the owner after restore.
    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.store.write_snapshot(w);
        self.cte_cache.write_snapshot(w);
        self.stats.write_snapshot(w);
        w.u64(self.requests_seen);
    }

    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.store.restore_snapshot(r)?;
        self.cte_cache.restore_snapshot(r)?;
        self.stats.restore_snapshot(r)?;
        self.requests_seen = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_dram::DramConfig;

    fn profile() -> CompressibilityProfile {
        CompressibilityProfile::with_mean_ratio("t", 3.0)
    }

    fn setup(os_pages: u64, dram_bytes: u64) -> (Tmcc, Dram) {
        let dram = Dram::new(DramConfig::paper(dram_bytes, 8));
        let tmcc = Tmcc::new(TmccConfig::paper(os_pages), &dram, profile(), 3);
        (tmcc, dram)
    }

    #[test]
    fn uncompressed_hit_path_is_fast() {
        let (mut tmcc, mut dram) = setup(10_000, 1 << 28);
        // Find an uncompressed page and access it twice.
        let page = (0..10_000)
            .map(PageId::new)
            .find(|&p| !tmcc.store().is_compressed(p))
            .unwrap();
        let addr = PhysAddr::new(page.index() * PAGE_BYTES);
        let r1 = tmcc.access(Time::ZERO, addr, false, &mut dram);
        let r2 = tmcc.access(r1.data_ready, addr, false, &mut dram);
        // Second access: CTE cache hit, so overhead is just the hit latency.
        assert_eq!(r2.overhead, CTE_CACHE_HIT_LATENCY);
        assert_eq!(tmcc.stats().cte_hits_unified.get(), 1);
        assert_eq!(tmcc.stats().cte_misses.get(), 1);
    }

    #[test]
    fn compressed_access_triggers_expansion() {
        let (mut tmcc, mut dram) = setup(80_000, 1 << 28);
        let page = (0..80_000)
            .map(PageId::new)
            .find(|&p| tmcc.store().is_compressed(p))
            .expect("compression pressure");
        let addr = PhysAddr::new(page.index() * PAGE_BYTES);
        let r = tmcc.access(Time::ZERO, addr, false, &mut dram);
        assert!(!tmcc.store().is_compressed(page), "page expanded");
        assert_eq!(tmcc.stats().expansions.get(), 1);
        // Expansion includes at least one decompression latency.
        assert!(r.overhead.as_ns() >= 280.0);
    }

    #[test]
    fn expansion_keeps_invariants() {
        let (mut tmcc, mut dram) = setup(80_000, 1 << 28);
        let data_pages = tmcc.layout.data_pages();
        let mut t = Time::ZERO;
        for i in 0..2000u64 {
            let addr = PhysAddr::new((i * 7919 % 80_000) * PAGE_BYTES);
            let r = tmcc.access(t, addr, i % 5 == 0, &mut dram);
            t = r.data_ready;
        }
        tmcc.store().check_invariants(data_pages);
        let occ = tmcc.occupancy();
        assert_eq!(occ.ml1_pages + occ.ml2_pages, 80_000);
    }

    #[test]
    fn coarse_granularity_expands_whole_granule() {
        let dram_cfg = DramConfig::paper(1 << 28, 8);
        let dram0 = Dram::new(dram_cfg);
        let cfg = TmccConfig {
            granule_pages: 16,
            ..TmccConfig::paper(80_000)
        };
        let mut tmcc = Tmcc::new(cfg, &dram0, profile(), 3);
        let mut dram = dram0;
        let page = (0..80_000)
            .map(PageId::new)
            .find(|&p| tmcc.store().is_compressed(p))
            .unwrap();
        let addr = PhysAddr::new(page.index() * PAGE_BYTES);
        let r = tmcc.access(Time::ZERO, addr, false, &mut dram);
        // All 16 pages of the granule must now be uncompressed.
        let g = page.index() / 16;
        for p in g * 16..(g + 1) * 16 {
            assert!(!tmcc.store().is_compressed(PageId::new(p)), "page {p}");
        }
        // Decompression latency scales with granule size.
        assert!(r.overhead.as_ns() >= 16.0 * 280.0);
    }

    #[test]
    fn coarse_granularity_shares_cte_across_granule() {
        let dram0 = Dram::new(DramConfig::paper(1 << 28, 8));
        let cfg = TmccConfig {
            granule_pages: 16,
            ..TmccConfig::paper(80_000)
        };
        let mut tmcc = Tmcc::new(cfg, &dram0, profile(), 3);
        let mut dram = dram0;
        // Pick an uncompressed granule; accesses to different pages within
        // 8 consecutive granules share one CTE block.
        let g = (0..80_000 / 16)
            .find(|&g| (g * 16..(g + 1) * 16).all(|p| !tmcc.store().is_compressed(PageId::new(p))))
            .unwrap();
        let a1 = PhysAddr::new(g * 16 * PAGE_BYTES);
        let a2 = PhysAddr::new((g * 16 + 15) * PAGE_BYTES);
        tmcc.access(Time::ZERO, a1, false, &mut dram);
        let r = tmcc.access(Time::from_us(1), a2, false, &mut dram);
        assert_eq!(tmcc.stats().cte_misses.get(), 1);
        assert_eq!(tmcc.stats().cte_hits_unified.get(), 1);
        assert_eq!(r.overhead, CTE_CACHE_HIT_LATENCY);
    }

    #[test]
    fn maintenance_restores_free_target() {
        let (mut tmcc, mut dram) = setup(80_000, 1 << 28);
        let target = tmcc.store().free_target_pages();
        let mut t = Time::ZERO;
        // Hammer compressed pages to force many expansions.
        let compressed: Vec<PageId> = (0..80_000)
            .map(PageId::new)
            .filter(|&p| tmcc.store().is_compressed(p))
            .take(600)
            .collect();
        for p in compressed {
            let r = tmcc.access(t, PhysAddr::new(p.index() * PAGE_BYTES), false, &mut dram);
            t = r.data_ready;
        }
        assert!(
            tmcc.store().free.free_page_count() as u64 >= target / 2,
            "free pool collapsed: {}",
            tmcc.store().free.free_page_count()
        );
        assert!(tmcc.stats().compactions.get() > 0);
    }

    #[test]
    fn writebacks_also_expand() {
        let (mut tmcc, mut dram) = setup(80_000, 1 << 28);
        let page = (0..80_000)
            .map(PageId::new)
            .find(|&p| tmcc.store().is_compressed(p))
            .unwrap();
        let addr = PhysAddr::new(page.index() * PAGE_BYTES);
        tmcc.access(Time::ZERO, addr, true, &mut dram);
        assert!(!tmcc.store().is_compressed(page));
        assert!(dram.stats().class_blocks(RequestClass::Writeback) >= 1);
    }

    #[test]
    fn cte_reach_is_32kb_per_block() {
        // Pages 0..7 share a CTE block; page 8 uses the next.
        let (mut tmcc, mut dram) = setup(10_000, 1 << 28);
        for p in 0..8u64 {
            tmcc.access(
                Time::from_us(p),
                PhysAddr::new(p * PAGE_BYTES),
                false,
                &mut dram,
            );
        }
        assert_eq!(tmcc.stats().cte_misses.get(), 1);
        tmcc.access(
            Time::from_us(9),
            PhysAddr::new(8 * PAGE_BYTES),
            false,
            &mut dram,
        );
        assert_eq!(tmcc.stats().cte_misses.get(), 2);
    }

    #[test]
    fn reset_stats_clears() {
        let (mut tmcc, mut dram) = setup(10_000, 1 << 28);
        tmcc.access(Time::ZERO, PhysAddr::new(0), false, &mut dram);
        tmcc.reset_stats();
        assert_eq!(tmcc.stats().requests.get(), 0);
        assert_eq!(tmcc.stats().cte_lookups(), 0);
    }
}
