//! Machine-physical address → DRAM location mapping.
//!
//! As in real systems (and as the paper notes in §II-A), the machine-physical
//! address produced by CTE translation is converted into
//! `col:row:bank:channel` coordinates by a *static* mapping function. We use
//! a Ramulator-style `Ro:Ra:Bg:Ba:Co:Ch` layout over 64 B block indices:
//! consecutive blocks interleave across channels first, then walk a row
//! (row-buffer-friendly for streaming and page migrations), then spread
//! across banks, bank groups, ranks, and finally rows.

use dylect_sim_core::MachineAddr;

use crate::config::DramGeometry;

/// Decoded DRAM coordinates of one 64 B block.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Flat bank index within the rank (bank group folded in).
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// 64 B column (block) index within the row.
    pub column: u64,
}

/// The static address-mapping function.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AddressMapper {
    geometry: DramGeometry,
}

impl AddressMapper {
    /// Creates a mapper for the given geometry.
    pub fn new(geometry: DramGeometry) -> Self {
        AddressMapper { geometry }
    }

    /// Returns the geometry this mapper was built for.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Decodes a machine-physical address into DRAM coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the address is beyond the configured
    /// capacity.
    pub fn decode(&self, addr: MachineAddr) -> Location {
        let g = &self.geometry;
        debug_assert!(
            addr.raw() < g.capacity_bytes(),
            "address {addr} beyond capacity"
        );
        let mut x = addr.block_index();
        let channel = (x % g.channels as u64) as u32;
        x /= g.channels as u64;
        let column = x % g.blocks_per_row();
        x /= g.blocks_per_row();
        let bank = (x % g.banks_total() as u64) as u32;
        x /= g.banks_total() as u64;
        let rank = (x % g.ranks as u64) as u32;
        x /= g.ranks as u64;
        let row = x;
        Location {
            channel,
            rank,
            bank,
            row,
            column,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_sim_core::BLOCK_BYTES;

    fn mapper() -> AddressMapper {
        AddressMapper::new(DramGeometry::ddr4_with_capacity(1 << 30, 8))
    }

    #[test]
    fn consecutive_blocks_walk_a_row() {
        let m = mapper();
        // One channel, so consecutive blocks share bank/row until the row
        // (128 blocks) is exhausted.
        let a = m.decode(MachineAddr::new(0));
        let b = m.decode(MachineAddr::new(BLOCK_BYTES));
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn row_crossing_changes_bank() {
        let m = mapper();
        let row_bytes = 8192;
        let a = m.decode(MachineAddr::new(row_bytes - BLOCK_BYTES));
        let b = m.decode(MachineAddr::new(row_bytes));
        assert_ne!((a.bank, a.column), (b.bank, b.column));
        assert_eq!(b.column, 0);
        assert_eq!(b.bank, a.bank + 1);
    }

    #[test]
    fn decode_is_injective_over_a_sample() {
        let m = mapper();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let loc = m.decode(MachineAddr::new(i * BLOCK_BYTES * 97 % (1 << 30)));
            assert!(seen.insert((loc.channel, loc.rank, loc.bank, loc.row, loc.column)));
        }
    }

    #[test]
    fn coordinates_within_bounds() {
        let m = mapper();
        let g = *m.geometry();
        for i in (0..(1u64 << 30)).step_by(64 * 1013) {
            let loc = m.decode(MachineAddr::new(i));
            assert!(loc.channel < g.channels);
            assert!(loc.rank < g.ranks);
            assert!(loc.bank < g.banks_total());
            assert!(loc.row < g.rows);
            assert!(loc.column < g.blocks_per_row());
        }
    }
}
