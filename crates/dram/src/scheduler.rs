//! FR-FCFS transaction scheduling with bank-state timing.
//!
//! Requests are submitted with an arrival time and scheduled in *batches*
//! ([`ChannelScheduler::drain`]): within a batch the scheduler repeatedly
//! picks, among requests that have arrived, the oldest row-buffer hit (up to
//! the configured per-bank hit cap, for fairness) or, failing that, the
//! oldest request overall — the "FR-FCFS policy with bank fairness and row
//! buffer hit cap" from the paper's Table 3. Bank-level parallelism emerges
//! from per-bank ready times; the shared data bus serializes bursts; rank
//! refresh windows block their rank for `tRFC` every `tREFI`.

use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::Time;

use crate::config::{DramConfig, DramTiming};
use crate::mapping::Location;
use crate::stats::{DramStats, RequestClass, RowOutcome};

/// Identifier of a submitted request, unique per [`crate::Dram`] instance.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub(crate) u64);

/// Read or write.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DramOp {
    /// A 64 B read burst.
    Read,
    /// A 64 B write burst.
    Write,
}

/// How one completed request spent its time: waiting on contention
/// (`queue`) versus being served by the bank/bus (`service`). `service` is
/// the *unloaded* latency of the request's command chain for its row
/// outcome (hit: CAS + burst; miss: + activate; conflict: + precharge);
/// everything else — bank-ready waits, shared-bus serialization, refresh
/// windows — is queueing delay. The split is conservative by construction:
/// `queue + service == done - arrival`. Telemetry-only — never serialized
/// into run reports.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CompletionDetail {
    /// Time of the last data beat.
    pub done: Time,
    /// Contention share: arrival → done minus the unloaded service time.
    pub queue: Time,
    /// Unloaded bank access plus data-bus transfer.
    pub service: Time,
}

#[derive(Copy, Clone, Debug)]
pub(crate) struct Pending {
    pub id: ReqId,
    pub arrival: Time,
    pub loc: Location,
    pub op: DramOp,
    pub class: RequestClass,
}

#[derive(Copy, Clone, Debug)]
struct BankState {
    open_row: Option<u64>,
    /// When the currently open row was activated (for tRAS).
    act_time: Time,
    /// Earliest time the next CAS may issue to the open row.
    ready_cas: Time,
    /// Earliest time a precharge may issue (write recovery etc.).
    ready_pre: Time,
    /// Earliest time an activate may issue (after precharge completes).
    ready_act: Time,
}

impl BankState {
    fn new() -> Self {
        BankState {
            open_row: None,
            act_time: Time::ZERO,
            ready_cas: Time::ZERO,
            ready_pre: Time::ZERO,
            ready_act: Time::ZERO,
        }
    }
}

/// One channel's scheduler state.
#[derive(Clone, Debug)]
pub(crate) struct ChannelScheduler {
    timing: DramTiming,
    row_hit_cap: u32,
    banks: Vec<BankState>,
    hit_streak: Vec<u32>,
    /// Next scheduled refresh start per rank.
    next_refresh: Vec<Time>,
    banks_per_rank: u32,
    bus_free: Time,
    sched_time: Time,
    pending: Vec<Pending>,
    completions: Vec<(ReqId, CompletionDetail)>,
}

impl ChannelScheduler {
    pub fn new(cfg: &DramConfig) -> Self {
        let banks_per_rank = cfg.geometry.banks_total();
        let total_banks = (banks_per_rank * cfg.geometry.ranks) as usize;
        ChannelScheduler {
            timing: cfg.timing,
            row_hit_cap: cfg.scheduler.row_hit_cap,
            banks: vec![BankState::new(); total_banks],
            hit_streak: vec![0; total_banks],
            next_refresh: vec![cfg.timing.t_refi; cfg.geometry.ranks as usize],
            banks_per_rank,
            bus_free: Time::ZERO,
            sched_time: Time::ZERO,
            pending: Vec::new(),
            completions: Vec::new(),
        }
    }

    pub fn submit(&mut self, req: Pending) {
        self.pending.push(req);
    }

    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    fn bank_index(&self, loc: &Location) -> usize {
        (loc.rank * self.banks_per_rank + loc.bank) as usize
    }

    /// Advances the rank's refresh schedule up to `t`, counting elapsed
    /// refreshes, and returns the earliest time >= `t` outside any refresh
    /// window.
    fn refresh_adjust(&mut self, rank: u32, t: Time, stats: &mut DramStats) -> Time {
        let next = &mut self.next_refresh[rank as usize];
        let mut t = t;
        // Retire refresh windows that completed before t.
        while *next + self.timing.t_rfc <= t {
            *next += self.timing.t_refi;
            stats.refreshes.incr();
        }
        // If t falls inside the current window, wait it out.
        if t >= *next {
            t = *next + self.timing.t_rfc;
            *next += self.timing.t_refi;
            stats.refreshes.incr();
        }
        t
    }

    /// Selects the index (into `pending`) of the next request to issue among
    /// those that arrived by `t`: FR-FCFS with a row-hit cap, and — as in
    /// real controllers with buffered writes — reads take priority over
    /// writes.
    fn select(&self, t: Time) -> Option<usize> {
        let mut best_hit_rd: Option<(Time, usize)> = None;
        let mut best_rd: Option<(Time, usize)> = None;
        let mut best_hit_wr: Option<(Time, usize)> = None;
        let mut best_wr: Option<(Time, usize)> = None;
        for (i, p) in self.pending.iter().enumerate() {
            if p.arrival > t {
                continue;
            }
            let bank = self.bank_index(&p.loc);
            let is_hit = self.banks[bank].open_row == Some(p.loc.row)
                && self.hit_streak[bank] < self.row_hit_cap;
            let (best_hit, best_any) = match p.op {
                DramOp::Read => (&mut best_hit_rd, &mut best_rd),
                DramOp::Write => (&mut best_hit_wr, &mut best_wr),
            };
            if is_hit && best_hit.is_none_or(|(a, _)| p.arrival < a) {
                *best_hit = Some((p.arrival, i));
            }
            if best_any.is_none_or(|(a, _)| p.arrival < a) {
                *best_any = Some((p.arrival, i));
            }
        }
        best_hit_rd
            .or(best_rd)
            .or(best_hit_wr)
            .or(best_wr)
            .map(|(_, i)| i)
    }

    /// Schedules every pending request to completion.
    pub fn drain(&mut self, stats: &mut DramStats) {
        while !self.pending.is_empty() {
            let min_arrival = self
                .pending
                .iter()
                .map(|p| p.arrival)
                .min()
                .expect("non-empty pending");
            let t = self.sched_time.max(min_arrival);
            let idx = self.select(t).expect("candidate exists at or after t");
            let req = self.pending.swap_remove(idx);
            let detail = self.issue(t, &req, stats);
            self.completions.push((req.id, detail));
            self.sched_time = t;
        }
    }

    /// Issues one request no earlier than `t`; returns its completion
    /// detail (done time plus the queue/service split) and updates
    /// bank/bus state and statistics.
    fn issue(&mut self, t: Time, req: &Pending, stats: &mut DramStats) -> CompletionDetail {
        let tm = self.timing;
        let t = t.max(req.arrival);
        let t = self.refresh_adjust(req.loc.rank, t, stats);
        let bank_idx = self.bank_index(&req.loc);
        let bank = &mut self.banks[bank_idx];

        let (cas_ready, outcome) = match bank.open_row {
            Some(row) if row == req.loc.row => (t.max(bank.ready_cas), RowOutcome::Hit),
            Some(_) => {
                // Conflict: precharge, then activate the new row.
                let pre_at = t.max(bank.ready_pre).max(bank.act_time + tm.t_ras);
                let act_at = (pre_at + tm.t_rp).max(bank.ready_act);
                bank.act_time = act_at;
                stats.activates.incr();
                (act_at + tm.t_rcd, RowOutcome::Conflict)
            }
            None => {
                // Closed bank: activate.
                let act_at = t.max(bank.ready_act);
                bank.act_time = act_at;
                stats.activates.incr();
                (act_at + tm.t_rcd, RowOutcome::Miss)
            }
        };
        bank.open_row = Some(req.loc.row);

        let cas_to_data = match req.op {
            DramOp::Read => tm.t_cl,
            DramOp::Write => tm.t_cwl,
        };
        // The data burst needs the shared bus; if the bus is busy the CAS is
        // effectively delayed.
        let data_start = (cas_ready + cas_to_data).max(self.bus_free);
        let cas_at = data_start - cas_to_data;
        let done = data_start + tm.t_bl;
        self.bus_free = done;

        bank.ready_cas = cas_at + tm.t_bl;
        bank.ready_pre = match req.op {
            DramOp::Read => done,
            DramOp::Write => done + tm.t_wr,
        }
        .max(bank.act_time + tm.t_ras);
        bank.ready_act = bank.ready_pre + tm.t_rp;

        // Fairness bookkeeping.
        match outcome {
            RowOutcome::Hit => self.hit_streak[bank_idx] += 1,
            _ => self.hit_streak[bank_idx] = 0,
        }

        stats.record(req.op, req.class, outcome, req.arrival, done);
        stats.bus_busy += tm.t_bl;
        let service = match outcome {
            RowOutcome::Hit => cas_to_data + tm.t_bl,
            RowOutcome::Miss => tm.t_rcd + cas_to_data + tm.t_bl,
            RowOutcome::Conflict => tm.t_rp + tm.t_rcd + cas_to_data + tm.t_bl,
        };
        CompletionDetail {
            done,
            queue: (done - req.arrival) - service,
            service,
        }
    }

    pub fn take_completions(&mut self) -> Vec<(ReqId, CompletionDetail)> {
        std::mem::take(&mut self.completions)
    }
}

// Snapshots are taken at window boundaries, where every submitted request
// has been drained and its completion consumed — so `pending` and
// `completions` are not serialized, only asserted empty. Timing/geometry
// (`timing`, `row_hit_cap`, `banks_per_rank`) is construction state.
impl Snapshot for ChannelScheduler {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        debug_assert!(
            self.pending.is_empty() && self.completions.is_empty(),
            "channel snapshot requires a drained scheduler"
        );
        w.seq(self.banks.len());
        for b in &self.banks {
            match b.open_row {
                Some(row) => {
                    w.bool(true);
                    w.u64(row);
                }
                None => w.bool(false),
            }
            b.act_time.write_snapshot(w);
            b.ready_cas.write_snapshot(w);
            b.ready_pre.write_snapshot(w);
            b.ready_act.write_snapshot(w);
        }
        for &s in &self.hit_streak {
            w.u32(s);
        }
        w.seq(self.next_refresh.len());
        for t in &self.next_refresh {
            t.write_snapshot(w);
        }
        self.bus_free.write_snapshot(w);
        self.sched_time.write_snapshot(w);
    }
}

impl Restore for ChannelScheduler {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.fixed_seq(self.banks.len(), "bank count")?;
        for b in &mut self.banks {
            b.open_row = if r.bool()? { Some(r.u64()?) } else { None };
            b.act_time.restore_snapshot(r)?;
            b.ready_cas.restore_snapshot(r)?;
            b.ready_pre.restore_snapshot(r)?;
            b.ready_act.restore_snapshot(r)?;
        }
        for s in &mut self.hit_streak {
            *s = r.u32()?;
        }
        r.fixed_seq(self.next_refresh.len(), "rank count")?;
        for t in &mut self.next_refresh {
            t.restore_snapshot(r)?;
        }
        self.bus_free.restore_snapshot(r)?;
        self.sched_time.restore_snapshot(r)?;
        self.pending.clear();
        self.completions.clear();
        Ok(())
    }
}
