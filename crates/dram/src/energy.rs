//! DRAMPower-style energy estimation.
//!
//! Energy is computed from command counts and elapsed time, with constants
//! derived from DDR4 8 Gb x8 datasheet IDD values at 1.2 V (one rank = eight
//! chips). The paper's Figure 24 result — compressed memory with half the
//! ranks uses ~60% of the DRAM energy per instruction of a 2x-larger
//! uncompressed system — is dominated by *background* (standby + refresh)
//! power scaling with rank count, which this model captures.

use dylect_sim_core::kv::{KvReader, KvWriter};
use dylect_sim_core::Time;

use crate::stats::DramStats;

/// Per-operation and background energy constants.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct EnergyParams {
    /// Energy per activate/precharge pair, joules.
    pub act_pre_energy: f64,
    /// Energy per 64 B read burst, joules.
    pub read_energy: f64,
    /// Energy per 64 B write burst, joules.
    pub write_energy: f64,
    /// Background (standby + clock) power per rank, watts.
    pub background_power_per_rank: f64,
    /// Refresh power per rank, watts (refresh energy amortized over tREFI).
    pub refresh_power_per_rank: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            // IDD0-derived row energy for a x8 rank.
            act_pre_energy: 1.7e-9,
            // IDD4R/IDD4W burst energy minus background, per 64 B.
            read_energy: 1.1e-9,
            write_energy: 1.3e-9,
            // IDD3N/IDD2N mix across 8 chips.
            background_power_per_rank: 0.55,
            // IDD5B over tRFC, amortized: ~0.6 uJ per rank per 7.8 us.
            refresh_power_per_rank: 0.077,
        }
    }
}

/// An energy breakdown in joules.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Activate/precharge energy.
    pub activate: f64,
    /// Read burst energy.
    pub read: f64,
    /// Write burst energy.
    pub write: f64,
    /// Refresh energy.
    pub refresh: f64,
    /// Standby/background energy.
    pub background: f64,
}

impl EnergyBreakdown {
    /// Folds another breakdown into this one (multi-MC aggregation).
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.activate += other.activate;
        self.read += other.read;
        self.write += other.write;
        self.refresh += other.refresh;
        self.background += other.background;
    }

    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.activate + self.read + self.write + self.refresh + self.background
    }

    /// Fraction of total that is idle (refresh + background).
    pub fn idle_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.refresh + self.background) / t
        }
    }

    /// Serializes every field under `prefix` into a report-cache record.
    pub fn write_kv(&self, w: &mut KvWriter, prefix: &str) {
        w.put_f64(&format!("{prefix}.activate"), self.activate);
        w.put_f64(&format!("{prefix}.read"), self.read);
        w.put_f64(&format!("{prefix}.write"), self.write);
        w.put_f64(&format!("{prefix}.refresh"), self.refresh);
        w.put_f64(&format!("{prefix}.background"), self.background);
    }

    /// Inverse of [`EnergyBreakdown::write_kv`].
    pub fn read_kv(r: &KvReader, prefix: &str) -> Option<EnergyBreakdown> {
        Some(EnergyBreakdown {
            activate: r.get_f64(&format!("{prefix}.activate"))?,
            read: r.get_f64(&format!("{prefix}.read"))?,
            write: r.get_f64(&format!("{prefix}.write"))?,
            refresh: r.get_f64(&format!("{prefix}.refresh"))?,
            background: r.get_f64(&format!("{prefix}.background"))?,
        })
    }
}

/// Computes the energy consumed by a DRAM system with `ranks` total ranks
/// after `elapsed` simulated time, given its traffic statistics.
///
/// # Example
///
/// ```
/// use dylect_dram::energy::{estimate_energy, EnergyParams};
/// use dylect_dram::DramStats;
/// use dylect_sim_core::Time;
///
/// let stats = DramStats::default();
/// let e = estimate_energy(&EnergyParams::default(), &stats, 8, Time::from_us(10));
/// assert!(e.background > 0.0);
/// assert_eq!(e.read, 0.0);
/// ```
pub fn estimate_energy(
    params: &EnergyParams,
    stats: &DramStats,
    ranks: u32,
    elapsed: Time,
) -> EnergyBreakdown {
    let secs = elapsed.as_secs();
    EnergyBreakdown {
        activate: stats.activates.get() as f64 * params.act_pre_energy,
        read: stats.reads.get() as f64 * params.read_energy,
        write: stats.writes.get() as f64 * params.write_energy,
        refresh: params.refresh_power_per_rank * ranks as f64 * secs,
        background: params.background_power_per_rank * ranks as f64 * secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_energy_scales_with_ranks() {
        let stats = DramStats::default();
        let t = Time::from_us(100);
        let e8 = estimate_energy(&EnergyParams::default(), &stats, 8, t);
        let e16 = estimate_energy(&EnergyParams::default(), &stats, 16, t);
        assert!((e16.total() / e8.total() - 2.0).abs() < 1e-9);
        assert_eq!(e8.idle_fraction(), 1.0);
    }

    #[test]
    fn zero_elapsed_zero_idle() {
        let e = estimate_energy(
            &EnergyParams::default(),
            &DramStats::default(),
            8,
            Time::ZERO,
        );
        assert_eq!(e.total(), 0.0);
        assert_eq!(e.idle_fraction(), 0.0);
    }
}
