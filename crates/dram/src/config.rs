//! DRAM geometry and timing configuration.

use dylect_sim_core::{Time, BLOCK_BYTES, PAGE_BYTES};

/// Organization of the DRAM system attached to one memory controller.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DramGeometry {
    /// Independent channels (the paper evaluates 1).
    pub channels: u32,
    /// Ranks per channel (the paper evaluates 8; the bigger no-compression
    /// baseline of Figure 24 uses 16).
    pub ranks: u32,
    /// Bank groups per rank (DDR4: 4).
    pub bank_groups: u32,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: u32,
    /// Row-buffer size in bytes (8 KB for a x8 DDR4 rank).
    pub row_bytes: u64,
    /// Rows per bank; together with the rest this fixes total capacity.
    pub rows: u64,
}

impl DramGeometry {
    /// The paper's simulated configuration (Table 3): DDR4-3200, 1 channel,
    /// 8 ranks, scaled to the requested capacity by choosing `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` does not divide evenly into rows.
    pub fn ddr4_with_capacity(capacity_bytes: u64, ranks: u32) -> Self {
        let channels = 1;
        let bank_groups = 4;
        let banks_per_group = 4;
        let row_bytes = 8192;
        let denom = channels as u64
            * ranks as u64
            * bank_groups as u64
            * banks_per_group as u64
            * row_bytes;
        assert!(
            capacity_bytes.is_multiple_of(denom),
            "capacity {capacity_bytes} not divisible by {denom}"
        );
        DramGeometry {
            channels,
            ranks,
            bank_groups,
            banks_per_group,
            row_bytes,
            rows: capacity_bytes / denom,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.channels as u64
            * self.ranks as u64
            * self.banks_total() as u64
            * self.row_bytes
            * self.rows
    }

    /// Total capacity in 4 KB DRAM pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_bytes() / PAGE_BYTES
    }

    /// Banks per rank.
    pub fn banks_total(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// 64 B blocks per row buffer.
    pub fn blocks_per_row(&self) -> u64 {
        self.row_bytes / BLOCK_BYTES
    }
}

/// DDR timing parameters, all as absolute [`Time`] spans.
///
/// This is a deliberately reduced parameter set (no tFAW/tRRD/tCCD split);
/// the dominant effects for this paper — row-buffer behaviour, bank-level
/// parallelism, bus occupancy, and refresh — are modeled.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DramTiming {
    /// CAS latency (column access to first data beat).
    pub t_cl: Time,
    /// RAS-to-CAS delay (activate to column access).
    pub t_rcd: Time,
    /// Row precharge time.
    pub t_rp: Time,
    /// Minimum row-active time (activate to precharge).
    pub t_ras: Time,
    /// Write CAS latency.
    pub t_cwl: Time,
    /// Write recovery (end of write burst to precharge).
    pub t_wr: Time,
    /// Data-bus occupancy of one 64 B burst (BL8 at the DDR rate).
    pub t_bl: Time,
    /// Refresh cycle time (rank blocked per refresh).
    pub t_rfc: Time,
    /// Average refresh interval.
    pub t_refi: Time,
}

impl DramTiming {
    /// DDR4-3200 timings used in the paper (tCL = tRCD = tRP = 13.75 ns).
    pub fn ddr4_3200() -> Self {
        DramTiming {
            t_cl: Time::from_ns(13.75),
            t_rcd: Time::from_ns(13.75),
            t_rp: Time::from_ns(13.75),
            t_ras: Time::from_ns(32.0),
            t_cwl: Time::from_ns(10.0),
            t_wr: Time::from_ns(15.0),
            // BL8 at 3200 MT/s: 8 beats / 3.2 GT/s = 2.5 ns per 64 B.
            t_bl: Time::from_ns(2.5),
            t_rfc: Time::from_ns(350.0),
            t_refi: Time::from_ns(7800.0),
        }
    }
}

/// Scheduler knobs for the FR-FCFS policy (Table 3: "FR-FCFS policy with
/// bank fairness and row buffer hit cap").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum consecutive row-buffer hits served from one bank while other
    /// requests are waiting, before the scheduler falls back to FCFS.
    pub row_hit_cap: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { row_hit_cap: 4 }
    }
}

/// Complete DRAM model configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Geometry (channels/ranks/banks/rows).
    pub geometry: DramGeometry,
    /// Timing parameters.
    pub timing: DramTiming,
    /// Scheduler policy knobs.
    pub scheduler: SchedulerConfig,
}

impl DramConfig {
    /// The paper's configuration at a given capacity and rank count.
    ///
    /// # Example
    ///
    /// ```
    /// use dylect_dram::DramConfig;
    /// let cfg = DramConfig::paper(1 << 30, 8); // 1 GiB, 8 ranks
    /// assert_eq!(cfg.geometry.capacity_bytes(), 1 << 30);
    /// ```
    pub fn paper(capacity_bytes: u64, ranks: u32) -> Self {
        DramConfig {
            geometry: DramGeometry::ddr4_with_capacity(capacity_bytes, ranks),
            timing: DramTiming::ddr4_3200(),
            scheduler: SchedulerConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_round_trips() {
        let g = DramGeometry::ddr4_with_capacity(1 << 30, 8);
        assert_eq!(g.capacity_bytes(), 1 << 30);
        assert_eq!(g.capacity_pages(), (1 << 30) / 4096);
    }

    #[test]
    fn ddr4_structure() {
        let g = DramGeometry::ddr4_with_capacity(1 << 30, 8);
        assert_eq!(g.banks_total(), 16);
        assert_eq!(g.blocks_per_row(), 128);
    }

    #[test]
    fn paper_timings() {
        let t = DramTiming::ddr4_3200();
        assert_eq!(t.t_cl.as_ns(), 13.75);
        assert_eq!(t.t_rcd.as_ns(), 13.75);
        assert_eq!(t.t_rp.as_ns(), 13.75);
        assert_eq!(t.t_bl.as_ns(), 2.5);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_non_divisible_capacity() {
        let _ = DramGeometry::ddr4_with_capacity((1 << 30) + 4096, 8);
    }
}
