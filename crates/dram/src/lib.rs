//! A DDR4 DRAM timing and energy model.
//!
//! This crate is the simulator's stand-in for Ramulator + DRAMPower: it
//! models channels, ranks, bank groups, banks, row buffers, an FR-FCFS
//! transaction scheduler with bank fairness and a row-hit cap, rank refresh,
//! a shared data bus, and a command-count-based energy estimator.
//!
//! The memory controller submits 64 B block requests tagged with a
//! [`RequestClass`] (demand, writeback, CTE fetch, migration, …) and receives
//! completion times; the class tags let the harness reproduce the paper's
//! traffic breakdowns (Figures 22–23) and bandwidth characterization
//! (Figure 17).
//!
//! # Example
//!
//! ```
//! use dylect_dram::{Dram, DramConfig, DramOp, RequestClass};
//! use dylect_sim_core::{MachineAddr, Time};
//!
//! let mut dram = Dram::new(DramConfig::paper(1 << 30, 8));
//! let done = dram.access(
//!     Time::ZERO,
//!     MachineAddr::new(0x4000),
//!     DramOp::Read,
//!     RequestClass::Demand,
//! );
//! // Cold access: activate (tRCD) + CAS (tCL) + burst (tBL).
//! assert_eq!(done.as_ns(), 13.75 + 13.75 + 2.5);
//! ```

pub mod config;
pub mod energy;
pub mod mapping;
mod scheduler;
pub mod stats;

use std::collections::HashMap;

use dylect_sim_core::prof;
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::{MachineAddr, Time};

pub use config::{DramConfig, DramGeometry, DramTiming, SchedulerConfig};
pub use energy::{estimate_energy, EnergyBreakdown, EnergyParams};
pub use mapping::{AddressMapper, Location};
pub use scheduler::{CompletionDetail, DramOp, ReqId};
pub use stats::{DramStats, QueueStats, RequestClass, RowOutcome};

use scheduler::{ChannelScheduler, Pending};

/// The DRAM system attached to one memory controller.
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    mapper: AddressMapper,
    channels: Vec<ChannelScheduler>,
    stats: DramStats,
    queue: QueueStats,
    in_flight_reads: u64,
    in_flight_writes: u64,
    completions: HashMap<ReqId, CompletionDetail>,
    next_id: u64,
}

impl Dram {
    /// Creates an idle DRAM system.
    pub fn new(config: DramConfig) -> Self {
        let channels = (0..config.geometry.channels)
            .map(|_| ChannelScheduler::new(&config))
            .collect();
        Dram {
            config,
            mapper: AddressMapper::new(config.geometry),
            channels,
            stats: DramStats::default(),
            queue: QueueStats::default(),
            in_flight_reads: 0,
            in_flight_writes: 0,
            completions: HashMap::new(),
            next_id: 0,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Returns accumulated traffic statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Returns queue-occupancy statistics (telemetry; not part of reports).
    pub fn queue_stats(&self) -> &QueueStats {
        &self.queue
    }

    /// Resets statistics (e.g. after warmup) without touching bank state.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        self.queue = QueueStats::default();
    }

    /// Submits a 64 B request arriving at `arrival`; call [`Dram::drain`]
    /// to schedule and [`Dram::take_completion`] to collect its finish time.
    ///
    /// Multiple requests submitted before a `drain` are scheduled together
    /// under FR-FCFS, which is how batched transfers (page migrations, the
    /// parallel pre-gathered + unified CTE fetches of DyLeCT) get reordered
    /// for row-buffer locality.
    pub fn submit(
        &mut self,
        arrival: Time,
        addr: MachineAddr,
        op: DramOp,
        class: RequestClass,
    ) -> ReqId {
        let id = ReqId(self.next_id);
        self.next_id += 1;
        match op {
            DramOp::Read => {
                self.in_flight_reads += 1;
                self.queue.on_submit_read(self.in_flight_reads);
            }
            DramOp::Write => {
                self.in_flight_writes += 1;
                self.queue.on_submit_write(self.in_flight_writes);
            }
        }
        let loc = self.mapper.decode(addr);
        self.channels[loc.channel as usize].submit(Pending {
            id,
            arrival,
            loc,
            op,
            class,
        });
        id
    }

    /// Schedules all pending requests to completion.
    pub fn drain(&mut self) {
        self.in_flight_reads = 0;
        self.in_flight_writes = 0;
        for ch in &mut self.channels {
            if ch.has_pending() {
                ch.drain(&mut self.stats);
            }
            for (id, detail) in ch.take_completions() {
                self.completions.insert(id, detail);
            }
        }
    }

    /// Takes the completion time of a drained request.
    ///
    /// Returns `None` if the request was never submitted, not yet drained,
    /// or already taken.
    pub fn take_completion(&mut self, id: ReqId) -> Option<Time> {
        self.completions.remove(&id).map(|d| d.done)
    }

    /// Takes the full completion detail (done time plus queue/service
    /// split) of a drained request — the attribution layer's view of a
    /// demand access.
    pub fn take_completion_detail(&mut self, id: ReqId) -> Option<CompletionDetail> {
        self.completions.remove(&id)
    }

    /// Serializes timing/scheduler state. Call only at a quiescent point:
    /// every submitted request drained and every completion consumed (the
    /// simulator's window boundaries guarantee this; access paths pair each
    /// submit with a take).
    pub fn write_snapshot(&self, w: &mut SnapWriter) {
        debug_assert!(
            self.completions.is_empty(),
            "DRAM snapshot requires all completions consumed"
        );
        w.seq(self.channels.len());
        for ch in &self.channels {
            ch.write_snapshot(w);
        }
        self.stats.write_snapshot(w);
        self.queue.write_snapshot(w);
        w.u64(self.next_id);
    }

    /// Restores timing/scheduler state written by [`Dram::write_snapshot`]
    /// onto a same-configuration instance.
    pub fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.fixed_seq(self.channels.len(), "channel count")?;
        for ch in &mut self.channels {
            ch.restore_snapshot(r)?;
        }
        self.stats.restore_snapshot(r)?;
        self.queue.restore_snapshot(r)?;
        self.next_id = r.u64()?;
        self.in_flight_reads = 0;
        self.in_flight_writes = 0;
        self.completions.clear();
        Ok(())
    }

    /// Convenience: submit + drain + take for a single request.
    pub fn access(
        &mut self,
        arrival: Time,
        addr: MachineAddr,
        op: DramOp,
        class: RequestClass,
    ) -> Time {
        self.access_detailed(arrival, addr, op, class).done
    }

    /// Like [`Dram::access`], but returns the queue/service split along
    /// with the completion time. Schemes use this for the demand block so
    /// the attribution layer can separate DRAM queueing from service.
    pub fn access_detailed(
        &mut self,
        arrival: Time,
        addr: MachineAddr,
        op: DramOp,
        class: RequestClass,
    ) -> CompletionDetail {
        // Sampled host timer over submit + scheduler drain.
        let _p = prof::sampled_scope(prof::HostPhase::DramAccess);
        let id = self.submit(arrival, addr, op, class);
        self.drain();
        self.take_completion_detail(id).expect("just drained")
    }

    /// Submits a batch, drains, and returns the latest completion time.
    /// Useful for multi-block transfers like page migrations.
    ///
    /// Returns `arrival` unchanged for an empty batch.
    pub fn access_batch(
        &mut self,
        arrival: Time,
        addrs: impl IntoIterator<Item = (MachineAddr, DramOp)>,
        class: RequestClass,
    ) -> Time {
        let _p = prof::sampled_scope(prof::HostPhase::DramAccess);
        let ids: Vec<ReqId> = addrs
            .into_iter()
            .map(|(a, op)| self.submit(arrival, a, op, class))
            .collect();
        if ids.is_empty() {
            return arrival;
        }
        self.drain();
        ids.into_iter()
            .map(|id| self.take_completion(id).expect("just drained"))
            .max()
            .expect("non-empty batch")
    }

    /// Estimates energy consumed by `elapsed` simulated time with the
    /// default DDR4 parameters.
    pub fn energy(&self, elapsed: Time) -> EnergyBreakdown {
        estimate_energy(
            &EnergyParams::default(),
            &self.stats,
            self.config.geometry.ranks * self.config.geometry.channels,
            elapsed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_sim_core::BLOCK_BYTES;

    fn dram() -> Dram {
        Dram::new(DramConfig::paper(1 << 30, 8))
    }

    #[test]
    fn cold_read_latency() {
        let mut d = dram();
        let t = d.access(
            Time::ZERO,
            MachineAddr::new(0),
            DramOp::Read,
            RequestClass::Demand,
        );
        // ACT(tRCD) + CAS(tCL) + burst(tBL).
        assert_eq!(t.as_ns(), 13.75 + 13.75 + 2.5);
        assert_eq!(d.stats().row_misses.get(), 1);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut d = dram();
        let t0 = d.access(
            Time::ZERO,
            MachineAddr::new(0),
            DramOp::Read,
            RequestClass::Demand,
        );
        let t1 = d.access(
            t0,
            MachineAddr::new(BLOCK_BYTES),
            DramOp::Read,
            RequestClass::Demand,
        );
        // Same row: only CAS + burst.
        assert_eq!((t1 - t0).as_ns(), 13.75 + 2.5);
        assert_eq!(d.stats().row_hits.get(), 1);
    }

    #[test]
    fn row_conflict_is_slowest() {
        let mut d = dram();
        // Same bank, different rows: with Ro:Ra:Ba:Co:Ch mapping, two
        // addresses one full "rank+bank sweep" apart share a bank.
        let g = d.config().geometry;
        let stride = g.row_bytes * g.banks_total() as u64 * g.ranks as u64;
        let t0 = d.access(
            Time::ZERO,
            MachineAddr::new(0),
            DramOp::Read,
            RequestClass::Demand,
        );
        let t1 = d.access(
            t0,
            MachineAddr::new(stride),
            DramOp::Read,
            RequestClass::Demand,
        );
        // Conflict: wait tRAS from first ACT, then PRE + ACT + CAS + burst.
        let t_first_act_to_pre = Time::from_ns(32.0); // tRAS
        let expected = t_first_act_to_pre + Time::from_ns(13.75 + 13.75 + 13.75 + 2.5);
        assert_eq!(t1, expected);
        assert_eq!(d.stats().row_conflicts.get(), 1);
    }

    #[test]
    fn bank_parallelism_overlaps() {
        let mut d = dram();
        let g = d.config().geometry;
        // Two requests to different banks at t=0 overlap except on the bus.
        let a = d.submit(
            Time::ZERO,
            MachineAddr::new(0),
            DramOp::Read,
            RequestClass::Demand,
        );
        let b = d.submit(
            Time::ZERO,
            MachineAddr::new(g.row_bytes), // next bank
            DramOp::Read,
            RequestClass::Demand,
        );
        d.drain();
        let ta = d.take_completion(a).unwrap();
        let tb = d.take_completion(b).unwrap();
        let first = ta.min(tb);
        let second = ta.max(tb);
        // Second is delayed only by one burst slot, not a full access.
        assert_eq!((second - first).as_ns(), 2.5);
    }

    #[test]
    fn same_bank_requests_serialize_on_cas() {
        let mut d = dram();
        let a = d.submit(
            Time::ZERO,
            MachineAddr::new(0),
            DramOp::Read,
            RequestClass::Demand,
        );
        let b = d.submit(
            Time::ZERO,
            MachineAddr::new(BLOCK_BYTES),
            DramOp::Read,
            RequestClass::Demand,
        );
        d.drain();
        let ta = d.take_completion(a).unwrap();
        let tb = d.take_completion(b).unwrap();
        assert_eq!((tb.max(ta) - ta.min(tb)).as_ns(), 2.5);
        assert_eq!(d.stats().row_hits.get(), 1);
    }

    #[test]
    fn fr_fcfs_prefers_row_hits() {
        let mut d = dram();
        let g = d.config().geometry;
        let conflict_stride = g.row_bytes * g.banks_total() as u64 * g.ranks as u64;
        // Open row 0 of bank 0.
        d.access(
            Time::ZERO,
            MachineAddr::new(0),
            DramOp::Read,
            RequestClass::Demand,
        );
        // Two requests arrive together; the first-submitted one conflicts
        // (row 1 of bank 0), the second hits (row 0). FR-FCFS serves the
        // hit first despite queue order.
        let older = d.submit(
            Time::from_ns(100.0),
            MachineAddr::new(conflict_stride),
            DramOp::Read,
            RequestClass::Demand,
        );
        let younger = d.submit(
            Time::from_ns(100.0),
            MachineAddr::new(BLOCK_BYTES),
            DramOp::Read,
            RequestClass::Demand,
        );
        d.drain();
        let t_old = d.take_completion(older).unwrap();
        let t_young = d.take_completion(younger).unwrap();
        assert!(t_young < t_old, "row hit should be served first");
    }

    #[test]
    fn row_hit_cap_bounds_starvation() {
        let mut d = dram();
        let g = d.config().geometry;
        let conflict_stride = g.row_bytes * g.banks_total() as u64 * g.ranks as u64;
        // Open row 0.
        d.access(
            Time::ZERO,
            MachineAddr::new(0),
            DramOp::Read,
            RequestClass::Demand,
        );
        // One conflicting request plus a burst of row hits, all arriving
        // together; the conflict was submitted first so it is "oldest".
        let old = d.submit(
            Time::from_ns(200.0),
            MachineAddr::new(conflict_stride),
            DramOp::Read,
            RequestClass::Demand,
        );
        let hits: Vec<ReqId> = (1..20u64)
            .map(|i| {
                d.submit(
                    Time::from_ns(200.0),
                    MachineAddr::new(i * BLOCK_BYTES),
                    DramOp::Read,
                    RequestClass::Demand,
                )
            })
            .collect();
        d.drain();
        let t_old = d.take_completion(old).unwrap();
        let hit_times: Vec<Time> = hits
            .into_iter()
            .map(|h| d.take_completion(h).unwrap())
            .collect();
        let served_before_old = hit_times.iter().filter(|&&t| t < t_old).count();
        // The cap (4) limits how many younger hits can bypass the old
        // request.
        assert!(
            served_before_old <= d.config().scheduler.row_hit_cap as usize,
            "{served_before_old} hits bypassed the old request"
        );
        assert!(served_before_old >= 1, "some reordering should happen");
    }

    #[test]
    fn refresh_blocks_rank() {
        let mut d = dram();
        // Land exactly inside the first refresh window (tREFI = 7800 ns).
        let t = d.access(
            Time::from_ns(7800.0),
            MachineAddr::new(0),
            DramOp::Read,
            RequestClass::Demand,
        );
        // Must wait out tRFC (350 ns) then do a cold access.
        assert_eq!(t.as_ns(), 7800.0 + 350.0 + 13.75 + 13.75 + 2.5);
        assert!(d.stats().refreshes.get() >= 1);
    }

    #[test]
    fn bandwidth_saturates_at_bus_rate() {
        let mut d = dram();
        // Stream 1000 sequential blocks; steady-state throughput should be
        // one 64 B burst per tBL (2.5 ns) = 25.6 GB/s.
        let ids: Vec<ReqId> = (0..1000u64)
            .map(|i| {
                d.submit(
                    Time::ZERO,
                    MachineAddr::new(i * BLOCK_BYTES),
                    DramOp::Read,
                    RequestClass::Demand,
                )
            })
            .collect();
        d.drain();
        let last = ids
            .into_iter()
            .map(|id| d.take_completion(id).unwrap())
            .max()
            .unwrap();
        let gb_per_s = (1000.0 * 64.0) / last.as_secs() / 1e9;
        assert!(
            (20.0..=25.7).contains(&gb_per_s),
            "throughput {gb_per_s} GB/s out of range"
        );
    }

    #[test]
    fn writes_complete_and_count() {
        let mut d = dram();
        let t = d.access(
            Time::ZERO,
            MachineAddr::new(0),
            DramOp::Write,
            RequestClass::Writeback,
        );
        assert!(t > Time::ZERO);
        assert_eq!(d.stats().writes.get(), 1);
        assert_eq!(d.stats().class_blocks(RequestClass::Writeback), 1);
    }

    #[test]
    fn write_recovery_delays_conflict() {
        let mut d = dram();
        let g = d.config().geometry;
        let conflict_stride = g.row_bytes * g.banks_total() as u64 * g.ranks as u64;
        let t0 = d.access(
            Time::ZERO,
            MachineAddr::new(0),
            DramOp::Write,
            RequestClass::Writeback,
        );
        let t1 = d.access(
            t0,
            MachineAddr::new(conflict_stride),
            DramOp::Read,
            RequestClass::Demand,
        );
        // PRE must wait tWR after the write burst: done + tWR + tRP + tRCD +
        // tCL + tBL.
        let expected = t0 + Time::from_ns(15.0 + 13.75 + 13.75 + 13.75 + 2.5);
        assert_eq!(t1, expected);
    }

    #[test]
    fn batch_returns_latest_completion() {
        let mut d = dram();
        let addrs = (0..64u64).map(|i| (MachineAddr::new(i * BLOCK_BYTES), DramOp::Read));
        let done = d.access_batch(Time::ZERO, addrs, RequestClass::Migration);
        // 64 sequential blocks: one ACT then row hits at bus rate.
        let min_time = Time::from_ns(13.75 + 13.75 + 64.0 * 2.5);
        assert!(done >= min_time);
        assert_eq!(d.stats().class_blocks(RequestClass::Migration), 64);
    }

    #[test]
    fn empty_batch_is_identity() {
        let mut d = dram();
        let t = d.access_batch(Time::from_ns(5.0), std::iter::empty(), RequestClass::Demand);
        assert_eq!(t, Time::from_ns(5.0));
    }

    #[test]
    fn take_completion_is_once() {
        let mut d = dram();
        let id = d.submit(
            Time::ZERO,
            MachineAddr::new(0),
            DramOp::Read,
            RequestClass::Demand,
        );
        assert_eq!(d.take_completion(id), None, "not drained yet");
        d.drain();
        assert!(d.take_completion(id).is_some());
        assert_eq!(d.take_completion(id), None, "already taken");
    }

    #[test]
    fn energy_reflects_traffic_and_time() {
        let mut d = dram();
        for i in 0..100u64 {
            d.access(
                Time::ZERO,
                MachineAddr::new(i * BLOCK_BYTES),
                DramOp::Read,
                RequestClass::Demand,
            );
        }
        let e = d.energy(Time::from_us(10));
        assert!(e.read > 0.0);
        assert!(e.background > 0.0);
        assert!(e.total() > e.read);
    }

    #[test]
    fn arrival_in_future_is_respected() {
        let mut d = dram();
        let t = d.access(
            Time::from_us(1),
            MachineAddr::new(0),
            DramOp::Read,
            RequestClass::Demand,
        );
        assert!(t >= Time::from_us(1) + Time::from_ns(30.0));
    }

    #[test]
    fn completion_detail_is_conservative() {
        // queue + service must equal done - arrival, for every request in
        // a contended batch (some wait on the bus, some do not).
        let mut d = dram();
        let ids: Vec<ReqId> = (0..32u64)
            .map(|i| {
                d.submit(
                    Time::from_ns(10.0),
                    MachineAddr::new(i * BLOCK_BYTES),
                    DramOp::Read,
                    RequestClass::Demand,
                )
            })
            .collect();
        d.drain();
        let mut queued = 0u64;
        for id in ids {
            let det = d.take_completion_detail(id).unwrap();
            assert_eq!(
                det.queue + det.service,
                det.done - Time::from_ns(10.0),
                "queue/service split must be conservative"
            );
            assert!(det.service > Time::ZERO);
            if det.queue > Time::ZERO {
                queued += 1;
            }
        }
        assert!(queued > 0, "a contended batch must show queueing");
    }

    #[test]
    fn queue_stats_split_reads_and_writes() {
        let mut d = dram();
        for i in 0..4u64 {
            d.submit(
                Time::ZERO,
                MachineAddr::new(i * BLOCK_BYTES),
                DramOp::Read,
                RequestClass::Demand,
            );
        }
        for i in 0..2u64 {
            d.submit(
                Time::ZERO,
                MachineAddr::new((100 + i) * BLOCK_BYTES),
                DramOp::Write,
                RequestClass::Writeback,
            );
        }
        d.drain();
        let q = d.queue_stats();
        assert_eq!(q.read_submits, 4);
        assert_eq!(q.write_submits, 2);
        assert_eq!(q.read_max_depth, 4);
        assert_eq!(q.write_max_depth, 2);
        assert_eq!(q.mean_read_depth(), 2.5); // (1+2+3+4)/4
        assert_eq!(q.mean_write_depth(), 1.5); // (1+2)/2

        let mut merged = QueueStats::default();
        merged.merge(q);
        merged.merge(q);
        assert_eq!(merged.read_submits, 8);
        assert_eq!(merged.write_max_depth, 2);
    }
}
