//! DRAM traffic statistics.

use std::fmt;

use dylect_sim_core::kv::{KvReader, KvWriter};
use dylect_sim_core::stats::{Counter, MeanAccumulator};
use dylect_sim_core::Time;

use crate::scheduler::DramOp;

/// Why a request generated traffic — used to break memory traffic down the
/// way the paper's Figures 22–23 do (demand vs. CTE fetches vs. page
/// migration etc.).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// A demand read from the LLC.
    Demand,
    /// A dirty-block writeback from the LLC.
    Writeback,
    /// A fetch of a CTE block (unified or pre-gathered) on a CTE cache miss.
    CteFetch,
    /// Data movement for page expansion / promotion / demotion / compaction.
    Migration,
    /// Background (de)compression traffic.
    Compression,
    /// Page-table walk accesses that reach DRAM.
    PageWalk,
    /// Metadata-table accesses (e.g. DyLeCT's promotion access counters).
    Metadata,
}

impl RequestClass {
    /// All classes, for iteration and report ordering.
    pub const ALL: [RequestClass; 7] = [
        RequestClass::Demand,
        RequestClass::Writeback,
        RequestClass::CteFetch,
        RequestClass::Migration,
        RequestClass::Compression,
        RequestClass::PageWalk,
        RequestClass::Metadata,
    ];

    fn index(self) -> usize {
        match self {
            RequestClass::Demand => 0,
            RequestClass::Writeback => 1,
            RequestClass::CteFetch => 2,
            RequestClass::Migration => 3,
            RequestClass::Compression => 4,
            RequestClass::PageWalk => 5,
            RequestClass::Metadata => 6,
        }
    }
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RequestClass::Demand => "demand",
            RequestClass::Writeback => "writeback",
            RequestClass::CteFetch => "cte_fetch",
            RequestClass::Migration => "migration",
            RequestClass::Compression => "compression",
            RequestClass::PageWalk => "page_walk",
            RequestClass::Metadata => "metadata",
        };
        f.write_str(s)
    }
}

/// Row-buffer outcome of one request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RowOutcome {
    /// The target row was already open.
    Hit,
    /// The bank was closed (activate only).
    Miss,
    /// Another row was open (precharge + activate).
    Conflict,
}

/// Read/write-queue occupancy statistics — telemetry-only (sampled by the
/// observability layer, never serialized into run reports). Depth is
/// observed at each submit, so `mean_depth` is the queue depth seen by an
/// arriving request.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests submitted.
    pub submits: u64,
    /// Sum over submits of the queue depth right after enqueue.
    pub depth_sum: u64,
    /// Deepest queue observed.
    pub max_depth: u64,
}

impl QueueStats {
    pub(crate) fn on_submit(&mut self, depth: u64) {
        self.submits += 1;
        self.depth_sum += depth;
        self.max_depth = self.max_depth.max(depth);
    }

    /// Mean queue depth seen by an arriving request (0 with no submits).
    pub fn mean_depth(&self) -> f64 {
        if self.submits == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.submits as f64
        }
    }

    /// Folds another DRAM system's queue statistics into this one
    /// (multi-MC aggregation).
    pub fn merge(&mut self, other: &QueueStats) {
        self.submits += other.submits;
        self.depth_sum += other.depth_sum;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

/// Aggregate counters for one DRAM system.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DramStats {
    /// Total read bursts served.
    pub reads: Counter,
    /// Total write bursts served.
    pub writes: Counter,
    /// Row-buffer hits.
    pub row_hits: Counter,
    /// Row-buffer misses (closed bank).
    pub row_misses: Counter,
    /// Row-buffer conflicts (wrong row open).
    pub row_conflicts: Counter,
    /// Activate commands issued.
    pub activates: Counter,
    /// Refresh commands issued (accrued as simulated time passes).
    pub refreshes: Counter,
    /// Total data-bus busy time (for bandwidth utilization).
    pub bus_busy: Time,
    /// Mean request latency (arrival to last data beat), nanoseconds.
    pub latency: MeanAccumulator,
    /// 64 B bursts per [`RequestClass`].
    per_class: [Counter; 7],
}

impl DramStats {
    pub(crate) fn record(
        &mut self,
        op: DramOp,
        class: RequestClass,
        outcome: RowOutcome,
        arrival: Time,
        done: Time,
    ) {
        match op {
            DramOp::Read => self.reads.incr(),
            DramOp::Write => self.writes.incr(),
        }
        match outcome {
            RowOutcome::Hit => self.row_hits.incr(),
            RowOutcome::Miss => self.row_misses.incr(),
            RowOutcome::Conflict => self.row_conflicts.incr(),
        }
        self.per_class[class.index()].incr();
        self.latency.record_time_ns(done.saturating_sub(arrival));
    }

    /// Folds another DRAM system's statistics into this one (multi-MC
    /// aggregation).
    pub fn merge(&mut self, other: &DramStats) {
        self.reads.merge(other.reads);
        self.writes.merge(other.writes);
        self.row_hits.merge(other.row_hits);
        self.row_misses.merge(other.row_misses);
        self.row_conflicts.merge(other.row_conflicts);
        self.activates.merge(other.activates);
        self.refreshes.merge(other.refreshes);
        self.bus_busy += other.bus_busy;
        self.latency.merge(&other.latency);
        for (i, c) in other.per_class.iter().enumerate() {
            self.per_class[i].merge(*c);
        }
    }

    /// 64 B bursts attributed to `class`.
    pub fn class_blocks(&self, class: RequestClass) -> u64 {
        self.per_class[class.index()].get()
    }

    /// Total 64 B bursts served.
    pub fn total_blocks(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }

    /// Total bytes moved over the data bus.
    pub fn total_bytes(&self) -> u64 {
        self.total_blocks() * dylect_sim_core::BLOCK_BYTES
    }

    /// Data-bus utilization over `elapsed` simulated time (0..1 per
    /// channel-count of 1).
    pub fn bus_utilization(&self, elapsed: Time) -> f64 {
        if elapsed == Time::ZERO {
            0.0
        } else {
            self.bus_busy.as_ps() as f64 / elapsed.as_ps() as f64
        }
    }

    /// Row-buffer hit rate across all requests.
    pub fn row_hit_rate(&self) -> f64 {
        self.row_hits.fraction_of(self.total_blocks())
    }

    /// Serializes every field under `prefix` into a report-cache record.
    pub fn write_kv(&self, w: &mut KvWriter, prefix: &str) {
        w.put_u64(&format!("{prefix}.reads"), self.reads.get());
        w.put_u64(&format!("{prefix}.writes"), self.writes.get());
        w.put_u64(&format!("{prefix}.row_hits"), self.row_hits.get());
        w.put_u64(&format!("{prefix}.row_misses"), self.row_misses.get());
        w.put_u64(&format!("{prefix}.row_conflicts"), self.row_conflicts.get());
        w.put_u64(&format!("{prefix}.activates"), self.activates.get());
        w.put_u64(&format!("{prefix}.refreshes"), self.refreshes.get());
        w.put_u64(&format!("{prefix}.bus_busy_ps"), self.bus_busy.as_ps());
        w.put_f64(&format!("{prefix}.latency.sum"), self.latency.sum());
        w.put_u64(&format!("{prefix}.latency.count"), self.latency.count());
        for class in RequestClass::ALL {
            w.put_u64(
                &format!("{prefix}.class.{class}"),
                self.per_class[class.index()].get(),
            );
        }
    }

    /// Inverse of [`DramStats::write_kv`]; `None` if any field is missing.
    pub fn read_kv(r: &KvReader, prefix: &str) -> Option<DramStats> {
        let counter = |name: &str| -> Option<Counter> {
            Some(Counter::from_value(r.get_u64(&format!("{prefix}.{name}"))?))
        };
        let mut per_class = [Counter::default(); 7];
        for class in RequestClass::ALL {
            per_class[class.index()] = counter(&format!("class.{class}"))?;
        }
        Some(DramStats {
            reads: counter("reads")?,
            writes: counter("writes")?,
            row_hits: counter("row_hits")?,
            row_misses: counter("row_misses")?,
            row_conflicts: counter("row_conflicts")?,
            activates: counter("activates")?,
            refreshes: counter("refreshes")?,
            bus_busy: Time::from_ps(r.get_u64(&format!("{prefix}.bus_busy_ps"))?),
            latency: MeanAccumulator::from_parts(
                r.get_f64(&format!("{prefix}.latency.sum"))?,
                r.get_u64(&format!("{prefix}.latency.count"))?,
            ),
            per_class,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_accounting() {
        let mut s = DramStats::default();
        s.record(
            DramOp::Read,
            RequestClass::Demand,
            RowOutcome::Hit,
            Time::ZERO,
            Time::from_ns(30.0),
        );
        s.record(
            DramOp::Write,
            RequestClass::Migration,
            RowOutcome::Conflict,
            Time::ZERO,
            Time::from_ns(60.0),
        );
        assert_eq!(s.reads.get(), 1);
        assert_eq!(s.writes.get(), 1);
        assert_eq!(s.class_blocks(RequestClass::Demand), 1);
        assert_eq!(s.class_blocks(RequestClass::Migration), 1);
        assert_eq!(s.class_blocks(RequestClass::CteFetch), 0);
        assert_eq!(s.total_bytes(), 128);
        assert_eq!(s.latency.mean(), 45.0);
        assert_eq!(s.row_hit_rate(), 0.5);
    }

    #[test]
    fn class_display_names() {
        assert_eq!(RequestClass::CteFetch.to_string(), "cte_fetch");
        assert_eq!(RequestClass::ALL.len(), 7);
    }

    #[test]
    fn utilization_guards_zero() {
        let s = DramStats::default();
        assert_eq!(s.bus_utilization(Time::ZERO), 0.0);
    }
}
