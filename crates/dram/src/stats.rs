//! DRAM traffic statistics.

use dylect_sim_core::kv::{KvReader, KvWriter};
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::stats::{Counter, MeanAccumulator};
use dylect_sim_core::Time;

use crate::scheduler::DramOp;

// Why a request generated traffic — used to break memory traffic down the
// way the paper's Figures 22–23 do (demand vs. CTE fetches vs. page
// migration etc.). The enum itself lives in `sim-core` so the telemetry
// attribution layer can key on it without depending on this crate; it is
// re-exported here, where the rest of the workspace has always imported it
// from.
pub use dylect_sim_core::probe::RequestClass;

/// Row-buffer outcome of one request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RowOutcome {
    /// The target row was already open.
    Hit,
    /// The bank was closed (activate only).
    Miss,
    /// Another row was open (precharge + activate).
    Conflict,
}

/// Read- and write-queue occupancy statistics — telemetry-only (sampled by
/// the observability layer, never serialized into run reports). Depth is
/// observed at each submit, so the mean depths are the same-kind queue
/// depth seen by an arriving request.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Read-class requests submitted.
    pub read_submits: u64,
    /// Sum over read submits of the read-queue depth right after enqueue.
    pub read_depth_sum: u64,
    /// Deepest read queue observed.
    pub read_max_depth: u64,
    /// Write-class requests submitted.
    pub write_submits: u64,
    /// Sum over write submits of the write-queue depth right after enqueue.
    pub write_depth_sum: u64,
    /// Deepest write queue observed.
    pub write_max_depth: u64,
}

impl QueueStats {
    pub(crate) fn on_submit_read(&mut self, depth: u64) {
        self.read_submits += 1;
        self.read_depth_sum += depth;
        self.read_max_depth = self.read_max_depth.max(depth);
    }

    pub(crate) fn on_submit_write(&mut self, depth: u64) {
        self.write_submits += 1;
        self.write_depth_sum += depth;
        self.write_max_depth = self.write_max_depth.max(depth);
    }

    /// Mean read-queue depth seen by an arriving read (0 with no submits).
    pub fn mean_read_depth(&self) -> f64 {
        if self.read_submits == 0 {
            0.0
        } else {
            self.read_depth_sum as f64 / self.read_submits as f64
        }
    }

    /// Mean write-queue depth seen by an arriving write (0 with no
    /// submits).
    pub fn mean_write_depth(&self) -> f64 {
        if self.write_submits == 0 {
            0.0
        } else {
            self.write_depth_sum as f64 / self.write_submits as f64
        }
    }

    /// Folds another DRAM system's queue statistics into this one
    /// (multi-MC aggregation).
    pub fn merge(&mut self, other: &QueueStats) {
        self.read_submits += other.read_submits;
        self.read_depth_sum += other.read_depth_sum;
        self.read_max_depth = self.read_max_depth.max(other.read_max_depth);
        self.write_submits += other.write_submits;
        self.write_depth_sum += other.write_depth_sum;
        self.write_max_depth = self.write_max_depth.max(other.write_max_depth);
    }
}

/// Aggregate counters for one DRAM system.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DramStats {
    /// Total read bursts served.
    pub reads: Counter,
    /// Total write bursts served.
    pub writes: Counter,
    /// Row-buffer hits.
    pub row_hits: Counter,
    /// Row-buffer misses (closed bank).
    pub row_misses: Counter,
    /// Row-buffer conflicts (wrong row open).
    pub row_conflicts: Counter,
    /// Activate commands issued.
    pub activates: Counter,
    /// Refresh commands issued (accrued as simulated time passes).
    pub refreshes: Counter,
    /// Total data-bus busy time (for bandwidth utilization).
    pub bus_busy: Time,
    /// Mean request latency (arrival to last data beat), nanoseconds.
    pub latency: MeanAccumulator,
    /// 64 B bursts per [`RequestClass`].
    per_class: [Counter; 7],
}

impl DramStats {
    pub(crate) fn record(
        &mut self,
        op: DramOp,
        class: RequestClass,
        outcome: RowOutcome,
        arrival: Time,
        done: Time,
    ) {
        match op {
            DramOp::Read => self.reads.incr(),
            DramOp::Write => self.writes.incr(),
        }
        match outcome {
            RowOutcome::Hit => self.row_hits.incr(),
            RowOutcome::Miss => self.row_misses.incr(),
            RowOutcome::Conflict => self.row_conflicts.incr(),
        }
        self.per_class[class.index()].incr();
        self.latency.record_time_ns(done.saturating_sub(arrival));
    }

    /// Folds another DRAM system's statistics into this one (multi-MC
    /// aggregation).
    pub fn merge(&mut self, other: &DramStats) {
        self.reads.merge(other.reads);
        self.writes.merge(other.writes);
        self.row_hits.merge(other.row_hits);
        self.row_misses.merge(other.row_misses);
        self.row_conflicts.merge(other.row_conflicts);
        self.activates.merge(other.activates);
        self.refreshes.merge(other.refreshes);
        self.bus_busy += other.bus_busy;
        self.latency.merge(&other.latency);
        for (i, c) in other.per_class.iter().enumerate() {
            self.per_class[i].merge(*c);
        }
    }

    /// 64 B bursts attributed to `class`.
    pub fn class_blocks(&self, class: RequestClass) -> u64 {
        self.per_class[class.index()].get()
    }

    /// Total 64 B bursts served.
    pub fn total_blocks(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }

    /// Total bytes moved over the data bus.
    pub fn total_bytes(&self) -> u64 {
        self.total_blocks() * dylect_sim_core::BLOCK_BYTES
    }

    /// Data-bus utilization over `elapsed` simulated time (0..1 per
    /// channel-count of 1).
    pub fn bus_utilization(&self, elapsed: Time) -> f64 {
        if elapsed == Time::ZERO {
            0.0
        } else {
            self.bus_busy.as_ps() as f64 / elapsed.as_ps() as f64
        }
    }

    /// Row-buffer hit rate across all requests.
    pub fn row_hit_rate(&self) -> f64 {
        self.row_hits.fraction_of(self.total_blocks())
    }

    /// Serializes every field under `prefix` into a report-cache record.
    pub fn write_kv(&self, w: &mut KvWriter, prefix: &str) {
        w.put_u64(&format!("{prefix}.reads"), self.reads.get());
        w.put_u64(&format!("{prefix}.writes"), self.writes.get());
        w.put_u64(&format!("{prefix}.row_hits"), self.row_hits.get());
        w.put_u64(&format!("{prefix}.row_misses"), self.row_misses.get());
        w.put_u64(&format!("{prefix}.row_conflicts"), self.row_conflicts.get());
        w.put_u64(&format!("{prefix}.activates"), self.activates.get());
        w.put_u64(&format!("{prefix}.refreshes"), self.refreshes.get());
        w.put_u64(&format!("{prefix}.bus_busy_ps"), self.bus_busy.as_ps());
        w.put_f64(&format!("{prefix}.latency.sum"), self.latency.sum());
        w.put_u64(&format!("{prefix}.latency.count"), self.latency.count());
        for class in RequestClass::ALL {
            w.put_u64(
                &format!("{prefix}.class.{class}"),
                self.per_class[class.index()].get(),
            );
        }
    }

    /// Inverse of [`DramStats::write_kv`]; `None` if any field is missing.
    pub fn read_kv(r: &KvReader, prefix: &str) -> Option<DramStats> {
        let counter = |name: &str| -> Option<Counter> {
            Some(Counter::from_value(r.get_u64(&format!("{prefix}.{name}"))?))
        };
        let mut per_class = [Counter::default(); 7];
        for class in RequestClass::ALL {
            per_class[class.index()] = counter(&format!("class.{class}"))?;
        }
        Some(DramStats {
            reads: counter("reads")?,
            writes: counter("writes")?,
            row_hits: counter("row_hits")?,
            row_misses: counter("row_misses")?,
            row_conflicts: counter("row_conflicts")?,
            activates: counter("activates")?,
            refreshes: counter("refreshes")?,
            bus_busy: Time::from_ps(r.get_u64(&format!("{prefix}.bus_busy_ps"))?),
            latency: MeanAccumulator::from_parts(
                r.get_f64(&format!("{prefix}.latency.sum"))?,
                r.get_u64(&format!("{prefix}.latency.count"))?,
            ),
            per_class,
        })
    }
}

impl Snapshot for QueueStats {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.read_submits);
        w.u64(self.read_depth_sum);
        w.u64(self.read_max_depth);
        w.u64(self.write_submits);
        w.u64(self.write_depth_sum);
        w.u64(self.write_max_depth);
    }
}

impl Restore for QueueStats {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.read_submits = r.u64()?;
        self.read_depth_sum = r.u64()?;
        self.read_max_depth = r.u64()?;
        self.write_submits = r.u64()?;
        self.write_depth_sum = r.u64()?;
        self.write_max_depth = r.u64()?;
        Ok(())
    }
}

impl Snapshot for DramStats {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.reads.write_snapshot(w);
        self.writes.write_snapshot(w);
        self.row_hits.write_snapshot(w);
        self.row_misses.write_snapshot(w);
        self.row_conflicts.write_snapshot(w);
        self.activates.write_snapshot(w);
        self.refreshes.write_snapshot(w);
        self.bus_busy.write_snapshot(w);
        self.latency.write_snapshot(w);
        for c in &self.per_class {
            c.write_snapshot(w);
        }
    }
}

impl Restore for DramStats {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reads.restore_snapshot(r)?;
        self.writes.restore_snapshot(r)?;
        self.row_hits.restore_snapshot(r)?;
        self.row_misses.restore_snapshot(r)?;
        self.row_conflicts.restore_snapshot(r)?;
        self.activates.restore_snapshot(r)?;
        self.refreshes.restore_snapshot(r)?;
        self.bus_busy.restore_snapshot(r)?;
        self.latency.restore_snapshot(r)?;
        for c in &mut self.per_class {
            c.restore_snapshot(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_accounting() {
        let mut s = DramStats::default();
        s.record(
            DramOp::Read,
            RequestClass::Demand,
            RowOutcome::Hit,
            Time::ZERO,
            Time::from_ns(30.0),
        );
        s.record(
            DramOp::Write,
            RequestClass::Migration,
            RowOutcome::Conflict,
            Time::ZERO,
            Time::from_ns(60.0),
        );
        assert_eq!(s.reads.get(), 1);
        assert_eq!(s.writes.get(), 1);
        assert_eq!(s.class_blocks(RequestClass::Demand), 1);
        assert_eq!(s.class_blocks(RequestClass::Migration), 1);
        assert_eq!(s.class_blocks(RequestClass::CteFetch), 0);
        assert_eq!(s.total_bytes(), 128);
        assert_eq!(s.latency.mean(), 45.0);
        assert_eq!(s.row_hit_rate(), 0.5);
    }

    #[test]
    fn class_display_names() {
        assert_eq!(RequestClass::CteFetch.to_string(), "cte_fetch");
        assert_eq!(RequestClass::ALL.len(), 7);
    }

    #[test]
    fn utilization_guards_zero() {
        let s = DramStats::default();
        assert_eq!(s.bus_utilization(Time::ZERO), 0.0);
    }
}
