//! Synthetic workload generators for the DyLeCT reproduction.
//!
//! The paper evaluates nine GraphBig kernels, SPEC CPU2017 `mcf` and
//! `omnetpp`, and PARSEC `canneal` — all large, irregular, and
//! translation-intensive. Their memory images are not available here, so
//! each benchmark is modeled as a parameterized synthetic stream
//! ([`SyntheticWorkload`]) that reproduces the *statistics the paper's
//! results depend on* (DESIGN.md §5):
//!
//! - **footprint** (Table 2, scaled by a configurable denominator);
//! - a **hot working set** of scattered 256 KB regions (graph structures
//!   cluster hot vertices in allocation regions) visited with Zipf skew;
//! - **neighborhood bursts** within a region (adjacency exploration), which
//!   give the LLC-miss stream the page-group locality that CTE caches — and
//!   especially DyLeCT's 1 MB-reach pre-gathered blocks — exploit;
//! - **within-huge-page skew** (citation \[20\]): only a pseudo-random subset of each
//!   region's 4 KB pages is hot, the rest stay cold;
//! - a **cold trickle** (in-region and global) that keeps the compressed
//!   level alive and drives page expansions at a realistic, low rate;
//! - **pointer-chasing** (dependent accesses) and **scan** components;
//! - per-page **compressibility** calibrated to the paper's settings.

pub mod spec;
pub mod trace_io;

pub use spec::{BenchmarkSpec, CompressionSetting};

use dylect_compression::CompressibilityProfile;
use dylect_sim_core::rng::{hash2, Rng, Zipf};
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::trace::{MemOp, OpBatch};
use dylect_sim_core::{VirtAddr, BLOCK_BYTES, PAGE_BYTES};

/// Pages per hot region (256 KB).
pub const REGION_PAGES: u64 = 64;

/// Tunable personality of a synthetic benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadParams {
    /// Benchmark name.
    pub name: String,
    /// Footprint in 4 KB pages.
    pub footprint_pages: u64,
    /// Fraction of the footprint belonging to hot regions.
    pub hot_fraction: f64,
    /// Fraction of each hot region's pages that are hot-eligible (the
    /// within-huge-page skew).
    pub eligible_fraction: f64,
    /// Zipf skew across hot regions.
    pub zipf_theta: f64,
    /// Mean burst length (accesses per region visit).
    pub burst_len: u32,
    /// Probability a burst access targets a cold (non-eligible) page of the
    /// region.
    pub intra_cold: f64,
    /// Fraction of accesses that go to a uniformly random page anywhere.
    pub cold_fraction: f64,
    /// Fraction of accesses from the sequential-scan component.
    pub stream_fraction: f64,
    /// Fraction of irregular accesses that depend on the previous access.
    pub dep_fraction: f64,
    /// Fraction of accesses that are stores.
    pub write_fraction: f64,
    /// Mean non-memory instructions per memory operation.
    pub work_per_op: u16,
    /// Recurring hot 64 B blocks per page (how much of each hot page is
    /// actually touched; larger values enlarge the byte-level working set
    /// relative to the LLC without changing page-level behavior).
    pub hot_blocks_per_page: u64,
    /// Mean compression ratio if every page were compressed.
    pub mean_compression_ratio: f64,
}

impl WorkloadParams {
    /// A small demonstration workload (64 MB footprint) for examples and
    /// tests.
    pub fn demo() -> Self {
        WorkloadParams {
            name: "demo".to_owned(),
            footprint_pages: 16 * 1024,
            hot_fraction: 0.4,
            eligible_fraction: 0.7,
            zipf_theta: 0.9,
            burst_len: 16,
            intra_cold: 0.05,
            cold_fraction: 0.01,
            stream_fraction: 0.15,
            dep_fraction: 0.6,
            write_fraction: 0.3,
            work_per_op: 4,
            hot_blocks_per_page: 4,
            mean_compression_ratio: 3.4,
        }
    }
}

/// A deterministic, infinite memory-operation stream.
///
/// # Example
///
/// ```
/// use dylect_workloads::{SyntheticWorkload, WorkloadParams};
///
/// let mut w = SyntheticWorkload::new(WorkloadParams::demo(), 42);
/// let op = w.next_op();
/// assert!(op.vaddr.page().index() < w.params().footprint_pages);
/// ```
#[derive(Clone, Debug)]
pub struct SyntheticWorkload {
    params: WorkloadParams,
    profile: CompressibilityProfile,
    zipf: Zipf,
    rng: Rng,
    seed: u64,
    num_regions: u64,
    hot_regions: u64,
    /// Coprime multiplier scattering hot regions across the address space.
    perm_mult: u64,
    /// Current burst: first page of the region and remaining accesses.
    burst_region_base: u64,
    burst_remaining: u32,
    /// Sequential scan cursor (block index within the footprint).
    scan_cursor: u64,
    /// Precomputed integer draw thresholds (see [`DrawThresholds`]): the
    /// generator is on the simulator's per-op hot path, so the Bernoulli
    /// knobs are folded into bit-field compares on one 64-bit draw instead
    /// of one `f64` draw each.
    thresholds: DrawThresholds,
    /// Lazily built per-region tables of hot-eligible page offsets, indexed
    /// by region. Burst accesses pick uniformly from the table instead of
    /// re-hashing candidate pages in a retry loop on every op.
    eligible_sets: Vec<EligibleSet>,
}

/// The hot-eligible pages of one region: `pages[..count]` holds the
/// in-region offsets for which [`SyntheticWorkload::is_eligible`] is true.
/// `built` marks lazy initialization (regions the bursts never reach are
/// never hashed).
#[derive(Copy, Clone, Debug)]
struct EligibleSet {
    built: bool,
    count: u8,
    pages: [u8; REGION_PAGES as usize],
}

impl Default for EligibleSet {
    fn default() -> Self {
        EligibleSet {
            built: false,
            count: 0,
            pages: [0; REGION_PAGES as usize],
        }
    }
}

/// Integer thresholds for the per-op Bernoulli draws, precomputed from
/// [`WorkloadParams`]. One `next_u64` yields a 32-bit component selector and
/// two 16-bit flag fields; a fraction `p` becomes the threshold `p * 2^k`.
#[derive(Copy, Clone, Debug)]
struct DrawThresholds {
    /// `stream_fraction` over the low 32 selector bits.
    stream: u32,
    /// `stream + (1 - stream) * cold_fraction` over the selector bits (the
    /// conditional cold draw folded into one cumulative compare).
    cold_cum: u32,
    /// `write_fraction` over 16 bits.
    write: u16,
    /// `dep_fraction` over 16 bits.
    dep: u16,
    /// `intra_cold` over 16 bits.
    intra_cold: u16,
}

impl DrawThresholds {
    fn new(p: &WorkloadParams) -> Self {
        let frac32 = |p: f64| (p.clamp(0.0, 1.0) * (1u64 << 32) as f64) as u64;
        let frac16 = |p: f64| (p.clamp(0.0, 1.0) * (1u64 << 16) as f64).min(u16::MAX as f64) as u16;
        let stream = frac32(p.stream_fraction);
        let cold_cum = stream + frac32((1.0 - p.stream_fraction) * p.cold_fraction);
        DrawThresholds {
            stream: stream.min(u32::MAX as u64) as u32,
            cold_cum: cold_cum.min(u32::MAX as u64) as u32,
            write: frac16(p.write_fraction),
            dep: frac16(p.dep_fraction),
            intra_cold: frac16(p.intra_cold),
        }
    }
}

/// A declarative mid-run change of workload personality (scenario phase
/// churn). Only the fields that are `Some` change; everything else keeps
/// its current value.
///
/// Deliberately excluded: `footprint_pages` and `mean_compression_ratio`
/// (and `eligible_fraction`, which feeds the same page-stable hashes) —
/// those are *construction* state shared with the memory controller's
/// sizing and compressibility profile, and changing them mid-run would
/// break the snapshot identity guards. The effective working-set size
/// shifts through `hot_fraction`, which grows or shrinks the set of
/// regions the Zipf draw can reach.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct PhaseShift {
    /// New fraction of the footprint in hot regions.
    pub hot_fraction: Option<f64>,
    /// New Zipf skew across hot regions.
    pub zipf_theta: Option<f64>,
    /// New store fraction.
    pub write_fraction: Option<f64>,
    /// New sequential-scan fraction.
    pub stream_fraction: Option<f64>,
}

impl PhaseShift {
    /// Whether the shift changes nothing.
    pub fn is_empty(&self) -> bool {
        *self == PhaseShift::default()
    }
}

/// Multiply-shift map of a 16-bit field onto `0..n` (unbiased enough for
/// workload shaping; `n` is tiny).
#[inline]
fn scale16(bits: u64, n: u64) -> u64 {
    ((bits & 0xFFFF) * n) >> 16
}

/// Multiply-shift map of a 32-bit field onto `0..n`.
#[inline]
fn scale32(bits: u64, n: u64) -> u64 {
    ((bits & 0xFFFF_FFFF) * n) >> 32
}

impl SyntheticWorkload {
    /// Builds a workload from its parameters and a seed.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is smaller than one region.
    pub fn new(params: WorkloadParams, seed: u64) -> Self {
        assert!(
            params.footprint_pages >= REGION_PAGES,
            "footprint smaller than one region"
        );
        let profile =
            CompressibilityProfile::with_mean_ratio(&params.name, params.mean_compression_ratio);
        let num_regions = params.footprint_pages / REGION_PAGES;
        let hot_regions = ((num_regions as f64 * params.hot_fraction) as u64).clamp(1, num_regions);
        let zipf = Zipf::new(hot_regions, params.zipf_theta);
        let mut perm_mult = 0x9E37_79B9u64 | 1;
        while gcd(perm_mult, num_regions) != 1 {
            perm_mult += 2;
        }
        SyntheticWorkload {
            zipf,
            profile,
            rng: Rng::new(seed ^ 0x5EED),
            seed,
            num_regions,
            hot_regions,
            perm_mult,
            burst_region_base: 0,
            burst_remaining: 0,
            scan_cursor: 0,
            thresholds: DrawThresholds::new(&params),
            eligible_sets: vec![EligibleSet::default(); num_regions as usize],
            params,
        }
    }

    /// The workload's parameters.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// The per-page compressibility profile.
    pub fn profile(&self) -> &CompressibilityProfile {
        &self.profile
    }

    /// Footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.params.footprint_pages * PAGE_BYTES
    }

    /// Number of hot regions.
    pub fn hot_regions(&self) -> u64 {
        self.hot_regions
    }

    /// Maps a hot-region rank to its first page (bijective scatter).
    fn region_base_of_rank(&self, rank: u64) -> u64 {
        (rank.wrapping_mul(self.perm_mult) % self.num_regions) * REGION_PAGES
    }

    /// Whether a page is hot-eligible within its region (stable per page).
    pub fn is_eligible(&self, page: u64) -> bool {
        let t = (self.params.eligible_fraction * u32::MAX as f64) as u64;
        (hash2(self.seed ^ 0xE11, page) & 0xFFFF_FFFF) < t
    }

    /// The hot-eligible page offsets of the region starting at
    /// `region_base`, hashing the region's pages on first touch.
    fn eligible_pages(&mut self, region_base: u64) -> (u8, &[u8; REGION_PAGES as usize]) {
        let idx = (region_base / REGION_PAGES) as usize;
        if !self.eligible_sets[idx].built {
            let t = (self.params.eligible_fraction * u32::MAX as f64) as u64;
            let set = &mut self.eligible_sets[idx];
            let mut n = 0u8;
            for p in 0..REGION_PAGES {
                if (hash2(self.seed ^ 0xE11, region_base + p) & 0xFFFF_FFFF) < t {
                    set.pages[n as usize] = p as u8;
                    n += 1;
                }
            }
            set.count = n;
            set.built = true;
        }
        let set = &self.eligible_sets[idx];
        (set.count, &set.pages)
    }

    /// A stable "hot block" of a page (graph vertices live at fixed
    /// offsets; each page has a few recurring blocks).
    fn block_of(&mut self, page: u64, which: u64) -> u64 {
        hash2(self.seed ^ 0xB10C, page * 64 + which) % (PAGE_BYTES / BLOCK_BYTES)
    }

    /// Builds the op at `page` from pre-drawn bits: `write`/`dep` are the
    /// already-decided flags, `jitter_bits` shapes the work jitter, and a
    /// fresh draw picks the hot block.
    fn op_at(&mut self, page: u64, write: bool, dep: bool, jitter_bits: u64) -> MemOp {
        let work_per_op = self.params.work_per_op;
        let work_jitter = scale16(jitter_bits, work_per_op as u64 + 1) as u16;
        let which = scale16(self.rng.next_u64(), self.params.hot_blocks_per_page.max(1));
        let block = self.block_of(page, which);
        MemOp {
            vaddr: VirtAddr::new(page * PAGE_BYTES + block * BLOCK_BYTES),
            write,
            work: work_per_op / 2 + work_jitter,
            dep_on_prev: dep,
        }
    }

    /// Produces the next memory operation.
    ///
    /// Hot-path note: a typical op consumes two or three 64-bit draws. The
    /// first draw packs the component selector (low 32 bits, compared
    /// against the cumulative stream/cold thresholds) with the write and
    /// dep flags (two 16-bit fields); a second shapes jitter and page
    /// choice; `op_at` draws once more for the block. The old
    /// one-`f64`-draw-per-decision layout cost nearly as much as the
    /// simulated core itself.
    pub fn next_op(&mut self) -> MemOp {
        let t = self.thresholds;
        let footprint_pages = self.params.footprint_pages;
        let r = self.rng.next_u64();
        let selector = r as u32;
        let write = ((r >> 32) as u16) < t.write;
        // Sequential scan component.
        if selector < t.stream {
            let total_blocks = footprint_pages * (PAGE_BYTES / BLOCK_BYTES);
            self.scan_cursor = (self.scan_cursor + 1) % total_blocks;
            let vaddr = VirtAddr::new(self.scan_cursor * BLOCK_BYTES);
            let work_per_op = self.params.work_per_op;
            // The dep field is unused on this path; its bits shape jitter.
            let work_jitter = scale16(r >> 48, work_per_op as u64 + 1) as u16;
            return MemOp {
                vaddr,
                write,
                work: work_per_op / 2 + work_jitter,
                dep_on_prev: false,
            };
        }
        let dep = ((r >> 48) as u16) < t.dep;
        let r2 = self.rng.next_u64();
        // Global cold trickle.
        if selector < t.cold_cum {
            let page = scale32(r2 >> 32, footprint_pages);
            return self.op_at(page, write, dep, r2);
        }
        // Hot component: bursts within Zipf-chosen hot regions.
        if self.burst_remaining == 0 {
            let rank = self.zipf.sample(&mut self.rng);
            self.burst_region_base = self.region_base_of_rank(rank);
            self.burst_remaining = 1 + self.rng.next_below(2 * self.params.burst_len as u64) as u32;
        }
        self.burst_remaining -= 1;
        let base = self.burst_region_base;
        let page = if ((r2 >> 16) as u16) < t.intra_cold {
            // Touch any page of the region, hot or cold.
            base + scale32(r2 >> 32, REGION_PAGES)
        } else {
            // A uniformly chosen hot-eligible page of the region, from the
            // precomputed per-region table (a region with no eligible
            // pages falls back to an arbitrary one).
            let (count, pages) = self.eligible_pages(base);
            if count == 0 {
                base + scale32(r2 >> 32, REGION_PAGES)
            } else {
                base + pages[scale32(r2 >> 32, count as u64) as usize] as u64
            }
        };
        let page = page.min(footprint_pages - 1);
        self.op_at(page, write, dep, r2)
    }

    /// Applies a phase shift: rebuilds the derived state (Zipf tables,
    /// draw thresholds, hot-region count) from the updated parameters and
    /// abandons any in-flight burst so the next hot access re-draws under
    /// the new skew. Deterministic — no RNG draws are consumed — so two
    /// runs applying the same shifts at the same op boundaries stay
    /// byte-identical.
    pub fn apply_phase(&mut self, shift: &PhaseShift) {
        if let Some(h) = shift.hot_fraction {
            self.params.hot_fraction = h;
        }
        if let Some(t) = shift.zipf_theta {
            self.params.zipf_theta = t;
        }
        if let Some(w) = shift.write_fraction {
            self.params.write_fraction = w;
        }
        if let Some(s) = shift.stream_fraction {
            self.params.stream_fraction = s;
        }
        self.hot_regions = ((self.num_regions as f64 * self.params.hot_fraction) as u64)
            .clamp(1, self.num_regions);
        self.zipf = Zipf::new(self.hot_regions, self.params.zipf_theta);
        self.thresholds = DrawThresholds::new(&self.params);
        self.burst_remaining = 0;
    }

    /// Fills `buf` with the next operations (convenience for batch runs).
    pub fn fill(&mut self, buf: &mut Vec<MemOp>, n: usize) {
        buf.clear();
        buf.extend((0..n).map(|_| self.next_op()));
    }

    /// Clears `batch` and generates the next `n` operations into it. The
    /// batched run loop's generation phase: the arena's allocations are
    /// reused, so this never allocates in steady state.
    pub fn fill_batch(&mut self, batch: &mut OpBatch, n: usize) {
        batch.clear();
        for _ in 0..n {
            let op = self.next_op();
            batch.push(op);
        }
    }
}

/// Only the stream position is state: the RNG, the current burst, and the
/// scan cursor. Everything else (Zipf tables, thresholds, the eligible-page
/// cache) is derived from the parameters and seed, which the restoring side
/// must construct identically — guarded here by the seed itself.
impl Snapshot for SyntheticWorkload {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.seed);
        self.rng.write_snapshot(w);
        w.u64(self.burst_region_base);
        w.u32(self.burst_remaining);
        w.u64(self.scan_cursor);
    }
}

impl Restore for SyntheticWorkload {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.u64()? != self.seed {
            return Err(SnapError::Mismatch("workload seed"));
        }
        self.rng.restore_snapshot(r)?;
        let base = r.u64()?;
        if base >= self.params.footprint_pages || !base.is_multiple_of(REGION_PAGES) {
            return Err(SnapError::Corrupt("burst region out of footprint"));
        }
        self.burst_region_base = base;
        self.burst_remaining = r.u32()?;
        let cursor = r.u64()?;
        if cursor >= self.params.footprint_pages * (PAGE_BYTES / BLOCK_BYTES) {
            return Err(SnapError::Corrupt("scan cursor out of footprint"));
        }
        self.scan_cursor = cursor;
        Ok(())
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn demo(seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::new(WorkloadParams::demo(), seed)
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = demo(1);
        let mut b = demo(1);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = demo(1);
        let mut b = demo(2);
        let same = (0..100).filter(|_| a.next_op() == b.next_op()).count();
        assert!(same < 50);
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let mut w = demo(3);
        let fp = w.params().footprint_pages;
        for _ in 0..10_000 {
            assert!(w.next_op().vaddr.page().index() < fp);
        }
    }

    #[test]
    fn hot_working_set_is_bounded() {
        let mut w = demo(4);
        let mut pages = HashSet::new();
        for _ in 0..200_000 {
            pages.insert(w.next_op().vaddr.page().index());
        }
        // The scan sweeps everything over time, but in a 200k window the
        // touched set should be well below the full footprint and above the
        // hot core.
        let fp = w.params().footprint_pages;
        assert!(pages.len() as u64 > fp / 10, "{} pages", pages.len());
    }

    #[test]
    fn region_popularity_is_skewed() {
        let mut p = WorkloadParams::demo();
        p.stream_fraction = 0.0;
        p.cold_fraction = 0.0;
        let mut w = SyntheticWorkload::new(p, 5);
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for _ in 0..100_000 {
            let op = w.next_op();
            *counts
                .entry(op.vaddr.page().index() / REGION_PAGES)
                .or_default() += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).map(|&c| c as u64).sum();
        assert!(top10 > 15_000, "top-10 regions got only {top10}/100000");
    }

    #[test]
    fn bursts_have_region_locality() {
        let mut p = WorkloadParams::demo();
        p.stream_fraction = 0.0;
        p.cold_fraction = 0.0;
        p.dep_fraction = 0.0;
        let mut w = SyntheticWorkload::new(p, 6);
        // Consecutive ops should frequently share a 256 KB region.
        let mut same_region = 0;
        let mut prev = w.next_op().vaddr.page().index() / REGION_PAGES;
        let n = 10_000;
        for _ in 0..n {
            let r = w.next_op().vaddr.page().index() / REGION_PAGES;
            same_region += (r == prev) as u32;
            prev = r;
        }
        assert!(
            same_region as f64 / n as f64 > 0.7,
            "only {same_region}/{n} consecutive pairs share a region"
        );
    }

    #[test]
    fn within_region_skew_exists() {
        let w = demo(7);
        let eligible = (0..64u64).filter(|&p| w.is_eligible(p)).count();
        // ~70% of pages eligible, but not all and not none.
        assert!((20..64).contains(&eligible), "{eligible}/64 eligible");
    }

    #[test]
    fn cold_trickle_reaches_everywhere() {
        let mut p = WorkloadParams::demo();
        p.cold_fraction = 1.0;
        p.stream_fraction = 0.0;
        let mut w = SyntheticWorkload::new(p, 8);
        let mut regions = HashSet::new();
        for _ in 0..20_000 {
            regions.insert(w.next_op().vaddr.page().index() / REGION_PAGES);
        }
        // Uniform cold accesses should touch most regions.
        assert!(regions.len() as u64 > w.num_regions / 2);
    }

    #[test]
    fn dependence_and_write_fractions_hold() {
        let mut w = demo(9);
        let n = 50_000;
        let mut deps = 0;
        let mut writes = 0;
        for _ in 0..n {
            let op = w.next_op();
            deps += op.dep_on_prev as u64;
            writes += op.write as u64;
        }
        let dep_frac = deps as f64 / n as f64;
        let write_frac = writes as f64 / n as f64;
        // dep applies to the non-scan (85%) portion: 0.6 * 0.85 = 0.51.
        assert!((0.4..0.6).contains(&dep_frac), "dep {dep_frac}");
        assert!((0.25..0.35).contains(&write_frac), "writes {write_frac}");
    }

    #[test]
    fn scan_component_is_sequential() {
        let mut p = WorkloadParams::demo();
        p.stream_fraction = 1.0;
        let mut w = SyntheticWorkload::new(p, 10);
        let a = w.next_op().vaddr;
        let b = w.next_op().vaddr;
        assert_eq!(b.raw() - a.raw(), BLOCK_BYTES);
    }

    #[test]
    fn profile_matches_requested_ratio() {
        let w = demo(11);
        assert!((w.profile().mean_ratio() - 3.4).abs() < 0.3);
    }

    #[test]
    fn snapshot_resumes_the_exact_stream() {
        let mut w = demo(13);
        for _ in 0..5000 {
            w.next_op();
        }
        let mut sw = SnapWriter::new();
        w.write_snapshot(&mut sw);
        let snap = sw.into_bytes();

        let expected: Vec<MemOp> = (0..1000).map(|_| w.next_op()).collect();

        let mut fresh = demo(13);
        let mut r = SnapReader::new(&snap);
        fresh.restore_snapshot(&mut r).unwrap();
        r.finish().unwrap();
        let resumed: Vec<MemOp> = (0..1000).map(|_| fresh.next_op()).collect();
        assert_eq!(expected, resumed);
    }

    #[test]
    fn snapshot_rejects_wrong_seed_and_garbage() {
        let w = demo(14);
        let mut sw = SnapWriter::new();
        w.write_snapshot(&mut sw);
        let snap = sw.into_bytes();

        let mut other = demo(15);
        assert!(matches!(
            other.restore_snapshot(&mut SnapReader::new(&snap)),
            Err(SnapError::Mismatch("workload seed"))
        ));

        let mut same = demo(14);
        for cut in 0..snap.len() {
            let mut r = SnapReader::new(&snap[..cut]);
            let res = same.restore_snapshot(&mut r).and_then(|()| r.finish());
            assert!(res.is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn phase_shifts_are_deterministic_and_change_behavior() {
        let shift = PhaseShift {
            hot_fraction: Some(0.05),
            zipf_theta: Some(1.3),
            ..PhaseShift::default()
        };
        let run = |apply: bool| {
            let mut w = demo(21);
            for _ in 0..5_000 {
                w.next_op();
            }
            if apply {
                w.apply_phase(&shift);
            }
            let mut regions = HashSet::new();
            for _ in 0..50_000 {
                regions.insert(w.next_op().vaddr.page().index() / REGION_PAGES);
            }
            regions.len()
        };
        // Deterministic: same shift at the same boundary, same stream.
        let mut a = demo(22);
        let mut b = demo(22);
        for _ in 0..1_000 {
            a.next_op();
            b.next_op();
        }
        a.apply_phase(&shift);
        b.apply_phase(&shift);
        for _ in 0..1_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
        // Behavioral: shrinking the hot set shrinks the touched regions.
        assert!(run(true) < run(false));
    }

    #[test]
    fn phase_shift_keeps_snapshot_contract() {
        // Snapshot after a shift, restore onto a fresh workload with the
        // same shift re-applied: streams agree.
        let shift = PhaseShift {
            write_fraction: Some(0.9),
            ..PhaseShift::default()
        };
        let mut w = demo(23);
        for _ in 0..2_000 {
            w.next_op();
        }
        w.apply_phase(&shift);
        for _ in 0..500 {
            w.next_op();
        }
        let mut sw = SnapWriter::new();
        w.write_snapshot(&mut sw);
        let snap = sw.into_bytes();
        let expected: Vec<MemOp> = (0..500).map(|_| w.next_op()).collect();

        let mut fresh = demo(23);
        fresh.apply_phase(&shift);
        let mut r = SnapReader::new(&snap);
        fresh.restore_snapshot(&mut r).unwrap();
        r.finish().unwrap();
        let resumed: Vec<MemOp> = (0..500).map(|_| fresh.next_op()).collect();
        assert_eq!(expected, resumed);
    }

    #[test]
    fn pages_reuse_few_blocks() {
        let mut p = WorkloadParams::demo();
        p.stream_fraction = 0.0;
        p.cold_fraction = 0.0;
        let mut w = SyntheticWorkload::new(p, 12);
        let mut blocks: HashMap<u64, HashSet<u64>> = HashMap::new();
        for _ in 0..50_000 {
            let op = w.next_op();
            blocks
                .entry(op.vaddr.page().index())
                .or_default()
                .insert(op.vaddr.block_index());
        }
        let max_blocks = blocks.values().map(HashSet::len).max().unwrap();
        assert!(
            max_blocks as u64 <= WorkloadParams::demo().hot_blocks_per_page,
            "pages should reuse at most hot_blocks_per_page blocks"
        );
    }
}
