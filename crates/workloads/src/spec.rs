//! The paper's benchmark suite (Table 2) as parameterized specs.
//!
//! Footprints come from Table 2: the GraphBig suite totals 106 GB over nine
//! kernels, `mcf` 15 GB, `omnetpp` 1 GB, `canneal` 1.1 GB. DRAM sizes for
//! the low/high compression settings preserve the paper's
//! footprint-to-DRAM ratios. Everything scales down by a configurable
//! denominator (default 64) so simulations run at laptop scale; the ratios
//! — which drive all of the paper's results — are preserved.

use dylect_sim_core::PAGE_BYTES;

use crate::{SyntheticWorkload, WorkloadParams};

/// The compression-pressure settings from the TMCC paper reused here
/// (Table 2): low ≈ 1.3× average compression, high ≈ 2.8×.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CompressionSetting {
    /// DRAM ≈ 77–96% of footprint.
    Low,
    /// DRAM ≈ 33–66% of footprint.
    High,
}

/// A benchmark from the paper's suite.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkSpec {
    /// Short name (paper's label).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: &'static str,
    /// Full-scale footprint in bytes (Table 2, split evenly across the
    /// GraphBig kernels).
    pub footprint_bytes: u64,
    /// DRAM/footprint ratio at low compression.
    pub low_dram_fraction: f64,
    /// DRAM/footprint ratio at high compression.
    pub high_dram_fraction: f64,
    /// Fraction of the footprint in hot regions.
    pub hot_fraction: f64,
    /// Hot-eligible fraction within each hot region.
    pub eligible_fraction: f64,
    /// Zipf skew across hot regions.
    pub zipf_theta: f64,
    /// Mean burst length.
    pub burst_len: u32,
    /// In-region cold-touch probability.
    pub intra_cold: f64,
    /// Global uniform cold-access fraction.
    pub cold_fraction: f64,
    /// Pointer-chasing fraction.
    pub dep_fraction: f64,
    /// Store fraction.
    pub write_fraction: f64,
    /// Sequential-scan fraction.
    pub stream_fraction: f64,
    /// Mean non-memory instructions per memory op.
    pub work_per_op: u16,
    /// Recurring hot 64 B blocks per page.
    pub hot_blocks_per_page: u64,
    /// Mean compression ratio when fully compressed.
    pub compression_ratio: f64,
}

const GB: u64 = 1 << 30;
/// GraphBig per-kernel footprint: 106 GB / 9 kernels.
const GRAPHBIG_FP: u64 = 106 * GB / 9;
/// GraphBig DRAM fractions from Table 2 (81.5/106 and 35/106).
const GB_LOW: f64 = 81.5 / 106.0;
const GB_HIGH: f64 = 35.0 / 106.0;

macro_rules! graphbig {
    ($name:literal, $theta:expr, $dep:expr, $wr:expr, $stream:expr, $work:expr, $burst:expr) => {
        BenchmarkSpec {
            name: $name,
            suite: "GraphBig",
            footprint_bytes: GRAPHBIG_FP,
            low_dram_fraction: GB_LOW,
            high_dram_fraction: GB_HIGH,
            // High-compression uncompressed capacity is ~6% of the
            // footprint (DRAM = 0.33F at ratio 3.5); the hot set must fit.
            hot_fraction: 0.06,
            eligible_fraction: 0.7,
            zipf_theta: $theta,
            burst_len: $burst,
            intra_cold: 0.002,
            cold_fraction: 0.0005,
            dep_fraction: $dep,
            write_fraction: $wr,
            stream_fraction: $stream,
            work_per_op: $work,
            hot_blocks_per_page: 8,
            compression_ratio: 3.5,
        }
    };
}

impl BenchmarkSpec {
    /// The paper's twelve benchmarks.
    pub fn suite() -> Vec<BenchmarkSpec> {
        vec![
            graphbig!("bfs", 1.00, 0.70, 0.20, 0.10, 4, 24),
            graphbig!("dfs", 0.95, 0.85, 0.20, 0.05, 4, 32),
            graphbig!("sssp", 1.05, 0.60, 0.30, 0.15, 5, 24),
            graphbig!("pagerank", 0.90, 0.30, 0.25, 0.50, 3, 48),
            graphbig!("cc", 1.00, 0.50, 0.30, 0.20, 4, 32),
            graphbig!("tc", 1.10, 0.50, 0.10, 0.25, 6, 40),
            graphbig!("kcore", 1.00, 0.55, 0.30, 0.15, 5, 32),
            graphbig!("dc", 0.85, 0.20, 0.20, 0.60, 3, 48),
            graphbig!("gc", 1.00, 0.60, 0.30, 0.10, 5, 28),
            BenchmarkSpec {
                name: "mcf",
                suite: "SPEC CPU2017",
                footprint_bytes: 15 * GB,
                low_dram_fraction: 13.7 / 15.0,
                high_dram_fraction: 6.0 / 15.0,
                hot_fraction: 0.14,
                eligible_fraction: 0.7,
                zipf_theta: 1.05,
                burst_len: 24,
                intra_cold: 0.002,
                cold_fraction: 0.0005,
                dep_fraction: 0.75,
                write_fraction: 0.30,
                stream_fraction: 0.05,
                work_per_op: 6,
                hot_blocks_per_page: 8,
                compression_ratio: 3.3,
            },
            BenchmarkSpec {
                name: "omnetpp",
                suite: "SPEC CPU2017",
                footprint_bytes: GB,
                low_dram_fraction: 0.63,
                high_dram_fraction: 0.40,
                hot_fraction: 0.085,
                eligible_fraction: 0.7,
                zipf_theta: 1.05,
                burst_len: 32,
                intra_cold: 0.0008,
                cold_fraction: 0.0002,
                dep_fraction: 0.50,
                write_fraction: 0.35,
                stream_fraction: 0.03,
                work_per_op: 8,
                hot_blocks_per_page: 32,
                compression_ratio: 3.0,
            },
            BenchmarkSpec {
                name: "canneal",
                suite: "PARSEC 3.0",
                footprint_bytes: 11 * GB / 10,
                low_dram_fraction: 0.96 / 1.1,
                high_dram_fraction: 0.73 / 1.1,
                hot_fraction: 0.45,
                eligible_fraction: 0.7,
                zipf_theta: 1.10,
                burst_len: 20,
                intra_cold: 0.01,
                cold_fraction: 0.002,
                dep_fraction: 0.80,
                write_fraction: 0.25,
                stream_fraction: 0.02,
                work_per_op: 4,
                hot_blocks_per_page: 4,
                compression_ratio: 3.2,
            },
        ]
    }

    /// Looks a benchmark up by name.
    pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
        Self::suite().into_iter().find(|b| b.name == name)
    }

    /// Scaled footprint in 4 KB pages (`scale` is the denominator; 64 keeps
    /// runs laptop-sized).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is 0.
    pub fn footprint_pages(&self, scale: u64) -> u64 {
        assert!(scale > 0, "scale must be positive");
        (self.footprint_bytes / scale)
            .div_ceil(PAGE_BYTES)
            .max(1024)
    }

    /// Uncompressed-page capacity fraction at high compression:
    /// solving `U + (F-U)/r = D` for U with D = high_dram_fraction * F.
    pub fn high_capacity_fraction(&self) -> f64 {
        let r = self.compression_ratio;
        ((self.high_dram_fraction - 1.0 / r) * r / (r - 1.0)).max(0.005)
    }

    /// The largest scale denominator (halving from `requested`) at which the
    /// high-compression uncompressed capacity still spans at least
    /// `min_capacity_pages` — the pressure needed for CTE-cache effects to
    /// be visible. Small-footprint benchmarks (omnetpp, canneal) thus run
    /// closer to full scale than the 100+ GB GraphBig kernels.
    pub fn effective_scale(&self, requested: u64, min_capacity_pages: u64) -> u64 {
        let mut s = requested.max(1);
        while s > 1 {
            let u = (self.footprint_pages(s) as f64 * self.high_capacity_fraction()) as u64;
            if u >= min_capacity_pages {
                break;
            }
            s /= 2;
        }
        s
    }

    /// Scaled DRAM capacity in bytes for a compression setting, rounded up
    /// to the 1 MiB granularity the DDR4 geometry needs.
    pub fn dram_bytes(&self, setting: CompressionSetting, scale: u64) -> u64 {
        let frac = match setting {
            CompressionSetting::Low => self.low_dram_fraction,
            CompressionSetting::High => self.high_dram_fraction,
        };
        let raw = (self.footprint_bytes as f64 / scale as f64 * frac) as u64;
        raw.div_ceil(1 << 20).max(8) << 20
    }

    /// A DRAM size able to hold the whole footprint uncompressed (plus page
    /// tables and slack) — the "bigger system without compression".
    pub fn dram_bytes_no_compression(&self, scale: u64) -> u64 {
        let raw = self.footprint_bytes / scale;
        (raw + raw / 8).div_ceil(1 << 20).max(8) << 20
    }

    /// Instantiates the workload generator at the given scale.
    pub fn workload(&self, scale: u64, seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::new(
            WorkloadParams {
                name: self.name.to_owned(),
                footprint_pages: self.footprint_pages(scale),
                hot_fraction: self.hot_fraction,
                eligible_fraction: self.eligible_fraction,
                zipf_theta: self.zipf_theta,
                burst_len: self.burst_len,
                intra_cold: self.intra_cold,
                cold_fraction: self.cold_fraction,
                dep_fraction: self.dep_fraction,
                write_fraction: self.write_fraction,
                stream_fraction: self.stream_fraction,
                work_per_op: self.work_per_op,
                hot_blocks_per_page: self.hot_blocks_per_page,
                mean_compression_ratio: self.compression_ratio,
            },
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_benchmarks() {
        let suite = BenchmarkSpec::suite();
        assert_eq!(suite.len(), 12);
        assert_eq!(suite.iter().filter(|b| b.suite == "GraphBig").count(), 9);
    }

    #[test]
    fn table2_totals() {
        let suite = BenchmarkSpec::suite();
        let graphbig_total: u64 = suite
            .iter()
            .filter(|b| b.suite == "GraphBig")
            .map(|b| b.footprint_bytes)
            .sum();
        // 106 GB split across 9 kernels (integer division loses <9 bytes).
        assert!((graphbig_total as i64 - (106 * GB) as i64).abs() < 16);
    }

    #[test]
    fn dram_fractions_create_pressure() {
        for b in BenchmarkSpec::suite() {
            assert!(b.low_dram_fraction < 1.0, "{}", b.name);
            assert!(b.high_dram_fraction < b.low_dram_fraction, "{}", b.name);
            let low = b.dram_bytes(CompressionSetting::Low, 64);
            let high = b.dram_bytes(CompressionSetting::High, 64);
            assert!(high <= low, "{}", b.name);
            assert!(
                low < b.footprint_pages(64) * PAGE_BYTES + (64 << 20),
                "{}",
                b.name
            );
        }
    }

    #[test]
    fn dram_sizes_are_geometry_aligned() {
        for b in BenchmarkSpec::suite() {
            for s in [CompressionSetting::Low, CompressionSetting::High] {
                assert_eq!(b.dram_bytes(s, 64) % (1 << 20), 0, "{}", b.name);
            }
            assert_eq!(b.dram_bytes_no_compression(64) % (1 << 20), 0);
        }
    }

    #[test]
    fn no_compression_dram_fits_footprint() {
        for b in BenchmarkSpec::suite() {
            let dram = b.dram_bytes_no_compression(64);
            assert!(dram > b.footprint_pages(64) * PAGE_BYTES, "{}", b.name);
        }
    }

    #[test]
    fn by_name_round_trips() {
        assert_eq!(
            BenchmarkSpec::by_name("canneal").unwrap().suite,
            "PARSEC 3.0"
        );
        assert!(BenchmarkSpec::by_name("nope").is_none());
    }

    #[test]
    fn workloads_instantiate_at_scale() {
        for b in BenchmarkSpec::suite() {
            let mut w = b.workload(256, 1);
            let fp = w.params().footprint_pages;
            for _ in 0..100 {
                assert!(w.next_op().vaddr.page().index() < fp);
            }
        }
    }
}
