//! Trace capture and replay.
//!
//! The synthetic generators are deterministic, but users reproducing the
//! paper on *their own* applications will have traces (from Pin, DynamoRIO,
//! or a cycle-accurate simulator). This module defines a compact binary
//! trace format and a [`TraceReplay`] source that feeds recorded operations
//! back into the simulator.
//!
//! Format (little-endian): 8-byte magic `DYLTRC01`, u64 record count, then
//! per record: u64 virtual address, u16 work, u8 flags (bit 0 = write,
//! bit 1 = depends-on-previous).

use std::io::{self, Read, Write};

use dylect_sim_core::trace::MemOp;
use dylect_sim_core::VirtAddr;

const MAGIC: &[u8; 8] = b"DYLTRC01";
const RECORD_BYTES: usize = 11;

/// Serializes operations into a trace stream.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use dylect_sim_core::trace::MemOp;
/// use dylect_sim_core::VirtAddr;
/// use dylect_workloads::trace_io::{read_trace, write_trace};
///
/// # fn main() -> std::io::Result<()> {
/// let ops = vec![MemOp::load(VirtAddr::new(0x1000), 4)];
/// let mut buf = Vec::new();
/// write_trace(&mut buf, &ops)?;
/// assert_eq!(read_trace(&buf[..])?, ops);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(mut w: W, ops: &[MemOp]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(ops.len() as u64).to_le_bytes())?;
    for op in ops {
        let mut rec = [0u8; RECORD_BYTES];
        rec[..8].copy_from_slice(&op.vaddr.raw().to_le_bytes());
        rec[8..10].copy_from_slice(&op.work.to_le_bytes());
        rec[10] = op.write as u8 | ((op.dep_on_prev as u8) << 1);
        w.write_all(&rec)?;
    }
    Ok(())
}

/// Deserializes a full trace (see [`write_trace`] for the format).
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic or truncated stream, and propagates
/// I/O errors from the reader.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<MemOp>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    let mut count = [0u8; 8];
    r.read_exact(&mut count)?;
    let count = u64::from_le_bytes(count);
    // The on-disk count is untrusted: a corrupt or malicious header must
    // not drive a huge pre-allocation. Clamp the hint to 1 MiB worth of
    // records; a genuinely larger trace still loads, growing as it reads.
    const PREALLOC_CAP: u64 = (1 << 20) / RECORD_BYTES as u64;
    let hint = usize::try_from(count.min(PREALLOC_CAP)).unwrap_or(0);
    let mut ops = Vec::with_capacity(hint);
    let mut rec = [0u8; RECORD_BYTES];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        let vaddr = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
        let work = u16::from_le_bytes([rec[8], rec[9]]);
        ops.push(MemOp {
            vaddr: VirtAddr::new(vaddr),
            work,
            write: rec[10] & 1 != 0,
            dep_on_prev: rec[10] & 2 != 0,
        });
    }
    Ok(ops)
}

/// Replays a recorded trace, cycling when it runs out (simulation windows
/// may be longer than the capture).
#[derive(Clone, Debug)]
pub struct TraceReplay {
    ops: Vec<MemOp>,
    cursor: usize,
    /// How many times the trace has wrapped around.
    pub wraps: u64,
}

impl TraceReplay {
    /// Wraps a decoded trace.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    pub fn new(ops: Vec<MemOp>) -> Self {
        assert!(!ops.is_empty(), "empty trace");
        TraceReplay {
            ops,
            cursor: 0,
            wraps: 0,
        }
    }

    /// Reads a trace stream and wraps it.
    ///
    /// # Errors
    ///
    /// Propagates decoding errors from [`read_trace`]; an empty trace is
    /// `InvalidData`.
    pub fn from_reader<R: Read>(r: R) -> io::Result<Self> {
        let ops = read_trace(r)?;
        if ops.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
        }
        Ok(Self::new(ops))
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Produces the next operation, cycling at the end.
    pub fn next_op(&mut self) -> MemOp {
        let op = self.ops[self.cursor];
        self.cursor += 1;
        if self.cursor == self.ops.len() {
            self.cursor = 0;
            self.wraps += 1;
        }
        op
    }
}

/// Captures `n` operations from a generator into a trace byte buffer —
/// convenience for building reproducible fixtures.
pub fn capture(workload: &mut crate::SyntheticWorkload, n: usize) -> Vec<u8> {
    let ops: Vec<MemOp> = (0..n).map(|_| workload.next_op()).collect();
    let mut buf = Vec::with_capacity(16 + n * RECORD_BYTES);
    write_trace(&mut buf, &ops).expect("vec write cannot fail");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadParams;

    fn sample_ops() -> Vec<MemOp> {
        vec![
            MemOp::load(VirtAddr::new(0x1000), 4),
            MemOp::store(VirtAddr::new(0x2040), 0).dependent(),
            MemOp::load(VirtAddr::new(u64::MAX / 2), u16::MAX),
        ]
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        assert_eq!(buf.len(), 16 + ops.len() * RECORD_BYTES);
        assert_eq!(read_trace(&buf[..]).unwrap(), ops);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_ops()).unwrap();
        buf[0] ^= 0xFF;
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_ops()).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn truncated_header_is_rejected() {
        // Magic only, no count.
        assert!(read_trace(&MAGIC[..]).is_err());
        // Magic plus half a count field.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&[0u8; 4]);
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn huge_claimed_count_fails_without_allocating() {
        // A header claiming u64::MAX records followed by one record's worth
        // of bytes: must fail with InvalidData-ish truncation, not abort on
        // an absurd Vec::with_capacity.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; RECORD_BYTES]);
        let err = read_trace(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn count_larger_than_payload_is_rejected() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        // Inflate the record count past the actual payload.
        buf[8..16].copy_from_slice(&100u64.to_le_bytes());
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn replay_cycles() {
        let ops = sample_ops();
        let mut replay = TraceReplay::new(ops.clone());
        for _ in 0..2 {
            for expected in &ops {
                assert_eq!(replay.next_op(), *expected);
            }
        }
        assert_eq!(replay.wraps, 2);
        assert_eq!(replay.len(), 3);
    }

    #[test]
    fn capture_from_generator_replays_identically() {
        let mut w = crate::SyntheticWorkload::new(WorkloadParams::demo(), 5);
        let buf = capture(&mut w, 500);
        let mut replay = TraceReplay::from_reader(&buf[..]).unwrap();
        let mut w2 = crate::SyntheticWorkload::new(WorkloadParams::demo(), 5);
        for _ in 0..500 {
            assert_eq!(replay.next_op(), w2.next_op());
        }
    }

    #[test]
    fn empty_trace_rejected_by_replay() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert!(TraceReplay::from_reader(&buf[..]).is_err());
    }
}
