//! (De)compression latency model.
//!
//! The paper assumes a DEFLATE ASIC with 280 ns latency per 4 KB page
//! (§III-B) and notes that coarse granularities scale linearly (2 MB =
//! 512 × 280 ns ≈ 143 µs), which is one of the two effects that rule out
//! hardware-managed large pages (Figure 6).

use dylect_sim_core::{Time, PAGE_BYTES};

/// DEFLATE ASIC latency for one 4 KB page.
pub const DEFLATE_4KB: Time = Time::from_ps(280_000);

/// Latency to decompress `uncompressed_bytes` of data (linear in size,
/// in whole 4 KB units as the ASIC is page-pipelined).
///
/// # Example
///
/// ```
/// use dylect_compression::latency::decompression_latency;
/// assert_eq!(decompression_latency(4096).as_ns(), 280.0);
/// assert_eq!(decompression_latency(2 * 1024 * 1024).as_ns(), 512.0 * 280.0);
/// ```
pub fn decompression_latency(uncompressed_bytes: u64) -> Time {
    let pages = uncompressed_bytes.div_ceil(PAGE_BYTES).max(1);
    DEFLATE_4KB * pages
}

/// Latency to compress `uncompressed_bytes` of data (modeled symmetric to
/// decompression).
pub fn compression_latency(uncompressed_bytes: u64) -> Time {
    decompression_latency(uncompressed_bytes)
}

/// The decompression share of an expansion window, for latency
/// attribution: the ASIC latency for `uncompressed_bytes`, clamped to the
/// observed window. The critical path of an expansion interleaves span
/// reads, the ASIC, and the write-out, so the attributable decompression
/// time can never exceed the window itself.
pub fn attributable_decompression(window: Time, uncompressed_bytes: u64) -> Time {
    decompression_latency(uncompressed_bytes).min(window)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_latency_matches_paper() {
        assert_eq!(decompression_latency(4096).as_ns(), 280.0);
    }

    #[test]
    fn rounds_up_to_pages() {
        assert_eq!(decompression_latency(1).as_ns(), 280.0);
        assert_eq!(decompression_latency(4097).as_ns(), 560.0);
    }

    #[test]
    fn two_mb_matches_paper_figure() {
        // Paper: 512 * 280 ns = 143.36 us.
        let t = decompression_latency(2 * 1024 * 1024);
        assert!((t.as_ns() - 143_360.0).abs() < 1.0);
    }

    #[test]
    fn compression_is_symmetric() {
        assert_eq!(compression_latency(8192), decompression_latency(8192));
    }

    #[test]
    fn attributable_decompression_is_clamped_to_the_window() {
        let window = Time::from_ps(100_000);
        assert_eq!(attributable_decompression(window, 4096), window);
        let wide = Time::from_ps(1_000_000);
        assert_eq!(
            attributable_decompression(wide, 4096),
            decompression_latency(4096)
        );
    }
}
