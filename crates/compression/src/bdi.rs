//! Base-Delta-Immediate (BDI) compression.
//!
//! BDI [Pekhimenko et al., PACT 2012] compresses a 64 B cache block as a
//! base value plus narrow deltas, with a second implicit base of zero for
//! immediate values. We implement the standard eight encodings and a
//! bit-exact encoder/decoder.

/// One BDI encoding choice.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// All bytes zero (1-byte representation).
    Zeros,
    /// The same 8-byte value repeated (8-byte representation).
    Repeat,
    /// Base `B` bytes with `D`-byte deltas: the classic six combinations.
    BaseDelta {
        /// Base width in bytes (8, 4, or 2).
        base: u8,
        /// Delta width in bytes (< base).
        delta: u8,
    },
    /// Incompressible; stored raw.
    Raw,
}

impl Encoding {
    /// Compressed size in bytes of a 64 B block under this encoding
    /// (including the base but excluding the 4-bit encoding tag, which lives
    /// in metadata as in the original proposal).
    pub fn compressed_bytes(self) -> usize {
        match self {
            Encoding::Zeros => 1,
            Encoding::Repeat => 8,
            Encoding::BaseDelta { base, delta } => {
                let n = 64 / base as usize;
                // One base + a zero-base bitmask (n bits) + n deltas.
                base as usize + n.div_ceil(8) + n * delta as usize
            }
            Encoding::Raw => 64,
        }
    }
}

/// A compressed 64 B block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Compressed {
    /// The encoding used.
    pub encoding: Encoding,
    /// Base value (unused for `Zeros`/`Raw`).
    pub base: u64,
    /// Per-word flag: delta is relative to zero (immediate) instead of base.
    pub zero_base: Vec<bool>,
    /// Narrow deltas (or raw bytes for `Raw`).
    pub payload: Vec<u8>,
}

fn words(block: &[u8], width: u8) -> Vec<u64> {
    block
        .chunks_exact(width as usize)
        .map(|c| {
            let mut v = 0u64;
            for (i, &b) in c.iter().enumerate() {
                v |= (b as u64) << (8 * i);
            }
            v
        })
        .collect()
}

fn delta_fits(a: u64, b: u64, width: u8, delta: u8) -> bool {
    let bits = width as u32 * 8;
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1 << bits) - 1
    };
    let d = a.wrapping_sub(b) & mask;
    // Interpret as signed `bits`-wide, check it fits in `delta` bytes signed.
    let shift = 64 - bits;
    let sd = ((d << shift) as i64) >> shift;
    let db = delta as u32 * 8;
    sd >= -(1i64 << (db - 1)) && sd < (1i64 << (db - 1))
}

fn try_base_delta(block: &[u8], base_w: u8, delta_w: u8) -> Option<Compressed> {
    let ws = words(block, base_w);
    // First non-zero word is the base (zero words use the implicit base).
    let base = *ws.iter().find(|&&w| w != 0)?;
    let mut zero_base = Vec::with_capacity(ws.len());
    let mut payload = Vec::new();
    for &w in &ws {
        let (rel, is_zero) = if delta_fits(w, 0, base_w, delta_w) {
            (w, true)
        } else if delta_fits(w, base, base_w, delta_w) {
            (w.wrapping_sub(base), false)
        } else {
            return None;
        };
        zero_base.push(is_zero);
        let bits = base_w as u32 * 8;
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1 << bits) - 1
        };
        let d = rel & mask;
        for i in 0..delta_w as usize {
            payload.push((d >> (8 * i)) as u8);
        }
    }
    Some(Compressed {
        encoding: Encoding::BaseDelta {
            base: base_w,
            delta: delta_w,
        },
        base,
        zero_base,
        payload,
    })
}

/// Compresses a 64 B block, choosing the smallest applicable encoding.
///
/// # Panics
///
/// Panics if `block.len() != 64`.
///
/// # Example
///
/// ```
/// use dylect_compression::bdi;
///
/// let block = [0u8; 64];
/// let c = bdi::compress(&block);
/// assert_eq!(c.encoding.compressed_bytes(), 1);
/// ```
pub fn compress(block: &[u8]) -> Compressed {
    assert_eq!(block.len(), 64, "BDI operates on 64 B blocks");
    if block.iter().all(|&b| b == 0) {
        return Compressed {
            encoding: Encoding::Zeros,
            base: 0,
            zero_base: Vec::new(),
            payload: Vec::new(),
        };
    }
    let w8 = words(block, 8);
    if w8.iter().all(|&w| w == w8[0]) {
        return Compressed {
            encoding: Encoding::Repeat,
            base: w8[0],
            zero_base: Vec::new(),
            payload: Vec::new(),
        };
    }
    let mut best: Option<Compressed> = None;
    for (b, d) in [(8, 1), (8, 2), (8, 4), (4, 1), (4, 2), (2, 1)] {
        if let Some(c) = try_base_delta(block, b, d) {
            let better = best
                .as_ref()
                .is_none_or(|x| c.encoding.compressed_bytes() < x.encoding.compressed_bytes());
            if better {
                best = Some(c);
            }
        }
    }
    best.unwrap_or_else(|| Compressed {
        encoding: Encoding::Raw,
        base: 0,
        zero_base: Vec::new(),
        payload: block.to_vec(),
    })
}

/// Reconstructs the original 64 B block.
pub fn decompress(c: &Compressed) -> [u8; 64] {
    let mut out = [0u8; 64];
    match c.encoding {
        Encoding::Zeros => {}
        Encoding::Repeat => {
            for chunk in out.chunks_exact_mut(8) {
                chunk.copy_from_slice(&c.base.to_le_bytes());
            }
        }
        Encoding::Raw => out.copy_from_slice(&c.payload),
        Encoding::BaseDelta { base, delta } => {
            let n = 64 / base as usize;
            let bits = base as u32 * 8;
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1 << bits) - 1
            };
            let dbits = delta as u32 * 8;
            for i in 0..n {
                let mut d = 0u64;
                for j in 0..delta as usize {
                    d |= (c.payload[i * delta as usize + j] as u64) << (8 * j);
                }
                // Sign-extend the delta.
                let shift = 64 - dbits;
                let sd = (((d << shift) as i64) >> shift) as u64;
                let w = if c.zero_base[i] {
                    sd & mask
                } else {
                    c.base.wrapping_add(sd) & mask
                };
                for j in 0..base as usize {
                    out[i * base as usize + j] = (w >> (8 * j)) as u8;
                }
            }
        }
    }
    out
}

/// Returns the BDI-compressed size of a 64 B block in bytes.
pub fn compressed_bytes(block: &[u8]) -> usize {
    compress(block).encoding.compressed_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(block: &[u8; 64]) -> Compressed {
        let c = compress(block);
        assert_eq!(&decompress(&c), block, "roundtrip mismatch for {c:?}");
        c
    }

    #[test]
    fn zeros() {
        let c = roundtrip(&[0u8; 64]);
        assert_eq!(c.encoding, Encoding::Zeros);
        assert_eq!(c.encoding.compressed_bytes(), 1);
    }

    #[test]
    fn repeated_value() {
        let mut block = [0u8; 64];
        for chunk in block.chunks_exact_mut(8) {
            chunk.copy_from_slice(&0xDEAD_BEEF_CAFE_F00Du64.to_le_bytes());
        }
        let c = roundtrip(&block);
        assert_eq!(c.encoding, Encoding::Repeat);
    }

    #[test]
    fn pointers_share_base() {
        // Eight heap pointers within a small region: base8-delta2.
        let mut block = [0u8; 64];
        let base = 0x7FFF_AB00_1000u64;
        for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(base + i as u64 * 24).to_le_bytes());
        }
        let c = roundtrip(&block);
        match c.encoding {
            Encoding::BaseDelta { base: 8, delta } => assert!(delta <= 2),
            e => panic!("expected base8 encoding, got {e:?}"),
        }
        assert!(c.encoding.compressed_bytes() < 32);
    }

    #[test]
    fn small_ints_base4() {
        let mut block = [0u8; 64];
        for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&(1000u32 + i as u32).to_le_bytes());
        }
        let c = roundtrip(&block);
        assert!(c.encoding.compressed_bytes() <= 24);
    }

    #[test]
    fn negative_deltas() {
        let mut block = [0u8; 64];
        let base = 5000u32;
        let offs: [i32; 16] = [
            0, -120, 100, -5, 8, 127, -128, 64, 1, -1, 90, -90, 33, -33, 2, -2,
        ];
        for (chunk, &o) in block.chunks_exact_mut(4).zip(&offs) {
            chunk.copy_from_slice(&((base as i32 + o) as u32).to_le_bytes());
        }
        roundtrip(&block);
    }

    #[test]
    fn mixed_zero_and_base() {
        // Mix of zeros and clustered values exercises the dual-base bit.
        let mut block = [0u8; 64];
        for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
            let v = if i % 2 == 0 {
                0u64
            } else {
                0xAAAA_0000 + i as u64
            };
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        let c = roundtrip(&block);
        assert_ne!(c.encoding, Encoding::Raw);
    }

    #[test]
    fn random_is_raw() {
        let mut block = [0u8; 64];
        let mut x = 0x9E37_79B9u64;
        for b in block.iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }
        let c = roundtrip(&block);
        assert_eq!(c.encoding, Encoding::Raw);
        assert_eq!(c.encoding.compressed_bytes(), 64);
    }

    #[test]
    fn compressed_never_bigger_than_raw() {
        let mut x = 7u64;
        for _ in 0..200 {
            let mut block = [0u8; 64];
            for b in block.iter_mut() {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                // Bias toward compressible content.
                *b = if x.is_multiple_of(3) {
                    0
                } else {
                    (x >> 60) as u8
                };
            }
            let c = roundtrip(&block);
            assert!(c.encoding.compressed_bytes() <= 64);
        }
    }

    #[test]
    #[should_panic(expected = "64 B blocks")]
    fn rejects_wrong_size() {
        let _ = compress(&[0u8; 32]);
    }
}
