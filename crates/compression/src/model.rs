//! Page compressibility modeling.
//!
//! The paper's evaluation compresses at 4 KB page granularity with a
//! DEFLATE-class ASIC. We do not have the benchmarks' memory images, so the
//! simulator assigns each OS page a *stable* compressed size drawn from a
//! workload-specific distribution (see DESIGN.md §5). Stability matters: a
//! page must compress to the same size every time it is demoted, which we
//! get by hashing the page id rather than drawing from a stream.
//!
//! Sizes are quantized to the 16 × 256 B **size classes** the free-space
//! allocator tracks, mirroring TMCC's irregular-size free lists.

use dylect_sim_core::rng::{hash2, hash64};
use dylect_sim_core::PageId;

/// Allocation granularity of compressed pages.
pub const SIZE_CLASS_BYTES: u32 = 256;
/// Number of size classes (256 B … 4096 B).
pub const NUM_SIZE_CLASSES: usize = 16;

/// Rounds a byte size up to its size class, clamped to a full page.
///
/// # Example
///
/// ```
/// use dylect_compression::model::quantize;
/// assert_eq!(quantize(1), 256);
/// assert_eq!(quantize(257), 512);
/// assert_eq!(quantize(5000), 4096);
/// ```
pub fn quantize(bytes: u32) -> u32 {
    bytes
        .max(1)
        .div_ceil(SIZE_CLASS_BYTES)
        .min(NUM_SIZE_CLASSES as u32)
        * SIZE_CLASS_BYTES
}

/// A distribution of per-page compressed sizes.
///
/// The sixteen weights correspond to size classes 256 B, 512 B, …, 4096 B;
/// a page's class is chosen deterministically from `(seed, page)`.
///
/// # Example
///
/// ```
/// use dylect_compression::model::CompressibilityProfile;
/// use dylect_sim_core::PageId;
///
/// let p = CompressibilityProfile::with_mean_ratio("demo", 3.4);
/// let s = p.compressed_bytes(1, PageId::new(42));
/// assert_eq!(s, p.compressed_bytes(1, PageId::new(42))); // stable
/// assert!((p.mean_ratio() - 3.4).abs() < 0.25);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CompressibilityProfile {
    name: String,
    /// Cumulative distribution over the 16 size classes, scaled to 2^32.
    cdf: [u32; NUM_SIZE_CLASSES],
}

impl CompressibilityProfile {
    /// Creates a profile from (unnormalized) per-class weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative/not finite.
    pub fn new(name: &str, weights: [f64; NUM_SIZE_CLASSES]) -> Self {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "invalid weights"
        );
        let mut cdf = [0u32; NUM_SIZE_CLASSES];
        let mut acc = 0.0;
        for (i, w) in weights.iter().enumerate() {
            acc += w / total;
            cdf[i] = (acc.min(1.0) * u32::MAX as f64) as u32;
        }
        cdf[NUM_SIZE_CLASSES - 1] = u32::MAX;
        CompressibilityProfile {
            name: name.to_owned(),
            cdf,
        }
    }

    /// A two-point mixture of highly compressible (512 B) and
    /// incompressible (4096 B) pages calibrated so that compressing *all*
    /// pages yields roughly `ratio` (original bytes / compressed bytes).
    ///
    /// # Panics
    ///
    /// Panics unless `1.0 <= ratio <= 8.0`.
    pub fn with_mean_ratio(name: &str, ratio: f64) -> Self {
        assert!((1.0..=8.0).contains(&ratio), "ratio {ratio} out of range");
        let target_mean = 4096.0 / ratio;
        // p*512 + (1-p)*4096 = target
        let p = ((4096.0 - target_mean) / (4096.0 - 512.0)).clamp(0.0, 1.0);
        let mut weights = [0.0; NUM_SIZE_CLASSES];
        weights[1] = p; // 512 B
        weights[15] = 1.0 - p; // 4096 B
        Self::new(name, weights)
    }

    /// Returns the profile's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stable compressed size (already quantized) of `page` under `seed`.
    pub fn compressed_bytes(&self, seed: u64, page: PageId) -> u32 {
        let h = hash2(seed ^ 0xC0_4B5E, page.index()) as u32;
        let class = self.cdf.iter().position(|&c| h <= c).unwrap_or(15);
        (class as u32 + 1) * SIZE_CLASS_BYTES
    }

    /// Expected compressed size in bytes.
    pub fn mean_compressed_bytes(&self) -> f64 {
        let mut prev = 0u64;
        let mut mean = 0.0;
        for (i, &c) in self.cdf.iter().enumerate() {
            let p = (c as u64 - prev) as f64 / u32::MAX as f64;
            mean += p * ((i as u32 + 1) * SIZE_CLASS_BYTES) as f64;
            prev = c as u64;
        }
        mean
    }

    /// Expected compression ratio if every page were compressed.
    pub fn mean_ratio(&self) -> f64 {
        4096.0 / self.mean_compressed_bytes()
    }

    /// Stable identity digest over the profile's name and CDF.
    ///
    /// The compression model is pure (a page's size is a hash of its
    /// identity, never mutated at run time), so a snapshot carries this
    /// digest instead of model state: restoring against a system built with
    /// a different profile is detected as a mismatch rather than silently
    /// diverging.
    pub fn digest(&self) -> u64 {
        let mut d = hash64(self.name.len() as u64);
        for b in self.name.bytes() {
            d = hash2(d, b as u64);
        }
        for &c in &self.cdf {
            d = hash2(d, c as u64);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_rounds_up() {
        assert_eq!(quantize(256), 256);
        assert_eq!(quantize(300), 512);
        assert_eq!(quantize(4096), 4096);
        assert_eq!(quantize(9999), 4096);
        assert_eq!(quantize(0), 256);
    }

    #[test]
    fn sizes_are_stable_and_quantized() {
        let p = CompressibilityProfile::with_mean_ratio("t", 3.0);
        for i in 0..1000 {
            let s = p.compressed_bytes(9, PageId::new(i));
            assert_eq!(s, p.compressed_bytes(9, PageId::new(i)));
            assert!(s.is_multiple_of(SIZE_CLASS_BYTES) && s <= 4096 && s > 0);
        }
    }

    #[test]
    fn different_seeds_reshuffle() {
        let p = CompressibilityProfile::with_mean_ratio("t", 2.0);
        let same = (0..200)
            .filter(|&i| {
                p.compressed_bytes(1, PageId::new(i)) == p.compressed_bytes(2, PageId::new(i))
            })
            .count();
        assert!(same < 200, "seed has no effect");
    }

    #[test]
    fn empirical_mean_matches_target() {
        for ratio in [1.5, 2.0, 3.4, 5.0] {
            let p = CompressibilityProfile::with_mean_ratio("t", ratio);
            let n = 20_000u64;
            let total: u64 = (0..n)
                .map(|i| p.compressed_bytes(3, PageId::new(i)) as u64)
                .sum();
            let emp_ratio = 4096.0 * n as f64 / total as f64;
            assert!(
                (emp_ratio - ratio).abs() / ratio < 0.1,
                "target {ratio}, got {emp_ratio}"
            );
        }
    }

    #[test]
    fn custom_weights_respected() {
        let mut w = [0.0; NUM_SIZE_CLASSES];
        w[3] = 1.0; // everything 1024 B
        let p = CompressibilityProfile::new("fixed", w);
        for i in 0..100 {
            assert_eq!(p.compressed_bytes(0, PageId::new(i)), 1024);
        }
        assert_eq!(p.mean_compressed_bytes(), 1024.0);
        assert_eq!(p.mean_ratio(), 4.0);
    }

    #[test]
    fn digest_tracks_name_and_distribution() {
        let a = CompressibilityProfile::with_mean_ratio("t", 2.0);
        assert_eq!(
            a.digest(),
            CompressibilityProfile::with_mean_ratio("t", 2.0).digest()
        );
        assert_ne!(
            a.digest(),
            CompressibilityProfile::with_mean_ratio("u", 2.0).digest()
        );
        assert_ne!(
            a.digest(),
            CompressibilityProfile::with_mean_ratio("t", 2.5).digest()
        );
    }

    #[test]
    #[should_panic(expected = "invalid weights")]
    fn rejects_zero_weights() {
        let _ = CompressibilityProfile::new("bad", [0.0; NUM_SIZE_CLASSES]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_silly_ratio() {
        let _ = CompressibilityProfile::with_mean_ratio("bad", 20.0);
    }
}
