//! Compression substrate for the DyLeCT simulator.
//!
//! Hardware memory compression needs three things from a compression
//! engine: *sizes* (how small does each page get, which drives free-space
//! management and compression ratio), *latency* (the DEFLATE ASIC cost on
//! every expansion/compaction), and *correctness* (values must round-trip).
//!
//! - [`model`] provides deterministic per-page compressed sizes via
//!   [`model::CompressibilityProfile`] — the simulator's workhorse, since
//!   the paper's benchmark memory images are not available (see DESIGN.md).
//! - [`latency`] models the 280 ns / 4 KB DEFLATE ASIC the paper assumes.
//! - [`fpc`] and [`bdi`] are bit-exact implementations of the two classic
//!   hardware block compressors, and [`lzss`] is a 4 KB-window dictionary
//!   codec standing in for the DEFLATE ASIC's LZ stage; all three validate
//!   the plumbing on synthetic memory images from [`synth`].
//!
//! # Example
//!
//! ```
//! use dylect_compression::model::CompressibilityProfile;
//! use dylect_compression::latency::decompression_latency;
//! use dylect_sim_core::PageId;
//!
//! let profile = CompressibilityProfile::with_mean_ratio("graph", 3.4);
//! let size = profile.compressed_bytes(0, PageId::new(7));
//! assert!(size <= 4096);
//! assert_eq!(decompression_latency(4096).as_ns(), 280.0);
//! ```

pub mod bdi;
pub mod fpc;
pub mod latency;
pub mod lzss;
pub mod model;
pub mod synth;

pub use model::CompressibilityProfile;
