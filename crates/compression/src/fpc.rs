//! Frequent Pattern Compression (FPC).
//!
//! FPC [Alameldeen & Wood, 2004] compresses 32-bit words with a 3-bit prefix
//! selecting one of eight patterns. It is one of the standard hardware
//! compressors assumed by the memory-compression literature; we implement a
//! bit-exact encoder/decoder so the compression substrate is real, not a
//! size oracle.
//!
//! Patterns (prefix → payload bits):
//!
//! | prefix | meaning                                   | payload |
//! |-------:|-------------------------------------------|--------:|
//! | 000    | run of 1–8 zero words                     | 3       |
//! | 001    | 4-bit sign-extended                       | 4       |
//! | 010    | one-byte sign-extended                    | 8       |
//! | 011    | halfword sign-extended                    | 16      |
//! | 100    | halfword padded with a zero halfword      | 16      |
//! | 101    | two halfwords, each a sign-extended byte  | 16      |
//! | 110    | word of four repeated bytes               | 8       |
//! | 111    | uncompressed word                         | 32      |

/// A growable bit vector used by the encoder.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitVec {
    bits: Vec<u8>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends the low `n` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn push(&mut self, value: u32, n: u32) {
        assert!(n <= 32, "cannot push more than 32 bits");
        for i in (0..n).rev() {
            let bit = (value >> i) & 1;
            let byte = self.len / 8;
            if byte == self.bits.len() {
                self.bits.push(0);
            }
            self.bits[byte] |= (bit as u8) << (7 - self.len % 8);
            self.len += 1;
        }
    }

    /// Reads `n` bits starting at `pos`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `n > 32`.
    pub fn read(&self, pos: usize, n: u32) -> u32 {
        assert!(n <= 32 && pos + n as usize <= self.len, "bit read OOB");
        let mut v = 0u32;
        for i in 0..n as usize {
            let p = pos + i;
            let bit = (self.bits[p / 8] >> (7 - p % 8)) & 1;
            v = (v << 1) | bit as u32;
        }
        v
    }
}

fn fits_signed(word: u32, bits: u32) -> bool {
    let v = word as i32;
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (v as i64) >= min && (v as i64) <= max
}

fn sign_extend(v: u32, bits: u32) -> u32 {
    let shift = 32 - bits;
    (((v << shift) as i32) >> shift) as u32
}

/// Compresses `data` (length must be a multiple of 4) into an FPC bitstream.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of 4.
pub fn compress(data: &[u8]) -> BitVec {
    assert!(data.len().is_multiple_of(4), "FPC operates on 32-bit words");
    let words: Vec<u32> = data
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let mut out = BitVec::new();
    let mut i = 0;
    while i < words.len() {
        let w = words[i];
        if w == 0 {
            let mut run = 1;
            while run < 8 && i + run < words.len() && words[i + run] == 0 {
                run += 1;
            }
            out.push(0b000, 3);
            out.push(run as u32 - 1, 3);
            i += run;
            continue;
        }
        if fits_signed(w, 4) {
            out.push(0b001, 3);
            out.push(w & 0xF, 4);
        } else if fits_signed(w, 8) {
            out.push(0b010, 3);
            out.push(w & 0xFF, 8);
        } else if fits_signed(w, 16) {
            out.push(0b011, 3);
            out.push(w & 0xFFFF, 16);
        } else if w & 0xFFFF == 0 {
            out.push(0b100, 3);
            out.push(w >> 16, 16);
        } else if fits_signed(w & 0xFFFF, 8) && fits_signed(w >> 16, 8) {
            out.push(0b101, 3);
            out.push((w >> 16) & 0xFF, 8);
            out.push(w & 0xFF, 8);
        } else {
            let b = w & 0xFF;
            if w == b | (b << 8) | (b << 16) | (b << 24) {
                out.push(0b110, 3);
                out.push(b, 8);
            } else {
                out.push(0b111, 3);
                out.push(w, 32);
            }
        }
        i += 1;
    }
    out
}

/// Decompresses an FPC bitstream produced by [`compress`] back into
/// `word_count` 32-bit words.
///
/// # Panics
///
/// Panics if the bitstream is truncated or malformed.
pub fn decompress(bits: &BitVec, word_count: usize) -> Vec<u8> {
    let mut words = Vec::with_capacity(word_count);
    let mut pos = 0;
    while words.len() < word_count {
        let prefix = bits.read(pos, 3);
        pos += 3;
        match prefix {
            0b000 => {
                let run = bits.read(pos, 3) as usize + 1;
                pos += 3;
                words.extend(std::iter::repeat_n(0u32, run));
            }
            0b001 => {
                let v = bits.read(pos, 4);
                pos += 4;
                words.push(sign_extend(v, 4));
            }
            0b010 => {
                let v = bits.read(pos, 8);
                pos += 8;
                words.push(sign_extend(v, 8));
            }
            0b011 => {
                let v = bits.read(pos, 16);
                pos += 16;
                words.push(sign_extend(v, 16));
            }
            0b100 => {
                let v = bits.read(pos, 16);
                pos += 16;
                words.push(v << 16);
            }
            0b101 => {
                let hi = bits.read(pos, 8);
                pos += 8;
                let lo = bits.read(pos, 8);
                pos += 8;
                words.push((sign_extend(hi, 8) << 16) | (sign_extend(lo, 8) & 0xFFFF));
            }
            0b110 => {
                let b = bits.read(pos, 8);
                pos += 8;
                words.push(b | (b << 8) | (b << 16) | (b << 24));
            }
            _ => {
                let v = bits.read(pos, 32);
                pos += 32;
                words.push(v);
            }
        }
    }
    assert_eq!(words.len(), word_count, "run overshot requested length");
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// Returns the FPC-compressed size of `data` in bytes (rounded up).
///
/// # Example
///
/// ```
/// use dylect_compression::fpc;
///
/// let zeros = [0u8; 64];
/// assert!(fpc::compressed_bytes(&zeros) < 8);
/// ```
pub fn compressed_bytes(data: &[u8]) -> usize {
    compress(data).len().div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let bits = compress(data);
        let back = decompress(&bits, data.len() / 4);
        assert_eq!(back, data, "roundtrip mismatch");
    }

    #[test]
    fn zeros_compress_hard() {
        let data = [0u8; 64];
        let bits = compress(&data);
        // 16 words = 2 runs of 8 = 2 * 6 bits.
        assert_eq!(bits.len(), 12);
        roundtrip(&data);
    }

    #[test]
    fn small_ints_compress_well() {
        let mut data = Vec::new();
        for i in 0..16i32 {
            data.extend((i - 8).to_le_bytes());
        }
        assert!(compressed_bytes(&data) < 16);
        roundtrip(&data);
    }

    #[test]
    fn random_data_does_not_explode() {
        let mut data = Vec::new();
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..16 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.extend(((x >> 16) as u32).to_le_bytes());
        }
        // Worst case: 3 bits overhead per word.
        assert!(compressed_bytes(&data) <= 64 + 6 + 1);
        roundtrip(&data);
    }

    #[test]
    fn each_pattern_roundtrips() {
        let words: [u32; 8] = [
            0,           // zero
            7,           // 4-bit
            0xFFFF_FFF9, // 4-bit negative (-7)
            100,         // 8-bit
            30_000,      // 16-bit
            0xABCD_0000, // halfword padded
            0x0011_0022, // two sign-extended bytes
            0x5A5A_5A5A, // repeated bytes
        ];
        let data: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        roundtrip(&data);
    }

    #[test]
    fn uncompressible_word_roundtrips() {
        let data = 0xDEAD_BEEFu32.to_le_bytes();
        roundtrip(&data);
        assert_eq!(compressed_bytes(&data), 5); // 3 + 32 bits -> 5 bytes
    }

    #[test]
    fn long_zero_run_splits() {
        let data = [0u8; 4 * 20]; // 20 zero words = runs of 8+8+4
        let bits = compress(&data);
        assert_eq!(bits.len(), 18);
        roundtrip(&data);
    }

    #[test]
    fn bitvec_read_write() {
        let mut bv = BitVec::new();
        bv.push(0b101, 3);
        bv.push(0xFF, 8);
        assert_eq!(bv.len(), 11);
        assert_eq!(bv.read(0, 3), 0b101);
        assert_eq!(bv.read(3, 8), 0xFF);
    }

    #[test]
    #[should_panic(expected = "32-bit words")]
    fn rejects_unaligned_input() {
        let _ = compress(&[1, 2, 3]);
    }
}
