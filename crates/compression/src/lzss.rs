//! A small LZSS codec — the DEFLATE-class reference compressor.
//!
//! The paper's compression engine is a DEFLATE ASIC operating on 4 KB
//! pages. DEFLATE = LZ77 + Huffman; the capacity benefit comes almost
//! entirely from the LZ match-finding stage, so this module implements a
//! byte-oriented LZSS (LZ77 with a stored/match flag bit) with a 4 KB
//! window: enough to characterize page-granularity compressibility of
//! synthetic memory images and to sanity-check the
//! [`crate::model::CompressibilityProfile`] numbers against a real
//! dictionary codec.
//!
//! Format: a flag byte precedes each group of 8 items; bit i set means item
//! i is a match `(offset: u16 LE, len: u8)` with `len >= MIN_MATCH`,
//! cleared means a literal byte.

/// Minimum match length worth encoding (3 bytes = break-even).
pub const MIN_MATCH: usize = 4;
/// Maximum match length (len byte encodes `len - MIN_MATCH`).
pub const MAX_MATCH: usize = 255 + MIN_MATCH;
/// Sliding-window size (one page).
pub const WINDOW: usize = 4096;

/// Compresses `data` with LZSS; the output is self-delimiting given the
/// original length.
///
/// # Example
///
/// ```
/// use dylect_compression::lzss;
///
/// let data = b"abcabcabcabcabcabc".repeat(10);
/// let packed = lzss::compress(&data);
/// assert!(packed.len() < data.len());
/// assert_eq!(lzss::decompress(&packed, data.len()), data);
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    // Chained hash table over 4-byte prefixes for match finding.
    const HASH_SIZE: usize = 1 << 12;
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; data.len()];
    let hash = |d: &[u8]| -> usize {
        let v = u32::from_le_bytes([d[0], d[1], d[2], d[3]]);
        (v.wrapping_mul(2654435761) >> 20) as usize & (HASH_SIZE - 1)
    };

    let mut i = 0;
    let mut flag_pos = 0;
    let mut flag_bit = 8; // force a new flag byte immediately
    let set_flag = |out: &mut Vec<u8>, flag_pos: &mut usize, flag_bit: &mut u32, m: bool| {
        if *flag_bit == 8 {
            *flag_pos = out.len();
            out.push(0);
            *flag_bit = 0;
        }
        if m {
            out[*flag_pos] |= 1 << *flag_bit;
        }
        *flag_bit += 1;
    };

    while i < data.len() {
        let mut best_len = 0;
        let mut best_off = 0;
        if i + MIN_MATCH <= data.len() {
            let h = hash(&data[i..]);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && chain < 32 {
                if i - cand <= WINDOW {
                    let max = (data.len() - i).min(MAX_MATCH);
                    let mut l = 0;
                    while l < max && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - cand;
                    }
                } else {
                    break;
                }
                cand = prev[cand];
                chain += 1;
            }
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            set_flag(&mut out, &mut flag_pos, &mut flag_bit, true);
            out.extend((best_off as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Insert hash entries for the skipped positions so later
            // matches can reference them.
            for k in i + 1..(i + best_len).min(data.len().saturating_sub(MIN_MATCH)) {
                let h = hash(&data[k..]);
                prev[k] = head[h];
                head[h] = k;
            }
            i += best_len;
        } else {
            set_flag(&mut out, &mut flag_pos, &mut flag_bit, false);
            out.push(data[i]);
            i += 1;
        }
    }
    out
}

/// Decompresses an LZSS stream produced by [`compress`] back into
/// `original_len` bytes.
///
/// # Panics
///
/// Panics if the stream is truncated or malformed.
pub fn decompress(packed: &[u8], original_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(original_len);
    let mut i = 0;
    let mut flags = 0u8;
    let mut flag_bit = 8;
    while out.len() < original_len {
        if flag_bit == 8 {
            flags = packed[i];
            i += 1;
            flag_bit = 0;
        }
        let is_match = (flags >> flag_bit) & 1 == 1;
        flag_bit += 1;
        if is_match {
            let off = u16::from_le_bytes([packed[i], packed[i + 1]]) as usize;
            let len = packed[i + 2] as usize + MIN_MATCH;
            i += 3;
            assert!(off > 0 && off <= out.len(), "bad match offset");
            let start = out.len() - off;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            out.push(packed[i]);
            i += 1;
        }
    }
    assert_eq!(out.len(), original_len, "overshoot");
    out
}

/// Returns the LZSS-compressed size of `data` in bytes.
pub fn compressed_bytes(data: &[u8]) -> usize {
    compress(data).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{fill, ContentKind};
    use dylect_sim_core::rng::Rng;

    fn roundtrip(data: &[u8]) -> usize {
        let packed = compress(data);
        assert_eq!(decompress(&packed, data.len()), data);
        packed.len()
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(roundtrip(b""), 0);
        assert!(roundtrip(b"a") <= 3);
        assert!(roundtrip(b"abc") <= 5);
    }

    #[test]
    fn repetitive_compresses_hard() {
        let data = vec![0u8; 4096];
        let n = roundtrip(&data);
        assert!(n < 100, "zero page compressed to {n}");
    }

    #[test]
    fn periodic_patterns() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 24) as u8).collect();
        let n = roundtrip(&data);
        assert!(n < 1024, "periodic page compressed to {n}");
    }

    #[test]
    fn random_does_not_explode() {
        let mut rng = Rng::new(3);
        let data: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        let n = roundtrip(&data);
        // Worst case overhead: 1 flag byte per 8 literals.
        assert!(n <= 4096 + 4096 / 8 + 8, "random page inflated to {n}");
    }

    #[test]
    fn synthetic_pages_order_like_fpc() {
        let mut page = vec![0u8; 4096];
        let mut rng = Rng::new(9);
        fill(&mut page, ContentKind::SparseZero, &mut rng);
        let sparse = roundtrip(&page);
        fill(&mut page, ContentKind::Random, &mut rng);
        let random = roundtrip(&page);
        assert!(sparse < random / 3, "sparse {sparse} vs random {random}");
    }

    #[test]
    fn long_matches_span_groups() {
        let mut data = Vec::new();
        for _ in 0..8 {
            data.extend_from_slice(b"the quick brown fox jumps over the lazy dog. ");
        }
        roundtrip(&data);
    }

    #[test]
    fn matches_never_reach_before_start() {
        // A stream whose first possible match offset is exactly 1.
        let data = vec![7u8; 64];
        roundtrip(&data);
    }
}
