//! Synthetic page contents for validating the real compressors.
//!
//! These generators produce byte patterns typical of the workload classes
//! the paper evaluates (graph adjacency data, integer-heavy SPEC data,
//! pointer-rich heaps, random/incompressible data) so tests can check that
//! FPC/BDI order them the way real memory images would.

use dylect_sim_core::rng::Rng;

/// The kind of content to synthesize.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ContentKind {
    /// Mostly zero words with sparse small integers (freshly allocated
    /// structures, sparse matrices).
    SparseZero,
    /// Small signed integers (counters, indices, graph degrees).
    SmallInts,
    /// 64-bit pointers clustered around a heap base.
    Pointers,
    /// Uniformly random bytes (encrypted/compressed payloads).
    Random,
}

/// Fills a buffer with synthetic content of the given kind.
///
/// # Example
///
/// ```
/// use dylect_compression::synth::{fill, ContentKind};
/// use dylect_sim_core::rng::Rng;
///
/// let mut buf = [0u8; 64];
/// fill(&mut buf, ContentKind::SmallInts, &mut Rng::new(1));
/// ```
pub fn fill(buf: &mut [u8], kind: ContentKind, rng: &mut Rng) {
    match kind {
        ContentKind::SparseZero => {
            buf.fill(0);
            let words = buf.len() / 4;
            for i in 0..words {
                if rng.chance(0.1) {
                    let v = rng.next_below(100) as u32;
                    buf[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
                }
            }
        }
        ContentKind::SmallInts => {
            for chunk in buf.chunks_exact_mut(4) {
                let v = rng.next_below(60_000) as i32 - 30_000;
                chunk.copy_from_slice(&(v as u32).to_le_bytes());
            }
        }
        ContentKind::Pointers => {
            let base = 0x7F00_0000_0000u64 + rng.next_below(1 << 30);
            for chunk in buf.chunks_exact_mut(8) {
                let p = base + rng.next_below(1 << 15);
                chunk.copy_from_slice(&p.to_le_bytes());
            }
        }
        ContentKind::Random => {
            for chunk in buf.chunks_exact_mut(8) {
                chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bdi, fpc};

    fn page(kind: ContentKind, seed: u64) -> Vec<u8> {
        let mut buf = vec![0u8; 4096];
        fill(&mut buf, kind, &mut Rng::new(seed));
        buf
    }

    #[test]
    fn fpc_orders_content_kinds() {
        let sparse = fpc::compressed_bytes(&page(ContentKind::SparseZero, 1));
        let ints = fpc::compressed_bytes(&page(ContentKind::SmallInts, 1));
        let random = fpc::compressed_bytes(&page(ContentKind::Random, 1));
        assert!(sparse < ints, "sparse {sparse} !< ints {ints}");
        assert!(ints < random, "ints {ints} !< random {random}");
        assert!(sparse < 1024, "sparse pages should compress >4x");
    }

    #[test]
    fn bdi_compresses_pointers() {
        let p = page(ContentKind::Pointers, 3);
        let total: usize = p.chunks_exact(64).map(bdi::compressed_bytes).sum();
        assert!(
            total < 4096 / 2,
            "pointer page should compress >2x: {total}"
        );
    }

    #[test]
    fn bdi_leaves_random_alone() {
        let p = page(ContentKind::Random, 4);
        let total: usize = p.chunks_exact(64).map(bdi::compressed_bytes).sum();
        assert_eq!(total, 4096);
    }

    #[test]
    fn fpc_roundtrips_synthetic_pages() {
        for kind in [
            ContentKind::SparseZero,
            ContentKind::SmallInts,
            ContentKind::Pointers,
            ContentKind::Random,
        ] {
            let p = page(kind, 7);
            let bits = fpc::compress(&p);
            assert_eq!(fpc::decompress(&bits, p.len() / 4), p, "{kind:?}");
        }
    }

    #[test]
    fn bdi_roundtrips_synthetic_blocks() {
        for kind in [
            ContentKind::SparseZero,
            ContentKind::SmallInts,
            ContentKind::Pointers,
            ContentKind::Random,
        ] {
            let p = page(kind, 11);
            for block in p.chunks_exact(64) {
                let c = bdi::compress(block);
                assert_eq!(&bdi::decompress(&c)[..], block, "{kind:?}");
            }
        }
    }
}
