//! Shadow CTE-cache tag arrays and miss classification.
//!
//! Every real CTE-cache operation reaches this module as a
//! [`CteRecord`](dylect_sim_core::probe::CteRecord): the real cache's
//! outcome (hit/miss) plus the scheme's fill policy for that operation. The
//! shadows replay the identical stream against counterfactual geometries —
//! Victima-style shadow structures — without ever feeding anything back
//! into the simulation:
//!
//! - an **infinite-capacity** shadow (a set of every key ever looked up);
//! - a **fully-associative** shadow of the real capacity;
//! - a sweep of {2× size, 4× size, 2× associativity} set-associative
//!   shadows.
//!
//! From the infinite and fully-associative outcomes, every *real* miss is
//! classified into the classic 3C partition, pinned by construction to be
//! exhaustive and exclusive:
//!
//! - **compulsory** — the infinite shadow never saw the key (first
//!   reference);
//! - **conflict** — seen before *and* the same-capacity fully-associative
//!   shadow holds it (only the set restriction lost it);
//! - **capacity** — everything else (even unbounded associativity at the
//!   real capacity would have evicted it).
//!
//! All shadows obey the real scheme's fill policy (`fill_on_miss`): DyLeCT
//! deliberately skips caching unified blocks for ML0 pages, and a
//! counterfactual cache running the same policy must skip them too —
//! otherwise the sweep would answer a different question than "what would
//! a bigger cache have bought *this* scheme". [`CteOp::Touch`] operations
//! (metadata writes) refresh recency where resident but never allocate,
//! matching the real cache's `probe`+`fill` write path.

use std::collections::{BTreeMap, HashMap, HashSet};

use dylect_memctl::controller::CteCacheGeometry;
use dylect_sim_core::probe::{CteBlockKind, CteOp, CteRecord};
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

/// Labels of the counterfactual configurations, in display order.
/// `real` is the actual cache (from the record stream), the rest are
/// shadows.
pub const CONFIG_LABELS: [&str; 6] = [
    "real",
    "full_assoc",
    "x2_size",
    "x4_size",
    "x2_assoc",
    "infinite",
];

const KINDS: usize = CteBlockKind::ALL.len();

/// A fully-associative LRU tag array, stamp-ordered so lookups cost
/// `O(log capacity)` instead of a linear victim scan.
#[derive(Clone, Debug)]
struct FullAssocShadow {
    capacity: usize,
    stamp_of: HashMap<u64, u64>,
    by_stamp: BTreeMap<u64, u64>,
    clock: u64,
}

impl FullAssocShadow {
    fn new(capacity: usize) -> Self {
        FullAssocShadow {
            capacity: capacity.max(1),
            stamp_of: HashMap::new(),
            by_stamp: BTreeMap::new(),
            clock: 0,
        }
    }

    fn refresh(&mut self, key: u64) -> bool {
        self.clock += 1;
        match self.stamp_of.get(&key).copied() {
            Some(old) => {
                self.by_stamp.remove(&old);
                self.by_stamp.insert(self.clock, key);
                self.stamp_of.insert(key, self.clock);
                true
            }
            None => false,
        }
    }

    /// One lookup: returns the pre-update hit outcome, then applies the
    /// recency update / policy-gated fill.
    fn lookup(&mut self, key: u64, fill_on_miss: bool) -> bool {
        if self.refresh(key) {
            return true;
        }
        if fill_on_miss {
            if self.stamp_of.len() >= self.capacity {
                let (&stamp, &victim) = self.by_stamp.iter().next().expect("non-empty at capacity");
                self.by_stamp.remove(&stamp);
                self.stamp_of.remove(&victim);
            }
            self.stamp_of.insert(key, self.clock);
            self.by_stamp.insert(self.clock, key);
        }
        false
    }
}

/// A set-associative LRU tag array (tags + stamps only).
#[derive(Clone, Debug)]
struct SetAssocShadow {
    /// Per set: up to `ways` resident `(key, stamp)` pairs.
    sets: Vec<Vec<(u64, u64)>>,
    ways: usize,
    clock: u64,
}

impl SetAssocShadow {
    fn new(capacity_bytes: u64, ways: u32, block_bytes: u64) -> Self {
        let lines = (capacity_bytes / block_bytes).max(1);
        let ways = (ways as u64).min(lines).max(1) as usize;
        let num_sets = (lines / ways as u64).max(1) as usize;
        SetAssocShadow {
            sets: vec![Vec::new(); num_sets],
            ways,
            clock: 0,
        }
    }

    fn set_of(&self, key: u64) -> usize {
        (key % self.sets.len() as u64) as usize
    }

    fn refresh(&mut self, key: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(key);
        match self.sets[set].iter_mut().find(|(k, _)| *k == key) {
            Some(line) => {
                line.1 = clock;
                true
            }
            None => false,
        }
    }

    fn lookup(&mut self, key: u64, fill_on_miss: bool) -> bool {
        if self.refresh(key) {
            return true;
        }
        if fill_on_miss {
            let clock = self.clock;
            let ways = self.ways;
            let set = self.set_of(key);
            let lines = &mut self.sets[set];
            if lines.len() >= ways {
                let victim = lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(i, _)| i)
                    .expect("full set is non-empty");
                lines.swap_remove(victim);
            }
            lines.push((key, clock));
        }
        false
    }
}

/// Hit/lookup tally of one configuration.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ConfigTally {
    /// Lookups that hit this configuration.
    pub hits: u64,
    /// Lookups replayed against this configuration.
    pub lookups: u64,
}

impl ConfigTally {
    /// Hit rate (0 if no lookups).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Per-block-kind miss classification of the real cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MissClasses {
    /// Real-cache lookups that hit.
    pub real_hits: u64,
    /// Real-cache lookups that missed (partition denominator).
    pub real_misses: u64,
    /// First-ever reference to the key.
    pub compulsory: u64,
    /// Would have missed even fully-associatively at the real capacity.
    pub capacity: u64,
    /// Held by the fully-associative shadow: the set restriction lost it.
    pub conflict: u64,
}

impl MissClasses {
    fn merge(&mut self, o: &MissClasses) {
        self.real_hits += o.real_hits;
        self.real_misses += o.real_misses;
        self.compulsory += o.compulsory;
        self.capacity += o.capacity;
        self.conflict += o.conflict;
    }
}

/// One shadowed configuration's descriptor + tally (for the sweep table).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ConfigRow {
    /// Stable label from [`CONFIG_LABELS`].
    pub label: &'static str,
    /// Capacity in bytes (`u64::MAX` for the infinite shadow).
    pub capacity_bytes: u64,
    /// Associativity (0 = fully associative / unbounded).
    pub ways: u32,
    /// Hit/lookup tally.
    pub tally: ConfigTally,
}

/// The shadow tag arrays of one memory controller's CTE cache.
#[derive(Clone, Debug)]
pub struct McShadow {
    geometry: CteCacheGeometry,
    /// Every key ever looked up (compulsory-miss oracle).
    seen: HashSet<u64>,
    full_assoc: FullAssocShadow,
    sweep: [SetAssocShadow; 3],
    /// Tallies indexed like [`CONFIG_LABELS`].
    tallies: [ConfigTally; CONFIG_LABELS.len()],
    classes: [MissClasses; KINDS],
    touches: u64,
}

/// Indices into `tallies`, matching [`CONFIG_LABELS`].
const REAL: usize = 0;
const FULL_ASSOC: usize = 1;
const X2_SIZE: usize = 2;
const X4_SIZE: usize = 3;
const X2_ASSOC: usize = 4;
const INFINITE: usize = 5;

impl McShadow {
    /// Builds the shadow set for one real CTE-cache geometry.
    pub fn new(geometry: CteCacheGeometry) -> Self {
        let g = geometry;
        let lines = (g.capacity_bytes / g.block_bytes).max(1) as usize;
        McShadow {
            geometry,
            seen: HashSet::new(),
            full_assoc: FullAssocShadow::new(lines),
            sweep: [
                SetAssocShadow::new(2 * g.capacity_bytes, g.ways, g.block_bytes),
                SetAssocShadow::new(4 * g.capacity_bytes, g.ways, g.block_bytes),
                SetAssocShadow::new(g.capacity_bytes, 2 * g.ways, g.block_bytes),
            ],
            tallies: [ConfigTally::default(); CONFIG_LABELS.len()],
            classes: [MissClasses::default(); KINDS],
            touches: 0,
        }
    }

    /// The real geometry these shadows counterfact.
    pub fn geometry(&self) -> CteCacheGeometry {
        self.geometry
    }

    /// Replays one probe record against every shadow and classifies the
    /// real outcome.
    pub fn record(&mut self, rec: &CteRecord) {
        match rec.op {
            CteOp::Touch => {
                // Writes refresh recency where resident but never allocate
                // (the real path is `probe` + dirty `fill`-if-present).
                self.full_assoc.refresh(rec.key);
                for arr in &mut self.sweep {
                    arr.refresh(rec.key);
                }
                self.touches += 1;
            }
            CteOp::Lookup { hit, fill_on_miss } => {
                let first_ref = self.seen.insert(rec.key);
                let fa_hit = self.full_assoc.lookup(rec.key, fill_on_miss);
                let sweep_hits = [
                    self.sweep[0].lookup(rec.key, fill_on_miss),
                    self.sweep[1].lookup(rec.key, fill_on_miss),
                    self.sweep[2].lookup(rec.key, fill_on_miss),
                ];
                for (i, h) in [
                    (REAL, hit),
                    (FULL_ASSOC, fa_hit),
                    (X2_SIZE, sweep_hits[0]),
                    (X4_SIZE, sweep_hits[1]),
                    (X2_ASSOC, sweep_hits[2]),
                    (INFINITE, !first_ref),
                ] {
                    self.tallies[i].lookups += 1;
                    self.tallies[i].hits += h as u64;
                }
                let c = &mut self.classes[rec.kind.index()];
                if hit {
                    c.real_hits += 1;
                } else {
                    c.real_misses += 1;
                    // The 3C partition: exhaustive and exclusive by
                    // construction — exactly one arm runs per real miss.
                    if first_ref {
                        c.compulsory += 1;
                    } else if fa_hit {
                        c.conflict += 1;
                    } else {
                        c.capacity += 1;
                    }
                }
            }
        }
    }

    /// Miss classification for one block kind.
    pub fn classes(&self, kind: CteBlockKind) -> MissClasses {
        self.classes[kind.index()]
    }

    /// Miss classification summed over both block kinds.
    pub fn classes_total(&self) -> MissClasses {
        let mut t = MissClasses::default();
        for c in &self.classes {
            t.merge(c);
        }
        t
    }

    /// Touch (metadata write) operations replayed.
    pub fn touches(&self) -> u64 {
        self.touches
    }

    /// All configurations with their geometry and tallies, in
    /// [`CONFIG_LABELS`] order.
    pub fn config_rows(&self) -> Vec<ConfigRow> {
        let g = self.geometry;
        let geoms = [
            (g.capacity_bytes, g.ways),
            (g.capacity_bytes, 0),
            (2 * g.capacity_bytes, g.ways),
            (4 * g.capacity_bytes, g.ways),
            (g.capacity_bytes, 2 * g.ways),
            (u64::MAX, 0),
        ];
        CONFIG_LABELS
            .iter()
            .zip(geoms)
            .zip(self.tallies)
            .map(|((&label, (capacity_bytes, ways)), tally)| ConfigRow {
                label,
                capacity_bytes,
                ways,
                tally,
            })
            .collect()
    }
}

/// The per-MC shadow sets of one run. MCs without a CTE cache (the
/// no-compression baseline) stay `None` and their records — there are none
/// — would be ignored.
#[derive(Clone, Debug, Default)]
pub struct ShadowState {
    per_mc: Vec<Option<McShadow>>,
}

impl ShadowState {
    /// Installs (or clears) the shadow set of one MC.
    pub fn configure_mc(&mut self, mc: usize, geometry: Option<CteCacheGeometry>) {
        if self.per_mc.len() <= mc {
            self.per_mc.resize_with(mc + 1, || None);
        }
        self.per_mc[mc] = geometry.map(McShadow::new);
    }

    /// Whether any MC has shadows installed.
    pub fn is_active(&self) -> bool {
        self.per_mc.iter().any(|s| s.is_some())
    }

    /// Routes one record to its MC's shadows.
    pub fn record(&mut self, mc: u32, rec: &CteRecord) {
        if let Some(Some(s)) = self.per_mc.get_mut(mc as usize) {
            s.record(rec);
        }
    }

    /// Per-MC shadows, for detailed inspection.
    pub fn mcs(&self) -> impl Iterator<Item = (usize, &McShadow)> {
        self.per_mc
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (i, s)))
    }

    /// Miss classification for one kind, summed across MCs.
    pub fn classes(&self, kind: CteBlockKind) -> MissClasses {
        let mut t = MissClasses::default();
        for (_, s) in self.mcs() {
            t.merge(&s.classes(kind));
        }
        t
    }

    /// Miss classification over all kinds and MCs.
    pub fn classes_total(&self) -> MissClasses {
        let mut t = MissClasses::default();
        for (_, s) in self.mcs() {
            t.merge(&s.classes_total());
        }
        t
    }

    /// Configuration rows summed across MCs (geometries are per-run
    /// uniform, so labels merge 1:1).
    pub fn config_rows(&self) -> Vec<ConfigRow> {
        let mut rows: Vec<ConfigRow> = Vec::new();
        for (_, s) in self.mcs() {
            for r in s.config_rows() {
                match rows.iter_mut().find(|x| x.label == r.label) {
                    Some(x) => {
                        x.tally.hits += r.tally.hits;
                        x.tally.lookups += r.tally.lookups;
                    }
                    None => rows.push(r),
                }
            }
        }
        rows
    }

    /// Touches replayed across all MCs.
    pub fn touches(&self) -> u64 {
        self.mcs().map(|(_, s)| s.touches()).sum()
    }
}

/// The LRU order is the only state: `by_stamp` is written in `BTreeMap`
/// (stamp) order and the `stamp_of` inverse is rebuilt on restore.
impl Snapshot for FullAssocShadow {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.clock);
        w.seq(self.by_stamp.len());
        for (&stamp, &key) in &self.by_stamp {
            w.u64(stamp);
            w.u64(key);
        }
    }
}

impl Restore for FullAssocShadow {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.clock = r.u64()?;
        let n = r.seq(16)?;
        if n > self.capacity {
            return Err(SnapError::Corrupt("full-assoc shadow over capacity"));
        }
        self.by_stamp.clear();
        self.stamp_of.clear();
        for _ in 0..n {
            let stamp = r.u64()?;
            let key = r.u64()?;
            if self.by_stamp.insert(stamp, key).is_some() {
                return Err(SnapError::Corrupt("duplicate shadow stamp"));
            }
            if self.stamp_of.insert(key, stamp).is_some() {
                return Err(SnapError::Corrupt("duplicate shadow key"));
            }
        }
        Ok(())
    }
}

/// Set contents are written verbatim (`swap_remove` makes the in-set order
/// an artifact of history, and re-snapshot must be byte-identical).
impl Snapshot for SetAssocShadow {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.clock);
        w.seq(self.sets.len());
        for set in &self.sets {
            w.seq(set.len());
            for &(key, stamp) in set {
                w.u64(key);
                w.u64(stamp);
            }
        }
    }
}

impl Restore for SetAssocShadow {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.clock = r.u64()?;
        r.fixed_seq(self.sets.len(), "shadow set count")?;
        for set in &mut self.sets {
            let n = r.seq(16)?;
            if n > self.ways {
                return Err(SnapError::Corrupt("shadow set holds more than its ways"));
            }
            set.clear();
            for _ in 0..n {
                let key = r.u64()?;
                let stamp = r.u64()?;
                set.push((key, stamp));
            }
        }
        Ok(())
    }
}

impl Snapshot for ConfigTally {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.hits);
        w.u64(self.lookups);
    }
}

impl Restore for ConfigTally {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.hits = r.u64()?;
        self.lookups = r.u64()?;
        Ok(())
    }
}

impl Snapshot for MissClasses {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.real_hits);
        w.u64(self.real_misses);
        w.u64(self.compulsory);
        w.u64(self.capacity);
        w.u64(self.conflict);
    }
}

impl Restore for MissClasses {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.real_hits = r.u64()?;
        self.real_misses = r.u64()?;
        self.compulsory = r.u64()?;
        self.capacity = r.u64()?;
        self.conflict = r.u64()?;
        Ok(())
    }
}

/// The geometry is construction state and doubles as the identity guard;
/// the compulsory-miss oracle (`seen`) is written in sorted key order.
impl Snapshot for McShadow {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        let g = self.geometry;
        w.u64(g.capacity_bytes);
        w.u32(g.ways);
        w.u64(g.block_bytes);
        w.u64(g.group_size);
        w.u64(g.num_groups);
        let mut seen: Vec<u64> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        w.seq(seen.len());
        for k in seen {
            w.u64(k);
        }
        self.full_assoc.write_snapshot(w);
        for arr in &self.sweep {
            arr.write_snapshot(w);
        }
        for t in &self.tallies {
            t.write_snapshot(w);
        }
        for c in &self.classes {
            c.write_snapshot(w);
        }
        w.u64(self.touches);
    }
}

impl Restore for McShadow {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let g = self.geometry;
        let same = r.u64()? == g.capacity_bytes
            && r.u32()? == g.ways
            && r.u64()? == g.block_bytes
            && r.u64()? == g.group_size
            && r.u64()? == g.num_groups;
        if !same {
            return Err(SnapError::Mismatch("shadow CTE geometry"));
        }
        let n = r.seq(8)?;
        self.seen.clear();
        for _ in 0..n {
            if !self.seen.insert(r.u64()?) {
                return Err(SnapError::Corrupt("duplicate shadow oracle key"));
            }
        }
        self.full_assoc.restore_snapshot(r)?;
        for arr in &mut self.sweep {
            arr.restore_snapshot(r)?;
        }
        for t in &mut self.tallies {
            t.restore_snapshot(r)?;
        }
        for c in &mut self.classes {
            c.restore_snapshot(r)?;
        }
        self.touches = r.u64()?;
        Ok(())
    }
}

/// Restores in place: the restoring side must have configured the same MCs
/// with the same geometries (checked per MC).
impl Snapshot for ShadowState {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.seq(self.per_mc.len());
        for s in &self.per_mc {
            match s {
                Some(s) => {
                    w.bool(true);
                    s.write_snapshot(w);
                }
                None => w.bool(false),
            }
        }
    }
}

impl Restore for ShadowState {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.fixed_seq(self.per_mc.len(), "shadowed MC count")?;
        for s in &mut self.per_mc {
            if r.bool()? != s.is_some() {
                return Err(SnapError::Mismatch("shadowed MC set"));
            }
            if let Some(s) = s {
                s.restore_snapshot(r)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(capacity_bytes: u64, ways: u32) -> CteCacheGeometry {
        CteCacheGeometry {
            capacity_bytes,
            ways,
            block_bytes: 64,
            group_size: 3,
            num_groups: 100,
        }
    }

    fn lookup(kind: CteBlockKind, key: u64, hit: bool, fill: bool) -> CteRecord {
        CteRecord {
            kind,
            op: CteOp::Lookup {
                hit,
                fill_on_miss: fill,
            },
            key,
        }
    }

    #[test]
    fn first_reference_is_compulsory() {
        let mut s = McShadow::new(geom(4096, 2));
        s.record(&lookup(CteBlockKind::Unified, 1, false, true));
        let c = s.classes(CteBlockKind::Unified);
        assert_eq!(c.compulsory, 1);
        assert_eq!(c.capacity + c.conflict, 0);
    }

    #[test]
    fn conflict_requires_full_assoc_hit() {
        // 2 sets x 2 ways = 4 lines. Keys 0,2,4,6 all map to set 0; a
        // fully-associative cache of 4 lines holds all of them.
        let mut s = McShadow::new(geom(256, 2));
        for k in [0u64, 2, 4] {
            s.record(&lookup(CteBlockKind::Unified, k, false, true));
        }
        // Key 0 was evicted from set 0 of the real cache (2 ways), but the
        // 4-line FA shadow still holds it: conflict.
        s.record(&lookup(CteBlockKind::Unified, 0, false, true));
        let c = s.classes(CteBlockKind::Unified);
        assert_eq!(c.compulsory, 3);
        assert_eq!(c.conflict, 1);
        assert_eq!(c.capacity, 0);
    }

    #[test]
    fn capacity_miss_when_even_full_assoc_lost_it() {
        // 4 lines; stream 5 distinct keys then revisit the first.
        let mut s = McShadow::new(geom(256, 2));
        for k in 0..5u64 {
            s.record(&lookup(CteBlockKind::Pregathered, k, false, true));
        }
        s.record(&lookup(CteBlockKind::Pregathered, 0, false, true));
        let c = s.classes(CteBlockKind::Pregathered);
        assert_eq!(c.compulsory, 5);
        assert_eq!(c.capacity, 1);
        assert_eq!(c.conflict, 0);
    }

    #[test]
    fn classes_partition_real_misses() {
        // Pseudo-random stream: the three classes must sum to the real
        // misses exactly, whatever the mix.
        let mut s = McShadow::new(geom(512, 2));
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 37;
            let hit = x & 2 != 0;
            let fill = x & 4 != 0;
            let kind = if x & 8 != 0 {
                CteBlockKind::Pregathered
            } else {
                CteBlockKind::Unified
            };
            if i % 11 == 0 {
                s.record(&CteRecord {
                    kind,
                    op: CteOp::Touch,
                    key,
                });
            } else {
                s.record(&lookup(kind, key, hit, fill));
            }
        }
        for kind in CteBlockKind::ALL {
            let c = s.classes(kind);
            assert_eq!(
                c.compulsory + c.capacity + c.conflict,
                c.real_misses,
                "{}",
                kind.name()
            );
        }
        let t = s.classes_total();
        assert_eq!(t.compulsory + t.capacity + t.conflict, t.real_misses);
        assert_eq!(
            t.real_hits + t.real_misses,
            s.config_rows()[0].tally.lookups
        );
    }

    #[test]
    fn policy_gated_fill_keeps_shadows_honest() {
        // A never-filled key misses the shadows forever; since the
        // infinite oracle has seen it, those misses classify as capacity.
        let mut s = McShadow::new(geom(4096, 2));
        s.record(&lookup(CteBlockKind::Unified, 9, false, false));
        s.record(&lookup(CteBlockKind::Unified, 9, false, false));
        let c = s.classes(CteBlockKind::Unified);
        assert_eq!(c.compulsory, 1);
        assert_eq!(c.capacity, 1);
        let rows = s.config_rows();
        assert_eq!(rows[FULL_ASSOC].tally.hits, 0);
        assert_eq!(rows[INFINITE].tally.hits, 1);
    }

    #[test]
    fn touch_refreshes_recency_but_never_allocates() {
        // 1 set x 2 ways. Fill 0 and 1; touch 0 (making 1 the LRU); fill 2
        // must evict 1, so 0 still hits.
        let mut s = McShadow::new(geom(128, 2));
        s.record(&lookup(CteBlockKind::Unified, 0, false, true));
        s.record(&lookup(CteBlockKind::Unified, 1, false, true));
        s.record(&CteRecord {
            kind: CteBlockKind::Unified,
            op: CteOp::Touch,
            key: 0,
        });
        s.record(&lookup(CteBlockKind::Unified, 2, false, true));
        let rows_before = s.config_rows()[X2_ASSOC].tally;
        s.record(&lookup(CteBlockKind::Unified, 0, false, true));
        let rows_after = s.config_rows()[X2_ASSOC].tally;
        assert_eq!(rows_after.hits, rows_before.hits + 1, "0 was kept by LRU");
        // A touch to an absent key allocates nothing anywhere.
        s.record(&CteRecord {
            kind: CteBlockKind::Unified,
            op: CteOp::Touch,
            key: 999,
        });
        s.record(&lookup(CteBlockKind::Unified, 999, false, false));
        assert_eq!(s.classes_total().compulsory, 4, "999 was a first ref");
        assert_eq!(s.touches(), 2);
    }

    #[test]
    fn bigger_shadows_never_hit_less_than_infinite_allows() {
        let mut s = McShadow::new(geom(256, 2));
        let mut x = 7u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.record(&lookup(CteBlockKind::Unified, (x >> 33) % 29, false, true));
        }
        let rows = s.config_rows();
        let inf = rows[INFINITE].tally.hits;
        for r in &rows[FULL_ASSOC..INFINITE] {
            assert!(
                r.tally.hits <= inf,
                "{} hits {} > infinite {}",
                r.label,
                r.tally.hits,
                inf
            );
        }
        assert!(rows[X4_SIZE].tally.hits >= rows[X2_SIZE].tally.hits);
    }

    #[test]
    fn state_routes_and_aggregates_per_mc() {
        let mut st = ShadowState::default();
        assert!(!st.is_active());
        st.configure_mc(0, Some(geom(4096, 2)));
        st.configure_mc(1, Some(geom(4096, 2)));
        st.configure_mc(2, None);
        assert!(st.is_active());
        st.record(0, &lookup(CteBlockKind::Unified, 1, false, true));
        st.record(1, &lookup(CteBlockKind::Unified, 1, false, true));
        st.record(2, &lookup(CteBlockKind::Unified, 1, false, true)); // ignored
        let t = st.classes_total();
        assert_eq!(t.real_misses, 2);
        assert_eq!(t.compulsory, 2, "per-MC shadows are independent");
        let rows = st.config_rows();
        assert_eq!(rows.len(), CONFIG_LABELS.len());
        assert_eq!(rows[0].tally.lookups, 2);
    }

    #[test]
    fn config_labels_are_stable() {
        // Export formats and `dylect-stats` key on these strings.
        assert_eq!(
            CONFIG_LABELS,
            [
                "real",
                "full_assoc",
                "x2_size",
                "x4_size",
                "x2_assoc",
                "infinite"
            ]
        );
        let s = McShadow::new(geom(4096, 2));
        let labels: Vec<&str> = s.config_rows().iter().map(|r| r.label).collect();
        assert_eq!(labels, CONFIG_LABELS);
    }
}
