//! Observability for the DyLeCT simulator.
//!
//! Two complementary views of a run:
//!
//! - **Time series** ([`Sampler`]): once per *epoch* (a fixed number of
//!   memory operations) the run loop snapshots the cumulative simulator
//!   counters; the sampler differences consecutive snapshots into
//!   epoch-local series (CTE-cache hit rates split by serving block,
//!   ML0/ML1/ML2 occupancy, promotion/demotion/expansion activity, DRAM
//!   row-buffer hit rate and queue depth). Series are bounded
//!   ([`series::TimeSeries`]): adjacent bins pair-merge and the stride
//!   doubles, so memory stays O(capacity) for arbitrarily long runs.
//! - **Event journal** ([`EventJournal`]): discrete MC events (promotion,
//!   demotion, expansion, compaction, displacement) arrive through
//!   `dylect_sim_core::probe::ProbeHandle`s wired into each memory
//!   controller, tagged by controller index.
//!
//! Both are observation-only: enabling telemetry never changes simulated
//! behavior (a property pinned by the workspace determinism test).
//!
//! [`Telemetry::export_to`] writes three files per run — series JSONL,
//! event JSONL, and Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) — consumed by the `dylect-stats` CLI, which can
//! dump, summarize, and diff two runs' exports with configurable
//! tolerances.

pub mod export;
pub mod journal;
pub mod sampler;
pub mod series;

use std::cell::{Ref, RefCell};
use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use dylect_sim_core::probe::ProbeHandle;

pub use journal::{EventJournal, JournalEntry, McProbe};
pub use sampler::{SampleSnapshot, Sampler, SERIES_NAMES};
pub use series::{Bin, TimeSeries};

/// Telemetry sizing knobs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Memory operations per sampling epoch.
    pub epoch_ops: u64,
    /// Maximum bins retained per series.
    pub series_capacity: usize,
    /// Maximum journal entries retained (counts stay exact past this).
    pub journal_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            epoch_ops: 10_000,
            series_capacity: 512,
            journal_capacity: 1 << 16,
        }
    }
}

/// One run's telemetry: the epoch sampler plus the shared event journal.
#[derive(Clone, Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    sampler: Sampler,
    journal: Rc<RefCell<EventJournal>>,
}

impl Telemetry {
    /// Creates empty telemetry with the given sizing.
    pub fn new(cfg: TelemetryConfig) -> Telemetry {
        Telemetry {
            sampler: Sampler::new(cfg.series_capacity),
            journal: Rc::new(RefCell::new(EventJournal::new(cfg.journal_capacity))),
            cfg,
        }
    }

    /// The sizing in use.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Builds the probe to install into memory controller `mc`
    /// (`MemoryScheme::set_probe`); its events land in this telemetry's
    /// journal tagged with `mc`.
    pub fn probe_for_mc(&self, mc: u32) -> ProbeHandle {
        McProbe::handle(self.journal.clone(), mc)
    }

    /// Records one epoch-boundary snapshot.
    pub fn sample(&mut self, snap: SampleSnapshot) {
        self.sampler.sample(snap);
    }

    /// The epoch sampler's series.
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// The shared event journal.
    pub fn journal(&self) -> Ref<'_, EventJournal> {
        self.journal.borrow()
    }

    /// Writes `<stem>.series.jsonl`, `<stem>.events.jsonl`, and
    /// `<stem>.trace.json`; returns the paths written.
    pub fn export_to(&self, stem: &Path) -> io::Result<Vec<PathBuf>> {
        if let Some(dir) = stem.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let with_ext = |ext: &str| -> PathBuf {
            let mut name = stem.file_name().unwrap_or_default().to_os_string();
            name.push(ext);
            stem.with_file_name(name)
        };
        let journal = self.journal.borrow();
        let outputs = [
            (
                with_ext(".series.jsonl"),
                export::series_jsonl(&self.sampler),
            ),
            (with_ext(".events.jsonl"), export::events_jsonl(&journal)),
            (with_ext(".trace.json"), export::chrome_trace(&journal)),
        ];
        let mut paths = Vec::new();
        for (path, text) in outputs {
            std::fs::write(&path, text)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_sim_core::probe::McEvent;
    use dylect_sim_core::Time;

    #[test]
    fn probes_feed_the_shared_journal() {
        let t = Telemetry::new(TelemetryConfig::default());
        let p0 = t.probe_for_mc(0);
        let p1 = t.probe_for_mc(1);
        p0.emit(Time::ZERO, McEvent::Promotion, 5);
        p1.emit(Time::ZERO, McEvent::Expansion, 6);
        assert_eq!(t.journal().total(), 2);
        assert_eq!(t.journal().entries()[1].mc, 1);
    }

    #[test]
    fn export_writes_three_files() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.probe_for_mc(0)
            .emit(Time::from_ns(5.0), McEvent::Compaction, 9);
        t.sample(SampleSnapshot {
            instructions: 1000,
            ..SampleSnapshot::default()
        });
        let dir = std::env::temp_dir().join(format!("dylect-telemetry-{}", std::process::id()));
        let paths = t.export_to(&dir.join("run")).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert!(p.exists(), "{}", p.display());
        }
        let series = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(series.contains("\"series\":\"cte_hit_rate\""));
        let trace = std::fs::read_to_string(&paths[2]).unwrap();
        assert!(trace.contains("\"name\":\"compaction\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
