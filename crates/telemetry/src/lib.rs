//! Observability for the DyLeCT simulator.
//!
//! Two complementary views of a run:
//!
//! - **Time series** ([`Sampler`]): once per *epoch* (a fixed number of
//!   memory operations) the run loop snapshots the cumulative simulator
//!   counters; the sampler differences consecutive snapshots into
//!   epoch-local series (CTE-cache hit rates split by serving block,
//!   ML0/ML1/ML2 occupancy, promotion/demotion/expansion activity, DRAM
//!   row-buffer hit rate and queue depth). Series are bounded
//!   ([`series::TimeSeries`]): adjacent bins pair-merge and the stride
//!   doubles, so memory stays O(capacity) for arbitrarily long runs.
//! - **Event journal** ([`EventJournal`]): discrete MC events (promotion,
//!   demotion, expansion, compaction, displacement) arrive through
//!   `dylect_sim_core::probe::ProbeHandle`s wired into each memory
//!   controller, tagged by controller index.
//!
//! - **Latency attribution** ([`Attribution`]): every retired access's
//!   cycles are accounted into named critical-path components and its
//!   end-to-end latency recorded into log-bucketed histograms keyed by
//!   (scope, request class, memory level, translation path). Sampled
//!   request spans (1-in-N, `DYLECT_SPAN_SAMPLE`) ride along for the
//!   Chrome-trace timeline.
//!
//! - **Shadow CTE caches + miss classification** ([`shadow::ShadowState`],
//!   `DYLECT_SHADOW=1`): counterfactual tag arrays (infinite,
//!   fully-associative, and a {2× size, 4× size, 2× assoc} sweep) replay
//!   the real CTE-cache's probe stream, and every real miss is classified
//!   compulsory/capacity/conflict — the partition is exact by
//!   construction.
//! - **Per-page provenance** ([`provenance::Provenance`], same toggle):
//!   a state machine per touched page tracks ML0/ML1/ML2 transitions with
//!   dwell in retired ops, round-trip/ping-pong detection, and per-group
//!   peak ML0 residency.
//!
//! All are observation-only: enabling telemetry never changes simulated
//! behavior (a property pinned by the workspace determinism test).
//!
//! [`Telemetry::export_to`] writes four files per run — series JSONL,
//! event JSONL, latency JSONL, and Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`) — plus a fifth, shadow JSONL, when
//! shadow probing is on; all consumed by the `dylect-stats` CLI, which can
//! dump, summarize, and diff two runs' exports with configurable
//! tolerances.

pub mod attribution;
pub mod diff;
pub mod export;
pub mod journal;
pub mod provenance;
pub mod sampler;
pub mod series;
pub mod shadow;

use std::cell::{Cell, Ref, RefCell};
use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use dylect_memctl::controller::CteCacheGeometry;
use dylect_sim_core::probe::ProbeHandle;
use dylect_sim_core::prof;
use dylect_sim_core::snap::{Restore as _, SnapError, SnapReader, SnapWriter, Snapshot as _};

pub use attribution::Attribution;
pub use journal::{EventJournal, JournalEntry, McProbe};
pub use provenance::{LevelRow, PingPongRow, Provenance};
pub use sampler::{SampleSnapshot, Sampler, SERIES_NAMES};
pub use series::{Bin, TimeSeries};
pub use shadow::{ConfigRow, McShadow, MissClasses, ShadowState, CONFIG_LABELS};

/// Telemetry sizing knobs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Memory operations per sampling epoch.
    pub epoch_ops: u64,
    /// Maximum bins retained per series.
    pub series_capacity: usize,
    /// Maximum journal entries retained (counts stay exact past this).
    pub journal_capacity: usize,
    /// Request-span sampling period: every `span_sample`-th demand miss
    /// emits begin/end trace spans. 0 disables span sampling.
    pub span_sample: u64,
    /// Maximum sampled spans retained (counts stay exact past this).
    pub span_capacity: usize,
    /// Enables the shadow CTE tag arrays, miss classification, and the
    /// per-page provenance tracker.
    pub shadow: bool,
    /// Round trips (ML0 → out → ML0) that must complete inside
    /// [`pingpong_window_ops`](Self::pingpong_window_ops) for a page to
    /// count as ping-ponging.
    pub pingpong_trips: u64,
    /// Ping-pong detection window, in retired ops.
    pub pingpong_window_ops: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            epoch_ops: 10_000,
            series_capacity: 512,
            journal_capacity: 1 << 16,
            span_sample: 0,
            span_capacity: 1 << 16,
            shadow: false,
            pingpong_trips: 4,
            pingpong_window_ops: 1_000_000,
        }
    }
}

impl TelemetryConfig {
    /// Parses a `DYLECT_SPAN_SAMPLE` value. Unset or empty means disabled
    /// (`Ok(0)`); anything present must be a positive integer — an
    /// explicit `0` is rejected (unset the variable to disable) and
    /// garbage is an error rather than a silent default.
    pub fn parse_span_sample(raw: Option<&str>) -> Result<u64, String> {
        let Some(raw) = raw else { return Ok(0) };
        let raw = raw.trim();
        if raw.is_empty() {
            return Ok(0);
        }
        match raw.parse::<u64>() {
            Ok(0) => Err("DYLECT_SPAN_SAMPLE must be a positive sampling period; \
                 unset it to disable span sampling"
                .to_string()),
            Ok(n) => Ok(n),
            Err(_) => Err(format!(
                "DYLECT_SPAN_SAMPLE must be a positive integer, got {raw:?}"
            )),
        }
    }

    /// The span-sampling period from the `DYLECT_SPAN_SAMPLE` environment
    /// variable (see [`parse_span_sample`](Self::parse_span_sample)).
    pub fn span_sample_from_env() -> Result<u64, String> {
        Self::parse_span_sample(std::env::var("DYLECT_SPAN_SAMPLE").ok().as_deref())
    }

    /// Parses a `DYLECT_SHADOW` value: `1`/`true` enable, `0`/`false`
    /// disable, unset/empty disable; anything else is an error.
    pub fn parse_shadow(raw: Option<&str>) -> Result<bool, String> {
        let Some(raw) = raw else { return Ok(false) };
        match raw.trim() {
            "" | "0" | "false" => Ok(false),
            "1" | "true" => Ok(true),
            other => Err(format!(
                "DYLECT_SHADOW must be one of 1/true/0/false, got {other:?}"
            )),
        }
    }

    /// The shadow-probe toggle from the `DYLECT_SHADOW` environment
    /// variable (see [`parse_shadow`](Self::parse_shadow)).
    pub fn shadow_from_env() -> Result<bool, String> {
        Self::parse_shadow(std::env::var("DYLECT_SHADOW").ok().as_deref())
    }
}

/// One run's telemetry: the epoch sampler, the shared event journal, the
/// latency-attribution aggregator, and (when enabled) the shadow CTE
/// arrays and per-page provenance tracker.
#[derive(Clone, Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    sampler: Sampler,
    journal: Rc<RefCell<EventJournal>>,
    attribution: Rc<RefCell<Attribution>>,
    shadow: Rc<RefCell<ShadowState>>,
    provenance: Rc<RefCell<Provenance>>,
    /// Retired-ops clock shared with the provenance tracker; the simulator
    /// advances it via [`ops_clock`](Self::ops_clock).
    ops_clock: Rc<Cell<u64>>,
}

impl Telemetry {
    /// Creates empty telemetry with the given sizing.
    pub fn new(cfg: TelemetryConfig) -> Telemetry {
        let ops_clock = Rc::new(Cell::new(0u64));
        Telemetry {
            sampler: Sampler::new(cfg.series_capacity),
            journal: Rc::new(RefCell::new(EventJournal::new(cfg.journal_capacity))),
            attribution: Rc::new(RefCell::new(Attribution::new(cfg.span_capacity))),
            shadow: Rc::new(RefCell::new(ShadowState::default())),
            provenance: Rc::new(RefCell::new(Provenance::new(
                ops_clock.clone(),
                cfg.pingpong_trips,
                cfg.pingpong_window_ops,
            ))),
            ops_clock,
            cfg,
        }
    }

    /// The sizing in use.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Builds the probe to install into memory controller `mc`
    /// (`MemoryScheme::set_probe`); its events land in this telemetry's
    /// journal tagged with `mc`, and any access/span records it emits land
    /// in the shared attribution aggregator. The same handle serves cores
    /// and the shared memory backend (which emit only access/span records).
    /// With `cfg.shadow` on, the handle also replays CTE records into the
    /// shadow arrays and MC events into the provenance tracker.
    pub fn probe_for_mc(&self, mc: u32) -> ProbeHandle {
        let (shadow, provenance) = if self.cfg.shadow {
            (Some(self.shadow.clone()), Some(self.provenance.clone()))
        } else {
            (None, None)
        };
        McProbe::handle(
            self.journal.clone(),
            self.attribution.clone(),
            shadow,
            provenance,
            mc,
        )
    }

    /// Installs the real CTE-cache geometry of controller `mc` so its
    /// shadow arrays and page-group histogram can be sized to match; a
    /// `None` geometry (schemes without a CTE cache) leaves that MC
    /// unshadowed. No-op unless `cfg.shadow` is set.
    pub fn configure_shadow_for_mc(&self, mc: usize, geometry: Option<CteCacheGeometry>) {
        if self.cfg.shadow {
            self.shadow.borrow_mut().configure_mc(mc, geometry);
            self.provenance.borrow_mut().configure_mc(mc, geometry);
        }
    }

    /// The retired-ops clock the provenance tracker reads; the run loop
    /// bumps it once per retired op when telemetry is enabled.
    pub fn ops_clock(&self) -> Rc<Cell<u64>> {
        self.ops_clock.clone()
    }

    /// Whether shadow probing (and provenance tracking) is enabled.
    pub fn shadow_enabled(&self) -> bool {
        self.cfg.shadow
    }

    /// The shadow CTE arrays.
    pub fn shadow(&self) -> Ref<'_, ShadowState> {
        self.shadow.borrow()
    }

    /// The per-page provenance tracker.
    pub fn provenance(&self) -> Ref<'_, Provenance> {
        self.provenance.borrow()
    }

    /// Records one epoch-boundary snapshot.
    pub fn sample(&mut self, snap: SampleSnapshot) {
        self.sampler.sample(snap);
    }

    /// The epoch sampler's series.
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// The shared event journal.
    pub fn journal(&self) -> Ref<'_, EventJournal> {
        self.journal.borrow()
    }

    /// The latency-attribution aggregator.
    pub fn attribution(&self) -> Ref<'_, Attribution> {
        self.attribution.borrow()
    }

    /// Serializes the whole telemetry state: the sizing config (as an
    /// identity guard), the shared ops clock, and every collector. The
    /// shadow/provenance trackers are written unconditionally — they are
    /// empty when `cfg.shadow` is off and cost a few bytes.
    pub fn write_snapshot(&self, w: &mut SnapWriter) {
        let c = &self.cfg;
        w.u64(c.epoch_ops);
        w.u64(c.series_capacity as u64);
        w.u64(c.journal_capacity as u64);
        w.u64(c.span_sample);
        w.u64(c.span_capacity as u64);
        w.bool(c.shadow);
        w.u64(c.pingpong_trips);
        w.u64(c.pingpong_window_ops);
        w.u64(self.ops_clock.get());
        self.sampler.write_snapshot(w);
        self.journal.borrow().write_snapshot(w);
        self.attribution.borrow().write_snapshot(w);
        self.shadow.borrow().write_snapshot(w);
        self.provenance.borrow().write_snapshot(w);
    }

    /// Restores telemetry state written by
    /// [`write_snapshot`](Self::write_snapshot). The receiver must have
    /// been built with the same [`TelemetryConfig`] and the same per-MC
    /// shadow configuration ([`configure_shadow_for_mc`]
    /// (Self::configure_shadow_for_mc)).
    pub fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let c = &self.cfg;
        let same = r.u64()? == c.epoch_ops
            && r.u64()? == c.series_capacity as u64
            && r.u64()? == c.journal_capacity as u64
            && r.u64()? == c.span_sample
            && r.u64()? == c.span_capacity as u64
            && r.bool()? == c.shadow
            && r.u64()? == c.pingpong_trips
            && r.u64()? == c.pingpong_window_ops;
        if !same {
            return Err(SnapError::Mismatch("telemetry config"));
        }
        self.ops_clock.set(r.u64()?);
        self.sampler.restore_snapshot(r)?;
        self.journal.borrow_mut().restore_snapshot(r)?;
        self.attribution.borrow_mut().restore_snapshot(r)?;
        self.shadow.borrow_mut().restore_snapshot(r)?;
        self.provenance.borrow_mut().restore_snapshot(r)?;
        Ok(())
    }

    /// Writes `<stem>.series.jsonl`, `<stem>.events.jsonl`,
    /// `<stem>.latency.jsonl`, and `<stem>.trace.json` — plus
    /// `<stem>.shadow.jsonl` when shadow probing is enabled; returns the
    /// paths written.
    pub fn export_to(&self, stem: &Path) -> io::Result<Vec<PathBuf>> {
        // Host-profiling timer only; the exported bytes are identical with
        // profiling on or off.
        let _p = prof::scope(prof::HostPhase::Export);
        if let Some(dir) = stem.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let with_ext = |ext: &str| -> PathBuf {
            let mut name = stem.file_name().unwrap_or_default().to_os_string();
            name.push(ext);
            stem.with_file_name(name)
        };
        let journal = self.journal.borrow();
        let attribution = self.attribution.borrow();
        let mut outputs = vec![
            (
                with_ext(".series.jsonl"),
                export::series_jsonl(&self.sampler),
            ),
            (with_ext(".events.jsonl"), export::events_jsonl(&journal)),
            (
                with_ext(".latency.jsonl"),
                export::latency_jsonl(&attribution),
            ),
            (
                with_ext(".trace.json"),
                export::chrome_trace(&journal, attribution.spans()),
            ),
        ];
        if self.cfg.shadow {
            outputs.push((
                with_ext(".shadow.jsonl"),
                export::shadow_jsonl(&self.shadow.borrow(), &self.provenance.borrow()),
            ));
        }
        let mut paths = Vec::new();
        for (path, text) in outputs {
            std::fs::write(&path, text)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_sim_core::probe::McEvent;
    use dylect_sim_core::Time;

    #[test]
    fn probes_feed_the_shared_journal() {
        let t = Telemetry::new(TelemetryConfig::default());
        let p0 = t.probe_for_mc(0);
        let p1 = t.probe_for_mc(1);
        p0.emit(Time::ZERO, McEvent::Promotion, 5);
        p1.emit(Time::ZERO, McEvent::Expansion, 6);
        assert_eq!(t.journal().total(), 2);
        assert_eq!(t.journal().entries()[1].mc, 1);
    }

    #[test]
    fn export_writes_four_files() {
        use dylect_sim_core::probe::{
            AccessComponent, AccessRecord, AccessScope, MemLevel, RequestClass, SpanPhase,
            SpanRecord, TranslationPath,
        };
        let mut t = Telemetry::new(TelemetryConfig::default());
        let probe = t.probe_for_mc(0);
        probe.emit(Time::from_ns(5.0), McEvent::Compaction, 9);
        probe.emit_access(&AccessRecord::new(
            AccessScope::Mem,
            RequestClass::Demand,
            MemLevel::Ml0,
            TranslationPath::ShortCteHit,
            Time::ZERO,
            Time::from_ns(80.0),
            &[(AccessComponent::DramService, Time::from_ns(50.0))],
        ));
        probe.emit_span(&SpanRecord {
            id: 0,
            mc: 0,
            phase: SpanPhase::Request,
            start: Time::ZERO,
            end: Time::from_ns(80.0),
            page: 9,
        });
        t.sample(SampleSnapshot {
            instructions: 1000,
            ..SampleSnapshot::default()
        });
        let dir = std::env::temp_dir().join(format!("dylect-telemetry-{}", std::process::id()));
        let paths = t.export_to(&dir.join("run")).unwrap();
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert!(p.exists(), "{}", p.display());
        }
        let series = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(series.contains("\"series\":\"cte_hit_rate\""));
        let latency = std::fs::read_to_string(&paths[2]).unwrap();
        assert!(latency.contains("\"path\":\"short_cte_hit\""), "{latency}");
        let trace = std::fs::read_to_string(&paths[3]).unwrap();
        assert!(trace.contains("\"name\":\"compaction\""));
        assert!(trace.contains("\"ph\":\"B\""), "span pairs exported");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_round_trips_every_collector() {
        use dylect_sim_core::probe::{
            AccessComponent, AccessRecord, AccessScope, CteBlockKind, CteOp, CteRecord, MemLevel,
            RequestClass, SpanPhase, SpanRecord, TranslationPath,
        };

        let cfg = TelemetryConfig {
            shadow: true,
            span_sample: 16,
            ..TelemetryConfig::default()
        };
        let geom = Some(CteCacheGeometry {
            capacity_bytes: 4096,
            ways: 2,
            block_bytes: 64,
            group_size: 3,
            num_groups: 8,
        });
        let mut t = Telemetry::new(cfg);
        t.configure_shadow_for_mc(0, geom);
        let probe = t.probe_for_mc(0);
        for i in 0..200u64 {
            t.ops_clock().set(i);
            probe.emit(
                Time::from_ns(i as f64),
                McEvent::ALL[(i % 5) as usize],
                i % 17,
            );
            probe.emit_cte(&CteRecord {
                kind: CteBlockKind::ALL[(i % 2) as usize],
                op: CteOp::Lookup {
                    hit: i % 3 == 0,
                    fill_on_miss: i % 4 != 0,
                },
                key: i % 23,
            });
            probe.emit_access(&AccessRecord::new(
                AccessScope::Mem,
                RequestClass::Demand,
                MemLevel::Ml1,
                TranslationPath::LongCteHit,
                Time::ZERO,
                Time::from_ns(40.0 + i as f64),
                &[(AccessComponent::DramService, Time::from_ns(30.0))],
            ));
            probe.emit_span(&SpanRecord {
                id: i,
                mc: 0,
                phase: SpanPhase::Request,
                start: Time::ZERO,
                end: Time::from_ns(i as f64),
                page: i,
            });
        }
        t.sample(SampleSnapshot {
            instructions: 1000,
            ..SampleSnapshot::default()
        });

        let mut w = SnapWriter::new();
        t.write_snapshot(&mut w);
        let snap = w.into_bytes();

        let mut fresh = Telemetry::new(cfg);
        fresh.configure_shadow_for_mc(0, geom);
        let mut r = SnapReader::new(&snap);
        fresh.restore_snapshot(&mut r).unwrap();
        r.finish().unwrap();

        // Restore-then-resnapshot must be byte-identical (writes are
        // deterministic: all unordered containers travel sorted).
        let mut w2 = SnapWriter::new();
        fresh.write_snapshot(&mut w2);
        assert_eq!(snap, w2.into_bytes());
        assert_eq!(fresh.journal().total(), t.journal().total());
        assert_eq!(fresh.shadow().classes_total(), t.shadow().classes_total());
        assert_eq!(fresh.ops_clock().get(), t.ops_clock().get());

        // A differently-sized receiver refuses the snapshot.
        let mut other = Telemetry::new(TelemetryConfig::default());
        assert!(matches!(
            other.restore_snapshot(&mut SnapReader::new(&snap)),
            Err(SnapError::Mismatch("telemetry config"))
        ));
        // An unconfigured (shadowless) receiver with the right config
        // fails on the shadow MC set, not with a panic.
        let mut unconfigured = Telemetry::new(cfg);
        assert!(unconfigured
            .restore_snapshot(&mut SnapReader::new(&snap))
            .is_err());
        // Every truncation is an error, never a panic.
        for cut in (0..snap.len()).step_by(131) {
            let mut fresh2 = Telemetry::new(cfg);
            fresh2.configure_shadow_for_mc(0, geom);
            let mut r = SnapReader::new(&snap[..cut]);
            let res = fresh2.restore_snapshot(&mut r).and_then(|()| r.finish());
            assert!(res.is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn span_sample_parsing_accepts_positive_integers_only() {
        assert_eq!(TelemetryConfig::parse_span_sample(None), Ok(0));
        assert_eq!(TelemetryConfig::parse_span_sample(Some("")), Ok(0));
        assert_eq!(TelemetryConfig::parse_span_sample(Some("  ")), Ok(0));
        assert_eq!(TelemetryConfig::parse_span_sample(Some("1000")), Ok(1000));
        assert_eq!(TelemetryConfig::parse_span_sample(Some(" 64 ")), Ok(64));
        // An explicit 0 and garbage are hard errors, not silent defaults.
        let zero = TelemetryConfig::parse_span_sample(Some("0")).unwrap_err();
        assert!(zero.contains("positive"), "{zero}");
        let junk = TelemetryConfig::parse_span_sample(Some("junk")).unwrap_err();
        assert!(junk.contains("\"junk\""), "{junk}");
        assert!(TelemetryConfig::parse_span_sample(Some("-3")).is_err());
        assert!(TelemetryConfig::parse_span_sample(Some("1.5")).is_err());
    }

    #[test]
    fn shadow_parsing_is_a_strict_bool() {
        assert_eq!(TelemetryConfig::parse_shadow(None), Ok(false));
        assert_eq!(TelemetryConfig::parse_shadow(Some("")), Ok(false));
        assert_eq!(TelemetryConfig::parse_shadow(Some("0")), Ok(false));
        assert_eq!(TelemetryConfig::parse_shadow(Some("false")), Ok(false));
        assert_eq!(TelemetryConfig::parse_shadow(Some("1")), Ok(true));
        assert_eq!(TelemetryConfig::parse_shadow(Some("true")), Ok(true));
        assert_eq!(TelemetryConfig::parse_shadow(Some(" true ")), Ok(true));
        let err = TelemetryConfig::parse_shadow(Some("yes")).unwrap_err();
        assert!(err.contains("DYLECT_SHADOW"), "{err}");
    }

    #[test]
    fn shadow_export_rides_along_when_enabled() {
        use dylect_memctl::controller::CteCacheGeometry;
        use dylect_sim_core::probe::{CteBlockKind, CteOp, CteRecord};

        let cfg = TelemetryConfig {
            shadow: true,
            ..TelemetryConfig::default()
        };
        let t = Telemetry::new(cfg);
        assert!(t.shadow_enabled());
        t.configure_shadow_for_mc(
            0,
            Some(CteCacheGeometry {
                capacity_bytes: 4096,
                ways: 2,
                block_bytes: 64,
                group_size: 3,
                num_groups: 8,
            }),
        );
        let probe = t.probe_for_mc(0);
        probe.emit_cte(&CteRecord {
            kind: CteBlockKind::Pregathered,
            op: CteOp::Lookup {
                hit: false,
                fill_on_miss: true,
            },
            key: 7,
        });
        probe.emit(Time::ZERO, McEvent::Promotion, 3);
        assert_eq!(t.shadow().classes_total().compulsory, 1);
        assert_eq!(t.provenance().pages_tracked(), 1);
        let dir = std::env::temp_dir().join(format!("dylect-shadow-{}", std::process::id()));
        let paths = t.export_to(&dir.join("run")).unwrap();
        assert_eq!(paths.len(), 5, "shadow jsonl rides along");
        let shadow = std::fs::read_to_string(paths.last().unwrap()).unwrap();
        assert!(shadow.contains("\"shadow\":\"miss_class\""), "{shadow}");
        std::fs::remove_dir_all(&dir).ok();

        // Disabled: same four files as before this subsystem existed.
        let t2 = Telemetry::new(TelemetryConfig::default());
        let p2 = t2.probe_for_mc(0);
        p2.emit_cte(&CteRecord {
            kind: CteBlockKind::Unified,
            op: CteOp::Touch,
            key: 1,
        });
        assert!(!t2.shadow().is_active(), "records ignored when disabled");
        let dir2 = std::env::temp_dir().join(format!("dylect-noshadow-{}", std::process::id()));
        assert_eq!(t2.export_to(&dir2.join("run")).unwrap().len(), 4);
        std::fs::remove_dir_all(&dir2).ok();
    }
}
