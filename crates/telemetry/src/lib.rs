//! Observability for the DyLeCT simulator.
//!
//! Two complementary views of a run:
//!
//! - **Time series** ([`Sampler`]): once per *epoch* (a fixed number of
//!   memory operations) the run loop snapshots the cumulative simulator
//!   counters; the sampler differences consecutive snapshots into
//!   epoch-local series (CTE-cache hit rates split by serving block,
//!   ML0/ML1/ML2 occupancy, promotion/demotion/expansion activity, DRAM
//!   row-buffer hit rate and queue depth). Series are bounded
//!   ([`series::TimeSeries`]): adjacent bins pair-merge and the stride
//!   doubles, so memory stays O(capacity) for arbitrarily long runs.
//! - **Event journal** ([`EventJournal`]): discrete MC events (promotion,
//!   demotion, expansion, compaction, displacement) arrive through
//!   `dylect_sim_core::probe::ProbeHandle`s wired into each memory
//!   controller, tagged by controller index.
//!
//! - **Latency attribution** ([`Attribution`]): every retired access's
//!   cycles are accounted into named critical-path components and its
//!   end-to-end latency recorded into log-bucketed histograms keyed by
//!   (scope, request class, memory level, translation path). Sampled
//!   request spans (1-in-N, `DYLECT_SPAN_SAMPLE`) ride along for the
//!   Chrome-trace timeline.
//!
//! All are observation-only: enabling telemetry never changes simulated
//! behavior (a property pinned by the workspace determinism test).
//!
//! [`Telemetry::export_to`] writes four files per run — series JSONL,
//! event JSONL, latency JSONL, and Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`) — consumed by the `dylect-stats` CLI,
//! which can dump, summarize, and diff two runs' exports with configurable
//! tolerances.

pub mod attribution;
pub mod export;
pub mod journal;
pub mod sampler;
pub mod series;

use std::cell::{Ref, RefCell};
use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use dylect_sim_core::probe::ProbeHandle;

pub use attribution::Attribution;
pub use journal::{EventJournal, JournalEntry, McProbe};
pub use sampler::{SampleSnapshot, Sampler, SERIES_NAMES};
pub use series::{Bin, TimeSeries};

/// Telemetry sizing knobs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Memory operations per sampling epoch.
    pub epoch_ops: u64,
    /// Maximum bins retained per series.
    pub series_capacity: usize,
    /// Maximum journal entries retained (counts stay exact past this).
    pub journal_capacity: usize,
    /// Request-span sampling period: every `span_sample`-th demand miss
    /// emits begin/end trace spans. 0 disables span sampling.
    pub span_sample: u64,
    /// Maximum sampled spans retained (counts stay exact past this).
    pub span_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            epoch_ops: 10_000,
            series_capacity: 512,
            journal_capacity: 1 << 16,
            span_sample: 0,
            span_capacity: 1 << 16,
        }
    }
}

impl TelemetryConfig {
    /// The span-sampling period from the `DYLECT_SPAN_SAMPLE` environment
    /// variable (unset, empty, unparsable, or `0` all mean disabled).
    pub fn span_sample_from_env() -> u64 {
        std::env::var("DYLECT_SPAN_SAMPLE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    }
}

/// One run's telemetry: the epoch sampler, the shared event journal, and
/// the latency-attribution aggregator.
#[derive(Clone, Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    sampler: Sampler,
    journal: Rc<RefCell<EventJournal>>,
    attribution: Rc<RefCell<Attribution>>,
}

impl Telemetry {
    /// Creates empty telemetry with the given sizing.
    pub fn new(cfg: TelemetryConfig) -> Telemetry {
        Telemetry {
            sampler: Sampler::new(cfg.series_capacity),
            journal: Rc::new(RefCell::new(EventJournal::new(cfg.journal_capacity))),
            attribution: Rc::new(RefCell::new(Attribution::new(cfg.span_capacity))),
            cfg,
        }
    }

    /// The sizing in use.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Builds the probe to install into memory controller `mc`
    /// (`MemoryScheme::set_probe`); its events land in this telemetry's
    /// journal tagged with `mc`, and any access/span records it emits land
    /// in the shared attribution aggregator. The same handle serves cores
    /// and the shared memory backend (which emit only access/span records).
    pub fn probe_for_mc(&self, mc: u32) -> ProbeHandle {
        McProbe::handle(self.journal.clone(), self.attribution.clone(), mc)
    }

    /// Records one epoch-boundary snapshot.
    pub fn sample(&mut self, snap: SampleSnapshot) {
        self.sampler.sample(snap);
    }

    /// The epoch sampler's series.
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// The shared event journal.
    pub fn journal(&self) -> Ref<'_, EventJournal> {
        self.journal.borrow()
    }

    /// The latency-attribution aggregator.
    pub fn attribution(&self) -> Ref<'_, Attribution> {
        self.attribution.borrow()
    }

    /// Writes `<stem>.series.jsonl`, `<stem>.events.jsonl`,
    /// `<stem>.latency.jsonl`, and `<stem>.trace.json`; returns the paths
    /// written.
    pub fn export_to(&self, stem: &Path) -> io::Result<Vec<PathBuf>> {
        if let Some(dir) = stem.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let with_ext = |ext: &str| -> PathBuf {
            let mut name = stem.file_name().unwrap_or_default().to_os_string();
            name.push(ext);
            stem.with_file_name(name)
        };
        let journal = self.journal.borrow();
        let attribution = self.attribution.borrow();
        let outputs = [
            (
                with_ext(".series.jsonl"),
                export::series_jsonl(&self.sampler),
            ),
            (with_ext(".events.jsonl"), export::events_jsonl(&journal)),
            (
                with_ext(".latency.jsonl"),
                export::latency_jsonl(&attribution),
            ),
            (
                with_ext(".trace.json"),
                export::chrome_trace(&journal, attribution.spans()),
            ),
        ];
        let mut paths = Vec::new();
        for (path, text) in outputs {
            std::fs::write(&path, text)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_sim_core::probe::McEvent;
    use dylect_sim_core::Time;

    #[test]
    fn probes_feed_the_shared_journal() {
        let t = Telemetry::new(TelemetryConfig::default());
        let p0 = t.probe_for_mc(0);
        let p1 = t.probe_for_mc(1);
        p0.emit(Time::ZERO, McEvent::Promotion, 5);
        p1.emit(Time::ZERO, McEvent::Expansion, 6);
        assert_eq!(t.journal().total(), 2);
        assert_eq!(t.journal().entries()[1].mc, 1);
    }

    #[test]
    fn export_writes_four_files() {
        use dylect_sim_core::probe::{
            AccessComponent, AccessRecord, AccessScope, MemLevel, RequestClass, SpanPhase,
            SpanRecord, TranslationPath,
        };
        let mut t = Telemetry::new(TelemetryConfig::default());
        let probe = t.probe_for_mc(0);
        probe.emit(Time::from_ns(5.0), McEvent::Compaction, 9);
        probe.emit_access(&AccessRecord::new(
            AccessScope::Mem,
            RequestClass::Demand,
            MemLevel::Ml0,
            TranslationPath::ShortCteHit,
            Time::ZERO,
            Time::from_ns(80.0),
            &[(AccessComponent::DramService, Time::from_ns(50.0))],
        ));
        probe.emit_span(&SpanRecord {
            id: 0,
            mc: 0,
            phase: SpanPhase::Request,
            start: Time::ZERO,
            end: Time::from_ns(80.0),
            page: 9,
        });
        t.sample(SampleSnapshot {
            instructions: 1000,
            ..SampleSnapshot::default()
        });
        let dir = std::env::temp_dir().join(format!("dylect-telemetry-{}", std::process::id()));
        let paths = t.export_to(&dir.join("run")).unwrap();
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert!(p.exists(), "{}", p.display());
        }
        let series = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(series.contains("\"series\":\"cte_hit_rate\""));
        let latency = std::fs::read_to_string(&paths[2]).unwrap();
        assert!(latency.contains("\"path\":\"short_cte_hit\""), "{latency}");
        let trace = std::fs::read_to_string(&paths[3]).unwrap();
        assert!(trace.contains("\"name\":\"compaction\""));
        assert!(trace.contains("\"ph\":\"B\""), "span pairs exported");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn span_sample_env_parses_or_disables() {
        // Not set in the test environment: disabled.
        std::env::remove_var("DYLECT_SPAN_SAMPLE");
        assert_eq!(TelemetryConfig::span_sample_from_env(), 0);
        std::env::set_var("DYLECT_SPAN_SAMPLE", "1000");
        assert_eq!(TelemetryConfig::span_sample_from_env(), 1000);
        std::env::set_var("DYLECT_SPAN_SAMPLE", "junk");
        assert_eq!(TelemetryConfig::span_sample_from_env(), 0);
        std::env::remove_var("DYLECT_SPAN_SAMPLE");
    }
}
