//! Bounded time series with streaming downsampling.
//!
//! A [`TimeSeries`] accepts an unbounded stream of `(x, value)` samples with
//! nondecreasing `x` (here: instructions retired) and keeps at most
//! `capacity` *bins*. Samples accumulate into the open (last) bin until it
//! holds `stride` of them; when the series would exceed its capacity,
//! adjacent bins are pair-merged and the stride doubles. Memory is therefore
//! O(capacity) no matter how long the run, and every bin still reports exact
//! `count`/`sum`/`min`/`max` over its x-range — downsampling loses
//! resolution, never mass.

use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

/// One downsampled bin: aggregates of all samples with `x_start <= x <=
/// x_end`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Bin {
    /// Smallest sample x in the bin.
    pub x_start: u64,
    /// Largest sample x in the bin.
    pub x_end: u64,
    /// Samples aggregated.
    pub count: u64,
    /// Sum of sample values.
    pub sum: f64,
    /// Smallest sample value.
    pub min: f64,
    /// Largest sample value.
    pub max: f64,
}

impl Bin {
    fn new(x: u64, value: f64) -> Bin {
        Bin {
            x_start: x,
            x_end: x,
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    fn absorb_sample(&mut self, x: u64, value: f64) {
        self.x_end = x;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn absorb_bin(&mut self, other: &Bin) {
        self.x_end = other.x_end;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean sample value over the bin.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A named, bounded, streaming-downsampled series.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    name: String,
    capacity: usize,
    stride: u64,
    bins: Vec<Bin>,
    total_samples: u64,
}

impl TimeSeries {
    /// Creates a series holding at most `capacity` bins (minimum 2).
    pub fn new(name: &str, capacity: usize) -> TimeSeries {
        TimeSeries {
            name: name.to_string(),
            capacity: capacity.max(2),
            stride: 1,
            bins: Vec::new(),
            total_samples: 0,
        }
    }

    /// The series name (stable; export formats key on it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Samples per closed bin at the current downsampling level.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Total samples ever pushed (across all bins).
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// The downsampled bins, oldest first.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// The most recent bin, if any samples were pushed.
    pub fn last(&self) -> Option<&Bin> {
        self.bins.last()
    }

    /// Appends one sample. `x` must be nondecreasing across pushes.
    pub fn push(&mut self, x: u64, value: f64) {
        self.total_samples += 1;
        match self.bins.last_mut() {
            Some(open) if open.count < self.stride => {
                open.absorb_sample(x, value);
                return;
            }
            _ => {}
        }
        if self.bins.len() == self.capacity {
            self.merge_pairs();
        }
        self.bins.push(Bin::new(x, value));
    }

    /// Halves the bin count by merging adjacent pairs and doubles the
    /// stride. An odd trailing bin is kept as the new (half-full) open bin.
    fn merge_pairs(&mut self) {
        let mut merged = Vec::with_capacity(self.capacity / 2 + 1);
        let mut it = self.bins.chunks_exact(2);
        for pair in &mut it {
            let mut b = pair[0];
            b.absorb_bin(&pair[1]);
            merged.push(b);
        }
        merged.extend_from_slice(it.remainder());
        self.bins = merged;
        self.stride *= 2;
    }
}

/// The name and capacity are construction state; the name is written as an
/// identity guard so a snapshot can never restore into the wrong series.
impl Snapshot for TimeSeries {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.str(&self.name);
        w.u64(self.stride);
        w.u64(self.total_samples);
        w.seq(self.bins.len());
        for b in &self.bins {
            w.u64(b.x_start);
            w.u64(b.x_end);
            w.u64(b.count);
            w.f64(b.sum);
            w.f64(b.min);
            w.f64(b.max);
        }
    }
}

impl Restore for TimeSeries {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.str()? != self.name {
            return Err(SnapError::Mismatch("series name"));
        }
        let stride = r.u64()?;
        if stride == 0 {
            return Err(SnapError::Corrupt("series stride must be positive"));
        }
        self.stride = stride;
        self.total_samples = r.u64()?;
        let n = r.seq(48)?;
        if n > self.capacity {
            return Err(SnapError::Corrupt("series bins exceed capacity"));
        }
        self.bins.clear();
        for _ in 0..n {
            self.bins.push(Bin {
                x_start: r.u64()?,
                x_end: r.u64()?,
                count: r.u64()?,
                sum: r.f64()?,
                min: r.f64()?,
                max: r.f64()?,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bin_aggregates() {
        let mut s = TimeSeries::new("t", 4);
        s.push(10, 1.0);
        assert_eq!(s.bins().len(), 1);
        let b = s.last().unwrap();
        assert_eq!((b.x_start, b.x_end, b.count), (10, 10, 1));
        assert_eq!((b.sum, b.min, b.max), (1.0, 1.0, 1.0));
    }

    #[test]
    fn capacity_is_bounded_and_mass_is_conserved() {
        let mut s = TimeSeries::new("t", 8);
        let n = 10_000u64;
        for i in 0..n {
            s.push(i, 1.0);
        }
        assert!(s.bins().len() <= 8, "len {}", s.bins().len());
        let total: u64 = s.bins().iter().map(|b| b.count).sum();
        assert_eq!(total, n, "downsampling must not lose samples");
        let sum: f64 = s.bins().iter().map(|b| b.sum).sum();
        assert_eq!(sum, n as f64);
        assert_eq!(s.total_samples(), n);
    }

    #[test]
    fn bins_stay_ordered_and_contiguous() {
        let mut s = TimeSeries::new("t", 4);
        for i in 0..1000u64 {
            s.push(i * 10, (i % 7) as f64);
        }
        for w in s.bins().windows(2) {
            assert!(w[0].x_end < w[1].x_start);
        }
        assert_eq!(s.bins().first().unwrap().x_start, 0);
        assert_eq!(s.bins().last().unwrap().x_end, 9990);
    }

    #[test]
    fn min_max_survive_merging() {
        let mut s = TimeSeries::new("t", 4);
        for i in 0..64u64 {
            let v = if i == 13 { -5.0 } else { (i % 3) as f64 };
            s.push(i, v);
        }
        let min = s.bins().iter().map(|b| b.min).fold(f64::MAX, f64::min);
        let max = s.bins().iter().map(|b| b.max).fold(f64::MIN, f64::max);
        assert_eq!(min, -5.0);
        assert_eq!(max, 2.0);
    }

    #[test]
    fn stride_doubles_on_merge() {
        let mut s = TimeSeries::new("t", 2);
        assert_eq!(s.stride(), 1);
        for i in 0..8u64 {
            s.push(i, 0.0);
        }
        assert!(s.stride() >= 4, "stride {}", s.stride());
        assert!(s.bins().len() <= 2);
    }

    #[test]
    fn mean_of_bin() {
        let mut s = TimeSeries::new("t", 4);
        s.push(0, 1.0);
        s.push(1, 3.0);
        let total: f64 = s.bins().iter().map(|b| b.sum).sum();
        let count: u64 = s.bins().iter().map(|b| b.count).sum();
        assert_eq!(total / count as f64, 2.0);
    }
}
