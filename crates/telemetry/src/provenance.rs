//! Per-page lifetime provenance.
//!
//! Consumes the memory controllers' discrete event stream
//! ([`McEvent`](dylect_sim_core::probe::McEvent)) and maintains a small
//! state machine per touched OS page: which managed level the page
//! currently occupies, how long (in retired ops) it has dwelt in each
//! level, which events moved it, and whether it ping-pongs between ML0 and
//! ML1. Time is the shared retired-ops clock ticked by the simulator, so
//! dwell numbers are comparable across schemes regardless of their cycle
//! behaviour.
//!
//! Level mapping of the event stream (a deliberate simplification — the
//! event tells us the destination, not the full path):
//!
//! - `Promotion` → ML0, `Demotion` → ML1 (the short-CTE hot set);
//! - `Expansion` → ML1 (the page was inflated out of compressed storage);
//! - `Compaction` → ML2 (the compactor reclaimed it);
//! - `Displacement` → no level change (a move within a level).
//!
//! A page's history starts at its first event: dwell before first contact
//! is unknown and never attributed. A *round trip* completes when a page
//! that was demoted out of ML0 is promoted back in; a page is flagged as
//! *ping-ponging* when `trips` round trips complete within a `window` of
//! retired ops. Per-DRAM-page-group pressure is tracked as the peak number
//! of simultaneously ML0-resident pages in each static group.

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

use dylect_memctl::controller::CteCacheGeometry;
use dylect_sim_core::probe::{McEvent, MemLevel};
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

/// Managed levels with dwell accounting, in index order.
pub const LEVELS: [MemLevel; 3] = [MemLevel::Ml0, MemLevel::Ml1, MemLevel::Ml2];

fn level_index(level: MemLevel) -> Option<usize> {
    LEVELS.iter().position(|&l| l == level)
}

fn destination(event: McEvent) -> Option<MemLevel> {
    match event {
        McEvent::Promotion => Some(MemLevel::Ml0),
        McEvent::Demotion | McEvent::Expansion => Some(MemLevel::Ml1),
        McEvent::Compaction => Some(MemLevel::Ml2),
        McEvent::Displacement => None,
    }
}

/// Lifetime state of one `(mc, page)` pair.
#[derive(Clone, Debug)]
struct PageLife {
    /// Current level (`None` only transiently: a displacement-first page).
    level: MemLevel,
    /// Ops clock when the page entered `level`.
    since: u64,
    /// Accumulated dwell per level (ops), excluding the open interval.
    dwell: [u64; LEVELS.len()],
    /// Event counts, indexed like [`McEvent::ALL`].
    events: [u32; McEvent::ALL.len()],
    /// Completed ML0→out→ML0 round trips.
    trips: u64,
    /// Ops-clock stamps of the most recent `trips_window` round-trip
    /// completions (bounded ring).
    recent: Vec<u64>,
    /// Times the ping-pong predicate fired (K trips inside W ops).
    pingpong: u64,
    /// Whether the page has ever left ML0 since last being there.
    out_of_ml0: bool,
}

fn event_index(event: McEvent) -> usize {
    McEvent::ALL
        .iter()
        .position(|&e| e == event)
        .expect("in ALL")
}

/// Aggregate dwell/occupancy of one level.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelRow {
    /// The level.
    pub level: MemLevel,
    /// Total dwell across all pages, in retired ops (open intervals
    /// closed at the current clock).
    pub dwell_ops: u64,
    /// Pages currently resident.
    pub resident_pages: u64,
    /// Transitions into this level.
    pub entries: u64,
}

/// One ping-ponging page, for the top-N table.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PingPongRow {
    /// Owning memory controller.
    pub mc: u32,
    /// OS page index.
    pub page: u64,
    /// Completed ML0 round trips.
    pub trips: u64,
    /// Times K trips landed within the window.
    pub pingpong_events: u64,
    /// Promotions into ML0.
    pub promotions: u32,
    /// Demotions out of ML0.
    pub demotions: u32,
}

/// Per-MC DRAM page-group ML0 residency counters.
#[derive(Clone, Debug)]
struct GroupResidency {
    num_groups: u64,
    /// Current ML0 residents per group.
    cur: Vec<u32>,
    /// Peak ML0 residents per group.
    peak: Vec<u32>,
}

/// Tracks lifetime provenance for every page the MCs report on.
#[derive(Clone, Debug)]
pub struct Provenance {
    clock: Rc<Cell<u64>>,
    trips_window: usize,
    window_ops: u64,
    pages: HashMap<(u32, u64), PageLife>,
    groups: Vec<Option<GroupResidency>>,
    level_entries: [u64; LEVELS.len()],
}

impl Provenance {
    /// Creates a tracker reading time from `clock`; `trips` round trips
    /// within `window_ops` retired ops flag a page as ping-ponging.
    pub fn new(clock: Rc<Cell<u64>>, trips: u64, window_ops: u64) -> Provenance {
        Provenance {
            clock,
            trips_window: trips.max(1) as usize,
            window_ops,
            pages: HashMap::new(),
            groups: Vec::new(),
            level_entries: [0; LEVELS.len()],
        }
    }

    /// Installs the page-group shape of one MC (from its CTE geometry);
    /// `None` or zero groups disables the residency histogram for it.
    pub fn configure_mc(&mut self, mc: usize, geometry: Option<CteCacheGeometry>) {
        if self.groups.len() <= mc {
            self.groups.resize_with(mc + 1, || None);
        }
        self.groups[mc] = geometry.and_then(|g| {
            if g.num_groups == 0 {
                None
            } else {
                let n = g.num_groups as usize;
                Some(GroupResidency {
                    num_groups: g.num_groups,
                    cur: vec![0; n],
                    peak: vec![0; n],
                })
            }
        });
    }

    /// Feeds one MC event into the page state machines.
    pub fn record(&mut self, mc: u32, event: McEvent, page: u64) {
        let now = self.clock.get();
        let life = self.pages.entry((mc, page)).or_insert_with(|| PageLife {
            level: MemLevel::None,
            since: now,
            dwell: [0; LEVELS.len()],
            events: [0; McEvent::ALL.len()],
            trips: 0,
            recent: Vec::new(),
            pingpong: 0,
            out_of_ml0: false,
        });
        life.events[event_index(event)] += 1;
        let Some(dest) = destination(event) else {
            return; // displacement: the page moved, its level did not
        };
        let from = life.level;
        if from != dest {
            if let Some(i) = level_index(from) {
                life.dwell[i] += now - life.since;
            }
            life.level = dest;
            life.since = now;
            self.level_entries[level_index(dest).expect("dest is managed")] += 1;
            // Round-trip and ping-pong detection.
            if dest == MemLevel::Ml0 {
                if life.out_of_ml0 {
                    life.trips += 1;
                    if life.recent.len() == self.trips_window {
                        life.recent.remove(0);
                    }
                    life.recent.push(now);
                    if life.recent.len() == self.trips_window
                        && now - life.recent[0] <= self.window_ops
                    {
                        life.pingpong += 1;
                    }
                }
                life.out_of_ml0 = false;
            } else if from == MemLevel::Ml0 {
                life.out_of_ml0 = true;
            }
            // Group residency tracks ML0 membership.
            if let Some(Some(res)) = self.groups.get_mut(mc as usize) {
                let g = (page % res.num_groups) as usize;
                if dest == MemLevel::Ml0 {
                    res.cur[g] += 1;
                    res.peak[g] = res.peak[g].max(res.cur[g]);
                } else if from == MemLevel::Ml0 {
                    res.cur[g] = res.cur[g].saturating_sub(1);
                }
            }
        }
    }

    /// Distinct pages with any recorded history.
    pub fn pages_tracked(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Pages whose ping-pong predicate fired at least once.
    pub fn pingpong_pages(&self) -> u64 {
        self.pages.values().filter(|l| l.pingpong > 0).count() as u64
    }

    /// Per-level dwell/occupancy rows, open intervals closed at the
    /// current ops clock. Order follows [`LEVELS`].
    pub fn level_rows(&self) -> [LevelRow; LEVELS.len()] {
        let now = self.clock.get();
        let mut rows = [LevelRow::default(); LEVELS.len()];
        for (i, (&level, row)) in LEVELS.iter().zip(rows.iter_mut()).enumerate() {
            row.level = level;
            row.entries = self.level_entries[i];
        }
        for life in self.pages.values() {
            for (i, row) in rows.iter_mut().enumerate() {
                row.dwell_ops += life.dwell[i];
            }
            if let Some(i) = level_index(life.level) {
                rows[i].dwell_ops += now - life.since;
                rows[i].resident_pages += 1;
            }
        }
        rows
    }

    /// The `top_n` round-trippiest pages, most trips first, ties broken by
    /// `(mc, page)` so the output is deterministic.
    pub fn top_pingpong(&self, top_n: usize) -> Vec<PingPongRow> {
        let mut rows: Vec<PingPongRow> = self
            .pages
            .iter()
            .filter(|(_, l)| l.trips > 0)
            .map(|(&(mc, page), l)| PingPongRow {
                mc,
                page,
                trips: l.trips,
                pingpong_events: l.pingpong,
                promotions: l.events[event_index(McEvent::Promotion)],
                demotions: l.events[event_index(McEvent::Demotion)],
            })
            .collect();
        rows.sort_by(|a, b| {
            b.trips
                .cmp(&a.trips)
                .then(a.mc.cmp(&b.mc))
                .then(a.page.cmp(&b.page))
        });
        rows.truncate(top_n);
        rows
    }

    /// Histogram of per-group **peak** ML0 residency, aggregated across
    /// MCs: `(peak, number of groups that reached it)`, ascending, only
    /// non-empty buckets.
    pub fn residency_histogram(&self) -> Vec<(u32, u64)> {
        let mut hist: HashMap<u32, u64> = HashMap::new();
        for state in self.groups.iter().flatten() {
            for &p in &state.peak {
                *hist.entry(p).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(u32, u64)> = hist.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Whether any MC has a residency histogram configured.
    pub fn has_groups(&self) -> bool {
        self.groups.iter().any(|g| g.is_some())
    }
}

/// Page state machines are written in sorted `(mc, page)` order; the
/// shared ops clock is owned (and serialized) by `Telemetry`, not here.
/// The group shapes come from `configure_mc` and must already match.
impl Snapshot for Provenance {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        for &n in &self.level_entries {
            w.u64(n);
        }
        let mut keys: Vec<(u32, u64)> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        w.seq(keys.len());
        for key in keys {
            let life = &self.pages[&key];
            w.u32(key.0);
            w.u64(key.1);
            w.u8(MemLevel::ALL
                .iter()
                .position(|&l| l == life.level)
                .expect("in ALL") as u8);
            w.u64(life.since);
            for &d in &life.dwell {
                w.u64(d);
            }
            for &e in &life.events {
                w.u32(e);
            }
            w.u64(life.trips);
            w.seq(life.recent.len());
            for &t in &life.recent {
                w.u64(t);
            }
            w.u64(life.pingpong);
            w.bool(life.out_of_ml0);
        }
        w.seq(self.groups.len());
        for g in &self.groups {
            match g {
                Some(g) => {
                    w.bool(true);
                    w.u64(g.num_groups);
                    for &c in &g.cur {
                        w.u32(c);
                    }
                    for &p in &g.peak {
                        w.u32(p);
                    }
                }
                None => w.bool(false),
            }
        }
    }
}

impl Restore for Provenance {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for n in &mut self.level_entries {
            *n = r.u64()?;
        }
        let n_pages = r.seq(13)?;
        self.pages.clear();
        for _ in 0..n_pages {
            let mc = r.u32()?;
            let page = r.u64()?;
            let level = *MemLevel::ALL
                .get(r.u8()? as usize)
                .ok_or(SnapError::Corrupt("unknown page level tag"))?;
            let since = r.u64()?;
            let mut dwell = [0u64; LEVELS.len()];
            for d in &mut dwell {
                *d = r.u64()?;
            }
            let mut events = [0u32; McEvent::ALL.len()];
            for e in &mut events {
                *e = r.u32()?;
            }
            let trips = r.u64()?;
            let n_recent = r.seq(8)?;
            if n_recent > self.trips_window {
                return Err(SnapError::Corrupt("trip ring longer than its window"));
            }
            let mut recent = Vec::with_capacity(n_recent);
            for _ in 0..n_recent {
                recent.push(r.u64()?);
            }
            let pingpong = r.u64()?;
            let out_of_ml0 = r.bool()?;
            if self
                .pages
                .insert(
                    (mc, page),
                    PageLife {
                        level,
                        since,
                        dwell,
                        events,
                        trips,
                        recent,
                        pingpong,
                        out_of_ml0,
                    },
                )
                .is_some()
            {
                return Err(SnapError::Corrupt("duplicate provenance page key"));
            }
        }
        r.fixed_seq(self.groups.len(), "provenance MC count")?;
        for g in &mut self.groups {
            if r.bool()? != g.is_some() {
                return Err(SnapError::Mismatch("page-grouped MC set"));
            }
            if let Some(g) = g {
                if r.u64()? != g.num_groups {
                    return Err(SnapError::Mismatch("page-group count"));
                }
                for c in &mut g.cur {
                    *c = r.u32()?;
                }
                for p in &mut g.peak {
                    *p = r.u32()?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(clock: &Rc<Cell<u64>>) -> Provenance {
        let mut p = Provenance::new(clock.clone(), 2, 100);
        p.configure_mc(
            0,
            Some(CteCacheGeometry {
                capacity_bytes: 4096,
                ways: 2,
                block_bytes: 64,
                group_size: 3,
                num_groups: 4,
            }),
        );
        p
    }

    #[test]
    fn dwell_accumulates_per_level() {
        let clock = Rc::new(Cell::new(0u64));
        let mut p = tracker(&clock);
        p.record(0, McEvent::Promotion, 7); // ML0 at t=0
        clock.set(10);
        p.record(0, McEvent::Demotion, 7); // ML1 at t=10
        clock.set(25);
        let rows = p.level_rows();
        assert_eq!(rows[0].dwell_ops, 10, "ML0: 0..10");
        assert_eq!(rows[1].dwell_ops, 15, "ML1: 10..25 (open, closed at now)");
        assert_eq!(rows[1].resident_pages, 1);
        assert_eq!(rows[0].entries, 1);
        assert_eq!(rows[1].entries, 1);
    }

    #[test]
    fn expansion_and_compaction_map_to_ml1_ml2() {
        let clock = Rc::new(Cell::new(0u64));
        let mut p = tracker(&clock);
        p.record(0, McEvent::Expansion, 3);
        clock.set(5);
        p.record(0, McEvent::Compaction, 3);
        clock.set(9);
        let rows = p.level_rows();
        assert_eq!(rows[1].dwell_ops, 5);
        assert_eq!(rows[2].dwell_ops, 4);
        assert_eq!(rows[2].resident_pages, 1);
    }

    #[test]
    fn displacement_changes_nothing_but_the_count() {
        let clock = Rc::new(Cell::new(0u64));
        let mut p = tracker(&clock);
        p.record(0, McEvent::Promotion, 1);
        p.record(0, McEvent::Displacement, 1);
        let rows = p.level_rows();
        assert_eq!(rows[0].resident_pages, 1);
        assert_eq!(p.pages_tracked(), 1);
    }

    #[test]
    fn round_trips_and_pingpong_window() {
        let clock = Rc::new(Cell::new(0u64));
        let mut p = tracker(&clock); // K=2 trips within W=100 ops
        for (t, ev) in [
            (0u64, McEvent::Promotion),
            (10, McEvent::Demotion),
            (20, McEvent::Promotion), // trip 1 @20
            (30, McEvent::Demotion),
            (40, McEvent::Promotion), // trip 2 @40: 2 trips in 20 ops
        ] {
            clock.set(t);
            p.record(0, ev, 5);
        }
        let top = p.top_pingpong(8);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].trips, 2);
        assert_eq!(top[0].pingpong_events, 1);
        assert_eq!(p.pingpong_pages(), 1);

        // Outside the window: trips accrue, the predicate stays quiet.
        let clock2 = Rc::new(Cell::new(0u64));
        let mut q = tracker(&clock2);
        for (t, ev) in [
            (0u64, McEvent::Promotion),
            (10, McEvent::Demotion),
            (20, McEvent::Promotion),
            (30, McEvent::Demotion),
            (500, McEvent::Promotion), // 2nd trip 480 ops after the 1st
        ] {
            clock2.set(t);
            q.record(0, ev, 5);
        }
        assert_eq!(q.top_pingpong(8)[0].trips, 2);
        assert_eq!(q.top_pingpong(8)[0].pingpong_events, 0);
        assert_eq!(q.pingpong_pages(), 0);
    }

    #[test]
    fn repeated_same_level_events_do_not_double_count() {
        let clock = Rc::new(Cell::new(0u64));
        let mut p = tracker(&clock);
        p.record(0, McEvent::Promotion, 9);
        clock.set(4);
        p.record(0, McEvent::Promotion, 9); // already ML0: no transition
        let rows = p.level_rows();
        assert_eq!(rows[0].entries, 1);
        assert_eq!(p.top_pingpong(4).len(), 0, "no demotion, no trip");
    }

    #[test]
    fn top_pingpong_order_is_deterministic() {
        let clock = Rc::new(Cell::new(0u64));
        let mut p = tracker(&clock);
        for page in [11u64, 3, 7] {
            for (t, ev) in [
                (0u64, McEvent::Promotion),
                (1, McEvent::Demotion),
                (2, McEvent::Promotion),
            ] {
                clock.set(t);
                p.record(0, ev, page);
            }
        }
        let pages: Vec<u64> = p.top_pingpong(10).iter().map(|r| r.page).collect();
        assert_eq!(pages, [3, 7, 11], "equal trips tie-break on page id");
        assert_eq!(p.top_pingpong(2).len(), 2);
    }

    #[test]
    fn residency_histogram_tracks_peak_per_group() {
        let clock = Rc::new(Cell::new(0u64));
        let mut p = tracker(&clock); // num_groups = 4
                                     // Pages 0 and 4 share group 0; pages 1 stays alone in group 1.
        p.record(0, McEvent::Promotion, 0);
        p.record(0, McEvent::Promotion, 4);
        p.record(0, McEvent::Promotion, 1);
        p.record(0, McEvent::Demotion, 4); // peak of group 0 stays 2
        let hist = p.residency_histogram();
        // Groups 2 and 3 never held a page (peak 0), group 1 peaked at 1,
        // group 0 peaked at 2.
        assert_eq!(hist, vec![(0, 2), (1, 1), (2, 1)]);
        assert!(p.has_groups());
    }

    #[test]
    fn unconfigured_mc_is_tracked_without_groups() {
        let clock = Rc::new(Cell::new(0u64));
        let mut p = Provenance::new(clock, 4, 1000);
        p.configure_mc(0, None);
        p.record(0, McEvent::Promotion, 1);
        assert_eq!(p.pages_tracked(), 1);
        assert!(!p.has_groups());
        assert!(p.residency_histogram().is_empty());
    }
}
