//! Tolerance-based comparison of telemetry exports and report records.
//!
//! The engine behind `dylect-stats diff` and `dylect-serve`'s `/diff`
//! endpoint. Two file kinds are understood:
//!
//! - `*.jsonl` telemetry exports (`<stem>.series.jsonl`,
//!   `<stem>.events.jsonl`, `<stem>.latency.jsonl`, `<stem>.shadow.jsonl`)
//!   — flat JSON objects, one per line;
//! - `*.report` run-report cache records (the `KvWriter` format used under
//!   `results/cache/`), where floats are stored as exact bit patterns.
//!
//! Numeric fields may differ by at most the configured [`Tolerance`].
//! [`outcome`] folds a diff list into the exit-code convention shared by
//! the CLI and the HTTP service: 0 when identical within tolerance, 1 when
//! a shared metric drifted out of tolerance, 3 when the only differences
//! are missing metrics/rows (present on one side only).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::export::{parse_flat_object, FlatValue};

/// Absolute/relative tolerance for numeric comparisons. Both default to 0
/// (exact).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Tolerance {
    /// Maximum absolute difference.
    pub abs: f64,
    /// Maximum difference relative to the larger magnitude.
    pub rel: f64,
}

impl Tolerance {
    /// Whether `a` and `b` are equal within this tolerance.
    pub fn close(&self, a: f64, b: f64) -> bool {
        if a == b {
            return true;
        }
        let d = (a - b).abs();
        d <= self.abs || d <= self.rel * a.abs().max(b.abs())
    }
}

/// What a file parsed into.
#[derive(Debug)]
pub enum Parsed {
    /// Flat JSONL: one object per line.
    Jsonl(Vec<BTreeMap<String, FlatValue>>),
    /// A `KvWriter` record: key → raw string value.
    Report(BTreeMap<String, String>),
}

/// Reads and parses `path` (kind chosen by extension/shape).
pub fn load(path: &str) -> Result<Parsed, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text, path)
}

/// Parses already-read text; `origin` labels errors.
pub fn parse(text: &str, origin: &str) -> Result<Parsed, String> {
    if origin.ends_with(".report") || looks_like_report(text) {
        return parse_report(text)
            .map(Parsed::Report)
            .ok_or_else(|| format!("{origin}: malformed report record"));
    }
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_flat_object(line)
            .ok_or_else(|| format!("{origin}:{}: malformed JSONL line", i + 1))?;
        rows.push(obj);
    }
    Ok(Parsed::Jsonl(rows))
}

/// KvWriter records are multi-line `{ "key": "value", ... }`; JSONL files
/// are one object per line.
fn looks_like_report(text: &str) -> bool {
    text.trim_start().starts_with("{\n") || text.trim() == "{}"
}

/// Parses one `KvWriter` record into its key→raw-value map.
pub fn parse_report(text: &str) -> Option<BTreeMap<String, String>> {
    let body = text.trim();
    let body = body.strip_prefix('{')?.strip_suffix('}')?;
    let mut map = BTreeMap::new();
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let rest = line.strip_prefix('"')?;
        let (key, rest) = rest.split_once("\": \"")?;
        let value = rest.strip_suffix('"')?;
        map.insert(key.to_string(), value.to_string());
    }
    Some(map)
}

/// Decodes a report value: `f64:<hexbits> <approx>` → the exact float, a
/// plain integer → that value; anything else stays a string.
pub fn report_number(raw: &str) -> Option<f64> {
    if let Some(v) = raw.strip_prefix("f64:") {
        let hex = v.split(' ').next()?;
        return Some(f64::from_bits(u64::from_str_radix(hex, 16).ok()?));
    }
    raw.parse::<u64>().ok().map(|v| v as f64)
}

/// Renders a [`FlatValue`] the way diff messages and `dump` print it.
pub fn fmt_value(v: &FlatValue) -> String {
    match v {
        FlatValue::Number(n) => format!("{n:?}"),
        FlatValue::String(s) => s.clone(),
    }
}

/// A human label for a JSONL row: its identifying keys if present, else
/// its position.
pub fn row_label(row: &BTreeMap<String, FlatValue>, index: usize) -> String {
    let mut label = String::new();
    for key in [
        "series",
        "summary",
        "event",
        "hist",
        "shadow",
        "kind",
        "config",
        "page_life",
        "rank",
        "peak",
        "scope",
        "class",
        "level",
        "path",
        "component",
        "x_start",
        "ts_ps",
    ] {
        if let Some(v) = row.get(key) {
            if !label.is_empty() {
                label.push(' ');
            }
            let _ = write!(label, "{key}={}", fmt_value(v));
        }
    }
    if label.is_empty() {
        format!("line {}", index + 1)
    } else {
        label
    }
}

/// One reported difference. Missing metrics (a key or row present on only
/// one side) are distinguished from value drift so callers can react with
/// a dedicated outcome for schema changes.
pub struct Diff {
    /// Whether this is a missing metric/row rather than value drift.
    pub missing: bool,
    /// Human-readable description.
    pub msg: String,
}

impl Diff {
    fn value(msg: String) -> Diff {
        Diff {
            missing: false,
            msg,
        }
    }

    fn missing(msg: String) -> Diff {
        Diff { missing: true, msg }
    }
}

fn diff_numbers(label: &str, a: f64, b: f64, tol: &Tolerance, diffs: &mut Vec<Diff>) {
    if !tol.close(a, b) {
        diffs.push(Diff::value(format!(
            "{label}: {a:?} != {b:?} (delta {:?})",
            (a - b).abs()
        )));
    }
}

/// Compares two parsed files of the same kind.
pub fn diff(a: &Parsed, b: &Parsed, tol: &Tolerance) -> Vec<Diff> {
    let mut diffs = Vec::new();
    match (a, b) {
        (Parsed::Jsonl(ra), Parsed::Jsonl(rb)) => {
            if ra.len() != rb.len() {
                diffs.push(Diff::missing(format!(
                    "row counts differ: {} vs {}",
                    ra.len(),
                    rb.len()
                )));
            }
            for (i, (rowa, rowb)) in ra.iter().zip(rb.iter()).enumerate() {
                let label = row_label(rowa, i);
                for (key, va) in rowa {
                    match (va, rowb.get(key)) {
                        (_, None) => {
                            diffs.push(Diff::missing(format!("{label}: {key} missing in second")));
                        }
                        (FlatValue::Number(x), Some(FlatValue::Number(y))) => {
                            diff_numbers(&format!("{label}: {key}"), *x, *y, tol, &mut diffs);
                        }
                        (va, Some(vb)) => {
                            if va != vb {
                                diffs.push(Diff::value(format!(
                                    "{label}: {key}: {} != {}",
                                    fmt_value(va),
                                    fmt_value(vb)
                                )));
                            }
                        }
                    }
                }
                for key in rowb.keys() {
                    if !rowa.contains_key(key) {
                        diffs.push(Diff::missing(format!("{label}: {key} missing in first")));
                    }
                }
            }
        }
        (Parsed::Report(ma), Parsed::Report(mb)) => {
            for (key, va) in ma {
                match mb.get(key) {
                    None => diffs.push(Diff::missing(format!("{key}: missing in second"))),
                    Some(vb) if va == vb => {}
                    Some(vb) => match (report_number(va), report_number(vb)) {
                        (Some(x), Some(y)) => diff_numbers(key, x, y, tol, &mut diffs),
                        _ => diffs.push(Diff::value(format!("{key}: {va} != {vb}"))),
                    },
                }
            }
            for key in mb.keys() {
                if !ma.contains_key(key) {
                    diffs.push(Diff::missing(format!("{key}: missing in first")));
                }
            }
        }
        _ => diffs.push(Diff::value(
            "files are of different kinds (jsonl vs report)".to_string(),
        )),
    }
    diffs
}

/// Folds a diff list into the shared outcome convention: 0 identical
/// within tolerance, 1 a shared metric drifted, 3 only missing
/// metrics/rows.
pub fn outcome(diffs: &[Diff]) -> u8 {
    if diffs.is_empty() {
        return 0;
    }
    if diffs.iter().all(|d| d.missing) {
        3
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_semantics() {
        let exact = Tolerance::default();
        assert!(exact.close(1.0, 1.0));
        assert!(!exact.close(1.0, 1.0000001));
        let abs = Tolerance { abs: 0.1, rel: 0.0 };
        assert!(abs.close(1.0, 1.05));
        assert!(!abs.close(1.0, 1.2));
        let rel = Tolerance {
            abs: 0.0,
            rel: 0.01,
        };
        assert!(rel.close(100.0, 100.5));
        assert!(!rel.close(100.0, 102.0));
    }

    #[test]
    fn report_parsing_decodes_exact_floats() {
        let text = format!(
            "{{\n\"a\": \"42\",\n\"b\": \"f64:{:016x} {:e}\",\n}}\n",
            0.5f64.to_bits(),
            0.5f64
        );
        let map = parse_report(&text).unwrap();
        assert_eq!(report_number(&map["a"]), Some(42.0));
        assert_eq!(report_number(&map["b"]), Some(0.5));
    }

    #[test]
    fn identical_jsonl_has_no_diffs() {
        let rows = vec![parse_flat_object(r#"{"series":"s","x_start":1,"mean":0.5}"#).unwrap()];
        let a = Parsed::Jsonl(rows.clone());
        let b = Parsed::Jsonl(rows);
        let found = diff(&a, &b, &Tolerance::default());
        assert!(found.is_empty());
        assert_eq!(outcome(&found), 0);
    }

    #[test]
    fn jsonl_diff_finds_numeric_drift_and_respects_tolerance() {
        let a = Parsed::Jsonl(vec![parse_flat_object(
            r#"{"series":"s","x_start":1,"mean":0.5}"#,
        )
        .unwrap()]);
        let b = Parsed::Jsonl(vec![parse_flat_object(
            r#"{"series":"s","x_start":1,"mean":0.6}"#,
        )
        .unwrap()]);
        let found = diff(&a, &b, &Tolerance::default());
        assert_eq!(found.len(), 1);
        assert!(found[0].msg.contains("series=s"), "{}", found[0].msg);
        assert!(!found[0].missing, "drift is not a missing metric");
        assert_eq!(outcome(&found), 1);
        let loose = Tolerance { abs: 0.2, rel: 0.0 };
        assert!(diff(&a, &b, &loose).is_empty());
    }

    #[test]
    fn missing_keys_and_rows_are_reported_as_missing() {
        let a = Parsed::Jsonl(vec![parse_flat_object(r#"{"x":1,"y":2}"#).unwrap()]);
        let b = Parsed::Jsonl(vec![
            parse_flat_object(r#"{"x":1}"#).unwrap(),
            BTreeMap::new(),
        ]);
        let found = diff(&a, &b, &Tolerance::default());
        assert!(found.iter().any(|d| d.msg.contains("row counts differ")));
        assert!(found.iter().any(|d| d.msg.contains("missing in second")));
        assert!(
            found.iter().all(|d| d.missing),
            "all of these are missing-metric diffs"
        );
        assert_eq!(outcome(&found), 3);
    }

    #[test]
    fn latency_rows_label_with_their_outcome_key() {
        let row = parse_flat_object(
            r#"{"hist":"latency","scope":"mem","class":"demand","level":"ml0","path":"short_cte_hit","count":3}"#,
        )
        .unwrap();
        let label = row_label(&row, 0);
        assert!(label.contains("hist=latency"), "{label}");
        assert!(label.contains("path=short_cte_hit"), "{label}");
    }

    #[test]
    fn parse_distinguishes_kinds_and_rejects_garbage() {
        assert!(matches!(
            parse("{\n\"a\": \"1\",\n}\n", "x.report"),
            Ok(Parsed::Report(_))
        ));
        assert!(matches!(
            parse(r#"{"series":"s","mean":0.5}"#, "x.series.jsonl"),
            Ok(Parsed::Jsonl(_))
        ));
        let err = parse("not json at all", "bad.jsonl").unwrap_err();
        assert!(err.contains("bad.jsonl:1"), "{err}");
    }
}
